//! Tier-1 gate: the full enumerated kernel set must certify against every
//! verifier rule, and a corrupted kernel must be rejected with a
//! pinpointed rule id. This is the `reproduce verify` acceptance criterion
//! run as part of the root test suite.

use iatf_verify::{certify_all, verify_traced, Contract, RuleId};

#[test]
fn full_enumeration_certifies() {
    let report = certify_all();
    if let Some((k, d)) = report.diagnostics().next() {
        panic!(
            "{} failed certification: {}\n{}",
            k.label,
            d.headline(),
            d.context
        );
    }
    assert!(report.is_certified());
    assert_eq!(report.certified(), report.total());
    assert!(report.total() >= 700, "enumeration shrank: {}", report.total());
}

#[test]
fn corruption_is_rejected_and_pinpointed() {
    use iatf_codegen::{DataType, Inst};
    let c = Contract::Gemm {
        mc: 4,
        nc: 4,
        k: 5,
        alpha: 1.5,
        ldc: 5,
        dtype: DataType::F64,
    };
    let mut t = c.build_traced();
    let idx = t
        .program
        .insts
        .iter()
        .position(|i| matches!(i, Inst::Fmla { .. }))
        .unwrap();
    if let Inst::Fmla { vd, vn, vm } = t.program.insts[idx] {
        t.program.insts[idx] = Inst::Fmla { vd: vn, vn: vd, vm };
    }
    let diags = verify_traced(&c, &t);
    let sem: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Semantics)
        .collect();
    assert!(!sem.is_empty(), "swapped FMLA operands must be caught");
    assert_eq!(sem[0].rule.id(), "SEMANTICS");
    assert!(!sem[0].message.is_empty());

    // an out-of-bounds load is pinpointed to its instruction, with the
    // offending line marked in the rendered IR window
    let mut t = c.build_traced();
    t.program.insts.insert(
        2,
        Inst::Ldr {
            dst: iatf_codegen::VReg(0),
            base: iatf_codegen::XReg::Pa,
            offset: 1 << 20,
        },
    );
    let diags = verify_traced(&c, &t);
    let oob: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == RuleId::MemBounds)
        .collect();
    assert!(!oob.is_empty());
    assert_eq!(oob[0].index, Some(2), "diagnostic names the instruction");
    assert!(oob[0].context.contains("->"), "context marks the line");
}
