//! Workspace-level integration tests: the facade API, cross-crate
//! consistency (IATF vs every baseline vs the oracle), and the examples'
//! algorithmic patterns.

use iatf::prelude::*;
use iatf::LayoutError;
use iatf_baselines::{batched, blasloop, naive, specialized};

#[test]
fn facade_reexports_work_end_to_end() {
    let cfg = TuningConfig::host();
    let a = CompactBatch::from_std(&StdBatch::<f32>::random(4, 3, 100, 1));
    let b = CompactBatch::from_std(&StdBatch::<f32>::random(3, 5, 100, 2));
    let mut c = CompactBatch::<f32>::zeroed(4, 5, 100);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    assert!(c.get(99, 3, 4).is_finite());
}

#[test]
fn four_implementations_agree() {
    // IATF, blasloop, batched, specialized and the oracle must all compute
    // the same product.
    let (m, n, k, count) = (7usize, 6usize, 5usize, 9usize);
    let a = StdBatch::<f32>::random(m, k, count, 11);
    let b = StdBatch::<f32>::random(k, n, count, 12);
    let c0 = StdBatch::<f32>::random(m, n, count, 13);

    let mut oracle = c0.clone();
    naive::gemm_ref(GemmMode::NN, false, false, 1.5, &a, &b, 0.5, &mut oracle);

    let mut via_loop = c0.clone();
    blasloop::gemm(GemmMode::NN, 1.5, &a, &b, 0.5, &mut via_loop);
    assert!(oracle.max_abs_diff(&via_loop) < 1e-4);

    let mut via_batch = c0.clone();
    batched::gemm(GemmMode::NN, 1.5, &a, &b, 0.5, &mut via_batch);
    assert!(oracle.max_abs_diff(&via_batch) < 1e-4);

    let mut via_spec = c0.clone();
    specialized::gemm(GemmMode::NN, 1.5, &a, &b, 0.5, &mut via_spec);
    assert!(oracle.max_abs_diff(&via_spec) < 1e-4);

    let mut via_iatf = c0.clone();
    iatf::std_gemm_via_compact(
        GemmMode::NN,
        1.5,
        &a,
        &b,
        0.5,
        &mut via_iatf,
        &TuningConfig::host(),
    )
    .unwrap();
    assert!(oracle.max_abs_diff(&via_iatf) < 1e-4);
}

#[test]
fn trsm_implementations_agree() {
    for mode in [TrsmMode::LNLN, TrsmMode::LTUN, TrsmMode::LNUN] {
        let (m, n, count) = (8usize, 5usize, 5usize);
        let a = StdBatch::<f64>::random_triangular(m, count, mode.uplo, mode.diag, 21);
        let b0 = StdBatch::<f64>::random(m, n, count, 22);

        let mut oracle = b0.clone();
        naive::trsm_ref(mode, false, 2.0, &a, &mut oracle);

        let mut via_loop = b0.clone();
        blasloop::trsm(mode, 2.0, &a, &mut via_loop);
        assert!(oracle.max_abs_diff(&via_loop) < 1e-9, "{mode}");

        let mut via_iatf = b0.clone();
        iatf::std_trsm_via_compact(mode, 2.0, &a, &mut via_iatf, &TuningConfig::host()).unwrap();
        assert!(oracle.max_abs_diff(&via_iatf) < 1e-9, "{mode}");
    }
}

#[test]
fn complex_pipeline_end_to_end() {
    let cfg = TuningConfig::host();
    let count = 7usize;
    let n = 6usize;
    let a = StdBatch::<c64>::random(n, n, count, 31);
    let b = StdBatch::<c64>::random(n, n, count, 32);
    let mut c_ref = StdBatch::<c64>::zeroed(n, n, count);
    let alpha = c64::new(0.5, -1.0);
    naive::gemm_ref(
        GemmMode::TN,
        false,
        false,
        alpha,
        &a,
        &b,
        c64::zero(),
        &mut c_ref,
    );
    let ca = CompactBatch::from_std(&a);
    let cb = CompactBatch::from_std(&b);
    let mut cc = CompactBatch::<c64>::zeroed(n, n, count);
    compact_gemm(GemmMode::TN, alpha, &ca, &cb, c64::zero(), &mut cc, &cfg).unwrap();
    assert!(c_ref.max_abs_diff(&cc.to_std()) < 1e-12);
}

#[test]
fn gemm_then_trsm_composes() {
    // Solve (L·X = A·B) for many matrices: the output of compact GEMM feeds
    // compact TRSM without leaving the compact layout.
    let cfg = TuningConfig::host();
    let count = 10usize;
    let n = 9usize;
    let a = CompactBatch::from_std(&StdBatch::<f64>::random(n, n, count, 41));
    let b = CompactBatch::from_std(&StdBatch::<f64>::random(n, n, count, 42));
    let l_std = StdBatch::<f64>::random_triangular(n, count, Uplo::Lower, Diag::NonUnit, 43);
    let l = CompactBatch::from_std(&l_std);

    let mut rhs = CompactBatch::<f64>::zeroed(n, n, count);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut rhs, &cfg).unwrap();
    let rhs_copy = rhs.to_std();
    compact_trsm(TrsmMode::LNLN, 1.0, &l, &mut rhs, &cfg).unwrap();
    let x = rhs.to_std();
    let r = naive::trsm_residual(TrsmMode::LNLN, false, 1.0, &l_std, &x, &rhs_copy);
    assert!(r < 1e-10, "residual {r}");
}

#[test]
fn large_group_with_padding() {
    // group sizes that are not multiples of P, at the paper's largest size
    let cfg = TuningConfig::host();
    for count in [1usize, 5, 127] {
        let a = StdBatch::<f32>::random(33, 33, count, 51);
        let b = StdBatch::<f32>::random(33, 33, count, 52);
        let ca = CompactBatch::from_std(&a);
        let cb = CompactBatch::from_std(&b);
        let mut cc = CompactBatch::<f32>::zeroed(33, 33, count);
        compact_gemm(GemmMode::NN, 1.0, &ca, &cb, 0.0, &mut cc, &cfg).unwrap();
        let mut want = StdBatch::<f32>::zeroed(33, 33, count);
        naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a, &b, 0.0, &mut want);
        assert!(want.max_abs_diff(&cc.to_std()) < 1e-2, "count={count}");
    }
}

#[test]
fn error_paths_are_reported() {
    let cfg = TuningConfig::host();
    let a = CompactBatch::from_std(&StdBatch::<f32>::random(4, 3, 10, 1));
    let b = CompactBatch::from_std(&StdBatch::<f32>::random(4, 5, 10, 2)); // wrong k
    let mut c = CompactBatch::<f32>::zeroed(4, 5, 10);
    let err = compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap_err();
    assert!(matches!(err, LayoutError::ShapeMismatch { operand: "B", .. }));

    let b_badcount = CompactBatch::from_std(&StdBatch::<f32>::random(3, 5, 11, 2));
    let err = compact_gemm(GemmMode::NN, 1.0, &a, &b_badcount, 0.0, &mut c, &cfg).unwrap_err();
    assert!(matches!(err, LayoutError::BatchMismatch { .. }));
}

#[test]
fn install_time_analysis_is_exposed() {
    // the facade's core module gives access to the CMAR analysis
    assert_eq!(iatf::core::optimal_real_kernel(), (4, 4));
    let (m, n) = iatf::core::optimal_complex_kernel();
    assert!((m, n) == (3, 2) || (m, n) == (2, 3));
}
