#!/usr/bin/env bash
# Full pre-merge verification: tier-1 build+test, both observability
# feature states, the obs integration test, and a clean clippy run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace-root tests"
cargo test -q

echo "==> obs feature OFF is the default release artifact (built above)"
echo "==> obs feature ON: release build"
cargo build --release --features obs

echo "==> obs probes are exact no-ops when the feature is off"
cargo test -q -p iatf-obs

echo "==> obs counters/timers live + explainer predictions match counters"
cargo test -q -p iatf-obs --features enabled
cargo test -q -p iatf-core --features obs

echo "==> bench harness builds in both feature states"
cargo build --release -p iatf-bench
cargo build --release -p iatf-bench --features obs

echo "==> clippy (warnings are errors)"
cargo clippy --workspace -- -D warnings

echo "OK: all verification steps passed"
