#!/usr/bin/env bash
# Full pre-merge verification: tier-1 build+test, both observability
# feature states, the obs integration test, and a clean clippy run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace-root tests"
cargo test -q

echo "==> obs feature OFF is the default release artifact (built above)"
echo "==> obs feature ON: release build"
cargo build --release --features obs

echo "==> obs probes are exact no-ops when the feature is off"
cargo test -q -p iatf-obs

echo "==> obs counters/timers live + explainer predictions match counters"
cargo test -q -p iatf-obs --features enabled
cargo test -q -p iatf-core --features obs

echo "==> parallel executors: bit-exact vs serial, plan cache under threads"
cargo test -q -p iatf-core --features parallel
cargo test -q -p iatf-core --features parallel,obs

echo "==> bench harness builds in both feature states"
cargo build --release -p iatf-bench
cargo build --release -p iatf-bench --features obs
cargo build --release -p iatf-bench --features parallel,obs

echo "==> iatf-tune: sweep harness + tuning-db robustness (both obs states)"
cargo test -q -p iatf-tune
cargo test -q -p iatf-tune --features obs

echo "==> iatf-verify: unit + property + certification tests"
cargo test -q -p iatf-verify

echo "==> static kernel certification (reproduce verify) + machine report"
cargo run -q --release -p iatf-bench --bin reproduce -- verify
cargo run -q --release -p iatf-bench --bin reproduce -- verify --json > verify_report.json
echo "    wrote verify_report.json"

echo "==> plan-cache amortization smoke (reproduce callamort)"
cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  callamort --json > BENCH_3.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_3.json"))
ratio = doc["aggregate_amortization_ratio"]
cache = doc["plan_cache"]
tp = doc["throughput"]
assert cache["hits"] > 0 and cache["misses"] > 0, "cache never exercised"
assert cache["bypasses"] > 0, "bypass policy never exercised"
assert tp["parallel_feature"] and len(tp["parallel_gflops"]) == len(tp["sizes"])
assert ratio >= 5.0, f"cached dispatch must be >=5x cheaper, measured {ratio:.1f}x"
print(f"    aggregate amortization ratio: {ratio:.1f}x "
      f"({cache['hits']} hits / {cache['misses']} misses)")
print(f"    serial GFLOPS {tp['serial_gflops']}")
print(f"    parallel GFLOPS {tp['parallel_gflops']}")
EOF
echo "    wrote BENCH_3.json"

echo "==> input-aware autotuner smoke (reproduce tune)"
mkdir -p target/tune-tests
rm -f target/tune-tests/ci-tune.json
IATF_TUNE_DB=target/tune-tests/ci-tune.json \
  timeout 600 cargo run -q --release -p iatf-bench --bin reproduce -- \
  tune --quick --json > BENCH_4.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_4.json"))
pts = doc["points"]
assert doc["total_points"] == len(pts) and pts, "no tuning points measured"
for p in pts:
    # The sweep picks the time minimum over candidates *including* the
    # heuristic, so a tuned loss beyond measurement noise means the
    # autotuner recorded a stale or mismeasured winner.
    tol = max(3.0 * p["noise"], 0.02)
    assert p["tuned_gflops"] >= p["heuristic_gflops"] * (1.0 - tol), (
        f"tuned config loses to heuristic beyond noise at {p['op']}/"
        f"{p['dtype']} n={p['n']}: {p['tuned_gflops']:.3f} vs "
        f"{p['heuristic_gflops']:.3f} (noise {p['noise']:.3f})")
frac = doc["strictly_faster_points"] / doc["total_points"]
assert frac >= 0.25, (
    f"tuning must beat the heuristic beyond noise on >=25% of the grid, "
    f"got {100*frac:.0f}%")
print(f"    {doc['strictly_faster_points']}/{doc['total_points']} points "
      f"strictly faster ({100*frac:.0f}%), db entries {doc['db_entries']}")
EOF
test -s target/tune-tests/ci-tune.json || {
  echo "error: autotuner did not persist its db to IATF_TUNE_DB"; exit 1; }
echo "    wrote BENCH_4.json"

echo "==> unsafe code stays inside the audited allowlist"
# The SIMD backends are the sanctioned home of unsafe (the iatf-simd
# exemption); the remaining entries are the audited raw-pointer kernel and
# layout internals documented in DESIGN.md ("Unsafe policy"). Every other
# crate carries #![forbid(unsafe_code)], so a new `unsafe` anywhere else
# must extend this list consciously or it fails the gate.
unsafe_allowlist='
crates/simd/src/
crates/kernels/src/
crates/kernels/tests/proptests.rs
crates/layout/src/compact.rs
crates/baselines/src/
crates/core/src/elem.rs
crates/core/src/plan/gemm.rs
crates/core/src/plan/trsm.rs
crates/core/src/plan/trmm.rs
crates/codegen/tests/equivalence.rs
crates/bench/src/runners.rs
crates/bench/benches/
'
violations=""
while IFS= read -r f; do
  allowed=0
  for p in $unsafe_allowlist; do
    case "$f" in "$p"*) allowed=1 ;; esac
  done
  [ "$allowed" = 1 ] || violations="$violations$f"$'\n'
done < <(grep -rlw --include='*.rs' 'unsafe' src crates | sort)
if [ -n "$violations" ]; then
  echo "error: unsafe outside the allowlist:"
  printf '%s' "$violations"
  exit 1
fi

echo "==> clippy (warnings are errors)"
cargo clippy --workspace -- -D warnings
cargo clippy -p iatf-verify --all-targets -- -D warnings

echo "OK: all verification steps passed"
