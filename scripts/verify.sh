#!/usr/bin/env bash
# Full pre-merge verification: tier-1 build+test, both observability
# feature states, the obs integration test, and a clean clippy run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace-root tests"
cargo test -q

echo "==> obs feature OFF is the default release artifact (built above)"
echo "==> obs feature ON: release build"
cargo build --release --features obs

echo "==> obs probes are exact no-ops when the feature is off"
cargo test -q -p iatf-obs

echo "==> obs counters/timers live + explainer predictions match counters"
cargo test -q -p iatf-obs --features enabled
cargo test -q -p iatf-core --features obs

echo "==> parallel executors: bit-exact vs serial, plan cache under threads"
cargo test -q -p iatf-core --features parallel
cargo test -q -p iatf-core --features parallel,obs

echo "==> bench harness builds in both feature states"
cargo build --release -p iatf-bench
cargo build --release -p iatf-bench --features obs
cargo build --release -p iatf-bench --features parallel,obs

echo "==> iatf-verify: unit + property + certification tests"
cargo test -q -p iatf-verify

echo "==> static kernel certification (reproduce verify) + machine report"
cargo run -q --release -p iatf-bench --bin reproduce -- verify
cargo run -q --release -p iatf-bench --bin reproduce -- verify --json > verify_report.json
echo "    wrote verify_report.json"

echo "==> plan-cache amortization smoke (reproduce callamort)"
cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  callamort --json > BENCH_3.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_3.json"))
ratio = doc["aggregate_amortization_ratio"]
cache = doc["plan_cache"]
tp = doc["throughput"]
assert cache["hits"] > 0 and cache["misses"] > 0, "cache never exercised"
assert cache["bypasses"] > 0, "bypass policy never exercised"
assert tp["parallel_feature"] and len(tp["parallel_gflops"]) == len(tp["sizes"])
assert ratio >= 5.0, f"cached dispatch must be >=5x cheaper, measured {ratio:.1f}x"
print(f"    aggregate amortization ratio: {ratio:.1f}x "
      f"({cache['hits']} hits / {cache['misses']} misses)")
print(f"    serial GFLOPS {tp['serial_gflops']}")
print(f"    parallel GFLOPS {tp['parallel_gflops']}")
EOF
echo "    wrote BENCH_3.json"

echo "==> unsafe code stays inside the audited allowlist"
# The SIMD backends are the sanctioned home of unsafe (the iatf-simd
# exemption); the remaining entries are the audited raw-pointer kernel and
# layout internals documented in DESIGN.md ("Unsafe policy"). Every other
# crate carries #![forbid(unsafe_code)], so a new `unsafe` anywhere else
# must extend this list consciously or it fails the gate.
unsafe_allowlist='
crates/simd/src/
crates/kernels/src/
crates/kernels/tests/proptests.rs
crates/layout/src/compact.rs
crates/baselines/src/
crates/core/src/elem.rs
crates/core/src/plan/gemm.rs
crates/core/src/plan/trsm.rs
crates/core/src/plan/trmm.rs
crates/codegen/tests/equivalence.rs
crates/bench/src/runners.rs
crates/bench/benches/
'
violations=""
while IFS= read -r f; do
  allowed=0
  for p in $unsafe_allowlist; do
    case "$f" in "$p"*) allowed=1 ;; esac
  done
  [ "$allowed" = 1 ] || violations="$violations$f"$'\n'
done < <(grep -rlw --include='*.rs' 'unsafe' src crates | sort)
if [ -n "$violations" ]; then
  echo "error: unsafe outside the allowlist:"
  printf '%s' "$violations"
  exit 1
fi

echo "==> clippy (warnings are errors)"
cargo clippy --workspace -- -D warnings
cargo clippy -p iatf-verify --all-targets -- -D warnings

echo "OK: all verification steps passed"
