#!/usr/bin/env bash
# Full pre-merge verification: tier-1 build+test (repeated under every
# executable forced vector width), every feature-gate state (obs,
# parallel, trace, watch, journal), the perf-regression sentinel against
# the committed baselines, the width-sweep gate (wider backends must not
# lose to 128-bit), the trace/roofline smoke, the watch drift-detection
# smoke, the journal causal-chain selftest + overhead gate, and a clean
# clippy run. Run artifacts (BENCH_*.json, verify_report.json,
# trace_*.json, watch_prometheus.txt) land under target/; the committed
# ./BENCH_{3,4,5}.json are the sentinel's baselines and only change when
# deliberately promoted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace-root tests"
cargo test -q

echo "==> tier-1: width matrix (forced vector width per executable backend)"
# Reruns the tier-1 suite under IATF_FORCE_WIDTH for every backend the
# host can execute (`reproduce backends`): scalar and 128 everywhere,
# 256/512 where the CPU reports AVX2/AVX-512F. The unforced run above
# already covered the widest backend at its default dispatch; forcing
# each width exercises the narrower kernels, pack layouts (P per width),
# and tuning keys the default dispatch would otherwise never touch.
WIDTHS=$(cargo run -q --release -p iatf-bench --bin reproduce -- backends | awk '{print $1}')
echo "    executable widths: ${WIDTHS//$'\n'/ }"
for w in $WIDTHS; do
  echo "    ==> tier-1 at IATF_FORCE_WIDTH=$w"
  IATF_FORCE_WIDTH=$w cargo test -q
done

echo "==> obs feature OFF is the default release artifact (built above)"
echo "==> obs feature ON: release build"
cargo build --release --features obs

echo "==> obs probes are exact no-ops when the feature is off"
cargo test -q -p iatf-obs

echo "==> obs counters/timers live + explainer predictions match counters"
cargo test -q -p iatf-obs --features enabled
cargo test -q -p iatf-core --features obs

echo "==> parallel executors: bit-exact vs serial, plan cache under threads"
cargo test -q -p iatf-core --features parallel
cargo test -q -p iatf-core --features parallel,obs

echo "==> flight recorder: probes are exact no-ops when the feature is off"
cargo test -q -p iatf-trace

echo "==> flight recorder live: ring wraparound, PMU degradation, chrome export"
cargo test -q -p iatf-trace --features enabled
cargo test -q -p iatf-core --features trace

echo "==> watch: probes are exact no-ops when the feature is off"
cargo test -q -p iatf-watch

echo "==> watch live: histograms, control charts, envelopes, retune loop"
cargo test -q -p iatf-watch --features enabled
cargo test -q -p iatf-core --features watch
cargo test -q -p iatf-core --features watch,parallel,obs,trace

echo "==> journal: probes are exact no-ops when the feature is off"
cargo test -q -p iatf-journal

echo "==> journal live: ledger, segment rotation, corruption-tolerant replay"
cargo test -q -p iatf-journal --features enabled
cargo test -q -p iatf-core --features journal
cargo test -q -p iatf-core --features journal,parallel,obs
cargo test -q -p iatf-core --features journal,watch,parallel,obs

echo "==> bench harness builds in every feature state"
cargo build --release -p iatf-bench
cargo build --release -p iatf-bench --features obs
cargo build --release -p iatf-bench --features parallel,obs
cargo build --release -p iatf-bench --features trace
cargo build --release -p iatf-bench --features watch
cargo build --release -p iatf-bench --features journal
cargo build --release -p iatf-bench --features parallel,obs,trace,watch,journal

echo "==> iatf-tune: sweep harness + tuning-db robustness (both obs states)"
cargo test -q -p iatf-tune
cargo test -q -p iatf-tune --features obs

echo "==> iatf-verify: unit + property + certification tests"
cargo test -q -p iatf-verify

echo "==> static kernel certification (reproduce verify) + machine report"
cargo run -q --release -p iatf-bench --bin reproduce -- verify
cargo run -q --release -p iatf-bench --bin reproduce -- verify --json > target/verify_report.json
echo "    wrote target/verify_report.json"

echo "==> sentinel: current perf vs committed BENCH_3/BENCH_4/BENCH_5 baselines"
# Same features as the baseline-generation runs below, so the comparison
# is apples-to-apples; a scratch db keeps the re-tune from touching the
# user's cache. Runs before regeneration: the gate must see the numbers
# that are actually committed.
mkdir -p target/tune-tests
IATF_TUNE_DB=target/tune-tests/sentinel.json \
  timeout 600 cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  sentinel

echo "==> plan-cache amortization smoke (reproduce callamort)"
cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  callamort --json > target/BENCH_3.json
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_3.json"))
ratio = doc["aggregate_amortization_ratio"]
cache = doc["plan_cache"]
tp = doc["throughput"]
assert cache["hits"] > 0 and cache["misses"] > 0, "cache never exercised"
assert cache["bypasses"] > 0, "bypass policy never exercised"
assert tp["parallel_feature"] and len(tp["parallel_gflops"]) == len(tp["sizes"])
assert ratio >= 5.0, f"cached dispatch must be >=5x cheaper, measured {ratio:.1f}x"
print(f"    aggregate amortization ratio: {ratio:.1f}x "
      f"({cache['hits']} hits / {cache['misses']} misses)")
print(f"    serial GFLOPS {tp['serial_gflops']}")
print(f"    parallel GFLOPS {tp['parallel_gflops']}")
EOF
echo "    wrote target/BENCH_3.json (promote to ./BENCH_3.json to refresh the baseline)"

echo "==> input-aware autotuner smoke (reproduce tune)"
mkdir -p target/tune-tests
rm -f target/tune-tests/ci-tune.json
IATF_TUNE_DB=target/tune-tests/ci-tune.json \
  timeout 600 cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  tune --quick --json > target/BENCH_4.json
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_4.json"))
pts = doc["points"]
assert doc["total_points"] == len(pts) and pts, "no tuning points measured"
for p in pts:
    # The sweep picks the time minimum over candidates *including* the
    # heuristic, so a tuned loss beyond measurement noise means the
    # autotuner recorded a stale or mismeasured winner.
    tol = max(3.0 * p["noise"], 0.02)
    assert p["tuned_gflops"] >= p["heuristic_gflops"] * (1.0 - tol), (
        f"tuned config loses to heuristic beyond noise at {p['op']}/"
        f"{p['dtype']} n={p['n']}: {p['tuned_gflops']:.3f} vs "
        f"{p['heuristic_gflops']:.3f} (noise {p['noise']:.3f})")
frac = doc["strictly_faster_points"] / doc["total_points"]
assert frac >= 0.25, (
    f"tuning must beat the heuristic beyond noise on >=25% of the grid, "
    f"got {100*frac:.0f}%")
print(f"    {doc['strictly_faster_points']}/{doc['total_points']} points "
      f"strictly faster ({100*frac:.0f}%), db entries {doc['db_entries']}")
EOF
test -s target/tune-tests/ci-tune.json || {
  echo "error: autotuner did not persist its db to IATF_TUNE_DB"; exit 1; }
echo "    wrote target/BENCH_4.json (promote to ./BENCH_4.json to refresh the baseline)"

echo "==> width sweep: wider backends vs the 128-bit baseline (reproduce widths)"
cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  widths --json > target/BENCH_8.json
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_8.json"))
reg = doc["registry"]
pts = doc["points"]
print(f"    dispatch: {reg['uarch']} at {reg['width_bits']} bits; "
      f"host widths {doc['host_widths']}")
if not pts:
    # 128-bit-only host: nothing wider to compare; the sweep still ran.
    assert "128" in doc["host_widths"], "128-bit backend missing from host"
    print("    no wider backend on this host — comparison gate vacuous")
else:
    for p in pts:
        # A wider backend must never lose to the 128-bit one beyond
        # max(3*noise, 2%): same kernels, same operands, more lanes.
        tol = max(3.0 * p["noise"], 0.02)
        assert p["gflops"] >= p["baseline_gflops"] * (1.0 - tol), (
            f"{p['width']}-bit loses to 128-bit beyond noise at {p['op']}/"
            f"{p['dtype']} n={p['n']}: {p['gflops']:.3f} vs "
            f"{p['baseline_gflops']:.3f} (noise {p['noise']:.3f})")
    wins = sum(1 for p in pts if p["wins"])
    frac = wins / len(pts)
    if any(p["width"] == "256" for p in pts):
        # Hosts with a 256-bit backend must convert the extra lanes into
        # measured throughput on a meaningful part of the grid.
        assert frac >= 0.25, (
            f"wider backends beat 128-bit beyond noise on only "
            f"{100*frac:.0f}% of the grid (need >=25%)")
    print(f"    {wins}/{len(pts)} wider points strictly faster "
          f"({100*frac:.0f}%), 0 losses beyond tolerance")
EOF
echo "    wrote target/BENCH_8.json"

echo "==> flight recorder + PMU roofline smoke (reproduce trace)"
cargo run -q --release -p iatf-bench --features trace --bin reproduce -- \
  trace --json > target/BENCH_5.json
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_5.json"))
assert doc["trace_enabled"], "trace feature did not compile in"
trace = json.load(open("target/trace_reproduce.json"))
events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
assert events, "Perfetto document has no complete spans"
phases = {"plan_build", "pack_a", "pack_b", "compute", "scale", "unpack",
          "superblock", "execute", "tune_sweep"}
seen = {e["name"] for e in events}
missing = phases - seen
assert not missing, f"phases with no complete span: {sorted(missing)}"
for e in events:
    assert e["ph"] == "X" and e["dur"] >= 0 and "ts" in e, f"malformed event {e}"
roof = doc["roofline"]
if doc["pmu"]["available"]:
    worst = roof["worst_model_error_pct"]
    assert worst is not None and worst <= 25.0, (
        f"measured traffic drifted {worst:.1f}% from the CMAR model (limit 25%)")
    print(f"    roofline model error within {worst:.1f}%")
else:
    assert "unavailable" in doc["pmu"]["source"], "degraded PMU must explain itself"
    print(f"    PMU unavailable ({doc['pmu']['source']}) — roofline is predictions-only")
print(f"    {len(events)} complete spans across {len(seen)} phases, "
      f"{doc['spans_dropped']} lost to ring overwrite")
EOF
echo "    wrote target/BENCH_5.json and target/trace_reproduce.json"

echo "==> watch drift-detection smoke (reproduce watch)"
# Scratch db + envelope store: the injected slowdown and triggered retune
# must not contaminate the user's real caches. The same run doubles as
# the negative control — events_without_injection gates at exactly zero.
mkdir -p target/tune-tests
rm -f target/tune-tests/watch.json target/tune-tests/watch-envelopes.json
IATF_TUNE_DB=target/tune-tests/watch.json \
IATF_WATCH_ENVELOPES=target/tune-tests/watch-envelopes.json \
  timeout 600 cargo run -q --release -p iatf-bench --features watch --bin reproduce -- \
  watch --json > target/BENCH_6.json
python3 - <<'EOF'
import json, re
doc = json.load(open("target/BENCH_6.json"))
assert doc["watch_enabled"], "watch feature did not compile in"
assert doc["events_without_injection"] == 0, (
    f"detector fired {doc['events_without_injection']} times on healthy traffic")
inj = doc["injection"]
assert inj["detection_dispatches"] is not None, (
    f"injected {inj['factor']}x slowdown never detected")
ev = inj["event"]
assert ev is not None and ev["ratio"] > 1.5, f"drift event missing or weak: {ev}"
assert ev["cause"] in ("shape_local", "throttle_wide"), ev["cause"]
rt = doc["retune"]
assert rt["flagged"] and rt["winner_rerecorded"] and rt["retunes_done"] >= 1, rt
assert rt["generation_after"] > rt["generation_before"], (
    "retune did not bump the db generation (plan cache not invalidated)")
rec = doc["recovery"]
assert rec["events_after_recovery"] == 0, (
    f"detector re-tripped {rec['events_after_recovery']} times after retune")
assert rec["within_envelope"], f"post-retune traffic outside envelope: {rec}"
# Prometheus text-format exposition must parse: every series line is
# name{labels} value with a declared TYPE, and histogram buckets are
# cumulative and capped by +Inf.
typed, series = {}, []
for ln in open("target/watch_prometheus.txt"):
    ln = ln.rstrip("\n")
    if not ln:
        continue
    if ln.startswith("# TYPE "):
        _, _, name, kind = ln.split(" ", 3)
        typed[name] = kind
        continue
    if ln.startswith("#"):
        continue
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', ln)
    assert m, f"unparseable series line: {ln!r}"
    name = m.group(1)
    base = re.sub(r'_(bucket|sum|count)$', '', name)
    assert name in typed or base in typed, f"series {name} has no # TYPE"
    float(m.group(3).replace("+Inf", "inf"))
    series.append(name)
assert any(s.endswith("_bucket") for s in series), "no histogram series rendered"
assert "iatf_drift_events_total" in series, "drift event counter not exposed"
assert "iatf_arena_leases_total" in series, "arena counters not exposed"
assert "iatf_superblock_tasks_total" in series, "superblock counters not exposed"
print(f"    detected {inj['factor']}x in {inj['detection_dispatches']} dispatches "
      f"(cause {ev['cause']}), retune gen {rt['generation_before']}->"
      f"{rt['generation_after']}, recovery clean; "
      f"{len(series)} Prometheus series parsed")
EOF
echo "    wrote target/BENCH_6.json and target/watch_prometheus.txt"

echo "==> journal provenance: causal-chain selftest (reproduce journal --selftest)"
# The selftest re-drives the watch loop above (tune -> steady -> injected
# drift -> retune) against scratch db/envelope/ledger state, then asserts
# every causal link — sweep_start -> sweep_winner -> envelope_seed ->
# drift -> retune/db_evict/re-sweep/recalibrate — is present with the
# right cause id, both in memory and from a fresh disk replay.
mkdir -p target/tune-tests
rm -rf target/tune-tests/journal-selftest-db.json \
       target/tune-tests/journal-selftest-envelopes.json \
       target/tune-tests/journal-selftest-ledger
timeout 600 cargo run -q --release -p iatf-bench --features watch,journal --bin reproduce -- \
  journal --selftest --json > target/BENCH_9_selftest.json
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_9_selftest.json"))
assert doc["journal_enabled"] and doc["watch_enabled"], "features missing"
assert doc["ok"], f"causal chain broken: {doc['failures']}"
for link in ("sweep_start", "sweep_winner", "envelope_seed", "drift"):
    assert doc[link] > 0, f"{link} event id missing"
print(f"    chain {doc['sweep_start']} -> {doc['sweep_winner']} -> "
      f"{doc['envelope_seed']} -> {doc['drift']} reconstructed "
      f"({doc['events_published']} events published)")
EOF

echo "==> journal overhead gate: warm dispatch, feature on vs off"
# Zero-cost claim, measured: min-of-rounds ns/call of the warm cached
# dispatch path with the journal compiled in must stay within
# max(3*noise, 2%) of the journal-off build. IATF_JOURNAL_DIR= (set
# empty) keeps the enabled run in-memory so the probe never pays
# segment I/O it wouldn't pay in steady state either.
IATF_JOURNAL_DIR= timeout 600 cargo run -q --release -p iatf-bench --features parallel,obs --bin reproduce -- \
  journal --overhead --json > target/journal_overhead_off.json
IATF_JOURNAL_DIR= timeout 600 cargo run -q --release -p iatf-bench --features parallel,obs,journal --bin reproduce -- \
  journal --overhead --json > target/journal_overhead_on.json
python3 - <<'EOF'
import json
off = json.load(open("target/journal_overhead_off.json"))
on = json.load(open("target/journal_overhead_on.json"))
assert not off["journal_enabled"] and on["journal_enabled"], "wrong builds"
noise = max(off["noise"], on["noise"])
slack = max(3.0 * noise, 0.02)
ratio = on["ns_per_call"] / off["ns_per_call"]
assert ratio <= 1.0 + slack, (
    f"journal-on warm dispatch is {ratio:.3f}x journal-off "
    f"(allowed 1+{slack:.3f})")
doc = {"title": "journal: warm-dispatch overhead gate",
       "off": off, "on": on, "ratio": ratio, "slack": slack}
json.dump(doc, open("target/BENCH_9.json", "w"), indent=2)
print(f"    journal on/off warm-dispatch ratio {ratio:.3f} "
      f"(slack {slack:.3f}, noise {noise:.3f})")
EOF
echo "    wrote target/BENCH_9.json and target/BENCH_9_selftest.json"

echo "==> source certification (reproduce audit): self-test, then workspace"
# iatf-audit replaces the old in-script unsafe-allowlist grep with the
# full rule set of DESIGN.md §13: unsafe allowlist + SAFETY justification,
# atomic-ordering justification in registered concurrency modules, and
# the cross-crate hygiene rules. The self-test runs first — it seeds one
# violation of every rule class and must see exactly the expected
# diagnostics, because a pass that cannot fail certifies nothing — and
# only then is a clean workspace audit trusted.
cargo run -q --release -p iatf-bench --bin reproduce -- audit --self-test
cargo run -q --release -p iatf-bench --bin reproduce -- audit

echo "==> loom: bounded model checks of the lock-free serving core"
# Exhaustive interleaving search (sequentially consistent model,
# preemption-bounded) over the three concurrency protocols: plan-cache
# front epoch invalidation, watch histogram shard merge exactness, and
# seqlock tear-free trace-ring snapshots. Each run is bounded and
# finishes in seconds; the non-loom stress twin of the cache model runs
# with the ordinary iatf-core tests above.
RUSTFLAGS="--cfg loom" cargo test -q -p iatf-core --lib loom
RUSTFLAGS="--cfg loom" cargo test -q -p iatf-watch --features enabled --lib loom
RUSTFLAGS="--cfg loom" cargo test -q -p iatf-trace --features enabled --lib loom

echo "==> miri (optional): UB check on the portable layout/packing paths"
# Advisory: runs only when a nightly toolchain with miri is installed;
# CI images without it skip gracefully rather than failing the gate.
if command -v rustup >/dev/null 2>&1 \
   && rustup toolchain list 2>/dev/null | grep -q nightly \
   && rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)'; then
  cargo +nightly miri test -q -p iatf-layout
else
  echo "    nightly toolchain with miri not installed; skipping (advisory)"
fi

echo "==> clippy (warnings are errors)"
cargo clippy --workspace -- -D warnings
cargo clippy -p iatf-verify --all-targets -- -D warnings

echo "OK: all verification steps passed"
