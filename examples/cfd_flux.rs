//! High-order CFD flux evaluation — the GiMMiK-style workload the paper's
//! introduction cites ("high-order Computational Fluid Dynamics"): every
//! element applies its own small, geometry-scaled derivative operator to a
//! small state block.
//!
//! For `N_ELEM` elements with `NP` solution points and `NV` conserved
//! variables, the per-element work is `D_e (NQ×NP) · U_e (NP×NV)` — a large
//! group of fixed-size small GEMMs, where `D_e` differs per element (metric
//! terms), so the compact layout's matrix interleaving applies to both
//! operands.
//!
//! ```sh
//! cargo run --release --example cfd_flux
//! ```

use iatf::prelude::*;
use std::time::Instant;

const N_ELEM: usize = 8192;
const NP: usize = 16; // solution points per element (p3 quad)
const NQ: usize = 16; // flux points
const NV: usize = 4; // conserved variables (2-D Euler)

fn main() {
    let cfg = TuningConfig::host();

    // Per-element derivative operators: a reference stencil scaled by each
    // element's (synthetic) metric Jacobian.
    let d_std = StdBatch::<f64>::from_fn(NQ, NP, N_ELEM, |e, q, p| {
        let jac = 0.5 + ((e * 2654435761) % 1000) as f64 / 1000.0;
        let stencil = if q == p {
            1.5
        } else {
            1.0 / (1.0 + (q as f64 - p as f64).abs())
        };
        jac * stencil / NP as f64
    });
    // Per-element states.
    let u_std = StdBatch::<f64>::random(NP, NV, N_ELEM, 42);

    let d = CompactBatch::from_std(&d_std);
    let u = CompactBatch::from_std(&u_std);
    let mut f = CompactBatch::<f64>::zeroed(NQ, NV, N_ELEM);

    // Reusable plan: the mesh topology is fixed, so one plan serves every
    // time step (the run-time stage is amortized exactly as in §5.3).
    let plan = GemmPlan::<f64>::new(
        GemmDims::new(NQ, NV, NP),
        GemmMode::NN,
        false,
        false,
        N_ELEM,
        &cfg,
    )
    .unwrap();

    let steps = 50;
    let t0 = Instant::now();
    for _ in 0..steps {
        plan.execute(1.0, &d, &u, 0.0, &mut f).unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    let flops = (2 * NQ * NP * NV * N_ELEM * steps) as f64;
    println!(
        "flux evaluation: {N_ELEM} elements × {steps} steps in {:.3} s → {:.2} GFLOPS",
        dt,
        flops / dt / 1e9
    );

    // verify one element against a scalar reference
    let fs = f.to_std();
    let e = 777;
    let mut worst: f64 = 0.0;
    for q in 0..NQ {
        for v in 0..NV {
            let mut acc = 0.0;
            for p in 0..NP {
                acc += d_std.get(e, q, p) * u_std.get(e, p, v);
            }
            worst = worst.max((acc - fs.get(e, q, v)).abs());
        }
    }
    println!("max |reference − compact| on element {e}: {worst:.3e}");
    assert!(worst < 1e-12);
    println!("ok: per-element flux derivatives verified");
}
