//! Block Gauss–Seidel smoothing for many independent subdomain systems —
//! the PDE-simulation workload that motivates compact batched BLAS (paper
//! §1: "PDE based simulations ... apply BLAS routines to large group of
//! small matrices").
//!
//! Each of `N_SUB` subdomains carries a small dense operator `A_e = L_e +
//! U_e` (strictly-lower+diagonal and strictly-upper parts). One smoothing
//! sweep for every subdomain at once is
//!
//! ```text
//! x ← x + (L_e + D_e)⁻¹ (b − A_e x)
//! ```
//!
//! i.e. a compact batched GEMM (residual) followed by a compact batched
//! TRSM (forward solve), iterated until the residual norm stalls.
//!
//! ```sh
//! cargo run --release --example block_jacobi
//! ```

use iatf::prelude::*;

const N_SUB: usize = 4096; // subdomains
const NB: usize = 12; // unknowns per subdomain
const NRHS: usize = 4; // simultaneous right-hand sides
const SWEEPS: usize = 25;

fn main() {
    let cfg = TuningConfig::host();

    // Diagonally dominant subdomain operators: A = D + off-diagonal/NB.
    let a_std = StdBatch::<f64>::from_fn(NB, NB, N_SUB, |e, i, j| {
        let h = ((e * 31 + i * 7 + j * 13) % 97) as f64 / 97.0 - 0.5;
        if i == j {
            2.5 + 0.5 * ((e + i) % 3) as f64
        } else {
            h / NB as f64
        }
    });
    let a = CompactBatch::from_std(&a_std);

    // The (L + D) part for the Gauss–Seidel solve: reuse A directly — TRSM
    // with Uplo::Lower reads exactly the lower triangle plus diagonal.
    let b_std = StdBatch::<f64>::random(NB, NRHS, N_SUB, 77);
    let b = CompactBatch::from_std(&b_std);

    let mut x = CompactBatch::<f64>::zeroed(NB, NRHS, N_SUB);
    let mut r = CompactBatch::<f64>::zeroed(NB, NRHS, N_SUB);

    let mut last = f64::INFINITY;
    for sweep in 0..SWEEPS {
        // r = b − A·x
        r.as_scalars_mut().copy_from_slice(b.as_scalars());
        compact_gemm(GemmMode::NN, -1.0, &a, &x, 1.0, &mut r, &cfg).unwrap();

        let norm = r
            .as_scalars()
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();
        if sweep % 5 == 0 || sweep == SWEEPS - 1 {
            println!("sweep {sweep:>3}: ||b − A·x||₂ = {norm:.3e}");
        }
        if norm < 1e-10 {
            println!("converged after {sweep} sweeps");
            break;
        }
        assert!(norm < last * 1.01, "smoother must not diverge");
        last = norm;

        // dx = (L + D)⁻¹ r   (forward solve on every subdomain at once)
        compact_trsm(TrsmMode::LNLN, 1.0, &a, &mut r, &cfg).unwrap();

        // x += dx — element-wise over the raw compact storage (layouts match)
        for (xs, ds) in x.as_scalars_mut().iter_mut().zip(r.as_scalars()) {
            *xs += ds;
        }
    }

    // final verification on a few subdomains
    let xs = x.to_std();
    let mut worst: f64 = 0.0;
    for e in (0..N_SUB).step_by(499) {
        for rhs in 0..NRHS {
            for i in 0..NB {
                let mut ax = 0.0;
                for j in 0..NB {
                    ax += a_std.get(e, i, j) * xs.get(e, j, rhs);
                }
                worst = worst.max((ax - b_std.get(e, i, rhs)).abs());
            }
        }
    }
    println!("max |A·x − b| over sampled subdomains = {worst:.3e}");
    assert!(worst < 1e-6, "smoother did not converge far enough");
    println!("ok: {N_SUB} subdomain systems smoothed with compact batched GEMM+TRSM");
}
