//! Inspecting the run-time stage: how the *input-aware* planner reacts to
//! different matrix properties — the framework's namesake behavior.
//!
//! Every plan carries a structured explainer (`GemmPlan::explain`,
//! `TrsmPlan::explain`, `TrmmPlan::explain`) reporting the selected main
//! and edge kernel sizes, the tile grid, the pack strategy, and static
//! per-kernel schedule statistics from the code generator. This example
//! renders those reports; add `--features obs` to any real run to also get
//! live counters (see `reproduce obs`).
//!
//! ```sh
//! cargo run --release --example plan_inspect
//! ```

use iatf::obs::PlanExplain;
use iatf::prelude::*;

fn show(label: &str, ex: &PlanExplain) {
    println!("── {label}");
    for line in ex.render_text().lines() {
        println!("   {line}");
    }
}

fn describe_gemm(label: &str, m: usize, n: usize, k: usize, mode: GemmMode, batch: usize) {
    let cfg = TuningConfig::host();
    let plan =
        GemmPlan::<f32>::new(GemmDims::new(m, n, k), mode, false, false, batch, &cfg).unwrap();
    show(label, &plan.explain());
}

fn describe_trsm(label: &str, m: usize, n: usize, mode: TrsmMode, batch: usize) {
    let cfg = TuningConfig::host();
    let plan = TrsmPlan::<f64>::new(TrsmDims::new(m, n), mode, false, batch, &cfg).unwrap();
    show(label, &plan.explain());
}

fn main() {
    println!("=== input-aware GEMM planning ===============================");
    // tiny: both operands streamed in place (no-pack strategy, §4.4)
    describe_gemm("tiny", 4, 4, 4, GemmMode::NN, 1000);
    // M exceeds the 4-row kernel: A must be packed, B still streams
    describe_gemm("tall", 12, 4, 4, GemmMode::NN, 1000);
    // large square: both packed, edge kernels appear (15 = 3·4 + 3)
    describe_gemm("15x15 (Figure 4)", 15, 15, 15, GemmMode::NN, 1000);
    // bigger matrices shrink the super-block (Batch Counter, §5.1)
    describe_gemm("L1 pressure", 33, 33, 33, GemmMode::NN, 1000);
    // transpose folds into packing, not into the kernel
    describe_gemm("transposed", 8, 8, 8, GemmMode::TT, 1000);

    println!();
    println!("=== input-aware TRSM planning ===============================");
    // register-resident triangle (M ≤ 5): single block, no rect phase
    describe_trsm("register-resident", 5, 16, TrsmMode::LNLN, 1000);
    // blocked solve with 4-row diagonal blocks
    describe_trsm("blocked", 11, 16, TrsmMode::LNLN, 1000);
    // canonical mode: B streams in place (pack B "on-demand")
    describe_trsm("canonical", 8, 8, TrsmMode::LNLN, 1000);
    // upper triangle: index reversal makes it lower; B must be gathered
    describe_trsm("upper", 8, 8, TrsmMode::LNUN, 1000);
    // transposed-upper is effectively lower again: B streams
    describe_trsm("trans-upper", 8, 8, TrsmMode::LTUN, 1000);
    // right side: transposed panel gather
    describe_trsm(
        "right side",
        8,
        6,
        TrsmMode::new(Side::Right, Trans::No, Uplo::Upper, Diag::NonUnit),
        1000,
    );
}
