//! Inspecting the run-time stage: how the *input-aware* planner reacts to
//! different matrix properties — the framework's namesake behavior.
//!
//! ```sh
//! cargo run --release --example plan_inspect
//! ```

use iatf::core::Command;
use iatf::prelude::*;

fn describe_gemm(label: &str, m: usize, n: usize, k: usize, mode: GemmMode, batch: usize) {
    let cfg = TuningConfig::host();
    let plan =
        GemmPlan::<f32>::new(GemmDims::new(m, n, k), mode, false, false, batch, &cfg).unwrap();
    let cmds = plan.commands();
    let packs = cmds
        .iter()
        .filter(|c| matches!(c, Command::PackA { .. } | Command::PackB { .. }))
        .count();
    let kernels = cmds
        .iter()
        .filter(|c| matches!(c, Command::Gemm { .. }))
        .count();
    println!("── sgemm {label}: {m}x{n}x{k} {mode}, batch {batch}");
    println!(
        "   A: {:?}   B: {:?}   super-block: {} packs   queue: {} pack + {} kernel commands",
        plan.a_plan, plan.b_plan, plan.group_packs, packs, kernels
    );
    // show the kernel sizes the Execution Plan Generator selected
    let mut sizes: Vec<(usize, usize)> = cmds
        .iter()
        .filter_map(|c| match c {
            Command::Gemm { mr, nr, .. } => Some((*mr, *nr)),
            _ => None,
        })
        .collect();
    sizes.sort();
    sizes.dedup();
    println!("   kernel sizes: {sizes:?}");
}

fn describe_trsm(label: &str, m: usize, n: usize, mode: TrsmMode, batch: usize) {
    let cfg = TuningConfig::host();
    let plan = TrsmPlan::<f64>::new(TrsmDims::new(m, n), mode, false, batch, &cfg).unwrap();
    println!("── dtrsm {label}: {m}x{n} {mode}, batch {batch}");
    println!(
        "   canonical map: flip={} reversed={}   B panels: {}   blocks: {:?}   pack B: {}",
        plan.index_map().flip,
        plan.index_map().reversed,
        plan.dims().n.div_ceil(4),
        plan.blocks(),
        plan.pack_b_structural,
    );
}

fn main() {
    println!("=== input-aware GEMM planning ===============================");
    // tiny: both operands streamed in place (no-pack strategy, §4.4)
    describe_gemm("tiny", 4, 4, 4, GemmMode::NN, 1000);
    // M exceeds the 4-row kernel: A must be packed, B still streams
    describe_gemm("tall", 12, 4, 4, GemmMode::NN, 1000);
    // large square: both packed, edge kernels appear (15 = 3·4 + 3)
    describe_gemm("15x15 (Figure 4)", 15, 15, 15, GemmMode::NN, 1000);
    // bigger matrices shrink the super-block (Batch Counter, §5.1)
    describe_gemm("L1 pressure", 33, 33, 33, GemmMode::NN, 1000);
    // transpose folds into packing, not into the kernel
    describe_gemm("transposed", 8, 8, 8, GemmMode::TT, 1000);

    println!();
    println!("=== input-aware TRSM planning ===============================");
    // register-resident triangle (M ≤ 5): single block, no rect phase
    describe_trsm("register-resident", 5, 16, TrsmMode::LNLN, 1000);
    // blocked solve with 4-row diagonal blocks
    describe_trsm("blocked", 11, 16, TrsmMode::LNLN, 1000);
    // canonical mode: B streams in place
    describe_trsm("canonical", 8, 8, TrsmMode::LNLN, 1000);
    // upper triangle: index reversal makes it lower; B must be gathered
    describe_trsm("upper", 8, 8, TrsmMode::LNUN, 1000);
    // transposed-upper is effectively lower again: B streams
    describe_trsm("trans-upper", 8, 8, TrsmMode::LTUN, 1000);
    // right side: transposed panel gather
    describe_trsm(
        "right side",
        8,
        6,
        TrsmMode::new(Side::Right, Trans::No, Uplo::Upper, Diag::NonUnit),
        1000,
    );
}
