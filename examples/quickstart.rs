//! Quickstart: compact batched GEMM and TRSM in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iatf::prelude::*;

fn main() {
    let cfg = TuningConfig::host();
    let batch = 10_000;
    let n = 8;

    // --- batched GEMM: C = A·B for 10,000 independent 8×8 problems -------
    let a_std = StdBatch::<f32>::random(n, n, batch, 1);
    let b_std = StdBatch::<f32>::random(n, n, batch, 2);

    // convert once into the SIMD-friendly compact layout…
    let a = CompactBatch::from_std(&a_std);
    let b = CompactBatch::from_std(&b_std);
    let mut c = CompactBatch::<f32>::zeroed(n, n, batch);

    // …then every compact operation advances four f32 problems per vector op
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();

    // spot-check one entry against a scalar dot product
    let (v, i, j) = (4321, 3, 5);
    let want: f32 = (0..n).map(|k| a_std.get(v, i, k) * b_std.get(v, k, j)).sum();
    let got = c.get(v, i, j);
    println!("gemm:  C[{v}]({i},{j}) = {got:.6} (reference {want:.6})");
    assert!((got - want).abs() < 1e-3);

    // --- batched TRSM: solve L·X = B for the same group ------------------
    // (explicit zeros above the diagonal: this L is also multiplied with
    // GEMM below, which reads the full matrix)
    let l_std = StdBatch::<f32>::from_fn(n, n, batch, |v, i, j| {
        if i == j {
            1.0 + ((v + i) % 4) as f32 * 0.25
        } else if i > j {
            (((v * 7 + i * 3 + j) % 11) as f32 - 5.0) / (10.0 * n as f32)
        } else {
            0.0
        }
    });
    let l = CompactBatch::from_std(&l_std);
    let mut x = CompactBatch::from_std(&b_std); // B is overwritten by X
    compact_trsm(TrsmMode::LNLN, 1.0, &l, &mut x, &cfg).unwrap();

    // verify: L·X recovers B
    let mut back = CompactBatch::<f32>::zeroed(n, n, batch);
    compact_gemm(GemmMode::NN, 1.0, &l, &x, 0.0, &mut back, &cfg).unwrap();
    let mut worst = 0.0f32;
    for vv in (0..batch).step_by(997) {
        for ii in 0..n {
            for jj in 0..n {
                worst = worst.max((back.get(vv, ii, jj) - b_std.get(vv, ii, jj)).abs());
            }
        }
    }
    println!("trsm:  max |L·X − B| over sampled matrices = {worst:.2e}");
    assert!(worst < 1e-3);

    println!("ok: {batch} compact 8x8 GEMMs and TRSMs verified");
}
