//! Batched covariance whitening — the machine-learning flavor of the
//! paper's motivation (batched small BLAS in ML pipelines): thousands of
//! feature blocks, each with its own covariance factor, whitened and
//! reduced to Gram matrices.
//!
//! Per block `i` with Cholesky-style factor `L_i` (lower triangular,
//! well-conditioned) and data `X_i (d × s)`:
//!
//! ```text
//! Y_i = L_i⁻¹ · X_i          (compact batched TRSM, LNLN)
//! G_i = Y_iᵀ · Y_i           (compact batched GEMM, TN mode)
//! ```
//!
//! If the factors were exact Cholesky factors of the covariances, each
//! `G_i/s` would approach the identity — the check below exploits that by
//! whitening data drawn *through* the same factor.
//!
//! ```sh
//! cargo run --release --example covariance_whitening
//! ```

use iatf::prelude::*;

const BLOCKS: usize = 4096;
const D: usize = 10; // feature dimension
const S: usize = 24; // samples per block

fn main() {
    let cfg = TuningConfig::host();

    // Per-block lower-triangular factors (explicit zeros above the
    // diagonal: L is also used in GEMM to correlate the data, which reads
    // the full matrix).
    let l_std = StdBatch::<f64>::from_fn(D, D, BLOCKS, |v, i, j| {
        if i == j {
            1.0 + ((v + i) % 5) as f64 * 0.2
        } else if i > j {
            (((v * 13 + i * 5 + j * 3) % 17) as f64 - 8.0) / (16.0 * D as f64)
        } else {
            0.0
        }
    });
    let l = CompactBatch::from_std(&l_std);

    // White noise Z, correlated data X = L·Z (so whitening must undo it).
    let z_std = StdBatch::<f64>::random(D, S, BLOCKS, 6);
    // shift to zero mean-ish for a better-behaved Gram check
    let z_std = StdBatch::<f64>::from_fn(D, S, BLOCKS, |v, i, j| z_std.get(v, i, j) - 0.5);
    let z = CompactBatch::from_std(&z_std);
    let mut x = CompactBatch::<f64>::zeroed(D, S, BLOCKS);
    compact_gemm(GemmMode::NN, 1.0, &l, &z, 0.0, &mut x, &cfg).unwrap();

    // --- whitening: Y = L⁻¹ X (in place) ---------------------------------
    compact_trsm(TrsmMode::LNLN, 1.0, &l, &mut x, &cfg).unwrap();

    // Y must equal Z exactly up to roundoff
    let y = x.to_std();
    let mut recon: f64 = 0.0;
    for v in (0..BLOCKS).step_by(313) {
        for i in 0..D {
            for j in 0..S {
                recon = recon.max((y.get(v, i, j) - z_std.get(v, i, j)).abs());
            }
        }
    }
    println!("max |L⁻¹(L·Z) − Z| over sampled blocks = {recon:.3e}");
    assert!(recon < 1e-10);

    // --- Gram matrices: G = Yᵀ·Y (TN mode) -------------------------------
    let mut g = CompactBatch::<f64>::zeroed(S, S, BLOCKS);
    compact_gemm(GemmMode::TN, 1.0, &x, &x, 0.0, &mut g, &cfg).unwrap();

    // sanity: G is symmetric positive on the diagonal
    let gs = g.to_std();
    let mut sym: f64 = 0.0;
    for v in (0..BLOCKS).step_by(509) {
        for i in 0..S {
            assert!(gs.get(v, i, i) > 0.0, "Gram diagonal must be positive");
            for j in 0..S {
                sym = sym.max((gs.get(v, i, j) - gs.get(v, j, i)).abs());
            }
        }
    }
    println!("max Gram asymmetry over sampled blocks = {sym:.3e}");
    assert!(sym < 1e-10);

    println!("ok: {BLOCKS} feature blocks whitened (TRSM) and reduced (GEMM TN)");
}
