//! # IATF — Input-Aware Tuning Framework for compact batched BLAS
//!
//! Facade crate re-exporting the public API of the workspace: high-
//! performance GEMM and TRSM over large groups of fixed-size small
//! matrices, using the SIMD-friendly compact data layout (a reproduction of
//! Wei et al., *IATF*, ICPP 2022).
//!
//! ```
//! use iatf::prelude::*;
//!
//! // 1,000 independent 6×6 double-precision multiplications.
//! let a = CompactBatch::from_std(&StdBatch::<f64>::random(6, 6, 1000, 1));
//! let b = CompactBatch::from_std(&StdBatch::<f64>::random(6, 6, 1000, 2));
//! let mut c = CompactBatch::<f64>::zeroed(6, 6, 1000);
//! compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &TuningConfig::host()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iatf_core as core;
pub use iatf_core::obs;
pub use iatf_core::trace;
pub use iatf_core::watch;
pub use iatf_core::journal;
pub use iatf_layout as layout;
pub use iatf_simd as simd;

pub use iatf_core::{
    compact_gemm, compact_gemm_ex, compact_trmm, compact_trmm_ex, compact_trsm, compact_trsm_ex,
    std_gemm_via_compact, std_trsm_via_compact, BatchPolicy, CompactElement, GemmPlan, PackPolicy,
    PlanCachePolicy, PlanCacheStats, TrmmPlan, TrsmPlan, TunePolicy, TuningConfig,
};
pub use iatf_tune::{Provenance, TunedEntry, TuningDb};
pub use iatf_layout::{
    CompactBatch, Diag, GemmDims, GemmMode, LayoutError, Side, StdBatch, Trans, TrsmDims,
    TrsmMode, Uplo,
};
pub use iatf_simd::{c32, c64, Complex, DType, Element};

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::{
        c32, c64, compact_gemm, compact_trmm, compact_trsm, CompactBatch, Complex, DType, Diag,
        Element, GemmDims, GemmMode, GemmPlan, PlanCachePolicy, Side, StdBatch, Trans, TrmmPlan,
        TrsmDims, TrsmMode, TrsmPlan, TunePolicy, TuningConfig, Uplo,
    };
}
