//! Plan-cache behaviour: hit/miss accounting, bypass, the eviction bound,
//! and a concurrent mixed-shape stress run.
//!
//! The cache and its counters are process-global, so every test serializes
//! on one mutex and starts from `cache::clear()`.

use iatf_core::plan::cache;
use iatf_core::{compact_gemm, compact_trmm, compact_trsm, PlanCachePolicy, TuningConfig};
use iatf_layout::{CompactBatch, GemmMode, StdBatch, TrsmMode};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE.get_or_init(|| Mutex::new(())).lock().unwrap();
    cache::clear();
    guard
}

fn gemm_once(m: usize, n: usize, k: usize, count: usize, cfg: &TuningConfig) -> CompactBatch<f64> {
    let a = CompactBatch::from_std(&StdBatch::<f64>::random(m, k, count, 1));
    let b = CompactBatch::from_std(&StdBatch::<f64>::random(k, n, count, 2));
    let mut c = CompactBatch::<f64>::zeroed(m, n, count);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, cfg).unwrap();
    c
}

#[test]
fn repeat_calls_hit_the_cache() {
    let _g = lock();
    let cfg = TuningConfig::default();
    let first = gemm_once(4, 4, 4, 32, &cfg);
    let s = cache::stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));
    for _ in 0..5 {
        let again = gemm_once(4, 4, 4, 32, &cfg);
        assert_eq!(first.as_scalars(), again.as_scalars());
    }
    let s = cache::stats();
    assert_eq!((s.hits, s.misses, s.entries), (5, 1, 1));

    // a different shape is a different plan
    gemm_once(5, 4, 4, 32, &cfg);
    let s = cache::stats();
    assert_eq!((s.hits, s.misses, s.entries), (5, 2, 2));
}

#[test]
fn distinct_ops_and_configs_do_not_collide() {
    let _g = lock();
    let cfg = TuningConfig::default();
    // TRSM and TRMM of the same (m, n, count) must key separately from each
    // other (op tag) even though both use TrsmDims.
    let a = CompactBatch::from_std(&StdBatch::<f64>::random_triangular(
        4,
        8,
        iatf_layout::Uplo::Lower,
        iatf_layout::Diag::NonUnit,
        3,
    ));
    let mut b = CompactBatch::from_std(&StdBatch::<f64>::random(4, 6, 8, 4));
    compact_trsm(TrsmMode::LNLN, 1.0, &a, &mut b, &cfg).unwrap();
    compact_trmm(TrsmMode::LNLN, 1.0, &a, &mut b, &cfg).unwrap();
    assert_eq!(cache::stats().misses, 2);

    // a config that plans differently fingerprints differently
    let small_l1 = TuningConfig {
        l1d_bytes: 1024,
        ..TuningConfig::default()
    };
    compact_trsm(TrsmMode::LNLN, 1.0, &a, &mut b, &small_l1).unwrap();
    let s = cache::stats();
    assert_eq!((s.misses, s.entries), (3, 3));
}

#[test]
fn bypass_policy_skips_the_cache() {
    let _g = lock();
    let cfg = TuningConfig {
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    };
    let shared = gemm_once(6, 5, 4, 16, &TuningConfig::default());
    let bypassed = gemm_once(6, 5, 4, 16, &cfg);
    // same plan either way — bypass changes lifetime, not results
    assert_eq!(shared.as_scalars(), bypassed.as_scalars());
    let s = cache::stats();
    assert_eq!((s.misses, s.bypasses, s.entries), (1, 1, 1));
    gemm_once(6, 5, 4, 16, &cfg);
    assert_eq!(cache::stats().bypasses, 2);
}

#[test]
fn capacity_is_bounded_by_eviction() {
    let _g = lock();
    let cfg = TuningConfig::default();
    let distinct = cache::capacity() + 40;
    for count in 1..=distinct {
        gemm_once(2, 2, 2, count, &cfg);
    }
    let s = cache::stats();
    assert_eq!(s.misses, distinct as u64);
    assert!(s.entries <= cache::capacity(), "{} entries", s.entries);
    assert!(s.evictions > 0);
    // evicted plans are rebuilt transparently
    let c = gemm_once(2, 2, 2, 1, &cfg);
    assert_eq!(c.rows(), 2);
}

#[test]
fn concurrent_mixed_shapes_stress() {
    let _g = lock();
    let cfg = TuningConfig::default();
    // More live shapes than one shard holds, hammered from many threads;
    // every cached result must be bit-identical to a bypass (fresh-plan)
    // call, and the bound must hold under concurrency.
    let shapes: Vec<(usize, usize, usize, usize)> = (0..24)
        .map(|i| (2 + i % 5, 2 + (i / 5) % 4, 2 + i % 3, 8 + i))
        .collect();
    let bypass = TuningConfig {
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    };
    let expected: Vec<CompactBatch<f64>> = shapes
        .iter()
        .map(|&(m, n, k, count)| gemm_once(m, n, k, count, &bypass))
        .collect();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let shapes = &shapes;
            let expected = &expected;
            let cfg = &cfg;
            scope.spawn(move || {
                for round in 0..20 {
                    let i = (t * 7 + round * 3) % shapes.len();
                    let (m, n, k, count) = shapes[i];
                    let c = gemm_once(m, n, k, count, cfg);
                    assert_eq!(c.as_scalars(), expected[i].as_scalars());
                }
            });
        }
    });
    let s = cache::stats();
    assert_eq!(s.hits + s.misses, 8 * 20);
    assert!(s.entries <= cache::capacity());
    assert!(s.hits > 0);
}
