//! Width-generic execution guarantees.
//!
//! * Every vector width the host can run (and the scalar reference) must
//!   agree with the scalar backend within FMA-reassociation tolerance,
//!   for all four dtypes across GEMM/TRSM/TRMM. The compact layout
//!   changes shape with the width (`P` = 2…16), so this also exercises
//!   packing and remainder handling at every lane count.
//! * Serial and parallel execution must stay bit-identical at every
//!   width, not just the dispatched one.
//! * A plan built for one width must reject batches laid out at another
//!   with [`LayoutError::WidthMismatch`] — through the public API.
//! * A tuning-db entry recorded at one width must never influence a plan
//!   built for another width: the width is part of the `TuneKey`.

use iatf_baselines::naive;
use iatf_core::autotune::gemm_tune_key;
use iatf_core::{
    compact_gemm, compact_trmm, compact_trsm, CompactElement, GemmPlan, PlanCachePolicy,
    TunePolicy, TuningConfig,
};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, LayoutError, StdBatch, TrsmMode};
use iatf_simd::{available_widths, c32, c64, Element, Real, VecWidth};

fn tol<E: Element>(k: usize) -> f64 {
    let base = if E::Real::BYTES == 4 { 1e-4 } else { 1e-12 };
    base * (k.max(1) as f64).sqrt()
}

fn cfg_at(width: VecWidth) -> TuningConfig {
    TuningConfig {
        width,
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    }
}

/// GEMM at `width` against the naive reference (shape with remainder
/// tiles at every lane count: 9×7×5, count not a multiple of any `P`).
fn gemm_at_width<E: CompactElement>(width: VecWidth) {
    let (m, n, k, count) = (9usize, 7usize, 5usize, 11usize);
    let a = StdBatch::<E>::random(m, k, count, 0x51);
    let b = StdBatch::<E>::random(k, n, count, 0x52);
    let c0 = StdBatch::<E>::random(m, n, count, 0x53);
    let ca = CompactBatch::from_std_at(&a, width);
    let cb = CompactBatch::from_std_at(&b, width);
    let mut cc = CompactBatch::from_std_at(&c0, width);
    compact_gemm(GemmMode::NN, E::one(), &ca, &cb, E::one(), &mut cc, &cfg_at(width)).unwrap();

    let mut want = c0.clone();
    naive::gemm_ref(GemmMode::NN, false, false, E::one(), &a, &b, E::one(), &mut want);
    let diff = want.max_abs_diff(&cc.to_std());
    assert!(
        diff <= tol::<E>(k),
        "gemm {:?} at {width}: diff {diff}",
        E::DTYPE
    );
}

fn trsm_at_width<E: CompactElement>(width: VecWidth) {
    let mode = TrsmMode::LNLN;
    let (q, n, count) = (9usize, 6usize, 11usize);
    let a = StdBatch::<E>::random_triangular(q, count, mode.uplo, mode.diag, 0x54);
    let b0 = StdBatch::<E>::random(q, n, count, 0x55);
    let ca = CompactBatch::from_std_at(&a, width);
    let mut cb = CompactBatch::from_std_at(&b0, width);
    compact_trsm(mode, E::one(), &ca, &mut cb, &cfg_at(width)).unwrap();

    let mut want = b0.clone();
    naive::trsm_ref(mode, false, E::one(), &a, &mut want);
    let diff = want.max_abs_diff(&cb.to_std());
    assert!(
        diff <= tol::<E>(q) * 10.0,
        "trsm {:?} at {width}: diff {diff}",
        E::DTYPE
    );
}

fn trmm_at_width<E: CompactElement>(width: VecWidth) {
    let mode = TrsmMode::LNLN;
    let (q, n, count) = (9usize, 6usize, 11usize);
    let a = StdBatch::<E>::random_triangular(q, count, mode.uplo, mode.diag, 0x56);
    let b0 = StdBatch::<E>::random(q, n, count, 0x57);
    let ca = CompactBatch::from_std_at(&a, width);
    let mut cb = CompactBatch::from_std_at(&b0, width);
    compact_trmm(mode, E::one(), &ca, &mut cb, &cfg_at(width)).unwrap();

    let mut want = b0.clone();
    naive::trmm_ref(mode, false, E::one(), &a, &mut want);
    let diff = want.max_abs_diff(&cb.to_std());
    assert!(
        diff <= tol::<E>(q) * 10.0,
        "trmm {:?} at {width}: diff {diff}",
        E::DTYPE
    );
}

#[test]
fn every_available_width_agrees_with_the_reference() {
    for &width in available_widths() {
        gemm_at_width::<f32>(width);
        gemm_at_width::<f64>(width);
        gemm_at_width::<c32>(width);
        gemm_at_width::<c64>(width);
        trsm_at_width::<f32>(width);
        trsm_at_width::<f64>(width);
        trsm_at_width::<c32>(width);
        trsm_at_width::<c64>(width);
        trmm_at_width::<f32>(width);
        trmm_at_width::<f64>(width);
        trmm_at_width::<c32>(width);
        trmm_at_width::<c64>(width);
    }
}

/// The forced-scalar backend and each SIMD width see the same packed
/// operand bytes per logical element, so a direct cross-width comparison
/// (not just reference agreement) pins down lane-shuffle bugs that a
/// loose tolerance against the reference could mask.
#[test]
fn wider_backends_match_scalar_within_fma_tolerance() {
    for &width in available_widths() {
        if width == VecWidth::Scalar {
            continue;
        }
        let (m, n, k, count) = (8usize, 8usize, 8usize, 16usize);
        let a = StdBatch::<f64>::random(m, k, count, 0x60);
        let b = StdBatch::<f64>::random(k, n, count, 0x61);
        let run = |w: VecWidth| {
            let ca = CompactBatch::from_std_at(&a, w);
            let cb = CompactBatch::from_std_at(&b, w);
            let mut cc = CompactBatch::<f64>::zeroed_at(m, n, count, w);
            compact_gemm(GemmMode::NN, 1.0, &ca, &cb, 0.0, &mut cc, &cfg_at(w)).unwrap();
            cc.to_std()
        };
        let scalar = run(VecWidth::Scalar);
        let wide = run(width);
        let diff = scalar.max_abs_diff(&wide);
        // One rounding step per FMA pairing difference, k terms deep.
        assert!(diff <= 1e-13 * (k as f64), "{width}: diff {diff}");
    }
}

#[test]
fn width_mismatched_batches_are_rejected_end_to_end() {
    let (m, n, k, count) = (4usize, 4usize, 4usize, 8usize);
    let cfg = cfg_at(VecWidth::W128);
    let a = CompactBatch::from_std_at(&StdBatch::<f32>::random(m, k, count, 1), VecWidth::W128);
    let b = CompactBatch::from_std_at(&StdBatch::<f32>::random(k, n, count, 2), VecWidth::W128);
    // C laid out at the scalar width, plan built for W128.
    let mut c = CompactBatch::<f32>::zeroed_at(m, n, count, VecWidth::Scalar);
    let err = compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap_err();
    assert_eq!(
        err,
        LayoutError::WidthMismatch {
            operand: "C",
            expected: VecWidth::W128,
            got: VecWidth::Scalar,
        }
    );
    // Same shapes at the right width succeed.
    let mut c = CompactBatch::<f32>::zeroed_at(m, n, count, VecWidth::W128);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
}

/// Acceptance criterion: a tuning-db entry recorded at `P = 4` (f32 at
/// 128-bit) must never supply a pack override to a `P = 8` (256-bit)
/// plan. The widths key separately, so the W256 lookup misses and the
/// plan falls back to pure heuristics.
#[test]
fn db_entry_from_one_width_never_serves_another() {
    use iatf_tune::{TunedEntry, TuningDb};
    let db = TuningDb::global();
    db.set_path(None);
    db.clear();

    let dims = GemmDims::new(8, 8, 8);
    const COUNT: usize = 16;
    // Record a winner at W128 that provably changes plan structure.
    db.record(
        gemm_tune_key::<f32>(dims, GemmMode::NN, false, false, COUNT, VecWidth::W128),
        TunedEntry {
            pack: 1, // Always
            group_packs: 2,
            l1_fraction: 0.25,
            parallel: false,
            tuned_gflops: 1.0,
            heuristic_gflops: 1.0,
            noise: 0.0,
            provenance: Default::default(),
        },
    );
    let plan_at = |width: VecWidth, tune: TunePolicy| {
        let cfg = TuningConfig {
            width,
            tune,
            ..cfg_at(width)
        };
        GemmPlan::<f32>::new(dims, GemmMode::NN, false, false, COUNT, &cfg).unwrap()
    };
    // At W128 the entry applies: the tuned plan differs from heuristic.
    let h128 = plan_at(VecWidth::W128, TunePolicy::Heuristic);
    let t128 = plan_at(VecWidth::W128, TunePolicy::Cached);
    assert!(
        h128.a_plan != t128.a_plan || h128.b_plan != t128.b_plan
            || h128.group_packs != t128.group_packs,
        "forced W128 entry failed to change the W128 plan"
    );
    // At W256 the same db must be invisible: tuned == heuristic.
    let h256 = plan_at(VecWidth::W256, TunePolicy::Heuristic);
    let t256 = plan_at(VecWidth::W256, TunePolicy::Cached);
    assert_eq!(h256.a_plan, t256.a_plan);
    assert_eq!(h256.b_plan, t256.b_plan);
    assert_eq!(h256.group_packs, t256.group_packs);
    db.clear();
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_matches_serial_bitwise_at_every_width() {
    for &width in available_widths() {
        let (m, n, k, count) = (9usize, 7usize, 5usize, 33usize);
        let a = CompactBatch::from_std_at(&StdBatch::<f32>::random(m, k, count, 3), width);
        let b = CompactBatch::from_std_at(&StdBatch::<f32>::random(k, n, count, 4), width);
        let plan = GemmPlan::<f32>::new(
            GemmDims::new(m, n, k),
            GemmMode::NN,
            false,
            false,
            count,
            &cfg_at(width),
        )
        .unwrap();
        let mut c_seq = CompactBatch::<f32>::zeroed_at(m, n, count, width);
        plan.execute(1.5, &a, &b, 0.0, &mut c_seq).unwrap();
        let mut c_par = CompactBatch::<f32>::zeroed_at(m, n, count, width);
        plan.execute_parallel(1.5, &a, &b, 0.0, &mut c_par).unwrap();
        assert_eq!(c_seq.as_scalars(), c_par.as_scalars(), "{width}");
    }
}
