//! Multicore execution (`parallel` feature): results must be identical to
//! the sequential path — packs are independent, so the parallel schedule
//! cannot change any rounding.

#![cfg(feature = "parallel")]

use iatf_core::{GemmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmDims, TrsmMode};
use iatf_simd::c64;

#[test]
fn parallel_gemm_matches_sequential_bitwise() {
    let cfg = TuningConfig::default();
    for (m, n, k, count) in [(4usize, 4usize, 4usize, 64usize), (9, 7, 5, 33), (17, 3, 8, 10)] {
        let a = CompactBatch::from_std(&StdBatch::<f32>::random(m, k, count, 1));
        let b = CompactBatch::from_std(&StdBatch::<f32>::random(k, n, count, 2));
        let plan =
            GemmPlan::<f32>::new(GemmDims::new(m, n, k), GemmMode::NN, false, false, count, &cfg)
                .unwrap();
        let mut c_seq = CompactBatch::<f32>::zeroed(m, n, count);
        plan.execute(1.5, &a, &b, 0.0, &mut c_seq).unwrap();
        let mut c_par = CompactBatch::<f32>::zeroed(m, n, count);
        plan.execute_parallel(1.5, &a, &b, 0.0, &mut c_par).unwrap();
        assert_eq!(c_seq.as_scalars(), c_par.as_scalars(), "{m}x{n}x{k}");
    }
}

#[test]
fn parallel_trsm_matches_sequential_bitwise() {
    let cfg = TuningConfig::default();
    for mode in [TrsmMode::LNLN, TrsmMode::LNUN, TrsmMode::LTUN] {
        let (m, n, count) = (9usize, 6usize, 41usize);
        let a_std =
            StdBatch::<f64>::random_triangular(m, count, mode.uplo, mode.diag, 7);
        let a = CompactBatch::from_std(&a_std);
        let b0 = CompactBatch::from_std(&StdBatch::<f64>::random(m, n, count, 8));
        let plan = TrsmPlan::<f64>::new(TrsmDims::new(m, n), mode, false, count, &cfg).unwrap();
        let mut b_seq = b0.clone();
        plan.execute(2.0, &a, &mut b_seq).unwrap();
        let mut b_par = b0.clone();
        plan.execute_parallel(2.0, &a, &mut b_par).unwrap();
        assert_eq!(b_seq.as_scalars(), b_par.as_scalars(), "{mode}");
    }
}

#[test]
fn parallel_complex_pipeline() {
    let cfg = TuningConfig::default();
    let count = 23usize;
    let a = CompactBatch::from_std(&StdBatch::<c64>::random(6, 6, count, 11));
    let b = CompactBatch::from_std(&StdBatch::<c64>::random(6, 6, count, 12));
    let plan = GemmPlan::<c64>::new(
        GemmDims::square(6),
        GemmMode::TT,
        false,
        false,
        count,
        &cfg,
    )
    .unwrap();
    let alpha = c64::new(0.5, -1.0);
    let mut c_seq = CompactBatch::<c64>::zeroed(6, 6, count);
    plan.execute(alpha, &a, &b, c64::zero(), &mut c_seq).unwrap();
    let mut c_par = CompactBatch::<c64>::zeroed(6, 6, count);
    plan.execute_parallel(alpha, &a, &b, c64::zero(), &mut c_par)
        .unwrap();
    assert_eq!(c_seq.as_scalars(), c_par.as_scalars());
}
