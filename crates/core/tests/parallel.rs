//! Multicore execution (`parallel` feature): results must be identical to
//! the sequential path — packs are independent, so the parallel schedule
//! cannot change any rounding.

#![cfg(feature = "parallel")]

use iatf_core::{BatchPolicy, CompactElement, GemmPlan, TrmmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, Side, StdBatch, TrsmDims, TrsmMode};
use iatf_simd::{c32, c64};

#[test]
fn parallel_gemm_matches_sequential_bitwise() {
    let cfg = TuningConfig::default();
    for (m, n, k, count) in [(4usize, 4usize, 4usize, 64usize), (9, 7, 5, 33), (17, 3, 8, 10)] {
        let a = CompactBatch::from_std(&StdBatch::<f32>::random(m, k, count, 1));
        let b = CompactBatch::from_std(&StdBatch::<f32>::random(k, n, count, 2));
        let plan =
            GemmPlan::<f32>::new(GemmDims::new(m, n, k), GemmMode::NN, false, false, count, &cfg)
                .unwrap();
        let mut c_seq = CompactBatch::<f32>::zeroed(m, n, count);
        plan.execute(1.5, &a, &b, 0.0, &mut c_seq).unwrap();
        let mut c_par = CompactBatch::<f32>::zeroed(m, n, count);
        plan.execute_parallel(1.5, &a, &b, 0.0, &mut c_par).unwrap();
        assert_eq!(c_seq.as_scalars(), c_par.as_scalars(), "{m}x{n}x{k}");
    }
}

#[test]
fn parallel_trsm_matches_sequential_bitwise() {
    let cfg = TuningConfig::default();
    for mode in [TrsmMode::LNLN, TrsmMode::LNUN, TrsmMode::LTUN] {
        let (m, n, count) = (9usize, 6usize, 41usize);
        let a_std =
            StdBatch::<f64>::random_triangular(m, count, mode.uplo, mode.diag, 7);
        let a = CompactBatch::from_std(&a_std);
        let b0 = CompactBatch::from_std(&StdBatch::<f64>::random(m, n, count, 8));
        let plan = TrsmPlan::<f64>::new(TrsmDims::new(m, n), mode, false, count, &cfg).unwrap();
        let mut b_seq = b0.clone();
        plan.execute(2.0, &a, &mut b_seq).unwrap();
        let mut b_par = b0.clone();
        plan.execute_parallel(2.0, &a, &mut b_par).unwrap();
        assert_eq!(b_seq.as_scalars(), b_par.as_scalars(), "{mode}");
    }
}

#[test]
fn parallel_complex_pipeline() {
    let cfg = TuningConfig::default();
    let count = 23usize;
    let a = CompactBatch::from_std(&StdBatch::<c64>::random(6, 6, count, 11));
    let b = CompactBatch::from_std(&StdBatch::<c64>::random(6, 6, count, 12));
    let plan = GemmPlan::<c64>::new(
        GemmDims::square(6),
        GemmMode::TT,
        false,
        false,
        count,
        &cfg,
    )
    .unwrap();
    let alpha = c64::new(0.5, -1.0);
    let mut c_seq = CompactBatch::<c64>::zeroed(6, 6, count);
    plan.execute(alpha, &a, &b, c64::zero(), &mut c_seq).unwrap();
    let mut c_par = CompactBatch::<c64>::zeroed(6, 6, count);
    plan.execute_parallel(alpha, &a, &b, c64::zero(), &mut c_par)
        .unwrap();
    assert_eq!(c_seq.as_scalars(), c_par.as_scalars());
}

/// Serial vs parallel GEMM over every transpose mode for one element type.
fn gemm_modes_bitwise<E: CompactElement>(cfg: &TuningConfig, seed: u64) {
    for mode in GemmMode::ALL {
        for (m, n, k, count) in [(4usize, 4usize, 4usize, 64usize), (9, 7, 5, 33)] {
            let dims = GemmDims::new(m, n, k);
            let (ar, ac) = dims.a_shape(mode);
            let (br, bc) = dims.b_shape(mode);
            let a = CompactBatch::from_std(&StdBatch::<E>::random(ar, ac, count, seed));
            let b = CompactBatch::from_std(&StdBatch::<E>::random(br, bc, count, seed + 1));
            let plan = GemmPlan::<E>::new(dims, mode, false, false, count, cfg).unwrap();
            let mut c_seq = CompactBatch::<E>::zeroed(m, n, count);
            plan.execute(E::one(), &a, &b, E::zero(), &mut c_seq).unwrap();
            let mut c_par = CompactBatch::<E>::zeroed(m, n, count);
            plan.execute_parallel(E::one(), &a, &b, E::zero(), &mut c_par)
                .unwrap();
            assert_eq!(
                c_seq.as_scalars(),
                c_par.as_scalars(),
                "gemm {mode} {m}x{n}x{k} count={count}"
            );
        }
    }
}

#[test]
fn parallel_gemm_all_modes_all_dtypes_bitwise() {
    let cfg = TuningConfig::default();
    gemm_modes_bitwise::<f32>(&cfg, 100);
    gemm_modes_bitwise::<f64>(&cfg, 200);
    gemm_modes_bitwise::<c32>(&cfg, 300);
    gemm_modes_bitwise::<c64>(&cfg, 400);
}

#[test]
fn parallel_gemm_uneven_superblocks_bitwise() {
    // Fixed(3) over 5 packs: super-blocks of 3 and 2 — the last parallel
    // task must handle the short chunk exactly like the serial tail.
    let cfg = TuningConfig {
        batch: BatchPolicy::Fixed(3),
        ..TuningConfig::default()
    };
    let count = 5 * <f64 as iatf_simd::Element>::P;
    let a = CompactBatch::from_std(&StdBatch::<f64>::random(6, 4, count, 5));
    let b = CompactBatch::from_std(&StdBatch::<f64>::random(4, 3, count, 6));
    let plan =
        GemmPlan::<f64>::new(GemmDims::new(6, 3, 4), GemmMode::NN, false, false, count, &cfg)
            .unwrap();
    let mut c_seq = CompactBatch::<f64>::zeroed(6, 3, count);
    plan.execute(1.0, &a, &b, 0.0, &mut c_seq).unwrap();
    let mut c_par = CompactBatch::<f64>::zeroed(6, 3, count);
    plan.execute_parallel(1.0, &a, &b, 0.0, &mut c_par).unwrap();
    assert_eq!(c_seq.as_scalars(), c_par.as_scalars());
}

/// Serial vs parallel TRSM over all 16 side/trans/uplo/diag modes.
fn trsm_modes_bitwise<E: CompactElement>(cfg: &TuningConfig, seed: u64) {
    for mode in TrsmMode::all() {
        let (m, n, count) = (9usize, 6usize, 21usize);
        let order = if mode.side == Side::Right { n } else { m };
        let a_std = StdBatch::<E>::random_triangular(order, count, mode.uplo, mode.diag, seed);
        let a = CompactBatch::from_std(&a_std);
        let b0 = CompactBatch::from_std(&StdBatch::<E>::random(m, n, count, seed + 1));
        let plan = TrsmPlan::<E>::new(TrsmDims::new(m, n), mode, false, count, cfg).unwrap();
        let mut b_seq = b0.clone();
        plan.execute(E::one(), &a, &mut b_seq).unwrap();
        let mut b_par = b0.clone();
        plan.execute_parallel(E::one(), &a, &mut b_par).unwrap();
        assert_eq!(b_seq.as_scalars(), b_par.as_scalars(), "trsm {mode}");
    }
}

#[test]
fn parallel_trsm_all_modes_all_dtypes_bitwise() {
    let cfg = TuningConfig::default();
    trsm_modes_bitwise::<f32>(&cfg, 500);
    trsm_modes_bitwise::<f64>(&cfg, 600);
    trsm_modes_bitwise::<c32>(&cfg, 700);
    trsm_modes_bitwise::<c64>(&cfg, 800);
}

/// Serial vs parallel TRMM over all 16 modes.
fn trmm_modes_bitwise<E: CompactElement>(cfg: &TuningConfig, seed: u64) {
    for mode in TrsmMode::all() {
        let (m, n, count) = (9usize, 6usize, 21usize);
        let order = if mode.side == Side::Right { n } else { m };
        let a_std = StdBatch::<E>::random_triangular(order, count, mode.uplo, mode.diag, seed);
        let a = CompactBatch::from_std(&a_std);
        let b0 = CompactBatch::from_std(&StdBatch::<E>::random(m, n, count, seed + 1));
        let plan = TrmmPlan::<E>::new(TrsmDims::new(m, n), mode, false, count, cfg).unwrap();
        let mut b_seq = b0.clone();
        plan.execute(E::one(), &a, &mut b_seq).unwrap();
        let mut b_par = b0.clone();
        plan.execute_parallel(E::one(), &a, &mut b_par).unwrap();
        assert_eq!(b_seq.as_scalars(), b_par.as_scalars(), "trmm {mode}");
    }
}

#[test]
fn parallel_trmm_all_modes_all_dtypes_bitwise() {
    let cfg = TuningConfig::default();
    trmm_modes_bitwise::<f32>(&cfg, 900);
    trmm_modes_bitwise::<f64>(&cfg, 1000);
    trmm_modes_bitwise::<c32>(&cfg, 1100);
    trmm_modes_bitwise::<c64>(&cfg, 1200);
}
