//! Integration test for the observability layer: the plan explainer's
//! static predictions must agree exactly with the runtime counters after
//! one `execute()`. Compiled only with `--features obs` (without it the
//! counters are no-ops and there is nothing to observe).
//!
//! Everything lives in ONE test function: the metrics registry is global
//! and the harness runs test functions concurrently.

#![cfg(feature = "obs")]

use iatf_core::obs;
use iatf_core::{GemmPlan, TrmmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, TrsmDims, TrsmMode};

fn dispatch_total(snap: &obs::MetricsSnapshot, op: obs::Op) -> u64 {
    snap.dispatch
        .iter()
        .filter(|d| d.op == op)
        .map(|d| d.count)
        .sum()
}

#[test]
fn explainer_predictions_match_observed_counters() {
    let cfg = TuningConfig::default();

    // --- GEMM: 7×6×5 f64, batch of 5 (edge tiles in both dimensions) ---
    obs::reset();
    let plan =
        GemmPlan::<f64>::new(GemmDims::new(7, 6, 5), GemmMode::NN, false, false, 5, &cfg)
            .unwrap();
    let ex = plan.explain();
    let a = CompactBatch::<f64>::zeroed(7, 5, 5);
    let b = CompactBatch::<f64>::zeroed(5, 6, 5);
    let mut c = CompactBatch::<f64>::zeroed(7, 6, 5);
    plan.execute(1.0, &a, &b, 1.0, &mut c).unwrap();

    let snap = obs::snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.plan_builds, [1, 0, 0]);
    assert_eq!(snap.executes, [1, 0, 0]);
    assert_eq!(dispatch_total(&snap, obs::Op::Gemm), ex.predicted_dispatches);
    // per-tile-class: explainer multiplicity × packs == observed slot count
    for t in &ex.tile_classes {
        assert_eq!(
            obs::dispatch_count(obs::Op::Gemm, t.mr, t.nr),
            (t.tiles * ex.packs) as u64,
            "tile class {}x{}",
            t.mr,
            t.nr
        );
    }
    assert_eq!(
        snap.packed_bytes_a + snap.packed_bytes_b,
        ex.predicted_packed_bytes
    );
    // 7×6 over a 4×4 main kernel: main tile hits exist, edges exist
    assert!(snap.main_tile_hits > 0);
    assert!(snap.edge_tile_hits > 0);
    assert!(snap.edge_rate() > 0.0 && snap.edge_rate() < 1.0);
    // pack + compute phases were timed
    let phase_calls = |p: obs::Phase| {
        snap.phases
            .iter()
            .find(|s| s.phase == p)
            .map_or(0, |s| s.calls)
    };
    assert_eq!(phase_calls(obs::Phase::PlanBuild), 1);
    assert_eq!(phase_calls(obs::Phase::PackA), ex.packs as u64);
    assert_eq!(phase_calls(obs::Phase::PackB), ex.packs as u64);
    assert_eq!(phase_calls(obs::Phase::Compute), ex.packs as u64);

    // the command-queue rendering counts its commands
    let n_cmds = plan.commands().len();
    assert_eq!(obs::snapshot().plan_commands, n_cmds as u64);

    // --- TRSM: 9×4 f64 LNUN (reversal forces structural packing) ---
    obs::reset();
    let plan = TrsmPlan::<f64>::new(TrsmDims::new(9, 4), TrsmMode::LNUN, false, 3, &cfg).unwrap();
    let ex = plan.explain();
    let a = CompactBatch::<f64>::zeroed(9, 9, 3);
    let mut bb = CompactBatch::<f64>::zeroed(9, 4, 3);
    plan.execute(1.0, &a, &mut bb).unwrap();

    let snap = obs::snapshot();
    assert_eq!(snap.plan_builds, [0, 1, 0]);
    assert_eq!(snap.executes, [0, 1, 0]);
    assert_eq!(dispatch_total(&snap, obs::Op::Trsm), ex.predicted_dispatches);
    for t in &ex.tile_classes {
        assert_eq!(
            obs::dispatch_count(obs::Op::Trsm, t.mr, t.nr),
            (t.tiles * ex.packs) as u64
        );
    }
    assert_eq!(ex.pack_b, "packed");
    assert_eq!(
        snap.packed_bytes_a + snap.packed_bytes_b,
        ex.predicted_packed_bytes
    );
    // structural packing stages panels (Scale) and scatters them back
    assert!(phase_calls_of(&snap, obs::Phase::Scale) > 0);
    assert_eq!(
        phase_calls_of(&snap, obs::Phase::Scale),
        phase_calls_of(&snap, obs::Phase::Unpack)
    );
    // real TRSM has install-time kernel stats
    assert!(!ex.kernels.is_empty());
    for ks in &ex.kernels {
        assert!(ks.insts > 0);
        assert!(ks.cycles_after <= ks.cycles_before);
        assert!(ks.port_bound <= ks.cycles_after);
    }

    // --- TRMM: 5×4 c32 (complex path, canonical mode streams B) ---
    obs::reset();
    let plan = TrmmPlan::<iatf_simd::c32>::new(TrsmDims::new(5, 4), TrsmMode::LNLN, false, 4, &cfg)
        .unwrap();
    let ex = plan.explain();
    let a = CompactBatch::<iatf_simd::c32>::zeroed(5, 5, 4);
    let mut bb = CompactBatch::<iatf_simd::c32>::zeroed(5, 4, 4);
    plan.execute(iatf_simd::Element::from_f64s(1.0, 0.0), &a, &mut bb)
        .unwrap();

    let snap = obs::snapshot();
    assert_eq!(snap.plan_builds, [0, 0, 1]);
    assert_eq!(snap.executes, [0, 0, 1]);
    assert_eq!(dispatch_total(&snap, obs::Op::Trmm), ex.predicted_dispatches);
    assert_eq!(ex.pack_b, "direct");
    assert_eq!(snap.packed_bytes_b, 0);
    assert_eq!(snap.packed_bytes_a, ex.predicted_packed_bytes);
    // no complex TRMM generator: explainer reports no kernel stats
    assert!(ex.kernels.is_empty());
}

fn phase_calls_of(snap: &obs::MetricsSnapshot, p: obs::Phase) -> u64 {
    snap.phases
        .iter()
        .find(|s| s.phase == p)
        .map_or(0, |s| s.calls)
}
