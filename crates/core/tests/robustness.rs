//! Failure injection and robustness: non-finite inputs, degenerate shapes,
//! large groups, and plan/operand lifecycle misuse.

use iatf_baselines::naive;
use iatf_core::{compact_gemm, compact_trsm, GemmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmMode};

#[test]
fn nan_stays_confined_to_its_matrix() {
    // A NaN in matrix v must poison only matrix v's outputs: the compact
    // layout interleaves lanes, so this checks lane isolation end to end.
    let cfg = TuningConfig::default();
    let count = 9usize;
    let n = 6usize;
    let mut a_std = StdBatch::<f32>::random(n, n, count, 1);
    a_std.set(4, 2, 3, f32::NAN);
    let b_std = StdBatch::<f32>::random(n, n, count, 2);
    let a = CompactBatch::from_std(&a_std);
    let b = CompactBatch::from_std(&b_std);
    let mut c = CompactBatch::<f32>::zeroed(n, n, count);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    for v in 0..count {
        for i in 0..n {
            for j in 0..n {
                let x = c.get(v, i, j);
                if v == 4 && i == 2 {
                    // row 2 of matrix 4 consumed the NaN
                    assert!(x.is_nan(), "expected NaN at ({v},{i},{j})");
                } else {
                    assert!(x.is_finite(), "leaked non-finite to ({v},{i},{j})");
                }
            }
        }
    }
}

#[test]
fn infinity_propagates_like_the_oracle() {
    let cfg = TuningConfig::default();
    let mut a_std = StdBatch::<f64>::random(4, 4, 3, 5);
    a_std.set(1, 0, 0, f64::INFINITY);
    let b_std = StdBatch::<f64>::random(4, 4, 3, 6);
    let mut want = StdBatch::<f64>::zeroed(4, 4, 3);
    naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a_std, &b_std, 0.0, &mut want);
    let a = CompactBatch::from_std(&a_std);
    let b = CompactBatch::from_std(&b_std);
    let mut c = CompactBatch::<f64>::zeroed(4, 4, 3);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    let got = c.to_std();
    for v in 0..3 {
        for i in 0..4 {
            for j in 0..4 {
                let (w, g) = (want.get(v, i, j), got.get(v, i, j));
                assert_eq!(w.is_finite(), g.is_finite(), "({v},{i},{j})");
                if w.is_finite() {
                    assert!((w - g).abs() < 1e-12);
                }
            }
        }
    }
}

#[test]
fn trsm_zero_rhs_yields_zero_solution() {
    let cfg = TuningConfig::default();
    let a = CompactBatch::from_std(&StdBatch::<f64>::random_triangular(
        7,
        5,
        iatf_layout::Uplo::Lower,
        iatf_layout::Diag::NonUnit,
        3,
    ));
    let mut b = CompactBatch::<f64>::zeroed(7, 4, 5);
    compact_trsm(TrsmMode::LNLN, 1.0, &a, &mut b, &cfg).unwrap();
    assert!(b.as_scalars().iter().all(|&x| x == 0.0));
}

#[test]
fn alpha_zero_trsm_zeroes_b() {
    let cfg = TuningConfig::default();
    let a = CompactBatch::from_std(&StdBatch::<f64>::random_triangular(
        4,
        3,
        iatf_layout::Uplo::Lower,
        iatf_layout::Diag::NonUnit,
        3,
    ));
    let mut b = CompactBatch::from_std(&StdBatch::<f64>::random(4, 4, 3, 9));
    compact_trsm(TrsmMode::LNLN, 0.0, &a, &mut b, &cfg).unwrap();
    for v in 0..3 {
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(b.get(v, i, j), 0.0);
            }
        }
    }
}

#[test]
fn large_group_identity_check() {
    // batch 16384 (the paper's group size) against an identity-B oracle —
    // O(1) verification per element, so this is fast even in debug builds.
    let cfg = TuningConfig::default();
    let count = 16384usize;
    let n = 5usize;
    let a_std = StdBatch::<f32>::random(n, n, count, 31);
    let eye = StdBatch::<f32>::from_fn(n, n, count, |_, i, j| if i == j { 1.0 } else { 0.0 });
    let a = CompactBatch::from_std(&a_std);
    let b = CompactBatch::from_std(&eye);
    let mut c = CompactBatch::<f32>::zeroed(n, n, count);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    for v in (0..count).step_by(1013) {
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c.get(v, i, j), a_std.get(v, i, j), "({v},{i},{j})");
            }
        }
    }
    // padding case too
    assert_eq!(c.get(count - 1, n - 1, n - 1), a_std.get(count - 1, n - 1, n - 1));
}

#[test]
fn plan_survives_operand_replacement() {
    // a plan holds no operand state: dropping and rebuilding batches
    // between executions must be safe
    let cfg = TuningConfig::default();
    let plan =
        GemmPlan::<f64>::new(GemmDims::square(4), GemmMode::NN, false, false, 6, &cfg).unwrap();
    for round in 0..3 {
        let a = CompactBatch::from_std(&StdBatch::<f64>::random(4, 4, 6, round));
        let b = CompactBatch::from_std(&StdBatch::<f64>::random(4, 4, 6, round + 10));
        let mut c = CompactBatch::<f64>::zeroed(4, 4, 6);
        plan.execute(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert!(c.get(5, 3, 3).is_finite());
    }
}

#[test]
fn k_one_and_k_zero_edge() {
    // K = 1 exercises the SUB-only arm everywhere; m=n=1 exercises the
    // smallest kernels with padding.
    let cfg = TuningConfig::default();
    for count in [1usize, 2, 3, 5] {
        let a = CompactBatch::from_std(&StdBatch::<f64>::random(1, 1, count, 1));
        let b = CompactBatch::from_std(&StdBatch::<f64>::random(1, 1, count, 2));
        let mut c = CompactBatch::<f64>::zeroed(1, 1, count);
        compact_gemm(GemmMode::NN, 2.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        for v in 0..count {
            let want = 2.0 * a.get(v, 0, 0) * b.get(v, 0, 0);
            assert!((c.get(v, 0, 0) - want).abs() < 1e-14);
        }
    }
}

#[test]
fn denormal_inputs_do_not_panic() {
    let cfg = TuningConfig::default();
    let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
    let a_std = StdBatch::<f64>::from_fn(3, 3, 4, |_, _, _| tiny);
    let b_std = StdBatch::<f64>::from_fn(3, 3, 4, |_, _, _| tiny);
    let a = CompactBatch::from_std(&a_std);
    let b = CompactBatch::from_std(&b_std);
    let mut c = CompactBatch::<f64>::zeroed(3, 3, 4);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    // products underflow to zero — fine, just must not trap
    assert!(c.as_scalars().iter().all(|x| x.is_finite()));
}
