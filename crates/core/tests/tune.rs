//! Behavioural guarantees of the empirical autotuner.
//!
//! * Tuned plans must be **bit-identical** to heuristic plans: tuning may
//!   change *how* the work is scheduled (packing, super-block size), never
//!   *what* is computed. Verified across all four dtypes × GEMM/TRSM/TRMM
//!   with a forced tuned entry that provably changes the plan structure.
//! * Recording a new winner bumps the db generation, which changes the
//!   plan-cache fingerprint of tuning-aware configs — previously cached
//!   plans become unreachable (stale plans age out by eviction).
//! * A corrupt db degrades to pure heuristics at the plan level.
//! * First-touch tuning sweeps once, records, and still returns
//!   bit-identical results through the public API.
//!
//! The tuning db and plan cache are process-global, so every test
//! serializes on one mutex, disables db persistence, and starts clean.

use iatf_core::autotune::{gemm_tune_key, trmm_tune_key, trsm_tune_key};
use iatf_core::plan::cache;
use iatf_core::{
    compact_gemm, compact_trmm, compact_trsm, CompactElement, GemmPlan, PlanCachePolicy,
    TrmmPlan, TrsmPlan, TunePolicy, TuningConfig,
};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmDims, TrsmMode};
use iatf_simd::{c32, c64, dispatched_width, Real};
use iatf_tune::{TunedEntry, TuningDb};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests and resets the global tuning db (persistence off, so
/// nothing is written to the user's cache directory) and the plan cache.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let db = TuningDb::global();
    db.set_path(None);
    db.clear();
    cache::clear();
    guard
}

/// A tuned entry that forces structurally different plans than the default
/// heuristics: packing everywhere and a tiny super-block.
fn forced_entry() -> TunedEntry {
    TunedEntry {
        pack: 1, // Always
        group_packs: 2,
        l1_fraction: 0.25,
        parallel: false,
        tuned_gflops: 1.0,
        heuristic_gflops: 1.0,
        noise: 0.0,
        provenance: Default::default(),
    }
}

/// Bit pattern of every scalar in the batch (`to_f64` widens losslessly,
/// so equal bit vectors mean bitwise-equal results, signed zeros included).
fn bits<E: CompactElement>(c: &CompactBatch<E>) -> Vec<u64> {
    assert_eq!(c.padding_lanes(), 0, "pick counts that fill every lane");
    c.as_scalars()
        .iter()
        .map(|x| x.to_f64().to_bits())
        .collect()
}

fn heuristic_cfg() -> TuningConfig {
    TuningConfig {
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    }
}

fn cached_cfg() -> TuningConfig {
    TuningConfig {
        tune: TunePolicy::Cached,
        ..heuristic_cfg()
    }
}

/// Group count divisible by every dtype's pack width (f32 P=4, rest ≤ 4).
const COUNT: usize = 16;

fn gemm_bitexact<E: CompactElement>(m: usize, n: usize, k: usize) {
    let dims = GemmDims::new(m, n, k);
    let a = CompactBatch::<E>::from_std(&StdBatch::random(m, k, COUNT, 1));
    let b = CompactBatch::<E>::from_std(&StdBatch::random(k, n, COUNT, 2));
    let run = |cfg: &TuningConfig| {
        let mut c = CompactBatch::<E>::zeroed(m, n, COUNT);
        compact_gemm(GemmMode::NN, E::one(), &a, &b, E::zero(), &mut c, cfg).unwrap();
        c
    };
    let c_heuristic = run(&heuristic_cfg());

    TuningDb::global().record(
        gemm_tune_key::<E>(dims, GemmMode::NN, false, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    let cfg = cached_cfg();
    // The forced entry must actually change the plan, or this test checks
    // nothing.
    let ph = GemmPlan::<E>::new(dims, GemmMode::NN, false, false, COUNT, &heuristic_cfg()).unwrap();
    let pt = GemmPlan::<E>::new(dims, GemmMode::NN, false, false, COUNT, &cfg).unwrap();
    assert!(
        ph.a_plan != pt.a_plan || ph.b_plan != pt.b_plan || ph.group_packs != pt.group_packs,
        "forced entry produced an identical plan for {}",
        std::any::type_name::<E>()
    );
    let c_tuned = run(&cfg);
    assert_eq!(
        bits(&c_heuristic),
        bits(&c_tuned),
        "tuned GEMM diverged for {}",
        std::any::type_name::<E>()
    );
}

fn trsm_bitexact<E: CompactElement>(q: usize, n: usize) {
    let mode = TrsmMode::all()[0]; // Left / Lower / NoTrans / NonUnit
    let dims = TrsmDims::new(q, n);
    let a = CompactBatch::<E>::from_std(&StdBatch::random_triangular(
        q, COUNT, mode.uplo, mode.diag, 3,
    ));
    let b0 = CompactBatch::<E>::from_std(&StdBatch::random(q, n, COUNT, 4));
    let run = |cfg: &TuningConfig| {
        let mut b = b0.clone();
        compact_trsm(mode, E::one(), &a, &mut b, cfg).unwrap();
        b
    };
    let x_heuristic = run(&heuristic_cfg());

    TuningDb::global().record(trsm_tune_key::<E>(dims, mode, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    let cfg = cached_cfg();
    let ph = TrsmPlan::<E>::new(dims, mode, false, COUNT, &heuristic_cfg()).unwrap();
    let pt = TrsmPlan::<E>::new(dims, mode, false, COUNT, &cfg).unwrap();
    assert!(
        ph.pack_b_structural != pt.pack_b_structural || ph.group_packs != pt.group_packs,
        "forced entry produced an identical TRSM plan for {}",
        std::any::type_name::<E>()
    );
    let x_tuned = run(&cfg);
    assert_eq!(
        bits(&x_heuristic),
        bits(&x_tuned),
        "tuned TRSM diverged for {}",
        std::any::type_name::<E>()
    );
}

fn trmm_bitexact<E: CompactElement>(q: usize, n: usize) {
    let mode = TrsmMode::all()[0];
    let dims = TrsmDims::new(q, n);
    let a = CompactBatch::<E>::from_std(&StdBatch::random_triangular(
        q, COUNT, mode.uplo, mode.diag, 5,
    ));
    let b0 = CompactBatch::<E>::from_std(&StdBatch::random(q, n, COUNT, 6));
    let run = |cfg: &TuningConfig| {
        let mut b = b0.clone();
        compact_trmm(mode, E::one(), &a, &mut b, cfg).unwrap();
        b
    };
    let y_heuristic = run(&heuristic_cfg());

    TuningDb::global().record(trmm_tune_key::<E>(dims, mode, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    let cfg = cached_cfg();
    let ph = TrmmPlan::<E>::new(dims, mode, false, COUNT, &heuristic_cfg()).unwrap();
    let pt = TrmmPlan::<E>::new(dims, mode, false, COUNT, &cfg).unwrap();
    assert!(
        ph.pack_b_structural != pt.pack_b_structural || ph.group_packs != pt.group_packs,
        "forced entry produced an identical TRMM plan for {}",
        std::any::type_name::<E>()
    );
    let y_tuned = run(&cfg);
    assert_eq!(
        bits(&y_heuristic),
        bits(&y_tuned),
        "tuned TRMM diverged for {}",
        std::any::type_name::<E>()
    );
}

#[test]
fn tuned_plans_are_bit_identical_across_dtypes_and_ops() {
    let _g = lock();
    // Shapes with both full and remainder tiles for every kernel family.
    gemm_bitexact::<f32>(7, 6, 5);
    gemm_bitexact::<f64>(7, 6, 5);
    gemm_bitexact::<c32>(5, 4, 3);
    gemm_bitexact::<c64>(5, 4, 3);
    trsm_bitexact::<f32>(9, 6);
    trsm_bitexact::<f64>(9, 6);
    trsm_bitexact::<c32>(5, 4);
    trsm_bitexact::<c64>(5, 4);
    trmm_bitexact::<f32>(9, 6);
    trmm_bitexact::<f64>(9, 6);
    trmm_bitexact::<c32>(5, 4);
    trmm_bitexact::<c64>(5, 4);
}

#[test]
fn generation_bump_invalidates_cached_plans() {
    let _g = lock();
    let cfg = TuningConfig {
        tune: TunePolicy::Cached,
        plan_cache: PlanCachePolicy::Shared,
        ..TuningConfig::default()
    };
    let dims = GemmDims::new(6, 6, 6);
    let a = CompactBatch::<f64>::from_std(&StdBatch::random(6, 6, COUNT, 1));
    let b = CompactBatch::<f64>::from_std(&StdBatch::random(6, 6, COUNT, 2));
    let mut c = CompactBatch::<f64>::zeroed(6, 6, COUNT);
    let run = |c: &mut CompactBatch<f64>| {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, c, &cfg).unwrap();
    };

    run(&mut c);
    let s1 = cache::stats();
    assert_eq!((s1.misses, s1.hits), (1, 0));
    run(&mut c);
    let s2 = cache::stats();
    assert_eq!((s2.misses, s2.hits), (1, 1), "same generation must hit");

    // Recording any winner bumps the generation: the old cached plan's key
    // no longer matches, so the next call rebuilds with the new db state.
    TuningDb::global().record(
        gemm_tune_key::<f64>(dims, GemmMode::NN, false, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    run(&mut c);
    let s3 = cache::stats();
    assert_eq!(s3.misses, 2, "generation bump must invalidate the cached plan");

    // Heuristic configs are generation-independent: their fingerprints (and
    // thus cached plans) survive db mutations.
    let heuristic = TuningConfig::default();
    let f = heuristic.fingerprint();
    TuningDb::global().record(
        gemm_tune_key::<f64>(GemmDims::new(2, 2, 2), GemmMode::NN, false, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    assert_eq!(f, heuristic.fingerprint());
}

#[test]
fn corrupt_db_degrades_to_heuristic_plans() {
    let _g = lock();
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tune-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("core-corrupt-{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema\": 1, \"entr").unwrap();

    let db = TuningDb::global();
    db.record(
        gemm_tune_key::<f64>(GemmDims::new(6, 6, 6), GemmMode::NN, false, false, COUNT, dispatched_width()),
        forced_entry(),
    );
    assert_eq!(db.load_from(&path), iatf_tune::LoadOutcome::Corrupt);
    assert!(db.is_empty());

    // With the db emptied, a Cached config plans exactly like Heuristic.
    let dims = GemmDims::new(6, 6, 6);
    let ph = GemmPlan::<f64>::new(dims, GemmMode::NN, false, false, COUNT, &heuristic_cfg()).unwrap();
    let pt = GemmPlan::<f64>::new(dims, GemmMode::NN, false, false, COUNT, &cached_cfg()).unwrap();
    assert_eq!(ph.a_plan, pt.a_plan);
    assert_eq!(ph.b_plan, pt.b_plan);
    assert_eq!(ph.group_packs, pt.group_packs);
    std::fs::remove_file(&path).ok();
}

#[test]
fn first_touch_sweeps_records_and_stays_bit_identical() {
    let _g = lock();
    let m = 6;
    let a = CompactBatch::<f32>::from_std(&StdBatch::random(m, m, COUNT, 7));
    let b = CompactBatch::<f32>::from_std(&StdBatch::random(m, m, COUNT, 8));
    let mut c_h = CompactBatch::<f32>::zeroed(m, m, COUNT);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c_h, &heuristic_cfg()).unwrap();

    let db = TuningDb::global();
    assert!(db.is_empty());
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(5),
        ..heuristic_cfg()
    };
    let mut c_t = CompactBatch::<f32>::zeroed(m, m, COUNT);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c_t, &cfg).unwrap();
    let key = gemm_tune_key::<f32>(
        GemmDims::new(m, m, m),
        GemmMode::NN,
        false,
        false,
        COUNT,
        dispatched_width(),
    );
    let entry = db.lookup(&key).expect("first touch must record a winner");
    assert!(entry.tuned_gflops > 0.0 && entry.tuned_gflops.is_finite());
    assert!(entry.tuned_gflops >= entry.heuristic_gflops * 0.99999);
    assert_eq!(bits(&c_h), bits(&c_t));

    // Second call: entry already present, no second sweep (len stable).
    let len = db.len();
    let gen = db.generation();
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c_t, &cfg).unwrap();
    assert_eq!(db.len(), len);
    assert_eq!(db.generation(), gen);
    assert_eq!(bits(&c_h), bits(&c_t));

    // TRSM and TRMM first-touch paths record under their own keys.
    let mode = TrsmMode::all()[0];
    let ta = CompactBatch::<f64>::from_std(&StdBatch::random_triangular(
        m, COUNT, mode.uplo, mode.diag, 9,
    ));
    let mut tb = CompactBatch::<f64>::from_std(&StdBatch::random(m, m, COUNT, 10));
    compact_trsm(mode, 1.0, &ta, &mut tb, &cfg).unwrap();
    assert!(db
        .lookup(&trsm_tune_key::<f64>(
            TrsmDims::new(m, m),
            mode,
            false,
            COUNT,
            dispatched_width()
        ))
        .is_some());
    compact_trmm(mode, 1.0, &ta, &mut tb, &cfg).unwrap();
    assert!(db
        .lookup(&trmm_tune_key::<f64>(
            TrsmDims::new(m, m),
            mode,
            false,
            COUNT,
            dispatched_width()
        ))
        .is_some());
}
