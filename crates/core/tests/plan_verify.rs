//! Planner ↔ verifier wiring: every `explain()` statically certifies the
//! kernels the plan can dispatch (via `iatf-verify`) and reports the
//! outcome in `PlanExplain::verify`. In debug builds an uncertified kernel
//! panics inside `explain()` itself, so these tests double as the planner
//! debug-assert gate.

use iatf_core::{GemmPlan, TrmmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{GemmDims, GemmMode, TrsmDims, TrsmMode};

#[test]
fn gemm_explain_certifies_every_tile_class() {
    let cfg = TuningConfig::default();
    let plan =
        GemmPlan::<f64>::new(GemmDims::new(7, 6, 5), GemmMode::NN, false, false, 5, &cfg)
            .unwrap();
    let ex = plan.explain();
    let v = ex.verify.clone().expect("real GEMM plans certify their kernels");
    assert_eq!(v.kernels as usize, ex.tile_classes.len());
    assert!(v.all_certified(), "{v:?}");
    assert_eq!(v.skipped, 0);
    assert!(v.rules >= 15, "rule set shrank: {v:?}");
    assert!(ex.to_json().to_compact().contains("\"all_certified\":true"));
}

#[test]
fn complex_gemm_explain_certifies_too() {
    let cfg = TuningConfig::default();
    let plan = GemmPlan::<iatf_simd::c32>::new(
        GemmDims::new(3, 4, 4),
        GemmMode::NN,
        false,
        false,
        2,
        &cfg,
    )
    .unwrap();
    let v = plan.explain().verify.expect("cgemm generator exists");
    assert!(v.all_certified(), "{v:?}");
    assert!(v.kernels > 0);
}

#[test]
fn deep_gemm_defers_to_offline_verification() {
    let cfg = TuningConfig::default();
    let plan = GemmPlan::<f64>::new(
        GemmDims::new(4, 4, 200),
        GemmMode::NN,
        false,
        false,
        1,
        &cfg,
    )
    .unwrap();
    let v = plan.explain().verify.unwrap();
    // k = 200 exceeds the plan-time depth cap: nothing certified inline,
    // nothing falsely claimed.
    assert_eq!(v.kernels, 0);
    assert!(v.skipped > 0);
}

#[test]
fn trsm_explain_certifies_blocks_and_panels() {
    let cfg = TuningConfig::default();
    let plan =
        TrsmPlan::<f64>::new(TrsmDims::new(9, 4), TrsmMode::LNLN, false, 3, &cfg).unwrap();
    let ex = plan.explain();
    let v = ex.verify.expect("real TRSM plans certify their kernels");
    assert!(v.all_certified(), "{v:?}");
    assert_eq!(v.kernels as usize, ex.kernels.len());
    assert_eq!(v.skipped, 0);
}

#[test]
fn kernelless_plans_report_no_verification() {
    let cfg = TuningConfig::default();
    // complex TRSM: no install-time generator
    let plan = TrsmPlan::<iatf_simd::c64>::new(TrsmDims::new(5, 3), TrsmMode::LNLN, false, 2, &cfg)
        .unwrap();
    assert!(plan.explain().verify.is_none());
    // TRMM dispatches no generated kernels at all
    let plan =
        TrmmPlan::<f64>::new(TrsmDims::new(5, 3), TrsmMode::LNLN, false, 2, &cfg).unwrap();
    let ex = plan.explain();
    assert!(ex.verify.is_none());
    assert!(ex.to_json().to_compact().contains("\"verify\":null"));
}
