//! End-to-end watch loop through the real one-shot API: tune → steady
//! traffic → injected slowdown → drift event → retune (db eviction +
//! generation bump + plan-cache invalidation) → recovery.
//!
//! Meaningful only with `--features watch`; without it the test degrades
//! to asserting the probes are inert.

use iatf_core::watch;
use iatf_core::{
    compact_gemm, ensure_tuned_gemm, gemm_tune_key, PlanCachePolicy, TunePolicy, TuningConfig,
};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch};
use iatf_tune::{TuningDb, TuneKey};

fn isolate() {
    // Keep the global dbs off the developer's real cache files. One
    // process per integration-test binary, so set-once is safe.
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("IATF_TUNE_DB").is_none() {
            std::env::set_var("IATF_TUNE_DB", "");
        }
        if std::env::var_os("IATF_WATCH_ENVELOPES").is_none() {
            std::env::set_var("IATF_WATCH_ENVELOPES", "");
        }
    });
}

const M: usize = 8;
const COUNT: usize = 256;

fn operands() -> (CompactBatch<f32>, CompactBatch<f32>, CompactBatch<f32>) {
    let a = CompactBatch::from_std(&StdBatch::<f32>::random(M, M, COUNT, 11));
    let b = CompactBatch::from_std(&StdBatch::<f32>::random(M, M, COUNT, 22));
    let c = CompactBatch::<f32>::zeroed(M, M, COUNT);
    (a, b, c)
}

fn the_key() -> TuneKey {
    gemm_tune_key::<f32>(
        GemmDims::new(M, M, M),
        GemmMode::NN,
        false,
        false,
        COUNT,
        iatf_simd::dispatched_width(),
    )
}

#[test]
fn drift_triggers_retune_and_generation_bump() {
    isolate();
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(20),
        plan_cache: PlanCachePolicy::Shared,
        ..TuningConfig::host()
    };
    let (a, b, mut c) = operands();
    let key = the_key();

    if !watch::is_enabled() {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        assert!(!watch::snapshot().enabled);
        assert_eq!(watch::events_total(), 0);
        assert!(!watch::take_retune(&key));
        return;
    }

    // Tune + enough warm traffic to calibrate and settle the chart.
    assert!(ensure_tuned_gemm::<f32>(
        GemmDims::new(M, M, M),
        GemmMode::NN,
        false,
        false,
        COUNT,
        &cfg
    ));
    for _ in 0..64 {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    }
    let before = watch::events_total();
    let gen_before = TuningDb::global().generation();

    // Telemetry-side 3x slowdown on this class only.
    watch::inject_latency_skew(Some((key, 3.0)));
    let mut fired = false;
    for _ in 0..400 {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        if watch::events_total() > before {
            fired = true;
            break;
        }
    }
    watch::inject_latency_skew(None);
    assert!(fired, "no drift event under sustained injected slowdown");
    let ev = watch::drain_events()
        .into_iter()
        .find(|e| e.key == key)
        .expect("drift event for the injected class");
    assert!(ev.ratio > 1.5, "ratio {}", ev.ratio);
    assert!(watch::retune_pending(&key));

    // The next dispatch remediates: evicts the entry (generation bump ⇒
    // plan-cache invalidation), re-sweeps, re-arms.
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    assert!(!watch::retune_pending(&key), "retune flag not consumed");
    let gen_after = TuningDb::global().generation();
    assert!(
        gen_after > gen_before,
        "db generation did not advance across retune ({gen_before} -> {gen_after})"
    );
    assert!(
        TuningDb::global().lookup(&key).is_some(),
        "retune did not re-record a winner"
    );
    let snap = watch::snapshot();
    let class = snap.classes.iter().find(|c| c.key == key).unwrap();
    assert!(!class.drifting, "class still latched after retune");
    assert_eq!(snap.retunes_done, 1);

    // Recovered traffic must not re-trip at the fresh expectation.
    let total_after_retune = watch::events_total();
    for _ in 0..64 {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    }
    assert_eq!(
        watch::events_total(),
        total_after_retune,
        "chart re-tripped on healthy post-retune traffic"
    );
}
