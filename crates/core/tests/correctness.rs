//! End-to-end correctness: the IATF pipeline (plan → pack → kernels →
//! unpack) against the scalar oracle, across sizes, modes, dtypes, batch
//! counts and configuration policies.

use iatf_baselines::naive;
use iatf_core::{
    compact_gemm_ex, compact_trsm_ex, BatchPolicy, CompactElement, PackPolicy, TuningConfig,
};
use iatf_layout::{CompactBatch, GemmMode, Side, StdBatch, Trans, TrsmMode};
use iatf_simd::{c32, c64, Element};

fn tol<E: Element>(k: usize) -> f64 {
    let base = if E::Real::BYTES == 4 { 1e-4 } else { 1e-12 };
    base * (k.max(1) as f64).sqrt()
}

use iatf_simd::Real;

#[allow(clippy::too_many_arguments)]
fn check_gemm<E: CompactElement>(
    m: usize,
    n: usize,
    k: usize,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    alpha: E,
    beta: E,
    cfg: &TuningConfig,
    seed: u64,
) {
    let (ar, ac) = match mode.transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (br, bc) = match mode.transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let a = StdBatch::<E>::random(ar, ac, count, seed);
    let b = StdBatch::<E>::random(br, bc, count, seed + 1);
    let c0 = StdBatch::<E>::random(m, n, count, seed + 2);

    let ca = CompactBatch::from_std(&a);
    let cb = CompactBatch::from_std(&b);
    let mut cc = CompactBatch::from_std(&c0);
    compact_gemm_ex(mode, conj_a, conj_b, alpha, &ca, &cb, beta, &mut cc, cfg).unwrap();
    let got = cc.to_std();

    let mut want = c0.clone();
    naive::gemm_ref(mode, conj_a, conj_b, alpha, &a, &b, beta, &mut want);

    let diff = want.max_abs_diff(&got);
    assert!(
        diff <= tol::<E>(k),
        "gemm {:?} {m}x{n}x{k} {mode} conj=({conj_a},{conj_b}) count={count}: diff {diff}",
        E::DTYPE
    );
}

#[test]
fn gemm_size_sweep_all_dtypes_nn() {
    let cfg = TuningConfig::default();
    for nsize in [1usize, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 24, 31, 32, 33] {
        check_gemm::<f32>(
            nsize, nsize, nsize, GemmMode::NN, false, false, 9, 1.0, 1.0, &cfg, nsize as u64,
        );
        check_gemm::<f64>(
            nsize, nsize, nsize, GemmMode::NN, false, false, 5, 1.0, 1.0, &cfg, nsize as u64,
        );
        check_gemm::<c32>(
            nsize,
            nsize,
            nsize,
            GemmMode::NN,
            false,
            false,
            6,
            c32::new(1.0, 0.0),
            c32::new(1.0, 0.0),
            &cfg,
            nsize as u64,
        );
        check_gemm::<c64>(
            nsize,
            nsize,
            nsize,
            GemmMode::NN,
            false,
            false,
            3,
            c64::new(1.0, 0.0),
            c64::new(1.0, 0.0),
            &cfg,
            nsize as u64,
        );
    }
}

#[test]
fn gemm_all_modes_rectangular() {
    let cfg = TuningConfig::default();
    for mode in GemmMode::ALL {
        check_gemm::<f32>(7, 5, 9, mode, false, false, 10, 2.0, 0.5, &cfg, 100);
        check_gemm::<f64>(6, 11, 3, mode, false, false, 7, -1.0, 1.5, &cfg, 200);
        check_gemm::<c32>(
            5,
            4,
            6,
            mode,
            false,
            false,
            5,
            c32::new(1.5, -0.5),
            c32::new(0.25, 0.75),
            &cfg,
            300,
        );
        check_gemm::<c64>(
            9,
            2,
            4,
            mode,
            false,
            false,
            4,
            c64::new(0.0, 1.0),
            c64::new(1.0, -1.0),
            &cfg,
            400,
        );
    }
}

#[test]
fn gemm_conjugation_modes() {
    let cfg = TuningConfig::default();
    for (ca, cb) in [(true, false), (false, true), (true, true)] {
        check_gemm::<c64>(
            5,
            5,
            5,
            GemmMode::TN,
            ca,
            cb,
            5,
            c64::new(1.0, 0.5),
            c64::new(0.5, 0.0),
            &cfg,
            500,
        );
        check_gemm::<c32>(
            4,
            6,
            3,
            GemmMode::NT,
            ca,
            cb,
            6,
            c32::new(1.0, 0.0),
            c32::new(0.0, 0.0),
            &cfg,
            600,
        );
    }
}

#[test]
fn gemm_alpha_beta_special_cases() {
    let cfg = TuningConfig::default();
    // beta = 0 must not read C (checked structurally in kernels; here just
    // numerically), alpha = 0 zeroes the product term.
    check_gemm::<f64>(8, 8, 8, GemmMode::NN, false, false, 5, 1.0, 0.0, &cfg, 700);
    check_gemm::<f64>(8, 8, 8, GemmMode::NN, false, false, 5, 0.0, 2.0, &cfg, 701);
    check_gemm::<f32>(3, 3, 3, GemmMode::NN, false, false, 5, -2.5, -0.5, &cfg, 702);
}

#[test]
fn gemm_batch_padding_cases() {
    // counts around multiples of P for both P=4 and P=2.
    let cfg = TuningConfig::default();
    for count in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
        check_gemm::<f32>(6, 6, 6, GemmMode::NN, false, false, count, 1.0, 1.0, &cfg, 800);
        check_gemm::<f64>(6, 6, 6, GemmMode::NN, false, false, count, 1.0, 1.0, &cfg, 801);
    }
}

#[test]
fn gemm_policy_matrix() {
    // every pack/batch policy combination must agree with the oracle.
    for pack in [PackPolicy::Auto, PackPolicy::Always, PackPolicy::Never] {
        for batch in [BatchPolicy::Auto, BatchPolicy::Fixed(1), BatchPolicy::Fixed(3)] {
            let cfg = TuningConfig {
                pack,
                batch,
                ..TuningConfig::default()
            };
            check_gemm::<f32>(10, 7, 5, GemmMode::NN, false, false, 13, 1.5, 0.5, &cfg, 900);
            check_gemm::<f64>(4, 4, 8, GemmMode::TT, false, false, 5, 1.0, 1.0, &cfg, 901);
            check_gemm::<c32>(
                3,
                3,
                3,
                GemmMode::TN,
                false,
                false,
                9,
                c32::new(1.0, 1.0),
                c32::new(1.0, 0.0),
                &cfg,
                902,
            );
        }
    }
}

#[test]
fn gemm_k_extremes() {
    let cfg = TuningConfig::default();
    for k in [1usize, 2, 3, 4, 5, 64] {
        check_gemm::<f64>(4, 4, k, GemmMode::NN, false, false, 4, 1.0, 1.0, &cfg, 1000);
        check_gemm::<f32>(5, 3, k, GemmMode::TN, false, false, 4, 1.0, 0.0, &cfg, 1001);
    }
}

// ---------------------------------------------------------------------------
// TRSM
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn check_trsm<E: CompactElement>(
    m: usize,
    n: usize,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    alpha: E,
    cfg: &TuningConfig,
    seed: u64,
) {
    let t = if mode.side == Side::Left { m } else { n };
    let a = StdBatch::<E>::random_triangular(t, count, mode.uplo, mode.diag, seed);
    let b0 = StdBatch::<E>::random(m, n, count, seed + 1);

    let ca = CompactBatch::from_std(&a);
    let mut cb = CompactBatch::from_std(&b0);
    compact_trsm_ex(mode, conj, alpha, &ca, &mut cb, cfg).unwrap();
    let got = cb.to_std();

    // residual check against the original system
    let r = naive::trsm_residual(mode, conj, alpha, &a, &got, &b0);
    let lim = if E::Real::BYTES == 4 { 5e-4 } else { 1e-10 };
    assert!(
        r < lim,
        "trsm {:?} {m}x{n} {mode} conj={conj} count={count}: residual {r}",
        E::DTYPE
    );

    // and element-wise agreement with the oracle solution
    let mut want = b0.clone();
    naive::trsm_ref(mode, conj, alpha, &a, &mut want);
    let diff = want.max_abs_diff(&got);
    let dlim = if E::Real::BYTES == 4 { 1e-3 } else { 1e-9 };
    assert!(
        diff < dlim,
        "trsm {:?} {m}x{n} {mode}: diff vs oracle {diff}",
        E::DTYPE
    );
}

#[test]
fn trsm_size_sweep_lnln() {
    let cfg = TuningConfig::default();
    for nsize in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 24, 32, 33] {
        check_trsm::<f32>(nsize, nsize, TrsmMode::LNLN, false, 9, 1.0, &cfg, nsize as u64);
        check_trsm::<f64>(nsize, nsize, TrsmMode::LNLN, false, 5, 1.0, &cfg, nsize as u64);
        check_trsm::<c32>(
            nsize,
            nsize,
            TrsmMode::LNLN,
            false,
            6,
            c32::new(1.0, 0.0),
            &cfg,
            nsize as u64,
        );
        check_trsm::<c64>(
            nsize,
            nsize,
            TrsmMode::LNLN,
            false,
            3,
            c64::new(1.0, 0.0),
            &cfg,
            nsize as u64,
        );
    }
}

#[test]
fn trsm_all_sixteen_modes() {
    let cfg = TuningConfig::default();
    for mode in TrsmMode::all() {
        check_trsm::<f32>(9, 7, mode, false, 10, 1.0, &cfg, 2000);
        check_trsm::<f64>(6, 10, mode, false, 5, 1.0, &cfg, 2100);
        check_trsm::<c64>(5, 4, mode, false, 4, c64::new(1.0, 0.0), &cfg, 2200);
    }
}

#[test]
fn trsm_alpha_variants() {
    let cfg = TuningConfig::default();
    check_trsm::<f64>(8, 8, TrsmMode::LNLN, false, 5, 2.5, &cfg, 2300);
    check_trsm::<f64>(8, 8, TrsmMode::LNUN, false, 5, -0.5, &cfg, 2301);
    check_trsm::<c32>(6, 6, TrsmMode::LTLN, false, 5, c32::new(0.0, 1.0), &cfg, 2302);
    check_trsm::<c64>(4, 4, TrsmMode::LNLN, true, 5, c64::new(1.0, -1.0), &cfg, 2303);
}

#[test]
fn trsm_register_capacity_boundary() {
    // M around the register-resident bound (5 real / 2 complex) exercises
    // both the single-block and the blocked paths.
    let cfg = TuningConfig::default();
    for m in 1..=8 {
        check_trsm::<f64>(m, 6, TrsmMode::LNLN, false, 4, 1.0, &cfg, 2400 + m as u64);
        check_trsm::<c64>(
            m,
            3,
            TrsmMode::LNLN,
            false,
            4,
            c64::new(1.0, 0.0),
            &cfg,
            2500 + m as u64,
        );
    }
}

#[test]
fn trsm_policy_matrix() {
    for pack in [PackPolicy::Auto, PackPolicy::Always, PackPolicy::Never] {
        for batch in [BatchPolicy::Auto, BatchPolicy::Fixed(2)] {
            let cfg = TuningConfig {
                pack,
                batch,
                ..TuningConfig::default()
            };
            check_trsm::<f32>(7, 9, TrsmMode::LNLN, false, 11, 1.0, &cfg, 2600);
            check_trsm::<f64>(6, 5, TrsmMode::LNUN, false, 5, 1.0, &cfg, 2601);
        }
    }
}

#[test]
fn trsm_batch_padding_cases() {
    let cfg = TuningConfig::default();
    for count in [1usize, 2, 3, 4, 5, 8, 9] {
        check_trsm::<f32>(5, 5, TrsmMode::LNLN, false, count, 1.0, &cfg, 2700);
        check_trsm::<f64>(5, 5, TrsmMode::LTUN, false, count, 1.0, &cfg, 2701);
    }
}

#[test]
fn trsm_rectangular_b() {
    let cfg = TuningConfig::default();
    // wide and tall right-hand sides, both sides
    check_trsm::<f64>(4, 33, TrsmMode::LNLN, false, 4, 1.0, &cfg, 2800);
    check_trsm::<f64>(33, 4, TrsmMode::LNLN, false, 4, 1.0, &cfg, 2801);
    let right = TrsmMode::new(Side::Right, Trans::No, iatf_layout::Uplo::Upper, iatf_layout::Diag::NonUnit);
    check_trsm::<f64>(4, 12, right, false, 4, 1.0, &cfg, 2802);
    check_trsm::<f32>(12, 4, right, false, 6, 1.0, &cfg, 2803);
}

#[test]
fn plan_reuse_is_deterministic() {
    // one plan, many executions on different data
    use iatf_core::GemmPlan;
    use iatf_layout::GemmDims;
    let cfg = TuningConfig::default();
    let plan =
        GemmPlan::<f64>::new(GemmDims::new(6, 6, 6), GemmMode::NN, false, false, 8, &cfg).unwrap();
    for trial in 0..3 {
        let a = StdBatch::<f64>::random(6, 6, 8, 3000 + trial);
        let b = StdBatch::<f64>::random(6, 6, 8, 3100 + trial);
        let ca = CompactBatch::from_std(&a);
        let cb = CompactBatch::from_std(&b);
        let mut cc = CompactBatch::<f64>::zeroed(6, 6, 8);
        plan.execute(1.0, &ca, &cb, 0.0, &mut cc).unwrap();
        let mut want = StdBatch::<f64>::zeroed(6, 6, 8);
        naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a, &b, 0.0, &mut want);
        assert!(want.max_abs_diff(&cc.to_std()) < 1e-12);
    }
}
