//! Flight-recorder integration: executing real plans must record spans for
//! every phase the plan goes through. Only meaningful with the `trace`
//! feature; without it the recorder is compiled out and drain is empty.

#![cfg(feature = "trace")]

use iatf_core::trace::{self, SpanKind};
use iatf_core::{GemmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmDims, TrsmMode};

#[test]
fn plan_lifecycle_records_every_phase() {
    trace::reset();
    let cfg = TuningConfig::default();

    // n=16 GEMM: both operands exceed the kernel tile, so A and B pack.
    let dims = GemmDims::square(16);
    let plan = GemmPlan::<f64>::new(dims, GemmMode::NN, false, false, 64, &cfg).unwrap();
    let a = CompactBatch::from_std(&StdBatch::<f64>::random(16, 16, 64, 1));
    let b = CompactBatch::from_std(&StdBatch::<f64>::random(16, 16, 64, 2));
    let mut c = CompactBatch::<f64>::zeroed(16, 16, 64);
    plan.execute(1.0, &a, &b, 0.0, &mut c).unwrap();

    // LNUN TRSM reverses rows, forcing panel packing → Scale and Unpack.
    let tplan =
        TrsmPlan::<f64>::new(TrsmDims::new(8, 8), TrsmMode::LNUN, false, 32, &cfg).unwrap();
    let ta = {
        let mut std = StdBatch::<f64>::random(8, 8, 32, 3);
        // dominant diagonal keeps the solve well-conditioned
        for m in 0..32 {
            for i in 0..8 {
                let v = std.get(m, i, i);
                std.set(m, i, i, v + 8.0);
            }
        }
        CompactBatch::from_std(&std)
    };
    let mut tb = CompactBatch::from_std(&StdBatch::<f64>::random(8, 8, 32, 4));
    tplan.execute(1.0, &ta, &mut tb).unwrap();

    let events = trace::drain();
    for kind in [
        SpanKind::PlanBuild,
        SpanKind::PackA,
        SpanKind::PackB,
        SpanKind::Compute,
        SpanKind::Scale,
        SpanKind::Unpack,
        SpanKind::Superblock,
        SpanKind::Execute,
    ] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no {} span recorded (got {} events)",
            kind.name(),
            events.len()
        );
    }
    // Phase spans nest inside an Execute span on the same thread.
    let exec = events
        .iter()
        .find(|e| e.kind == SpanKind::Execute)
        .unwrap();
    let compute = events
        .iter()
        .find(|e| e.kind == SpanKind::Compute && e.tid == exec.tid)
        .unwrap();
    assert!(compute.start_ns >= exec.start_ns);
    assert!(compute.start_ns + compute.dur_ns <= exec.start_ns + exec.dur_ns);
}
