//! End-to-end TRMM (extension) correctness: IATF compact TRMM against the
//! scalar oracle for all sixteen modes, dtypes and batch paddings.

use iatf_baselines::naive;
use iatf_core::{compact_trmm, compact_trmm_ex, TuningConfig};
use iatf_layout::{CompactBatch, Side, StdBatch, TrsmMode};
use iatf_simd::{c32, c64, Real};

fn check<E: iatf_core::CompactElement>(
    m: usize,
    n: usize,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    alpha: E,
    seed: u64,
) {
    let t = if mode.side == Side::Left { m } else { n };
    let a = StdBatch::<E>::random_triangular(t, count, mode.uplo, mode.diag, seed);
    let b0 = StdBatch::<E>::random(m, n, count, seed + 1);

    let ca = CompactBatch::from_std(&a);
    let mut cb = CompactBatch::from_std(&b0);
    compact_trmm_ex(mode, conj, alpha, &ca, &mut cb, &TuningConfig::default()).unwrap();
    let got = cb.to_std();

    let mut want = b0.clone();
    naive::trmm_ref(mode, conj, alpha, &a, &mut want);
    let diff = want.max_abs_diff(&got);
    let tol = if E::Real::BYTES == 4 { 1e-3 } else { 1e-11 };
    assert!(
        diff < tol,
        "trmm {:?} {m}x{n} {mode} conj={conj} count={count}: diff {diff}",
        E::DTYPE
    );
}

#[test]
fn trmm_size_sweep_lnln() {
    for nsize in [1usize, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 33] {
        check::<f32>(nsize, nsize, TrsmMode::LNLN, false, 9, 1.0, nsize as u64);
        check::<f64>(nsize, nsize, TrsmMode::LNLN, false, 5, 1.0, nsize as u64);
        check::<c32>(nsize, nsize, TrsmMode::LNLN, false, 6, c32::new(1.0, 0.0), nsize as u64);
        check::<c64>(nsize, nsize, TrsmMode::LNLN, false, 3, c64::new(1.0, 0.0), nsize as u64);
    }
}

#[test]
fn trmm_all_sixteen_modes() {
    for mode in TrsmMode::all() {
        check::<f32>(9, 7, mode, false, 10, 1.0, 3000);
        check::<f64>(6, 10, mode, false, 5, 1.0, 3100);
        check::<c64>(5, 4, mode, false, 4, c64::new(1.0, 0.0), 3200);
    }
}

#[test]
fn trmm_alpha_and_conj() {
    check::<f64>(8, 8, TrsmMode::LNLN, false, 5, -2.5, 3300);
    check::<f32>(6, 9, TrsmMode::LNUN, false, 7, 0.5, 3301);
    check::<c64>(4, 4, TrsmMode::LTLN, true, 5, c64::new(0.0, 1.0), 3302);
    check::<c32>(5, 5, TrsmMode::LNLN, true, 6, c32::new(1.0, -1.0), 3303);
}

#[test]
fn trmm_then_trsm_round_trips() {
    // TRSM(L, TRMM(L, B)) == B — the two extensions compose to identity.
    let cfg = TuningConfig::default();
    let count = 7usize;
    let n = 10usize;
    let a = StdBatch::<f64>::random_triangular(
        n,
        count,
        iatf_layout::Uplo::Lower,
        iatf_layout::Diag::NonUnit,
        41,
    );
    let b0 = StdBatch::<f64>::random(n, n, count, 42);
    let ca = CompactBatch::from_std(&a);
    let mut cb = CompactBatch::from_std(&b0);
    compact_trmm(TrsmMode::LNLN, 1.0, &ca, &mut cb, &cfg).unwrap();
    iatf_core::compact_trsm(TrsmMode::LNLN, 1.0, &ca, &mut cb, &cfg).unwrap();
    let diff = b0.max_abs_diff(&cb.to_std());
    assert!(diff < 1e-10, "round trip diff {diff}");
}

#[test]
fn trmm_batch_padding() {
    for count in [1usize, 2, 3, 4, 5, 9] {
        check::<f32>(6, 6, TrsmMode::LNLN, false, count, 1.0, 3400);
        check::<f64>(6, 6, TrsmMode::LTUN, false, count, 1.0, 3401);
    }
}
