//! Property-based tests: random shapes, modes, batch counts and scalars,
//! checked against the scalar oracle and against algebraic invariants.

use iatf_baselines::naive;
use iatf_core::{compact_gemm, compact_trsm, GemmPlan, TuningConfig};
use iatf_layout::{
    CompactBatch, Diag, GemmDims, GemmMode, Side, StdBatch, Trans, TrsmMode, Uplo,
};
use iatf_simd::c64;
use proptest::prelude::*;

fn gemm_mode_strategy() -> impl Strategy<Value = GemmMode> {
    prop_oneof![
        Just(GemmMode::NN),
        Just(GemmMode::NT),
        Just(GemmMode::TN),
        Just(GemmMode::TT),
    ]
}

fn trsm_mode_strategy() -> impl Strategy<Value = TrsmMode> {
    (
        prop_oneof![Just(Side::Left), Just(Side::Right)],
        prop_oneof![Just(Trans::No), Just(Trans::Yes)],
        prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)],
        prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
    )
        .prop_map(|(s, t, u, d)| TrsmMode::new(s, t, u, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_f64_matches_oracle(
        m in 1usize..=34,
        n in 1usize..=34,
        k in 1usize..=34,
        mode in gemm_mode_strategy(),
        count in 1usize..=9,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u32>(),
    ) {
        let (ar, ac) = match mode.transa { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (br, bc) = match mode.transb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = StdBatch::<f64>::random(ar, ac, count, seed as u64);
        let b = StdBatch::<f64>::random(br, bc, count, seed as u64 + 1);
        let c0 = StdBatch::<f64>::random(m, n, count, seed as u64 + 2);
        let ca = CompactBatch::from_std(&a);
        let cb = CompactBatch::from_std(&b);
        let mut cc = CompactBatch::from_std(&c0);
        compact_gemm(mode, alpha, &ca, &cb, beta, &mut cc, &TuningConfig::default()).unwrap();
        let mut want = c0.clone();
        naive::gemm_ref(mode, false, false, alpha, &a, &b, beta, &mut want);
        let diff = want.max_abs_diff(&cc.to_std());
        prop_assert!(diff < 1e-11 * (k as f64).sqrt().max(1.0), "diff {diff}");
    }

    #[test]
    fn gemm_c64_matches_oracle(
        m in 1usize..=16,
        n in 1usize..=16,
        k in 1usize..=16,
        mode in gemm_mode_strategy(),
        count in 1usize..=5,
        ar_ in -1.0f64..1.0,
        ai_ in -1.0f64..1.0,
        seed in any::<u32>(),
    ) {
        let alpha = c64::new(ar_, ai_);
        let beta = c64::new(0.5, -0.25);
        let (ar, ac) = match mode.transa { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (br, bc) = match mode.transb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = StdBatch::<c64>::random(ar, ac, count, seed as u64);
        let b = StdBatch::<c64>::random(br, bc, count, seed as u64 + 1);
        let c0 = StdBatch::<c64>::random(m, n, count, seed as u64 + 2);
        let ca = CompactBatch::from_std(&a);
        let cb = CompactBatch::from_std(&b);
        let mut cc = CompactBatch::from_std(&c0);
        compact_gemm(mode, alpha, &ca, &cb, beta, &mut cc, &TuningConfig::default()).unwrap();
        let mut want = c0.clone();
        naive::gemm_ref(mode, false, false, alpha, &a, &b, beta, &mut want);
        let diff = want.max_abs_diff(&cc.to_std());
        prop_assert!(diff < 1e-11 * (k as f64).max(1.0), "diff {diff}");
    }

    #[test]
    fn trsm_f64_residual_bounded(
        m in 1usize..=24,
        n in 1usize..=24,
        mode in trsm_mode_strategy(),
        count in 1usize..=5,
        alpha in -2.0f64..2.0,
        seed in any::<u32>(),
    ) {
        let t = if mode.side == Side::Left { m } else { n };
        let a = StdBatch::<f64>::random_triangular(t, count, mode.uplo, mode.diag, seed as u64);
        let b0 = StdBatch::<f64>::random(m, n, count, seed as u64 + 1);
        let ca = CompactBatch::from_std(&a);
        let mut cb = CompactBatch::from_std(&b0);
        compact_trsm(mode, alpha, &ca, &mut cb, &TuningConfig::default()).unwrap();
        let x = cb.to_std();
        let r = naive::trsm_residual(mode, false, alpha, &a, &x, &b0);
        prop_assert!(r < 1e-10, "{mode}: residual {r}");
    }

    #[test]
    fn trsm_then_multiply_recovers_rhs(
        m in 1usize..=12,
        n in 1usize..=12,
        count in 1usize..=4,
        seed in any::<u32>(),
    ) {
        // GEMM(compact) of L with X(compact TRSM solution) == B: couples the
        // two pipelines end to end.
        let a_full = StdBatch::<f64>::from_fn(m, m, count, |v, i, j| {
            if i > j { ((v + i * 3 + j) % 7) as f64 / (8.0 * m as f64) }
            else if i == j { 1.0 + ((v + i) % 3) as f64 * 0.5 }
            else { 0.0 }
        });
        let b0 = StdBatch::<f64>::random(m, n, count, seed as u64);
        let ca = CompactBatch::from_std(&a_full);
        let mut cx = CompactBatch::from_std(&b0);
        let cfg = TuningConfig::default();
        compact_trsm(TrsmMode::LNLN, 1.0, &ca, &mut cx, &cfg).unwrap();
        // recompute B = L·X with compact GEMM
        let mut cb = CompactBatch::<f64>::zeroed(m, n, count);
        compact_gemm(GemmMode::NN, 1.0, &ca, &cx, 0.0, &mut cb, &cfg).unwrap();
        let back = cb.to_std();
        let diff = back.max_abs_diff(&b0);
        prop_assert!(diff < 1e-10, "round trip diff {diff}");
    }

    #[test]
    fn plan_commands_cover_tiles(
        m in 1usize..=20,
        n in 1usize..=20,
        k in 1usize..=8,
        count in 1usize..=10,
    ) {
        let cfg = TuningConfig::default();
        let plan = GemmPlan::<f32>::new(GemmDims::new(m, n, k), GemmMode::NN, false, false, count, &cfg).unwrap();
        let mut area = std::collections::HashMap::new();
        for c in plan.commands() {
            if let iatf_core::Command::Gemm { pack, i0, j0, mr, nr } = c {
                prop_assert!(i0 + mr <= m && j0 + nr <= n);
                *area.entry(pack).or_insert(0usize) += mr * nr;
            }
        }
        let packs = count.div_ceil(4);
        prop_assert_eq!(area.len(), packs);
        for (_, a) in area {
            prop_assert_eq!(a, m * n);
        }
    }

    #[test]
    fn compact_round_trip_random_shapes(
        rows in 1usize..=40,
        cols in 1usize..=40,
        count in 1usize..=11,
        seed in any::<u32>(),
    ) {
        let std = StdBatch::<f32>::random(rows, cols, count, seed as u64);
        let compact = CompactBatch::from_std(&std);
        prop_assert_eq!(std.max_abs_diff(&compact.to_std()), 0.0);
        // padding lanes of the last pack are zero
        let pad = compact.padding_lanes();
        if pad > 0 {
            let sp = compact.pack_slice(compact.packs() - 1);
            for gidx in 0..rows * cols {
                for lane in (4 - pad)..4 {
                    prop_assert_eq!(sp[gidx * 4 + lane], 0.0);
                }
            }
        }
    }

    #[test]
    fn gemm_linearity_in_alpha(
        m in 1usize..=10,
        k in 1usize..=10,
        seed in any::<u32>(),
    ) {
        // C(2α) − 2·C(α) == 0 with β = 0: exercises the SAVE scaling.
        let a = StdBatch::<f64>::random(m, k, 3, seed as u64);
        let b = StdBatch::<f64>::random(k, m, 3, seed as u64 + 1);
        let ca = CompactBatch::from_std(&a);
        let cb = CompactBatch::from_std(&b);
        let cfg = TuningConfig::default();
        let mut c1 = CompactBatch::<f64>::zeroed(m, m, 3);
        let mut c2 = CompactBatch::<f64>::zeroed(m, m, 3);
        compact_gemm(GemmMode::NN, 0.75, &ca, &cb, 0.0, &mut c1, &cfg).unwrap();
        compact_gemm(GemmMode::NN, 1.5, &ca, &cb, 0.0, &mut c2, &cfg).unwrap();
        let s1 = c1.to_std();
        let s2 = c2.to_std();
        for v in 0..3 {
            for i in 0..m {
                for j in 0..m {
                    let d = (2.0 * s1.get(v, i, j) - s2.get(v, i, j)).abs();
                    prop_assert!(d < 1e-12);
                }
            }
        }
    }
}
