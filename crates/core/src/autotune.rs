//! BLAS-specific glue to the empirical autotuner (`iatf-tune`).
//!
//! The tuning crate itself is op-agnostic: it knows how to run calibrated
//! interleaved sweeps ([`iatf_tune::sweep`]) and how to persist winners
//! ([`iatf_tune::TuningDb`]). This module owns everything BLAS-shaped:
//!
//! * **Keys** — mapping an input fingerprint (op, dtype, dims, mode,
//!   conjugation, group count) to a [`TuneKey`], reusing the exact mode
//!   encodings the plan cache keys use.
//! * **Candidates** — the space the sweep explores: the heuristic plan
//!   (always candidate 0, so the winner can never be slower than the
//!   baseline *in the sweep's own numbers*), pack-policy variants, L1
//!   budget fractions around the model's prediction, and explicit
//!   super-block sizes at half/double the heuristic. Candidates that
//!   decode to the same plan decisions are deduplicated before timing.
//! * **Workloads** — synthetic operands sized like the real input but
//!   capped in group count so the sweep's working set stays modest.
//!   Triangular sweeps run against identity matrices, making repeated
//!   in-place solves a bitwise fixed point (no drift across timing reps).
//! * **Decisions** — translating a recorded [`TunedEntry`] back into the
//!   overrides the planners consume ([`TunedDecision`]).
//!
//! Consultation (`lookup_*`) is cheap — one mutex-guarded hash lookup —
//! and only happens when [`TunePolicy`] is `Cached` or `FirstTouch`; the
//! default `Heuristic` policy never touches the db. Sweeps build their
//! candidate plans with a `Heuristic` config, so tuning never recurses
//! into itself.

use std::cell::RefCell;
use std::time::Duration;

use crate::config::{BatchPolicy, PackPolicy, PlanCachePolicy, TunePolicy, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{cache, GemmPlan, TrmmPlan, TrsmPlan};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmDims, TrsmMode};
use iatf_obs as obs;
use iatf_simd::VecWidth;
use iatf_trace as trace;
use iatf_tune::{sweep, SweepReport, TuneKey, TuneOp, TunedEntry, TuningDb};

/// Overrides a tuned entry imposes on one planner invocation.
#[derive(Copy, Clone, Debug)]
pub(crate) struct TunedDecision {
    /// Pack Selecter override (`None` never occurs today — the entry
    /// always records the winner's policy — but planners treat `None` as
    /// "keep the config's policy" for forward compatibility).
    pub pack: Option<PackPolicy>,
    /// Batch Counter override; `None` keeps the heuristic L1-model size.
    pub group_packs: Option<usize>,
    /// Serial→parallel crossover: whether parallel execution measured
    /// faster for this input.
    pub parallel: bool,
}

fn decision_from(entry: TunedEntry) -> TunedDecision {
    TunedDecision {
        pack: Some(policy_from_code(entry.pack)),
        group_packs: usize::try_from(entry.group_packs)
            .ok()
            .filter(|&gp| gp > 0),
        parallel: entry.parallel,
    }
}

fn pack_code(policy: PackPolicy) -> u8 {
    match policy {
        PackPolicy::Auto => 0,
        PackPolicy::Always => 1,
        PackPolicy::Never => 2,
    }
}

fn policy_from_code(code: u8) -> PackPolicy {
    match code {
        1 => PackPolicy::Always,
        2 => PackPolicy::Never,
        _ => PackPolicy::Auto,
    }
}

fn dim32(d: usize) -> u32 {
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// The db key the planners use for a GEMM input (exports and tests use
/// this to address entries the same way the run-time stage does).
pub fn gemm_tune_key<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    width: VecWidth,
) -> TuneKey {
    TuneKey {
        op: TuneOp::Gemm,
        dtype: E::DTYPE as u8,
        m: dim32(dims.m),
        n: dim32(dims.n),
        k: dim32(dims.k),
        mode: cache::gemm_mode_bits(mode),
        conj: (conj_a as u8) | ((conj_b as u8) << 1),
        count: count as u64,
        width: width.code(),
    }
}

/// The db key for a TRSM input.
pub fn trsm_tune_key<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    width: VecWidth,
) -> TuneKey {
    TuneKey {
        op: TuneOp::Trsm,
        dtype: E::DTYPE as u8,
        m: dim32(dims.m),
        n: dim32(dims.n),
        k: 0,
        mode: cache::trsm_mode_bits(mode),
        conj: conj as u8,
        count: count as u64,
        width: width.code(),
    }
}

/// The db key for a TRMM input.
pub fn trmm_tune_key<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    width: VecWidth,
) -> TuneKey {
    TuneKey {
        op: TuneOp::Trmm,
        ..trsm_tune_key::<E>(dims, mode, conj, count, width)
    }
}

fn consult(key: &TuneKey, cfg: &TuningConfig) -> Option<TunedDecision> {
    if matches!(cfg.tune, TunePolicy::Heuristic) {
        return None;
    }
    match TuningDb::global().lookup(key) {
        Some(entry) => {
            obs::count_tune(obs::TuneEvent::Apply);
            Some(decision_from(entry))
        }
        None => {
            obs::count_tune(obs::TuneEvent::Miss);
            None
        }
    }
}

pub(crate) fn lookup_gemm<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Option<TunedDecision> {
    if matches!(cfg.tune, TunePolicy::Heuristic) {
        return None; // fast path: skip even key construction
    }
    consult(
        &gemm_tune_key::<E>(dims, mode, conj_a, conj_b, count, cfg.width),
        cfg,
    )
}

pub(crate) fn lookup_trsm<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Option<TunedDecision> {
    if matches!(cfg.tune, TunePolicy::Heuristic) {
        return None;
    }
    consult(&trsm_tune_key::<E>(dims, mode, conj, count, cfg.width), cfg)
}

pub(crate) fn lookup_trmm<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Option<TunedDecision> {
    if matches!(cfg.tune, TunePolicy::Heuristic) {
        return None;
    }
    consult(&trmm_tune_key::<E>(dims, mode, conj, count, cfg.width), cfg)
}

/// One sweep candidate: a fully built plan plus the metadata that becomes
/// the recorded entry if it wins.
struct Candidate<P> {
    plan: P,
    pack_code: u8,
    l1_fraction: f64,
    group_packs: usize,
    /// Whether winning should pin `group_packs` in the db. Candidates
    /// that only vary the pack policy leave the Batch Counter heuristic
    /// in charge (its output depends on the *real* group count, which the
    /// capped measurement count cannot stand in for).
    records_gp: bool,
}

/// Sweep working-set cap: synthetic operands are sized to the real input
/// but the group count is clamped so all operands together stay around
/// this many bytes — enough to exercise the L1/L2 behaviour the Batch
/// Counter models, small enough that a sweep never allocates gigabytes.
const MEASURE_CAP_BYTES: usize = 8 << 20;

/// Group-count floor for measurement, so tiny inputs still produce
/// super-block structure worth timing.
const MEASURE_MIN_COUNT: usize = 64;

fn measure_count(bytes_per_matrix: usize, count: usize) -> usize {
    count
        .min((MEASURE_CAP_BYTES / bytes_per_matrix.max(1)).max(MEASURE_MIN_COUNT))
        .max(1)
}

/// What a sweep's plan builder returns: the candidate plan, a dedupe
/// signature (the plan decisions that affect execution), and the plan's
/// super-block size.
type BuiltCandidate<P, S> = Option<(P, S, usize)>;

/// Enumerates, builds, and deduplicates the candidate plans for one sweep.
/// Candidate 0 is always the heuristic baseline.
fn enumerate_candidates<P, S: PartialEq>(
    cfg: &TuningConfig,
    build: &dyn Fn(&TuningConfig) -> BuiltCandidate<P, S>,
) -> Vec<Candidate<P>> {
    let base = TuningConfig {
        tune: TunePolicy::Heuristic,
        plan_cache: PlanCachePolicy::Bypass,
        ..cfg.clone()
    };
    let mut out: Vec<Candidate<P>> = Vec::new();
    let mut sigs: Vec<S> = Vec::new();
    let Some((plan, sig, gp0)) = build(&base) else {
        return out;
    };
    out.push(Candidate {
        plan,
        pack_code: pack_code(base.pack),
        l1_fraction: base.l1_budget_fraction,
        group_packs: gp0,
        records_gp: false,
    });
    sigs.push(sig);

    let mut specs: Vec<(TuningConfig, bool)> = Vec::new();
    for pack in [PackPolicy::Auto, PackPolicy::Always, PackPolicy::Never] {
        if pack != base.pack {
            specs.push((TuningConfig { pack, ..base.clone() }, false));
        }
    }
    // The L1-fraction candidate list comes from the kernel registry row
    // for the plan's vector width: wider backends keep more live registers
    // per pack, shifting where the packed-working-set sweet spot sits, so
    // their rows expose a deeper fraction ladder.
    for &frac in iatf_kernels::row_for(cfg.width).l1_fractions {
        if (frac - base.l1_budget_fraction).abs() > 1e-9 {
            specs.push((
                TuningConfig {
                    l1_budget_fraction: frac,
                    ..base.clone()
                },
                true,
            ));
        }
    }
    for gp in [gp0 / 2, gp0 * 2] {
        if gp >= 1 && gp != gp0 {
            specs.push((
                TuningConfig {
                    batch: BatchPolicy::Fixed(gp),
                    ..base.clone()
                },
                true,
            ));
        }
    }
    for (ccfg, records_gp) in specs {
        if let Some((plan, sig, gp)) = build(&ccfg) {
            if !sigs.contains(&sig) {
                sigs.push(sig);
                out.push(Candidate {
                    plan,
                    pack_code: pack_code(ccfg.pack),
                    l1_fraction: ccfg.l1_budget_fraction,
                    group_packs: gp,
                    records_gp,
                });
            }
        }
    }
    out
}

fn record_winner<P>(
    db: &TuningDb,
    key: TuneKey,
    winner: &Candidate<P>,
    report: &SweepReport,
    flops: f64,
    parallel: bool,
    provenance: iatf_tune::Provenance,
) {
    let entry = TunedEntry {
        pack: winner.pack_code,
        group_packs: if winner.records_gp {
            winner.group_packs as u64
        } else {
            0
        },
        l1_fraction: winner.l1_fraction,
        parallel,
        tuned_gflops: flops / (report.secs[report.winner] * 1e9),
        heuristic_gflops: flops / (report.secs[0] * 1e9),
        noise: report.noise,
        provenance,
    };
    db.record(key, entry);
}

fn unix_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Journal probe for a sweep that is about to measure: returns the
/// `sweep_start` event id (0 when the journal is off). Cause is ambient,
/// so a retune-triggered sweep links back to its drift event while a
/// first-touch sweep is a root.
fn journal_sweep_start(key: &TuneKey, budget_ms: u64, candidates: usize) -> u64 {
    if !iatf_journal::is_enabled() {
        return 0;
    }
    iatf_journal::publish(
        iatf_journal::EventKind::SweepStart,
        &key.encode(),
        0,
        obs::Json::object()
            .set("budget_ms", budget_ms)
            .set("candidates", candidates as u64),
    )
}

/// Journal probes for a finished sweep: one `sweep_candidate` event per
/// measured configuration and the `sweep_winner` (noise, rep counts,
/// host/µarch/width fingerprint), all caused by `sweep_event`. Returns
/// the provenance to stamp into the recorded entry (zeros when off).
fn journal_sweep_outcome<P>(
    key: &TuneKey,
    width: VecWidth,
    cands: &[Candidate<P>],
    report: &SweepReport,
    parallel: bool,
    flops: f64,
    sweep_event: u64,
) -> iatf_tune::Provenance {
    if !iatf_journal::is_enabled() {
        return iatf_tune::Provenance::default();
    }
    let kstr = key.encode();
    for (i, cand) in cands.iter().enumerate() {
        iatf_journal::publish(
            iatf_journal::EventKind::SweepCandidate,
            &kstr,
            sweep_event,
            obs::Json::object()
                .set("index", i as u64)
                .set("pack", u64::from(cand.pack_code))
                .set("l1_fraction", cand.l1_fraction)
                .set("group_packs", cand.group_packs as u64)
                .set("secs", report.secs[i])
                .set("winner", i == report.winner),
        );
    }
    let row = iatf_kernels::row_for(width);
    let host = iatf_journal::host_fingerprint(row.uarch, row.width.name());
    let winner_event = iatf_journal::publish(
        iatf_journal::EventKind::SweepWinner,
        &kstr,
        sweep_event,
        obs::Json::object()
            .set("winner", report.winner as u64)
            .set("candidates", cands.len() as u64)
            .set("noise", report.noise)
            .set("rounds", report.rounds as u64)
            .set("iters", report.iters as u64)
            .set("parallel", parallel)
            .set("tuned_gflops", flops / (report.secs[report.winner] * 1e9))
            .set("uarch", row.uarch)
            .set("width", row.width.name())
            .set("host", format!("{host:016x}").as_str()),
    );
    iatf_tune::Provenance {
        journal_event: winner_event,
        host,
        recorded_at: unix_secs(),
    }
}

/// Drift remediation for a GEMM input: if the watch layer flagged this
/// key, evict its stale tuning-db entry — bumping the db generation,
/// which invalidates every cached plan keyed on it — re-sweep within the
/// watch retune budget (`IATF_WATCH_RETUNE_MS`), and hand the fresh
/// measurement back so the drift chart re-arms. Compiles to nothing
/// unless the `watch` feature is on; never runs under the `Heuristic`
/// policy (there is no db entry to refresh).
pub fn maybe_retune_gemm<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    cfg: &TuningConfig,
) {
    if !iatf_watch::is_enabled() || matches!(cfg.tune, TunePolicy::Heuristic) {
        return;
    }
    if dims.validate().is_err() || count == 0 {
        return;
    }
    let key = gemm_tune_key::<E>(dims, mode, conj_a, conj_b, count, cfg.width);
    let Some(drift_event) = iatf_watch::take_retune_cause(&key) else {
        return;
    };
    obs::count_tune(obs::TuneEvent::Retune);
    // Everything the remediation does — eviction, re-sweep, envelope
    // re-arm — journals under the drift event that triggered it.
    let _cause = iatf_journal::cause_scope(drift_event);
    let db = TuningDb::global();
    db.remove(&key);
    let budget = iatf_watch::retune_budget_ms();
    sweep_gemm::<E>(db, key, dims, mode, conj_a, conj_b, count, budget, cfg);
    let outcome = db.lookup(&key);
    journal_retune(&key, drift_event, outcome.as_ref());
    match outcome {
        Some(entry) => iatf_watch::note_retuned(&key, entry.tuned_gflops, entry.noise),
        None => iatf_watch::note_retuned(&key, 0.0, 0.0),
    }
}

/// Journal probe for a finished retune: records whether the re-sweep
/// produced a fresh winner, caused by the drift event that demanded it.
fn journal_retune(key: &TuneKey, drift_event: u64, outcome: Option<&TunedEntry>) {
    if !iatf_journal::is_enabled() {
        return;
    }
    iatf_journal::publish(
        iatf_journal::EventKind::Retune,
        &key.encode(),
        drift_event,
        obs::Json::object()
            .set("rerecorded", outcome.is_some())
            .set("tuned_gflops", outcome.map_or(0.0, |e| e.tuned_gflops))
            .set("noise", outcome.map_or(0.0, |e| e.noise)),
    );
}

/// Runs the first-touch sweep for a GEMM input if `cfg.tune` asks for one
/// and the db has no entry yet. Returns whether a tuned entry exists for
/// the key afterwards. The one-shot API calls this before planning; the
/// benchmark harness calls it directly to drive tuning.
pub fn ensure_tuned_gemm<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    cfg: &TuningConfig,
) -> bool {
    let TunePolicy::FirstTouch(budget_ms) = cfg.tune else {
        return false;
    };
    if dims.validate().is_err() || count == 0 {
        return false;
    }
    let key = gemm_tune_key::<E>(dims, mode, conj_a, conj_b, count, cfg.width);
    let db = TuningDb::global();
    if db.lookup(&key).is_none() {
        sweep_gemm::<E>(db, key, dims, mode, conj_a, conj_b, count, budget_ms, cfg);
    }
    db.lookup(&key).is_some()
}

#[allow(clippy::too_many_arguments)]
fn sweep_gemm<E: CompactElement>(
    db: &TuningDb,
    key: TuneKey,
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    budget_ms: u64,
    cfg: &TuningConfig,
) {
    obs::count_tune(obs::TuneEvent::Sweep);
    let _trace = trace::span_arg(trace::SpanKind::TuneSweep, count as u64);
    let scalar = core::mem::size_of::<E>();
    let per_matrix = (dims.m * dims.k + dims.k * dims.n + dims.m * dims.n) * scalar;
    let mcount = measure_count(per_matrix, count);
    let cands = enumerate_candidates(cfg, &|c: &TuningConfig| {
        GemmPlan::<E>::new(dims, mode, conj_a, conj_b, mcount, c)
            .ok()
            .map(|p| {
                let sig = (p.a_plan, p.b_plan, p.group_packs);
                let gp = p.group_packs;
                (p, sig, gp)
            })
    });
    if cands.is_empty() {
        return;
    }
    let jsweep = journal_sweep_start(&key, budget_ms, cands.len());
    let (ar, ac) = dims.a_shape(mode);
    let (br, bc) = dims.b_shape(mode);
    let a = CompactBatch::<E>::from_std_at(&StdBatch::random(ar, ac, mcount, 0xA11CE), cfg.width);
    let b = CompactBatch::<E>::from_std_at(&StdBatch::random(br, bc, mcount, 0xB0B), cfg.width);
    let c = RefCell::new(CompactBatch::<E>::zeroed_at(dims.m, dims.n, mcount, cfg.width));
    // β = 0 overwrites C every invocation, so repeated timing reps cannot
    // accumulate (values stay bounded by the random [0,1) inputs).
    let (alpha, beta) = (E::one(), E::zero());
    let report = {
        let mut runners: Vec<Box<dyn FnMut() + '_>> = cands
            .iter()
            .map(|cand| {
                let (a, b, c) = (&a, &b, &c);
                Box::new(move || {
                    let _ = cand.plan.execute(alpha, a, b, beta, &mut c.borrow_mut());
                }) as Box<dyn FnMut() + '_>
            })
            .collect();
        sweep(Duration::from_millis(budget_ms.max(1)), &mut runners)
    };
    let winner = &cands[report.winner];
    #[cfg(not(feature = "parallel"))]
    let parallel = false;
    #[cfg(feature = "parallel")]
    let parallel = {
        let mut runners: Vec<Box<dyn FnMut() + '_>> = vec![
            Box::new(|| {
                let _ = winner.plan.execute(alpha, &a, &b, beta, &mut c.borrow_mut());
            }),
            Box::new(|| {
                let _ = winner
                    .plan
                    .execute_parallel(alpha, &a, &b, beta, &mut c.borrow_mut());
            }),
        ];
        let rep = sweep(Duration::from_millis((budget_ms / 2).max(1)), &mut runners);
        rep.winner == 1 && rep.strictly_faster(1, 0)
    };
    let flops = E::DTYPE.flops_per_mac() as f64 * dims.macs() as f64 * mcount as f64;
    let provenance = journal_sweep_outcome(&key, cfg.width, &cands, &report, parallel, flops, jsweep);
    record_winner(db, key, winner, &report, flops, parallel, provenance);
}

macro_rules! triangular_tuner {
    ($ensure:ident, $retune:ident, $sweepfn:ident, $plan:ident, $keyfn:ident, $ensure_doc:literal) => {
        /// Drift remediation twin of [`maybe_retune_gemm`] for this
        /// triangular op: evict-and-resweep when the watch layer flagged
        /// the key.
        pub fn $retune<E: CompactElement>(
            dims: TrsmDims,
            mode: TrsmMode,
            conj: bool,
            count: usize,
            cfg: &TuningConfig,
        ) {
            if !iatf_watch::is_enabled() || matches!(cfg.tune, TunePolicy::Heuristic) {
                return;
            }
            if dims.validate().is_err() || count == 0 {
                return;
            }
            let key = $keyfn::<E>(dims, mode, conj, count, cfg.width);
            let Some(drift_event) = iatf_watch::take_retune_cause(&key) else {
                return;
            };
            obs::count_tune(obs::TuneEvent::Retune);
            // Journal the whole remediation under the triggering drift.
            let _cause = iatf_journal::cause_scope(drift_event);
            let db = TuningDb::global();
            db.remove(&key);
            let budget = iatf_watch::retune_budget_ms();
            $sweepfn::<E>(db, key, dims, mode, conj, count, budget, cfg);
            let outcome = db.lookup(&key);
            journal_retune(&key, drift_event, outcome.as_ref());
            match outcome {
                Some(entry) => iatf_watch::note_retuned(&key, entry.tuned_gflops, entry.noise),
                None => iatf_watch::note_retuned(&key, 0.0, 0.0),
            }
        }

        #[doc = $ensure_doc]
        /// and the db has no entry yet. Returns whether a tuned entry
        /// exists for the key afterwards.
        pub fn $ensure<E: CompactElement>(
            dims: TrsmDims,
            mode: TrsmMode,
            conj: bool,
            count: usize,
            cfg: &TuningConfig,
        ) -> bool {
            let TunePolicy::FirstTouch(budget_ms) = cfg.tune else {
                return false;
            };
            if dims.validate().is_err() || count == 0 {
                return false;
            }
            let key = $keyfn::<E>(dims, mode, conj, count, cfg.width);
            let db = TuningDb::global();
            if db.lookup(&key).is_none() {
                $sweepfn::<E>(db, key, dims, mode, conj, count, budget_ms, cfg);
            }
            db.lookup(&key).is_some()
        }

        #[allow(clippy::too_many_arguments)]
        fn $sweepfn<E: CompactElement>(
            db: &TuningDb,
            key: TuneKey,
            dims: TrsmDims,
            mode: TrsmMode,
            conj: bool,
            count: usize,
            budget_ms: u64,
            cfg: &TuningConfig,
        ) {
            obs::count_tune(obs::TuneEvent::Sweep);
            let _trace = trace::span_arg(trace::SpanKind::TuneSweep, count as u64);
            let q = dims.triangle_order(mode);
            let scalar = core::mem::size_of::<E>();
            let per_matrix = (q * q + dims.m * dims.n) * scalar;
            let mcount = measure_count(per_matrix, count);
            let cands = enumerate_candidates(cfg, &|c: &TuningConfig| {
                $plan::<E>::new(dims, mode, conj, mcount, c).ok().map(|p| {
                    let sig = (p.pack_b_structural, p.group_packs);
                    let gp = p.group_packs;
                    (p, sig, gp)
                })
            });
            if cands.is_empty() {
                return;
            }
            let jsweep = journal_sweep_start(&key, budget_ms, cands.len());
            // Identity A makes the repeated in-place solve/multiply a
            // bitwise fixed point: X = 1·B every rep, no drift, no
            // overflow, regardless of how many timing iterations run.
            let mut a = CompactBatch::<E>::from_std_at(
                &StdBatch::from_fn(q, q, mcount, |_, i, j| {
                    if i == j {
                        E::one()
                    } else {
                        E::zero()
                    }
                }),
                cfg.width,
            );
            a.pad_triangle_identity();
            let b = RefCell::new(CompactBatch::<E>::from_std_at(
                &StdBatch::random(dims.m, dims.n, mcount, 0xF1D0),
                cfg.width,
            ));
            let alpha = E::one();
            let report = {
                let mut runners: Vec<Box<dyn FnMut() + '_>> = cands
                    .iter()
                    .map(|cand| {
                        let (a, b) = (&a, &b);
                        Box::new(move || {
                            let _ = cand.plan.execute(alpha, a, &mut b.borrow_mut());
                        }) as Box<dyn FnMut() + '_>
                    })
                    .collect();
                sweep(Duration::from_millis(budget_ms.max(1)), &mut runners)
            };
            let winner = &cands[report.winner];
            #[cfg(not(feature = "parallel"))]
            let parallel = false;
            #[cfg(feature = "parallel")]
            let parallel = {
                let mut runners: Vec<Box<dyn FnMut() + '_>> = vec![
                    Box::new(|| {
                        let _ = winner.plan.execute(alpha, &a, &mut b.borrow_mut());
                    }),
                    Box::new(|| {
                        let _ = winner.plan.execute_parallel(alpha, &a, &mut b.borrow_mut());
                    }),
                ];
                let rep = sweep(Duration::from_millis((budget_ms / 2).max(1)), &mut runners);
                rep.winner == 1 && rep.strictly_faster(1, 0)
            };
            let flops = E::DTYPE.flops_per_mac() as f64 * dims.macs(mode) as f64 * mcount as f64;
            let provenance =
                journal_sweep_outcome(&key, cfg.width, &cands, &report, parallel, flops, jsweep);
            record_winner(db, key, winner, &report, flops, parallel, provenance);
        }
    };
}

triangular_tuner!(
    ensure_tuned_trsm,
    maybe_retune_trsm,
    sweep_trsm,
    TrsmPlan,
    trsm_tune_key,
    "Runs the first-touch sweep for a TRSM input if `cfg.tune` asks for one"
);

triangular_tuner!(
    ensure_tuned_trmm,
    maybe_retune_trmm,
    sweep_trmm,
    TrmmPlan,
    trmm_tune_key,
    "Runs the first-touch sweep for a TRMM input if `cfg.tune` asks for one"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinguish_ops_and_inputs() {
        let gd = GemmDims::new(8, 8, 8);
        let td = TrsmDims::new(8, 8);
        let tmode = TrsmMode::all()[0];
        let w = VecWidth::W128;
        let gk = gemm_tune_key::<f32>(gd, GemmMode::NN, false, false, 100, w);
        let sk = trsm_tune_key::<f32>(td, tmode, false, 100, w);
        let mk = trmm_tune_key::<f32>(td, tmode, false, 100, w);
        assert_ne!(gk, sk);
        assert_ne!(sk, mk);
        assert_ne!(
            gk,
            gemm_tune_key::<f64>(gd, GemmMode::NN, false, false, 100, w)
        );
        assert_ne!(
            gk,
            gemm_tune_key::<f32>(gd, GemmMode::NT, false, false, 100, w)
        );
        assert_ne!(
            gk,
            gemm_tune_key::<f32>(gd, GemmMode::NN, true, false, 100, w)
        );
        assert_ne!(
            gk,
            gemm_tune_key::<f32>(gd, GemmMode::NN, false, false, 101, w)
        );
        // A db entry recorded at one vector width never answers for
        // another: the width is part of the key itself.
        for other in VecWidth::ALL {
            if other != w {
                assert_ne!(
                    gk,
                    gemm_tune_key::<f32>(gd, GemmMode::NN, false, false, 100, other)
                );
            }
        }
        // Keys round-trip through the db's string encoding.
        assert_eq!(TuneKey::decode(&gk.encode()), Some(gk));
        assert_eq!(TuneKey::decode(&mk.encode()), Some(mk));
    }

    #[test]
    fn heuristic_policy_never_consults_the_db() {
        let cfg = TuningConfig::default(); // tune: Heuristic
        assert!(lookup_gemm::<f32>(
            GemmDims::new(4, 4, 4),
            GemmMode::NN,
            false,
            false,
            64,
            &cfg
        )
        .is_none());
        assert!(!ensure_tuned_gemm::<f32>(
            GemmDims::new(4, 4, 4),
            GemmMode::NN,
            false,
            false,
            64,
            &cfg
        ));
    }

    #[test]
    fn measure_count_caps_large_groups_and_floors_small_ones() {
        // Large input: capped well below the requested count.
        let c = measure_count(32 * 32 * 3 * 8, 1_000_000);
        assert!((MEASURE_MIN_COUNT..1_000_000).contains(&c));
        // Small input: floor kicks in but never exceeds the real count.
        assert_eq!(measure_count(4 * 4 * 3 * 4, 16), 16);
        assert_eq!(measure_count(usize::MAX, 1_000), MEASURE_MIN_COUNT);
    }

    #[test]
    fn entry_decisions_round_trip() {
        let d = decision_from(TunedEntry {
            pack: 2,
            group_packs: 16,
            l1_fraction: 0.5,
            parallel: true,
            tuned_gflops: 1.0,
            heuristic_gflops: 1.0,
            noise: 0.0,
            provenance: Default::default(),
        });
        assert_eq!(d.pack, Some(PackPolicy::Never));
        assert_eq!(d.group_packs, Some(16));
        assert!(d.parallel);
        // group_packs == 0 means "keep the heuristic".
        let d = decision_from(TunedEntry {
            pack: 0,
            group_packs: 0,
            l1_fraction: 0.5,
            parallel: false,
            tuned_gflops: 1.0,
            heuristic_gflops: 1.0,
            noise: 0.0,
            provenance: Default::default(),
        });
        assert_eq!(d.pack, Some(PackPolicy::Auto));
        assert_eq!(d.group_packs, None);
        assert!(!d.parallel);
    }
}
