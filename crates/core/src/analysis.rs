//! Kernel-size analysis (paper §4.2.1, Eqs. 2–3) and the Figure-4 tiling
//! comparison.
//!
//! The install-time stage picks the main kernel size by maximizing the
//! compute-to-memory-access ratio (CMAR) subject to fitting the 32-register
//! SIMD file, with registers reserved for the ping-pong double buffering:
//!
//! * real: maximize `m·n / (m+n)` s.t. `2m + 2n + m·n ≤ 32` → `(4, 4)`;
//! * complex: maximize `4·m·n / 2(m+n)` s.t. `4m + 4n + 2·m·n ≤ 32` →
//!   `(3, 2)` (or its transpose).

/// Number of architectural SIMD registers (ARMv8: V0–V31).
pub const SIMD_REGISTERS: usize = 32;

/// Compute-to-memory-access ratio of a real `m × n` kernel (Eq. 2):
/// `m·n` FMAs per `m + n` loads per K step.
pub fn cmar_real(m: usize, n: usize) -> f64 {
    (m * n) as f64 / (m + n) as f64
}

/// CMAR of a complex `m × n` kernel (Eq. 3): `4·m·n` FMA-class ops per
/// `2(m + n)` vector loads per K step.
pub fn cmar_complex(m: usize, n: usize) -> f64 {
    (4 * m * n) as f64 / (2 * (m + n)) as f64
}

/// Vector registers a real kernel occupies: double-buffered A (`2m`) and B
/// (`2n`) plus the C accumulator (`m·n`).
pub fn real_register_cost(m: usize, n: usize) -> usize {
    2 * m + 2 * n + m * n
}

/// Vector registers a complex kernel occupies: split re/im doubles
/// everything (`4m + 4n + 2·m·n`).
pub fn complex_register_cost(m: usize, n: usize) -> usize {
    4 * m + 4 * n + 2 * m * n
}

/// Exhaustively finds the CMAR-optimal real kernel size under the register
/// constraint. Ties break toward larger `m·n`, then larger `m` (the paper
/// reports the symmetric (4, 4)).
pub fn optimal_real_kernel() -> (usize, usize) {
    optimal_by(cmar_real, real_register_cost)
}

/// Exhaustively finds the CMAR-optimal complex kernel size; the paper's
/// (3, 2) — (2, 3) is the equal-CMAR transpose.
pub fn optimal_complex_kernel() -> (usize, usize) {
    optimal_by(cmar_complex, complex_register_cost)
}

fn optimal_by(cmar: fn(usize, usize) -> f64, cost: fn(usize, usize) -> usize) -> (usize, usize) {
    let mut best = (1, 1);
    let mut best_cmar = f64::MIN;
    for m in 1..=SIMD_REGISTERS {
        for n in 1..=SIMD_REGISTERS {
            if cost(m, n) > SIMD_REGISTERS {
                continue;
            }
            let c = cmar(m, n);
            let better = c > best_cmar + 1e-12
                || ((c - best_cmar).abs() <= 1e-12
                    && (m * n > best.0 * best.1 || (m * n == best.0 * best.1 && m > best.0)));
            if better {
                best_cmar = c;
                best = (m, n);
            }
        }
    }
    best
}

/// Largest triangle order that fits the register file for the TRSM
/// register-resident solve: `M(M+1)/2` triangle registers plus `2M`
/// double-buffered B registers must fit (§4.2.2) → 5.
pub fn trsm_register_capacity() -> usize {
    let mut m = 1;
    while (m + 1) * (m + 2) / 2 + 2 * (m + 1) <= SIMD_REGISTERS {
        m += 1;
    }
    m
}

/// One tile of a kernel decomposition (Figure 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Top-left row.
    pub i0: usize,
    /// Top-left column.
    pub j0: usize,
    /// Tile height.
    pub h: usize,
    /// Tile width.
    pub w: usize,
}

/// Greedy row/column tiling of an `m × n` C matrix by a main kernel of
/// `mr × nr` with remainder tiles, as both the traditional layout (Figure
/// 4a, `mr = 12, nr = 8` for NEON sgemm) and the compact layout (Figure 4b,
/// `mr = nr = 4`) decompose it.
pub fn tile_decomposition(m: usize, n: usize, mr: usize, nr: usize) -> Vec<Tile> {
    let mut tiles = Vec::new();
    let mut i0 = 0;
    while i0 < m {
        let h = mr.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let w = nr.min(n - j0);
            tiles.push(Tile { i0, j0, h, w });
            j0 += w;
        }
        i0 += h;
    }
    tiles
}

/// Fraction of a decomposition's tiles that are full main-kernel tiles,
/// weighted by area — the Figure-4 argument that smaller compact kernels
/// shrink the edge-processing share.
pub fn main_kernel_area_fraction(m: usize, n: usize, mr: usize, nr: usize) -> f64 {
    let tiles = tile_decomposition(m, n, mr, nr);
    let main_area: usize = tiles
        .iter()
        .filter(|t| t.h == mr && t.w == nr)
        .map(|t| t.h * t.w)
        .sum();
    main_area as f64 / (m * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_optimum_is_4x4() {
        assert_eq!(optimal_real_kernel(), (4, 4));
        assert_eq!(real_register_cost(4, 4), 32);
        assert!((cmar_real(4, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq3_optimum_is_3x2() {
        let (m, n) = optimal_complex_kernel();
        assert!((m, n) == (3, 2) || (m, n) == (2, 3));
        assert!(complex_register_cost(3, 2) <= 32);
        let (a, b) = (cmar_complex(3, 2), cmar_complex(2, 3));
        assert!((a - b).abs() < 1e-12);
        assert!((cmar_complex(3, 2) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn no_feasible_kernel_beats_the_optimum() {
        for m in 1..=32 {
            for n in 1..=32 {
                if real_register_cost(m, n) <= 32 {
                    assert!(cmar_real(m, n) <= cmar_real(4, 4) + 1e-12, "({m},{n})");
                }
                if complex_register_cost(m, n) <= 32 {
                    assert!(cmar_complex(m, n) <= cmar_complex(3, 2) + 1e-12, "({m},{n})");
                }
            }
        }
    }

    #[test]
    fn trsm_capacity_is_5() {
        assert_eq!(trsm_register_capacity(), 5);
        // the paper's arithmetic: 15 + 10 = 25 ≤ 32, but M=6 needs 21+12=33.
        let m6 = 6 * 7 / 2 + 2 * 6;
        assert!(m6 > SIMD_REGISTERS);
    }

    #[test]
    fn fig4_15x15_decomposition() {
        // Compact tiling of 15×15 sgemm uses 4×4, 4×3, 3×4 and 3×3 kernels
        // only (paper: "we can use 4×4, 4×3, 3×4, and 3×3 kernels to solve
        // 15×15 compact GEMM").
        let tiles = tile_decomposition(15, 15, 4, 4);
        let mut sizes: Vec<(usize, usize)> = tiles.iter().map(|t| (t.h, t.w)).collect();
        sizes.sort();
        sizes.dedup();
        assert_eq!(sizes, vec![(3, 3), (3, 4), (4, 3), (4, 4)]);
        // coverage is exact
        let area: usize = tiles.iter().map(|t| t.h * t.w).sum();
        assert_eq!(area, 225);
    }

    #[test]
    fn compact_tiling_has_less_edge_area_than_traditional() {
        // Figure 4: traditional NEON sgemm (12×8 main kernel) vs compact
        // (4×4) on 15×15 — the compact decomposition's main-kernel share is
        // much higher.
        let traditional = main_kernel_area_fraction(15, 15, 12, 8);
        let compact = main_kernel_area_fraction(15, 15, 4, 4);
        assert!(compact > traditional);
        assert!(compact >= 0.5, "compact {compact}");
        assert!(traditional <= 0.5, "traditional {traditional}");
    }

    #[test]
    fn decomposition_covers_without_overlap() {
        for (m, n) in [(1, 1), (5, 7), (16, 16), (33, 33), (13, 2)] {
            let tiles = tile_decomposition(m, n, 4, 4);
            let mut covered = vec![false; m * n];
            for t in &tiles {
                for i in t.i0..t.i0 + t.h {
                    for j in t.j0..t.j0 + t.w {
                        assert!(!covered[i * n + j], "overlap at ({i},{j})");
                        covered[i * n + j] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "{m}x{n} not covered");
        }
    }
}
