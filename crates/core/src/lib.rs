//! # IATF — Input-Aware Tuning Framework for compact batched BLAS
//!
//! A reproduction of *"IATF: An Input-Aware Tuning Framework for Compact
//! BLAS Based on ARMv8 CPUs"* (ICPP 2022): high-performance GEMM and TRSM
//! over large groups of fixed-size small matrices stored in the
//! SIMD-friendly compact layout.
//!
//! ## Architecture
//!
//! * **Install-time stage** — the generated kernel set lives in
//!   `iatf-kernels` (Table 1 sizes, ping-pong pipelined), the packing
//!   kernels in `iatf-pack`, and the assembly-generation model (templates,
//!   scheduling optimizer, pipeline model) in `iatf-codegen`. The
//!   [`analysis`] module derives the CMAR-optimal kernel sizes (Eqs. 2–3).
//! * **Run-time stage** — [`plan::GemmPlan`]/[`plan::TrsmPlan`] implement
//!   the Batch Counter, Pack Selecter, and Execution Plan Generator (§5),
//!   keyed on the input matrix properties (size, transpose, side, uplo,
//!   diag) and the machine's L1 capacity.
//!
//! ## Quick start
//!
//! ```
//! use iatf_core::{compact_gemm, TuningConfig};
//! use iatf_layout::{CompactBatch, GemmMode, StdBatch};
//!
//! // 10,000 independent 8×8 sgemm problems.
//! let a = CompactBatch::from_std(&StdBatch::<f32>::random(8, 8, 10_000, 1));
//! let b = CompactBatch::from_std(&StdBatch::<f32>::random(8, 8, 10_000, 2));
//! let mut c = CompactBatch::<f32>::zeroed(8, 8, 10_000);
//! compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &TuningConfig::host()).unwrap();
//! ```

#![warn(missing_docs)]
// planner loops index tile tables; BLAS-style entry points are wide
#![allow(clippy::needless_range_loop, clippy::too_many_arguments, clippy::manual_is_multiple_of)]

pub mod analysis;
pub mod api;
pub mod autotune;
pub mod config;
pub mod elem;
pub mod machine;
pub mod plan;
pub(crate) mod sync;

/// Observability layer: plan explainers are always live; the counters and
/// phase timers wired through the planner/executor become real (atomic,
/// monotonic-clocked) only with the `obs` cargo feature — otherwise every
/// probe is an empty `#[inline(always)]` body.
pub use iatf_obs as obs;

/// Re-export of the flight-recorder / PMU / roofline instrumentation layer,
/// so downstream users can drain and export traces without naming the crate.
/// The span probes wired through the planner/executor record only with the
/// `trace` cargo feature — otherwise every guard is a zero-sized no-op.
pub use iatf_trace as trace;

/// Re-export of the always-on monitoring layer, `iatf-watch`: per
/// shape-class dispatch telemetry, performance envelopes, drift
/// detection, and retune remediation. The dispatch probes wired through
/// the one-shot API record only with the `watch` cargo feature —
/// otherwise the guard is a zero-sized no-op and the retune poll is a
/// constant `false`.
pub use iatf_watch as watch;

/// Re-export of the provenance journal, `iatf-journal`: the causal event
/// ledger linking plan builds, cache activity, autotune sweeps, recorded
/// winners, envelope seeds, drift events, and retune outcomes. The probe
/// sites wired through the planner cache, autotuner, and watch layer
/// publish only with the `journal` cargo feature — otherwise `publish()`
/// is a constant 0 and payload construction is skipped entirely.
pub use iatf_journal as journal;

pub use analysis::{cmar_complex, cmar_real, optimal_complex_kernel, optimal_real_kernel};
pub use api::{
    compact_gemm, compact_gemm_ex, compact_trmm, compact_trmm_ex, compact_trsm, compact_trsm_ex,
    std_gemm_via_compact, std_trsm_via_compact,
};
pub use autotune::{
    ensure_tuned_gemm, ensure_tuned_trmm, ensure_tuned_trsm, gemm_tune_key, maybe_retune_gemm,
    maybe_retune_trmm, maybe_retune_trsm, trmm_tune_key, trsm_tune_key,
};
pub use config::{BatchPolicy, PackPolicy, PlanCachePolicy, TunePolicy, TuningConfig};
pub use elem::CompactElement;
pub use machine::{host_profile, MachineProfile, KUNPENG_920, XEON_6240};
pub use plan::{Command, GemmPlan, PlanCacheStats, TrmmPlan, TrsmPlan};
