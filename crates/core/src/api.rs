//! Public entry points.
//!
//! The one-shot functions plan and execute in a single call. Under the
//! default [`PlanCachePolicy::Shared`](crate::config::PlanCachePolicy)
//! they consult the process-wide [plan cache](crate::plan::cache), so
//! repeated same-shape calls reuse the plan built by the first one — the
//! run-time stage "only generates this execution plan at the beginning"
//! (§5.3), amortized across calls. Callers that manage plan lifetimes
//! themselves build a [`GemmPlan`]/[`TrsmPlan`] directly and call
//! `execute` repeatedly, or set `PlanCachePolicy::Bypass`.

use crate::autotune;
use crate::config::{PlanCachePolicy, TunePolicy, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{cache, GemmPlan, TrmmPlan, TrsmPlan};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, LayoutError, StdBatch, Trans, TrsmDims, TrsmMode};

/// Runs a GEMM plan with the tuned serial/parallel crossover: plans whose
/// tuned entry measured parallel execution faster dispatch to the rayon
/// executor (when the `parallel` feature is on), everything else takes
/// the serial path. Both paths produce bit-identical results.
fn run_gemm<E: CompactElement>(
    plan: &GemmPlan<E>,
    alpha: E,
    a: &CompactBatch<E>,
    b: &CompactBatch<E>,
    beta: E,
    c: &mut CompactBatch<E>,
) -> Result<(), LayoutError> {
    #[cfg(feature = "parallel")]
    if plan.use_parallel() {
        return plan.execute_parallel(alpha, a, b, beta, c);
    }
    plan.execute(alpha, a, b, beta, c)
}

/// TRSM twin of [`run_gemm`].
fn run_trsm<E: CompactElement>(
    plan: &TrsmPlan<E>,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
) -> Result<(), LayoutError> {
    #[cfg(feature = "parallel")]
    if plan.use_parallel() {
        return plan.execute_parallel(alpha, a, b);
    }
    plan.execute(alpha, a, b)
}

/// TRMM twin of [`run_gemm`].
fn run_trmm<E: CompactElement>(
    plan: &TrmmPlan<E>,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
) -> Result<(), LayoutError> {
    #[cfg(feature = "parallel")]
    if plan.use_parallel() {
        return plan.execute_parallel(alpha, a, b);
    }
    plan.execute(alpha, a, b)
}

/// Compact batched GEMM: `C = α·op(A)·op(B) + β·C` for every matrix in the
/// group.
///
/// Operands are compact batches of identical group size; `mode` selects
/// NN/NT/TN/TT. Dimensions are inferred from C and `mode`.
///
/// ```
/// use iatf_core::{compact_gemm, TuningConfig};
/// use iatf_layout::{CompactBatch, GemmMode, StdBatch};
///
/// let a = CompactBatch::from_std(&StdBatch::<f32>::random(4, 3, 100, 1));
/// let b = CompactBatch::from_std(&StdBatch::<f32>::random(3, 5, 100, 2));
/// let mut c = CompactBatch::<f32>::zeroed(4, 5, 100);
/// compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &TuningConfig::host()).unwrap();
/// ```
pub fn compact_gemm<E: CompactElement>(
    mode: GemmMode,
    alpha: E,
    a: &CompactBatch<E>,
    b: &CompactBatch<E>,
    beta: E,
    c: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    compact_gemm_ex(mode, false, false, alpha, a, b, beta, c, cfg)
}

/// [`compact_gemm`] with explicit conjugation flags (the BLAS `C` transpose
/// variants): `conj_a`/`conj_b` conjugate the respective operand *as
/// stored*, composing with the transpose flag to give `op(A) = conj(A)ᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn compact_gemm_ex<E: CompactElement>(
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    alpha: E,
    a: &CompactBatch<E>,
    b: &CompactBatch<E>,
    beta: E,
    c: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    let k = match mode.transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    let dims = GemmDims::new(c.rows(), c.cols(), k);
    // First-touch tuning runs *before* the plan-cache key is computed, so
    // the key already reflects the post-sweep db generation and the tuned
    // plan is what gets cached. Drift remediation sits in the same spot
    // for the same reason — and both run *before* the watch span opens,
    // so sweep time is never recorded as warm-dispatch latency.
    if matches!(cfg.tune, TunePolicy::FirstTouch(_)) {
        autotune::ensure_tuned_gemm::<E>(dims, mode, conj_a, conj_b, c.count(), cfg);
    }
    autotune::maybe_retune_gemm::<E>(dims, mode, conj_a, conj_b, c.count(), cfg);
    let _watch = iatf_watch::dispatch_span(|| {
        (
            autotune::gemm_tune_key::<E>(dims, mode, conj_a, conj_b, c.count(), cfg.width),
            E::DTYPE.flops_per_mac() as f64 * dims.macs() as f64 * c.count() as f64,
        )
    });
    match cfg.plan_cache {
        PlanCachePolicy::Shared => {
            let plan = cache::cached_gemm_plan::<E>(dims, mode, conj_a, conj_b, c.count(), cfg)?;
            run_gemm(&plan, alpha, a, b, beta, c)
        }
        PlanCachePolicy::Bypass => {
            cache::note_bypass();
            let plan = GemmPlan::<E>::new(dims, mode, conj_a, conj_b, c.count(), cfg)?;
            run_gemm(&plan, alpha, a, b, beta, c)
        }
    }
}

/// Compact batched TRSM: solves `op(A)·X = α·B` (left) or `X·op(A) = α·B`
/// (right) for every matrix in the group; B is overwritten by X.
///
/// `A` must be the full square compact batch of order M (left) or N
/// (right); only the triangle selected by `mode.uplo` is referenced, and
/// with `Diag::Unit` the diagonal is not referenced either.
pub fn compact_trsm<E: CompactElement>(
    mode: TrsmMode,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    compact_trsm_ex(mode, false, alpha, a, b, cfg)
}

/// [`compact_trsm`] with a conjugation flag (conjugate-transpose modes).
pub fn compact_trsm_ex<E: CompactElement>(
    mode: TrsmMode,
    conj: bool,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    let dims = TrsmDims::new(b.rows(), b.cols());
    if matches!(cfg.tune, TunePolicy::FirstTouch(_)) {
        autotune::ensure_tuned_trsm::<E>(dims, mode, conj, b.count(), cfg);
    }
    autotune::maybe_retune_trsm::<E>(dims, mode, conj, b.count(), cfg);
    let _watch = iatf_watch::dispatch_span(|| {
        (
            autotune::trsm_tune_key::<E>(dims, mode, conj, b.count(), cfg.width),
            E::DTYPE.flops_per_mac() as f64 * dims.macs(mode) as f64 * b.count() as f64,
        )
    });
    match cfg.plan_cache {
        PlanCachePolicy::Shared => {
            let plan = cache::cached_trsm_plan::<E>(dims, mode, conj, b.count(), cfg)?;
            run_trsm(&plan, alpha, a, b)
        }
        PlanCachePolicy::Bypass => {
            cache::note_bypass();
            let plan = TrsmPlan::<E>::new(dims, mode, conj, b.count(), cfg)?;
            run_trsm(&plan, alpha, a, b)
        }
    }
}

/// Compact batched TRMM (extension): `B = α·op(A)·B` (left) or
/// `B = α·B·op(A)` (right) with triangular A, B overwritten in place.
///
/// Mode semantics mirror [`compact_trsm`]: only the selected triangle of A
/// is referenced and `Diag::Unit` skips the stored diagonal.
pub fn compact_trmm<E: CompactElement>(
    mode: TrsmMode,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    compact_trmm_ex(mode, false, alpha, a, b, cfg)
}

/// [`compact_trmm`] with a conjugation flag.
pub fn compact_trmm_ex<E: CompactElement>(
    mode: TrsmMode,
    conj: bool,
    alpha: E,
    a: &CompactBatch<E>,
    b: &mut CompactBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    let dims = TrsmDims::new(b.rows(), b.cols());
    if matches!(cfg.tune, TunePolicy::FirstTouch(_)) {
        autotune::ensure_tuned_trmm::<E>(dims, mode, conj, b.count(), cfg);
    }
    autotune::maybe_retune_trmm::<E>(dims, mode, conj, b.count(), cfg);
    let _watch = iatf_watch::dispatch_span(|| {
        (
            autotune::trmm_tune_key::<E>(dims, mode, conj, b.count(), cfg.width),
            E::DTYPE.flops_per_mac() as f64 * dims.macs(mode) as f64 * b.count() as f64,
        )
    });
    match cfg.plan_cache {
        PlanCachePolicy::Shared => {
            let plan = cache::cached_trmm_plan::<E>(dims, mode, conj, b.count(), cfg)?;
            run_trmm(&plan, alpha, a, b)
        }
        PlanCachePolicy::Bypass => {
            cache::note_bypass();
            let plan = TrmmPlan::<E>::new(dims, mode, conj, b.count(), cfg)?;
            run_trmm(&plan, alpha, a, b)
        }
    }
}

/// Convenience: GEMM on standard column-major batches, converting to the
/// compact layout and back around the computation (the MKL-compact usage
/// pattern: pack once, run many compact operations, unpack once — calling
/// this per operation pays the conversion every time and is intended for
/// ease of adoption, not peak performance).
pub fn std_gemm_via_compact<E: CompactElement>(
    mode: GemmMode,
    alpha: E,
    a: &StdBatch<E>,
    b: &StdBatch<E>,
    beta: E,
    c: &mut StdBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    iatf_obs::count_fallback();
    let ca = CompactBatch::from_std(a);
    let cb = CompactBatch::from_std(b);
    let mut cc = CompactBatch::from_std(c);
    compact_gemm(mode, alpha, &ca, &cb, beta, &mut cc, cfg)?;
    cc.unpack_into(c);
    Ok(())
}

/// Convenience: TRSM on standard column-major batches (see
/// [`std_gemm_via_compact`] for the conversion caveat).
pub fn std_trsm_via_compact<E: CompactElement>(
    mode: TrsmMode,
    alpha: E,
    a: &StdBatch<E>,
    b: &mut StdBatch<E>,
    cfg: &TuningConfig,
) -> Result<(), LayoutError> {
    iatf_obs::count_fallback();
    let ca = CompactBatch::from_std(a);
    let mut cb = CompactBatch::from_std(b);
    compact_trsm(mode, alpha, &ca, &mut cb, cfg)?;
    cb.unpack_into(b);
    Ok(())
}
