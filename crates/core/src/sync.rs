//! Atomic-type shim: real `std` atomics by default, `loom` model-checked
//! atomics under `--cfg loom`.
//!
//! The lock-free plan-cache front ([`crate::plan::cache`]) routes every
//! atomic through this module so its invalidation protocol can be driven
//! by the bounded model checker (`RUSTFLAGS="--cfg loom" cargo test -p
//! iatf-core --lib loom`) without the production build paying anything:
//! with the cfg off these are plain re-exports that compile to the exact
//! same code as naming `std::sync::atomic` directly.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
