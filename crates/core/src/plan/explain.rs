//! Shared helpers behind `GemmPlan::explain()` / `TrsmPlan::explain()` /
//! `TrmmPlan::explain()`.
//!
//! The explainer is a cold-path introspection API (never feature-gated): it
//! folds a plan's tile/block/panel tables into [`iatf_obs::TileClass`]
//! multiplicities and, where the install-time stage has a generator for the
//! element type, regenerates each dispatchable kernel to report its Fig. 5
//! scheduling stats ([`iatf_obs::KernelStats`]).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use iatf_codegen::{
    generate_cgemm_kernel, generate_gemm_kernel, generate_trsm_block_kernel,
    generate_trsm_tri_kernel, schedule_stats, DataType, GemmKernelSpec, PipelineModel,
};
use iatf_obs::{KernelStats, TileClass, VerifySummary};
use iatf_simd::DType;
use iatf_verify::{certify, Contract, RuleId};

use crate::plan::gemm::OperandPlan;

/// Scalar precision of an element type, as the codegen IR sees it (the
/// complex kernels are generated over the real lanes of the split layout).
pub(crate) fn scalar_dtype(d: DType) -> DataType {
    match d {
        DType::F32 | DType::C32 => DataType::F32,
        DType::F64 | DType::C64 => DataType::F64,
    }
}

/// Folds a stream of `(mr, nr)` tile sizes into distinct classes with
/// multiplicities, in first-seen order.
pub(crate) fn tile_classes(
    sizes: impl Iterator<Item = (usize, usize)>,
    main: (usize, usize),
) -> Vec<TileClass> {
    let mut classes: Vec<TileClass> = Vec::new();
    for (mr, nr) in sizes {
        match classes.iter_mut().find(|t| (t.mr, t.nr) == (mr, nr)) {
            Some(t) => t.tiles += 1,
            None => classes.push(TileClass {
                mr,
                nr,
                tiles: 1,
                is_main: (mr, nr) == main,
            }),
        }
    }
    classes
}

/// Output-area fraction covered by main-kernel tiles, from the class table.
pub(crate) fn main_area_fraction(classes: &[TileClass], total_area: usize) -> f64 {
    if total_area == 0 {
        return 0.0;
    }
    let main: usize = classes
        .iter()
        .filter(|t| t.is_main)
        .map(|t| t.mr * t.nr * t.tiles)
        .sum();
    main as f64 / total_area as f64
}

/// Pack-decision string for a GEMM operand.
pub(crate) fn operand_str(p: OperandPlan) -> &'static str {
    match p {
        OperandPlan::Packed => "packed",
        OperandPlan::Direct => "direct",
    }
}

fn stats_for(mr: usize, nr: usize, k: usize, p: &iatf_codegen::Program) -> KernelStats {
    let s = schedule_stats(p, &PipelineModel::default());
    KernelStats {
        mr,
        nr,
        k,
        insts: s.insts,
        cycles_before: s.cycles_before,
        cycles_after: s.cycles_after,
        port_bound: s.port_bound,
    }
}

/// Static scheduling stats for every distinct GEMM tile class. Both the
/// real (Algorithm 3) and complex generators exist, so this is total.
pub(crate) fn gemm_kernel_stats(
    d: DType,
    classes: &[TileClass],
    k: usize,
    ldc: usize,
) -> Vec<KernelStats> {
    classes
        .iter()
        .map(|t| {
            let spec = GemmKernelSpec {
                mc: t.mr,
                nc: t.nr,
                k,
                dtype: scalar_dtype(d),
                alpha: 1.0,
                ldc,
            };
            let p = if d.is_complex() {
                generate_cgemm_kernel(&spec)
            } else {
                generate_gemm_kernel(&spec)
            };
            stats_for(t.mr, t.nr, k, &p)
        })
        .collect()
}

/// Plan-time certification depth cap. Kernels deeper than this are not
/// re-certified on every explain (the symbolic pass over a `TRSM` block
/// with thousands of eliminated rows is quadratic in `kk`); the offline
/// `reproduce verify` sweep covers their sequencing classes instead.
const VERIFY_DEPTH_CAP: usize = 128;

/// Process-global memo of certification verdicts, keyed by the full
/// contract (`Debug` form). A plan shape is certified at most once per
/// process no matter how many plans or explains touch it.
fn verdict_cache() -> &'static Mutex<HashMap<String, bool>> {
    static CACHE: OnceLock<Mutex<HashMap<String, bool>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Certifies every dispatchable-kernel contract with `iatf-verify` and
/// folds the verdicts into a [`VerifySummary`]. Verdicts are memoized per
/// process. In debug builds an uncertified kernel is a planner bug and
/// panics with the first diagnostic; release builds report it through the
/// summary.
pub(crate) fn verify_summary(contracts: impl IntoIterator<Item = Contract>) -> VerifySummary {
    let mut s = VerifySummary {
        kernels: 0,
        certified: 0,
        skipped: 0,
        rules: RuleId::ALL.len() as u64,
    };
    let model = PipelineModel::default();
    for c in contracts {
        let depth = match c {
            Contract::Gemm { k, .. } | Contract::CplxGemm { k, .. } => k,
            Contract::TrsmBlock { kk, .. } | Contract::TrmmBlock { kk, .. } => kk,
            Contract::TrsmTri { .. } => 0,
        };
        if depth > VERIFY_DEPTH_CAP {
            s.skipped += 1;
            continue;
        }
        s.kernels += 1;
        let key = format!("{c:?}");
        let mut cache = verdict_cache().lock().unwrap();
        let ok = match cache.get(&key) {
            Some(&ok) => ok,
            None => {
                let v = certify(&c, &model);
                debug_assert!(
                    v.certified(),
                    "planner built an uncertified kernel {}: {}",
                    v.label,
                    v.diagnostics[0].headline()
                );
                cache.insert(key, v.certified());
                v.certified()
            }
        };
        drop(cache);
        if ok {
            s.certified += 1;
        }
    }
    s
}

/// The verification contracts behind [`gemm_kernel_stats`]: one per
/// distinct tile class, at the plan's depth, with a non-trivial `alpha` so
/// the SAVE scaling stays semantically visible.
pub(crate) fn gemm_contracts(
    d: DType,
    classes: &[TileClass],
    k: usize,
    ldc: usize,
) -> Vec<Contract> {
    let dtype = scalar_dtype(d);
    classes
        .iter()
        .map(|t| {
            if d.is_complex() {
                Contract::CplxGemm {
                    mc: t.mr,
                    nc: t.nr,
                    k,
                    alpha: iatf_verify::ALPHA,
                    ldc,
                    dtype,
                }
            } else {
                Contract::Gemm {
                    mc: t.mr,
                    nc: t.nr,
                    k,
                    alpha: iatf_verify::ALPHA,
                    ldc,
                    dtype,
                }
            }
        })
        .collect()
}

/// The verification contracts behind [`trsm_kernel_stats`] (empty for
/// complex element types, which have no install-time TRSM generator).
pub(crate) fn trsm_contracts(
    d: DType,
    blocks: &[(usize, usize)],
    panels: &[(usize, usize)],
) -> Vec<Contract> {
    if d.is_complex() {
        return Vec::new();
    }
    let dtype = scalar_dtype(d);
    let mut seen: Vec<(usize, usize, usize)> = Vec::new();
    let mut out = Vec::new();
    for &(r0, mb) in blocks {
        for &(_, w) in panels {
            if seen.contains(&(mb, r0, w)) {
                continue;
            }
            seen.push((mb, r0, w));
            out.push(if mb > 4 {
                Contract::TrsmTri { m: mb, n: w, dtype }
            } else {
                Contract::TrsmBlock {
                    mb,
                    nr: w,
                    kk: r0,
                    dtype,
                }
            });
        }
    }
    out
}

/// Static scheduling stats for the TRSM kernels a plan dispatches: one
/// entry per distinct `(mb, kk, width)` combination over the diagonal
/// blocks and column panels. Register-resident blocks (`mb > 4`, only the
/// whole-triangle M ≤ 5 case) use the triangular generator; everything else
/// the fused block generator. The complex TRSM path has no generator in
/// `iatf-codegen`, so complex plans report an empty kernel list.
pub(crate) fn trsm_kernel_stats(
    d: DType,
    blocks: &[(usize, usize)],
    panels: &[(usize, usize)],
) -> Vec<KernelStats> {
    if d.is_complex() {
        return Vec::new();
    }
    let dt = scalar_dtype(d);
    let mut seen: Vec<(usize, usize, usize)> = Vec::new();
    let mut out = Vec::new();
    for &(r0, mb) in blocks {
        for &(_, w) in panels {
            if seen.contains(&(mb, r0, w)) {
                continue;
            }
            seen.push((mb, r0, w));
            let p = if mb > 4 {
                generate_trsm_tri_kernel(mb, w, dt)
            } else {
                generate_trsm_block_kernel(mb, w, r0, dt)
            };
            out.push(stats_for(mb, w, r0, &p));
        }
    }
    out
}
