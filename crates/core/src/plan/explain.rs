//! Shared helpers behind `GemmPlan::explain()` / `TrsmPlan::explain()` /
//! `TrmmPlan::explain()`.
//!
//! The explainer is a cold-path introspection API (never feature-gated): it
//! folds a plan's tile/block/panel tables into [`iatf_obs::TileClass`]
//! multiplicities and, where the install-time stage has a generator for the
//! element type, regenerates each dispatchable kernel to report its Fig. 5
//! scheduling stats ([`iatf_obs::KernelStats`]).

use iatf_codegen::{
    generate_cgemm_kernel, generate_gemm_kernel, generate_trsm_block_kernel,
    generate_trsm_tri_kernel, schedule_stats, DataType, GemmKernelSpec, PipelineModel,
};
use iatf_obs::{KernelStats, TileClass};
use iatf_simd::DType;

use crate::plan::gemm::OperandPlan;

/// Scalar precision of an element type, as the codegen IR sees it (the
/// complex kernels are generated over the real lanes of the split layout).
pub(crate) fn scalar_dtype(d: DType) -> DataType {
    match d {
        DType::F32 | DType::C32 => DataType::F32,
        DType::F64 | DType::C64 => DataType::F64,
    }
}

/// Folds a stream of `(mr, nr)` tile sizes into distinct classes with
/// multiplicities, in first-seen order.
pub(crate) fn tile_classes(
    sizes: impl Iterator<Item = (usize, usize)>,
    main: (usize, usize),
) -> Vec<TileClass> {
    let mut classes: Vec<TileClass> = Vec::new();
    for (mr, nr) in sizes {
        match classes.iter_mut().find(|t| (t.mr, t.nr) == (mr, nr)) {
            Some(t) => t.tiles += 1,
            None => classes.push(TileClass {
                mr,
                nr,
                tiles: 1,
                is_main: (mr, nr) == main,
            }),
        }
    }
    classes
}

/// Output-area fraction covered by main-kernel tiles, from the class table.
pub(crate) fn main_area_fraction(classes: &[TileClass], total_area: usize) -> f64 {
    if total_area == 0 {
        return 0.0;
    }
    let main: usize = classes
        .iter()
        .filter(|t| t.is_main)
        .map(|t| t.mr * t.nr * t.tiles)
        .sum();
    main as f64 / total_area as f64
}

/// Pack-decision string for a GEMM operand.
pub(crate) fn operand_str(p: OperandPlan) -> &'static str {
    match p {
        OperandPlan::Packed => "packed",
        OperandPlan::Direct => "direct",
    }
}

fn stats_for(mr: usize, nr: usize, k: usize, p: &iatf_codegen::Program) -> KernelStats {
    let s = schedule_stats(p, &PipelineModel::default());
    KernelStats {
        mr,
        nr,
        k,
        insts: s.insts,
        cycles_before: s.cycles_before,
        cycles_after: s.cycles_after,
        port_bound: s.port_bound,
    }
}

/// Static scheduling stats for every distinct GEMM tile class. Both the
/// real (Algorithm 3) and complex generators exist, so this is total.
pub(crate) fn gemm_kernel_stats(
    d: DType,
    classes: &[TileClass],
    k: usize,
    ldc: usize,
) -> Vec<KernelStats> {
    classes
        .iter()
        .map(|t| {
            let spec = GemmKernelSpec {
                mc: t.mr,
                nc: t.nr,
                k,
                dtype: scalar_dtype(d),
                alpha: 1.0,
                ldc,
            };
            let p = if d.is_complex() {
                generate_cgemm_kernel(&spec)
            } else {
                generate_gemm_kernel(&spec)
            };
            stats_for(t.mr, t.nr, k, &p)
        })
        .collect()
}

/// Static scheduling stats for the TRSM kernels a plan dispatches: one
/// entry per distinct `(mb, kk, width)` combination over the diagonal
/// blocks and column panels. Register-resident blocks (`mb > 4`, only the
/// whole-triangle M ≤ 5 case) use the triangular generator; everything else
/// the fused block generator. The complex TRSM path has no generator in
/// `iatf-codegen`, so complex plans report an empty kernel list.
pub(crate) fn trsm_kernel_stats(
    d: DType,
    blocks: &[(usize, usize)],
    panels: &[(usize, usize)],
) -> Vec<KernelStats> {
    if d.is_complex() {
        return Vec::new();
    }
    let dt = scalar_dtype(d);
    let mut seen: Vec<(usize, usize, usize)> = Vec::new();
    let mut out = Vec::new();
    for &(r0, mb) in blocks {
        for &(_, w) in panels {
            if seen.contains(&(mb, r0, w)) {
                continue;
            }
            seen.push((mb, r0, w));
            let p = if mb > 4 {
                generate_trsm_tri_kernel(mb, w, dt)
            } else {
                generate_trsm_block_kernel(mb, w, r0, dt)
            };
            out.push(stats_for(mb, w, r0, &p));
        }
    }
    out
}
