//! TRSM execution plans.

use crate::autotune;
use crate::config::{PackPolicy, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{explain as ex, group_packs, tiles, Command};
use iatf_layout::{CompactBatch, LayoutError, TrsmDims, TrsmMode};
use iatf_simd::VecWidth;
use iatf_obs as obs;
use iatf_pack::trsm as pk;
use iatf_trace as trace;
use iatf_pack::{arena, PackBuffer};
use std::sync::OnceLock;

/// A reusable execution plan for compact batched TRSM:
/// `op(A)·X = α·B` (left) or `X·op(A) = α·B` (right), X overwriting B.
#[derive(Clone, Debug)]
pub struct TrsmPlan<E: CompactElement> {
    dims: TrsmDims,
    mode: TrsmMode,
    map: pk::TrsmIndexMap,
    count: usize,
    /// Vector width the plan was built for (from `cfg.width`).
    width: VecWidth,
    /// Interleaving factor at that width.
    p: usize,
    packs: usize,
    /// Packs per super-block (Batch Counter output).
    pub group_packs: usize,
    /// True when B panels must be gathered (mode not canonical, α ≠ 1 is
    /// handled at execute time).
    pub pack_b_structural: bool,
    blocks: Vec<(usize, usize)>,
    a_blocks: Vec<pk::ABlockLayout>,
    a_len: usize,
    panels: Vec<(usize, usize)>,
    /// Kernel handles resolved at build time, one per `(panel, block)`
    /// grid cell (row-major over `panels × blocks`), so the solve loop
    /// does one indirect call per block with no table walk.
    block_kernels: Vec<E::TrsmK>,
    use_parallel: bool,
    commands: OnceLock<Vec<Command>>,
    _marker: core::marker::PhantomData<E>,
}

impl<E: CompactElement> TrsmPlan<E> {
    /// Builds a plan from the input matrix properties.
    pub fn new(
        dims: TrsmDims,
        mode: TrsmMode,
        conj: bool,
        count: usize,
        cfg: &TuningConfig,
    ) -> Result<Self, LayoutError> {
        let _span = obs::phase(obs::Phase::PlanBuild);
        let _trace = trace::span_arg(trace::SpanKind::PlanBuild, count as u64);
        dims.validate()?;
        if count == 0 {
            return Err(LayoutError::EmptyDimension("batch count"));
        }
        let width = cfg.width;
        let p = E::p_at(width);
        let map = pk::TrsmIndexMap::new(mode, conj, dims.m, dims.n);
        let blocks = pk::block_decomposition(map.t, E::TRSM_TB, E::TRSM_TMAX);
        let (a_blocks, a_len) = pk::a_layout::<E>(p, &blocks);
        let panels = tiles(map.bn, E::TRSM_NR);

        // A tuned entry (when the policy consults the db) overrides the
        // static Pack Selecter / Batch Counter outputs below.
        let tuned = autotune::lookup_trsm::<E>(dims, mode, conj, count, cfg);

        // Pack Selecter: the panel can be streamed in place only when the
        // canonical mapping is the identity on B (left side, no reversal).
        let identity_b = !map.reversed && !map.side_right;
        let pack_policy = tuned.and_then(|t| t.pack).unwrap_or(cfg.pack);
        let pack_b_structural = match pack_policy {
            PackPolicy::Always => true,
            PackPolicy::Never | PackPolicy::Auto => !identity_b,
        };

        let g = p * E::SCALARS;
        let scalar_bytes = core::mem::size_of::<E::Real>();
        // Batch Counter (§5.1): the packed triangle strip plus B cycle L1.
        let bytes_per_pack = (a_len + map.t * map.bn * g) * scalar_bytes;
        let packs = count.div_ceil(p);
        let gp = match tuned.and_then(|t| t.group_packs) {
            Some(tuned_gp) => tuned_gp.clamp(1, packs.max(1)),
            None => group_packs(cfg.batch, cfg.l1_budget_bytes(), bytes_per_pack, packs),
        };

        let block_kernels = panels
            .iter()
            .flat_map(|&(_, w)| {
                blocks
                    .iter()
                    .map(move |&(_, mb)| E::trsm_kernel_for(width, mb, w))
            })
            .collect();

        obs::count_plan_build(obs::Op::Trsm, count);
        Ok(Self {
            dims,
            mode,
            map,
            count,
            width,
            p,
            packs,
            group_packs: gp,
            pack_b_structural,
            blocks,
            a_blocks,
            a_len,
            panels,
            block_kernels,
            use_parallel: tuned.is_some_and(|t| t.parallel),
            commands: OnceLock::new(),
            _marker: core::marker::PhantomData,
        })
    }

    /// Problem dimensions.
    pub fn dims(&self) -> TrsmDims {
        self.dims
    }

    /// TRSM mode.
    pub fn mode(&self) -> TrsmMode {
        self.mode
    }

    /// The canonicalizing index map (exposed for tests/diagnostics).
    pub fn index_map(&self) -> &pk::TrsmIndexMap {
        &self.map
    }

    /// The diagonal-block decomposition.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Vector width the plan was built for.
    pub fn width(&self) -> VecWidth {
        self.width
    }

    /// Whether the tuned serial→parallel crossover picked parallel
    /// execution for this input (always `false` under pure heuristics).
    pub fn use_parallel(&self) -> bool {
        self.use_parallel
    }

    fn validate(&self, a: &CompactBatch<E>, b: &CompactBatch<E>) -> Result<(), LayoutError> {
        for (name, batch) in [("A", a), ("B", b)] {
            if batch.width() != self.width {
                return Err(LayoutError::WidthMismatch {
                    operand: name,
                    expected: self.width,
                    got: batch.width(),
                });
            }
        }
        let t = self.map.t;
        if (a.rows(), a.cols()) != (t, t) {
            return Err(LayoutError::ShapeMismatch {
                operand: "A",
                expected: (t, t),
                got: (a.rows(), a.cols()),
            });
        }
        if (b.rows(), b.cols()) != (self.dims.m, self.dims.n) {
            return Err(LayoutError::ShapeMismatch {
                operand: "B",
                expected: (self.dims.m, self.dims.n),
                got: (b.rows(), b.cols()),
            });
        }
        if a.count() != self.count {
            return Err(LayoutError::BatchMismatch {
                operand: "A",
                expected: self.count,
                got: a.count(),
            });
        }
        if b.count() != self.count {
            return Err(LayoutError::BatchMismatch {
                operand: "B",
                expected: self.count,
                got: b.count(),
            });
        }
        Ok(())
    }

    /// Executes the plan; B is overwritten with the solution X.
    ///
    /// Scratch comes from the thread-local [`arena`], so repeated executes
    /// are allocation-free after the first call on a thread.
    pub fn execute(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        self.validate(a, b)?;
        obs::count_execute(obs::Op::Trsm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        // α ≠ 1 must be folded in during a copy, so it forces panel packing.
        let pack_b = self.pack_b_structural || alpha != E::one();
        let panel_cap = self.panel_cap(pack_b);
        let mut lease = arena::lease::<E::Real>();
        let gp = self.group_packs;
        let b_rows = b.rows();
        let bps = b.pack_stride();
        for (sb_idx, b_chunk) in b.as_scalars_mut().chunks_mut(bps * gp).enumerate() {
            let sb_packs = b_chunk.len() / bps;
            self.run_superblock(
                alpha,
                pack_b,
                panel_cap,
                a,
                b_chunk,
                bps,
                b_rows,
                sb_idx * gp,
                sb_packs,
                lease.buffer(),
            );
        }
        Ok(())
    }

    /// Packs then solves one super-block of packs. `b_chunk` is the
    /// contiguous scalar storage of packs `sb..sb + sb_packs` (pack stride
    /// `bps`) — shared by the serial loop and the parallel executor, so
    /// both produce bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn run_superblock(
        &self,
        alpha: E,
        pack_b: bool,
        panel_cap: usize,
        a: &CompactBatch<E>,
        b_chunk: &mut [E::Real],
        bps: usize,
        b_rows: usize,
        sb: usize,
        sb_packs: usize,
        buf: &mut PackBuffer<E::Real>,
    ) {
        obs::count_superblock(obs::Op::Trsm, sb_packs);
        let _trace = trace::span_arg(trace::SpanKind::Superblock, sb_packs as u64);
        let a_rows = a.rows();
        let (buf_a, buf_panel) = buf.split_two(self.a_len * sb_packs, panel_cap);
        // Packing phase: coefficient triangles for the whole super-block.
        for slot in 0..sb_packs {
            let _span = obs::phase(obs::Phase::PackA);
            let _trace = trace::span_arg(trace::SpanKind::PackA, (sb + slot) as u64);
            let pack = sb + slot;
            let live = self.p.min(self.count - pack * self.p);
            pk::pack_a_trsm::<E>(
                &mut buf_a[slot * self.a_len..(slot + 1) * self.a_len],
                a.pack_slice(pack),
                a_rows,
                self.p,
                &self.map,
                &self.a_blocks,
                live,
            );
            obs::count_packed_bytes_a(self.a_len * core::mem::size_of::<E::Real>());
        }
        // Compute phase: per pack, per column panel, per diagonal block.
        for slot in 0..sb_packs {
            let ab = &buf_a[slot * self.a_len..(slot + 1) * self.a_len];
            let b_pack = &mut b_chunk[slot * bps..(slot + 1) * bps];
            self.solve_pack(alpha, pack_b, ab, buf_panel, b_pack, b_rows);
        }
    }

    /// Panel scratch capacity (0 when streaming B in place).
    fn panel_cap(&self, pack_b: bool) -> usize {
        if !pack_b {
            return 0;
        }
        self.panels
            .iter()
            .map(|&(_, w)| pk::panel_b_len::<E>(self.p, self.map.t, w))
            .max()
            .unwrap_or(0)
    }

    /// Solves one pack's B in place, given its packed A strips.
    fn solve_pack(
        &self,
        alpha: E,
        pack_b: bool,
        ab: &[E::Real],
        buf_panel: &mut [E::Real],
        b_pack: &mut [E::Real],
        b_rows: usize,
    ) {
        let g = self.p * E::SCALARS;
        let block_count = self.a_blocks.len();
        for (pi, &(j0, w)) in self.panels.iter().enumerate() {
            let (panel_ptr, row_stride, col_stride) = if pack_b {
                let _span = obs::phase(obs::Phase::Scale);
                let _trace = trace::span_arg(trace::SpanKind::Scale, j0 as u64);
                let len = pk::panel_b_len::<E>(self.p, self.map.t, w);
                pk::pack_b_panel::<E>(
                    &mut buf_panel[..len],
                    b_pack,
                    b_rows,
                    self.p,
                    &self.map,
                    j0,
                    w,
                    alpha,
                );
                obs::count_packed_bytes_b(len * core::mem::size_of::<E::Real>());
                (buf_panel.as_mut_ptr(), w * g, g)
            } else {
                // Stream the compact B columns in place: row stride is one
                // element group, column stride one column.
                // SAFETY: `j0` is a validated column-tile origin, so the offset stays inside the `b_rows`-column panel.
                let ptr = unsafe { b_pack.as_mut_ptr().add(j0 * b_rows * g) };
                (ptr, g, b_rows * g)
            };
            {
                let _span = obs::phase(obs::Phase::Compute);
                let _trace = trace::span_arg(trace::SpanKind::Compute, j0 as u64);
                for (bi, blk) in self.a_blocks.iter().enumerate() {
                    obs::count_dispatch(
                        obs::Op::Trsm,
                        blk.mb,
                        w,
                        blk.mb == E::TRSM_TB && w == E::TRSM_NR,
                    );
                    // Safety: panel covers rows 0..t × w columns; the packed
                    // A strips cover blk's rect and triangle; the handle was
                    // resolved for this (block, panel) shape at build time.
                    unsafe {
                        E::trsm_kernel(
                            self.block_kernels[pi * block_count + bi],
                            blk.r0,
                            ab.as_ptr().add(blk.rect_off),
                            g,
                            blk.mb * g,
                            ab.as_ptr().add(blk.tri_off),
                            panel_ptr,
                            blk.r0,
                            row_stride,
                            col_stride,
                        );
                    }
                }
            }
            if pack_b {
                let _span = obs::phase(obs::Phase::Unpack);
                let _trace = trace::span_arg(trace::SpanKind::Unpack, j0 as u64);
                let len = pk::panel_b_len::<E>(self.p, self.map.t, w);
                pk::unpack_b_panel::<E>(
                    &buf_panel[..len],
                    b_pack,
                    b_rows,
                    self.p,
                    &self.map,
                    j0,
                    w,
                );
            }
        }
    }

    /// Multi-threaded execution: *super-blocks* are distributed across the
    /// rayon pool (the paper's multicore future-work extension; parallelism
    /// is between packs, never within a solve). Partitioning at super-block
    /// granularity preserves the Batch Counter's L1 sizing per worker, and
    /// each worker leases its own scratch from the thread-local [`arena`].
    /// Tasks run the same [`Self::run_superblock`] body over the same
    /// disjoint B chunks as the serial loop, so the result is bit-identical
    /// to [`Self::execute`].
    #[cfg(feature = "parallel")]
    pub fn execute_parallel(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        use rayon::prelude::*;
        self.validate(a, b)?;
        obs::count_execute(obs::Op::Trsm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        let pack_b = self.pack_b_structural || alpha != E::one();
        let panel_cap = self.panel_cap(pack_b);
        let gp = self.group_packs;
        let b_rows = b.rows();
        let bps = b.pack_stride();
        b.as_scalars_mut()
            .par_chunks_mut(bps * gp)
            .enumerate()
            .for_each_init(arena::lease::<E::Real>, |lease, (sb_idx, b_chunk)| {
                let sb_packs = b_chunk.len() / bps;
                self.run_superblock(
                    alpha,
                    pack_b,
                    panel_cap,
                    a,
                    b_chunk,
                    bps,
                    b_rows,
                    sb_idx * gp,
                    sb_packs,
                    lease.buffer(),
                );
            });
        Ok(())
    }

    /// The plan rendered as the paper's command-queue view (assuming packed
    /// panels; the no-pack fast path elides Pack/Unpack commands). Rendered
    /// once on first call and cached in the plan.
    pub fn commands(&self) -> &[Command] {
        self.commands.get_or_init(|| self.render_commands())
    }

    fn render_commands(&self) -> Vec<Command> {
        let mut out = Vec::new();
        let mut sb = 0usize;
        while sb < self.packs {
            let sb_packs = self.group_packs.min(self.packs - sb);
            for slot in 0..sb_packs {
                out.push(Command::PackA { pack: sb + slot });
            }
            for slot in 0..sb_packs {
                let pack = sb + slot;
                for &(j0, w) in &self.panels {
                    if self.pack_b_structural {
                        out.push(Command::PackPanel { pack, j0, w });
                    }
                    for &(r0, mb) in &self.blocks {
                        out.push(Command::TrsmBlock {
                            pack,
                            j0,
                            r0,
                            mb,
                            kk: r0,
                        });
                    }
                    if self.pack_b_structural {
                        out.push(Command::UnpackPanel { pack, j0, w });
                    }
                }
            }
            sb += sb_packs;
        }
        obs::count_plan_commands(out.len());
        out
    }

    /// Structured description of what one `execute()` will do. `k` is 0
    /// (triangular op); tile classes are diagonal blocks × column panels.
    /// Predicted packed bytes assume α = 1 (α ≠ 1 additionally forces
    /// panel packing at execute time).
    pub fn explain(&self) -> obs::PlanExplain {
        let main = (E::TRSM_TB, E::TRSM_NR);
        let classes = ex::tile_classes(
            self.blocks
                .iter()
                .flat_map(|&(_, mb)| self.panels.iter().map(move |&(_, w)| (mb, w))),
            main,
        );
        let scalar_bytes = core::mem::size_of::<E::Real>() as u64;
        let t = self.map.t;
        // left-looking solve: t(t+1)/2 MACs (counting the diagonal
        // division as one) per B column
        let macs = (t * (t + 1) / 2 * self.map.bn * self.count) as u64;
        let panel_bytes: usize = if self.pack_b_structural {
            self.panels
                .iter()
                .map(|&(_, w)| pk::panel_b_len::<E>(self.p, t, w))
                .sum()
        } else {
            0
        };
        obs::PlanExplain {
            op: "trsm".into(),
            dtype: E::DTYPE.to_string(),
            m: self.dims.m,
            n: self.dims.n,
            k: 0,
            mode: self.mode.to_string(),
            count: self.count,
            p: self.p,
            width_bits: self.width.bits(),
            uarch: iatf_kernels::row_for(self.width).uarch.to_string(),
            packs: self.packs,
            group_packs: self.group_packs,
            main_kernel: main,
            main_area_fraction: ex::main_area_fraction(&classes, t * self.map.bn),
            pack_a: "packed".into(),
            pack_b: if self.pack_b_structural {
                "packed"
            } else {
                "on-demand"
            }
            .into(),
            predicted_flops: E::DTYPE.flops_per_mac() as u64 * macs,
            predicted_packed_bytes: ((self.a_len + panel_bytes) * self.packs) as u64
                * scalar_bytes,
            predicted_dispatches: (self.blocks.len() * self.panels.len() * self.packs) as u64,
            kernels: ex::trsm_kernel_stats(E::DTYPE, &self.blocks, &self.panels),
            verify: (!E::DTYPE.is_complex()).then(|| {
                ex::verify_summary(ex::trsm_contracts(E::DTYPE, &self.blocks, &self.panels))
            }),
            tile_classes: classes,
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use iatf_layout::{Diag, Side, Trans, Uplo};

    #[test]
    fn canonical_mode_streams_b() {
        let cfg = TuningConfig::default();
        let p =
            TrsmPlan::<f64>::new(TrsmDims::new(4, 8), TrsmMode::LNLN, false, 4, &cfg).unwrap();
        assert!(!p.pack_b_structural);
        // LTUN: trans flips upper to effective-lower — still identity on B.
        let p =
            TrsmPlan::<f64>::new(TrsmDims::new(4, 8), TrsmMode::LTUN, false, 4, &cfg).unwrap();
        assert!(!p.pack_b_structural);
        // LNUN reverses rows — must pack.
        let p =
            TrsmPlan::<f64>::new(TrsmDims::new(4, 8), TrsmMode::LNUN, false, 4, &cfg).unwrap();
        assert!(p.pack_b_structural);
        // right side transposes B — must pack.
        let right = TrsmMode::new(Side::Right, Trans::No, Uplo::Lower, Diag::NonUnit);
        let p = TrsmPlan::<f64>::new(TrsmDims::new(4, 8), right, false, 4, &cfg).unwrap();
        assert!(p.pack_b_structural);
    }

    #[test]
    fn block_structure_matches_capacity() {
        let cfg = TuningConfig::default();
        // M = 5 real: single register-resident block.
        let p =
            TrsmPlan::<f32>::new(TrsmDims::new(5, 5), TrsmMode::LNLN, false, 4, &cfg).unwrap();
        assert_eq!(p.blocks(), &[(0, 5)]);
        // M = 9: blocked 4+4+1.
        let p =
            TrsmPlan::<f32>::new(TrsmDims::new(9, 5), TrsmMode::LNLN, false, 4, &cfg).unwrap();
        assert_eq!(p.blocks(), &[(0, 4), (4, 4), (8, 1)]);
        // complex: capacity 2.
        let p = TrsmPlan::<iatf_simd::c64>::new(
            TrsmDims::new(5, 5),
            TrsmMode::LNLN,
            false,
            4,
            &cfg,
        )
        .unwrap();
        assert_eq!(p.blocks(), &[(0, 2), (2, 2), (4, 1)]);
    }

    #[test]
    fn command_queue_solves_blocks_in_order() {
        let cfg = TuningConfig::default();
        let p =
            TrsmPlan::<f64>::new(TrsmDims::new(9, 4), TrsmMode::LNUN, false, 2, &cfg).unwrap();
        let cmds = p.commands();
        // within each panel the blocks must appear with increasing r0 and
        // kk == r0 (rows solved so far)
        let mut last: Option<(usize, usize, usize)> = None;
        for c in cmds {
            if let Command::TrsmBlock {
                pack,
                j0,
                r0,
                kk,
                ..
            } = c
            {
                assert_eq!(r0, kk);
                if let Some((lp, lj, lr)) = last {
                    if lp == *pack && lj == *j0 {
                        assert!(*r0 > lr);
                    }
                }
                last = Some((*pack, *j0, *r0));
            }
        }
        // every panel is packed and unpacked exactly once per pack
        let packs = cmds
            .iter()
            .filter(|c| matches!(c, Command::PackPanel { .. }))
            .count();
        let unpacks = cmds
            .iter()
            .filter(|c| matches!(c, Command::UnpackPanel { .. }))
            .count();
        assert_eq!(packs, unpacks);
        assert_eq!(packs, 1); // one pack × one panel of width 4
    }

    #[test]
    fn rejects_bad_shapes() {
        let cfg = TuningConfig::default();
        let plan =
            TrsmPlan::<f64>::new(TrsmDims::new(3, 4), TrsmMode::LNLN, false, 2, &cfg).unwrap();
        let a = CompactBatch::<f64>::zeroed(3, 3, 2);
        let mut b = CompactBatch::<f64>::zeroed(3, 4, 2);
        assert!(plan.execute(1.0, &a, &mut b).is_ok());
        let a_bad = CompactBatch::<f64>::zeroed(4, 4, 2);
        assert!(plan.execute(1.0, &a_bad, &mut b).is_err());
        let mut b_bad = CompactBatch::<f64>::zeroed(4, 3, 2);
        assert!(plan.execute(1.0, &a, &mut b_bad).is_err());
        // right side: triangle order is N
        let right = TrsmMode::new(Side::Right, Trans::No, Uplo::Upper, Diag::NonUnit);
        let plan = TrsmPlan::<f64>::new(TrsmDims::new(3, 4), right, false, 2, &cfg).unwrap();
        let a4 = CompactBatch::<f64>::zeroed(4, 4, 2);
        let mut b34 = CompactBatch::<f64>::zeroed(3, 4, 2);
        assert!(plan.execute(1.0, &a4, &mut b34).is_ok());
    }
}
