//! The run-time stage (paper §5).
//!
//! Planning turns input matrix properties into an execution plan:
//!
//! 1. **Batch Counter** ([`group_packs`]) — how many packs of `P` matrices
//!    are packed and computed per super-block, sized to the L1 budget.
//! 2. **Pack Selecter** — whether each operand is packed or streamed
//!    directly (the no-pack strategy), folded into the plan structs.
//! 3. **Execution Plan Generator** — the tile/panel decomposition, kernel
//!    selection, and the command queue binding everything together.
//!
//! Plans are immutable once built and reusable across executions with the
//! same shapes — the paper's point that "it only generates this execution
//! plan at the beginning", amortizing run-time overhead over the group.

pub mod cache;
pub(crate) mod explain;
pub mod gemm;
pub mod trmm;
pub mod trsm;

pub use cache::PlanCacheStats;
pub use gemm::GemmPlan;
pub use trmm::TrmmPlan;
pub use trsm::TrsmPlan;

use crate::config::BatchPolicy;

/// Greedy 1-D tile decomposition: `(start, len)` chunks of at most `step`.
/// Shared by every planner's M/N/panel tiling.
pub(crate) fn tiles(len: usize, step: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(len.div_ceil(step));
    let mut i = 0;
    while i < len {
        let h = step.min(len - i);
        out.push((i, h));
        i += h;
    }
    out
}

/// The Batch Counter (paper §5.1): packs per super-block such that the
/// packed working set stays within the L1 budget. At least one pack is
/// always processed (a single small-matrix pack fits L1 by the paper's
/// problem statement).
pub fn group_packs(
    policy: BatchPolicy,
    budget_bytes: usize,
    bytes_per_pack: usize,
    total_packs: usize,
) -> usize {
    let g = match policy {
        BatchPolicy::Fixed(g) => g,
        BatchPolicy::Auto => budget_bytes
            .checked_div(bytes_per_pack)
            .unwrap_or(total_packs),
    };
    g.clamp(1, total_packs.max(1))
}

/// One step of a rendered execution plan — the "command queue" view the
/// paper describes. Execution itself runs the equivalent structured loops;
/// the rendered queue exists for introspection and plan-invariant tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Pack operand A of one pack into the panel buffer.
    PackA {
        /// Pack index.
        pack: usize,
    },
    /// Pack operand B of one pack into the panel buffer.
    PackB {
        /// Pack index.
        pack: usize,
    },
    /// Run a GEMM microkernel on one C tile.
    Gemm {
        /// Pack index.
        pack: usize,
        /// Tile top row.
        i0: usize,
        /// Tile left column.
        j0: usize,
        /// Kernel rows.
        mr: usize,
        /// Kernel columns.
        nr: usize,
    },
    /// Pack one B column panel for TRSM (α applied here).
    PackPanel {
        /// Pack index.
        pack: usize,
        /// First column of the panel.
        j0: usize,
        /// Panel width.
        w: usize,
    },
    /// Run one fused TRSM block kernel.
    TrsmBlock {
        /// Pack index.
        pack: usize,
        /// First column of the panel.
        j0: usize,
        /// First canonical row of the block.
        r0: usize,
        /// Block height.
        mb: usize,
        /// Rows eliminated by the rectangular phase.
        kk: usize,
    },
    /// Scatter a solved panel back into B.
    UnpackPanel {
        /// Pack index.
        pack: usize,
        /// First column of the panel.
        j0: usize,
        /// Panel width.
        w: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_counter_clamps() {
        assert_eq!(group_packs(BatchPolicy::Auto, 32768, 1024, 100), 32);
        assert_eq!(group_packs(BatchPolicy::Auto, 32768, 1 << 20, 100), 1);
        assert_eq!(group_packs(BatchPolicy::Auto, 32768, 16, 3), 3);
        assert_eq!(group_packs(BatchPolicy::Fixed(8), 0, 0, 100), 8);
        assert_eq!(group_packs(BatchPolicy::Fixed(800), 0, 0, 10), 10);
        assert_eq!(group_packs(BatchPolicy::Fixed(0), 0, 0, 10), 1);
    }
}
