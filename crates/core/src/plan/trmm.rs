//! TRMM execution plans (extension: the paper's future-work "other BLAS
//! functions under the SIMD-friendly data layout").
//!
//! `B = α·op(A)·B` (left) / `B = α·B·op(A)` (right) with triangular A.
//! Mode canonicalization reuses the TRSM index maps verbatim — the algebra
//! is identical (`X·op(A) = (op(A)ᵀ·Xᵀ)ᵀ`, reversal turns effective-upper
//! into lower). The one structural difference: a canonical-lower *multiply*
//! consumes original rows at or **above** each row, so diagonal blocks are
//! processed **bottom-up** (TRSM solves top-down).

use crate::autotune;
use crate::config::{PackPolicy, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{explain as ex, group_packs, tiles};
use iatf_layout::{CompactBatch, LayoutError, TrsmDims, TrsmMode};
use iatf_simd::VecWidth;
use iatf_obs as obs;
use iatf_pack::trsm as pk;
use iatf_trace as trace;
use iatf_pack::{arena, PackBuffer};

/// A reusable execution plan for compact batched TRMM.
#[derive(Clone, Debug)]
pub struct TrmmPlan<E: CompactElement> {
    dims: TrsmDims,
    mode: TrsmMode,
    map: pk::TrsmIndexMap,
    count: usize,
    /// Vector width the plan was built for (from `cfg.width`).
    width: VecWidth,
    /// Interleaving factor at that width.
    p: usize,
    packs: usize,
    /// Packs per super-block (Batch Counter output).
    pub group_packs: usize,
    /// True when B panels must be gathered (mode not canonical on B).
    pub pack_b_structural: bool,
    blocks: Vec<(usize, usize)>,
    a_blocks: Vec<pk::ABlockLayout>,
    a_len: usize,
    panels: Vec<(usize, usize)>,
    /// Kernel handles resolved at build time, one per `(panel, block)`
    /// grid cell (row-major over `panels × blocks`), so the multiply loop
    /// does one indirect call per block with no table walk.
    block_kernels: Vec<E::TrmmK>,
    use_parallel: bool,
    _marker: core::marker::PhantomData<E>,
}

impl<E: CompactElement> TrmmPlan<E> {
    /// Builds a plan from the input matrix properties (B is `m × n`; A has
    /// the order of the selected side, exactly as in TRSM).
    pub fn new(
        dims: TrsmDims,
        mode: TrsmMode,
        conj: bool,
        count: usize,
        cfg: &TuningConfig,
    ) -> Result<Self, LayoutError> {
        let _span = obs::phase(obs::Phase::PlanBuild);
        let _trace = trace::span_arg(trace::SpanKind::PlanBuild, count as u64);
        dims.validate()?;
        if count == 0 {
            return Err(LayoutError::EmptyDimension("batch count"));
        }
        let width = cfg.width;
        let p = E::p_at(width);
        let map = pk::TrsmIndexMap::new(mode, conj, dims.m, dims.n);
        // TRMM has no register-capacity special case to exploit beyond the
        // block kernel size: block uniformly by the kernel height.
        let blocks = pk::block_decomposition(map.t, E::TRSM_TB, E::TRSM_TB);
        let (a_blocks, a_len) = pk::a_layout::<E>(p, &blocks);
        let panels = tiles(map.bn, E::TRSM_NR);
        // A tuned entry (when the policy consults the db) overrides the
        // static Pack Selecter / Batch Counter outputs below.
        let tuned = autotune::lookup_trmm::<E>(dims, mode, conj, count, cfg);
        let identity_b = !map.reversed && !map.side_right;
        let pack_policy = tuned.and_then(|t| t.pack).unwrap_or(cfg.pack);
        let pack_b_structural = match pack_policy {
            PackPolicy::Always => true,
            PackPolicy::Never | PackPolicy::Auto => !identity_b,
        };
        let g = p * E::SCALARS;
        let scalar_bytes = core::mem::size_of::<E::Real>();
        let bytes_per_pack = (a_len + map.t * map.bn * g) * scalar_bytes;
        let packs = count.div_ceil(p);
        let gp = match tuned.and_then(|t| t.group_packs) {
            Some(tuned_gp) => tuned_gp.clamp(1, packs.max(1)),
            None => group_packs(cfg.batch, cfg.l1_budget_bytes(), bytes_per_pack, packs),
        };
        let block_kernels = panels
            .iter()
            .flat_map(|&(_, w)| {
                blocks
                    .iter()
                    .map(move |&(_, mb)| E::trmm_kernel_for(width, mb, w))
            })
            .collect();
        obs::count_plan_build(obs::Op::Trmm, count);
        Ok(Self {
            dims,
            mode,
            map,
            count,
            width,
            p,
            packs,
            group_packs: gp,
            pack_b_structural,
            blocks,
            a_blocks,
            a_len,
            panels,
            block_kernels,
            use_parallel: tuned.is_some_and(|t| t.parallel),
            _marker: core::marker::PhantomData,
        })
    }

    /// Problem dimensions.
    pub fn dims(&self) -> TrsmDims {
        self.dims
    }

    /// Mode.
    pub fn mode(&self) -> TrsmMode {
        self.mode
    }

    /// The diagonal-block decomposition (executed bottom-up).
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Vector width the plan was built for.
    pub fn width(&self) -> VecWidth {
        self.width
    }

    /// Whether the tuned serial→parallel crossover picked parallel
    /// execution for this input (always `false` under pure heuristics).
    pub fn use_parallel(&self) -> bool {
        self.use_parallel
    }

    fn validate(&self, a: &CompactBatch<E>, b: &CompactBatch<E>) -> Result<(), LayoutError> {
        for (name, batch) in [("A", a), ("B", b)] {
            if batch.width() != self.width {
                return Err(LayoutError::WidthMismatch {
                    operand: name,
                    expected: self.width,
                    got: batch.width(),
                });
            }
        }
        let t = self.map.t;
        if (a.rows(), a.cols()) != (t, t) {
            return Err(LayoutError::ShapeMismatch {
                operand: "A",
                expected: (t, t),
                got: (a.rows(), a.cols()),
            });
        }
        if (b.rows(), b.cols()) != (self.dims.m, self.dims.n) {
            return Err(LayoutError::ShapeMismatch {
                operand: "B",
                expected: (self.dims.m, self.dims.n),
                got: (b.rows(), b.cols()),
            });
        }
        if a.count() != self.count || b.count() != self.count {
            return Err(LayoutError::BatchMismatch {
                operand: "A/B",
                expected: self.count,
                got: a.count().min(b.count()),
            });
        }
        Ok(())
    }

    /// Panel scratch capacity (0 when streaming B in place).
    fn panel_cap(&self) -> usize {
        if !self.pack_b_structural {
            return 0;
        }
        self.panels
            .iter()
            .map(|&(_, w)| pk::panel_b_len::<E>(self.p, self.map.t, w))
            .max()
            .unwrap_or(0)
    }

    /// Executes the plan: B is overwritten with `α·op(A)·B` (left) or
    /// `α·B·op(A)` (right).
    ///
    /// Scratch comes from the thread-local [`arena`], so repeated executes
    /// are allocation-free after the first call on a thread.
    pub fn execute(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        self.validate(a, b)?;
        obs::count_execute(obs::Op::Trmm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        let panel_cap = self.panel_cap();
        let mut lease = arena::lease::<E::Real>();
        let b_rows = b.rows();
        let bps = b.pack_stride();
        let gp = self.group_packs;
        for (sb_idx, b_chunk) in b.as_scalars_mut().chunks_mut(bps * gp).enumerate() {
            let sb_packs = b_chunk.len() / bps;
            self.run_superblock(
                alpha,
                panel_cap,
                a,
                b_chunk,
                bps,
                b_rows,
                sb_idx * gp,
                sb_packs,
                lease.buffer(),
            );
        }
        Ok(())
    }

    /// Packs then multiplies one super-block of packs. `b_chunk` is the
    /// contiguous scalar storage of packs `sb..sb + sb_packs` (pack stride
    /// `bps`) — shared by the serial loop and the parallel executor, so
    /// both produce bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn run_superblock(
        &self,
        alpha: E,
        panel_cap: usize,
        a: &CompactBatch<E>,
        b_chunk: &mut [E::Real],
        bps: usize,
        b_rows: usize,
        sb: usize,
        sb_packs: usize,
        buf: &mut PackBuffer<E::Real>,
    ) {
        obs::count_superblock(obs::Op::Trmm, sb_packs);
        let _trace = trace::span_arg(trace::SpanKind::Superblock, sb_packs as u64);
        let a_rows = a.rows();
        let (buf_a, buf_panel) = buf.split_two(self.a_len * sb_packs, panel_cap);
        for slot in 0..sb_packs {
            let _span = obs::phase(obs::Phase::PackA);
            let _trace = trace::span_arg(trace::SpanKind::PackA, (sb + slot) as u64);
            let pack = sb + slot;
            let live = self.p.min(self.count - pack * self.p);
            // direct (non-reciprocal) diagonal for the multiply
            pk::pack_a_tri::<E>(
                &mut buf_a[slot * self.a_len..(slot + 1) * self.a_len],
                a.pack_slice(pack),
                a_rows,
                self.p,
                &self.map,
                &self.a_blocks,
                live,
                false,
            );
            obs::count_packed_bytes_a(self.a_len * core::mem::size_of::<E::Real>());
        }
        for slot in 0..sb_packs {
            let ab = &buf_a[slot * self.a_len..(slot + 1) * self.a_len];
            let b_pack = &mut b_chunk[slot * bps..(slot + 1) * bps];
            self.multiply_pack(alpha, ab, buf_panel, b_pack, b_rows);
        }
    }

    /// Multiplies one pack's B in place, given its packed A strips.
    fn multiply_pack(
        &self,
        alpha: E,
        ab: &[E::Real],
        buf_panel: &mut [E::Real],
        b_pack: &mut [E::Real],
        b_rows: usize,
    ) {
        let g = self.p * E::SCALARS;
        let pack_b = self.pack_b_structural;
        let block_count = self.a_blocks.len();
        for (pi, &(j0, w)) in self.panels.iter().enumerate() {
            let (panel_ptr, row_stride, col_stride) = if pack_b {
                let _span = obs::phase(obs::Phase::Scale);
                let _trace = trace::span_arg(trace::SpanKind::Scale, j0 as u64);
                let len = pk::panel_b_len::<E>(self.p, self.map.t, w);
                pk::pack_b_panel::<E>(
                    &mut buf_panel[..len],
                    b_pack,
                    b_rows,
                    self.p,
                    &self.map,
                    j0,
                    w,
                    E::one(),
                );
                obs::count_packed_bytes_b(len * core::mem::size_of::<E::Real>());
                (buf_panel.as_mut_ptr(), w * g, g)
            } else {
                // SAFETY: `j0` is a validated column-tile origin, so the offset stays inside the `b_rows`-column panel.
                let ptr = unsafe { b_pack.as_mut_ptr().add(j0 * b_rows * g) };
                (ptr, g, b_rows * g)
            };
            {
                let _span = obs::phase(obs::Phase::Compute);
                let _trace = trace::span_arg(trace::SpanKind::Compute, j0 as u64);
                // bottom-up over diagonal blocks: rows above any
                // block stay original until that block consumes them
                for (bi, blk) in self.a_blocks.iter().enumerate().rev() {
                    obs::count_dispatch(
                        obs::Op::Trmm,
                        blk.mb,
                        w,
                        blk.mb == E::TRSM_TB && w == E::TRSM_NR,
                    );
                    // Safety: identical operand coverage to the TRSM
                    // path, validated above; the handle was resolved for
                    // this (block, panel) shape at build time.
                    unsafe {
                        E::trmm_kernel(
                            self.block_kernels[pi * block_count + bi],
                            blk.r0,
                            alpha,
                            ab.as_ptr().add(blk.rect_off),
                            g,
                            blk.mb * g,
                            ab.as_ptr().add(blk.tri_off),
                            panel_ptr,
                            blk.r0,
                            row_stride,
                            col_stride,
                        );
                    }
                }
            }
            if pack_b {
                let _span = obs::phase(obs::Phase::Unpack);
                let _trace = trace::span_arg(trace::SpanKind::Unpack, j0 as u64);
                let len = pk::panel_b_len::<E>(self.p, self.map.t, w);
                pk::unpack_b_panel::<E>(
                    &buf_panel[..len],
                    b_pack,
                    b_rows,
                    self.p,
                    &self.map,
                    j0,
                    w,
                );
            }
        }
    }

    /// Multi-threaded execution: *super-blocks* are distributed across the
    /// rayon pool, preserving the Batch Counter's L1 sizing per worker,
    /// with per-worker scratch leased from the thread-local [`arena`].
    /// Tasks run the same [`Self::run_superblock`] body over the same
    /// disjoint B chunks as the serial loop, so the result is bit-identical
    /// to [`Self::execute`].
    #[cfg(feature = "parallel")]
    pub fn execute_parallel(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        use rayon::prelude::*;
        self.validate(a, b)?;
        obs::count_execute(obs::Op::Trmm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        let panel_cap = self.panel_cap();
        let gp = self.group_packs;
        let b_rows = b.rows();
        let bps = b.pack_stride();
        b.as_scalars_mut()
            .par_chunks_mut(bps * gp)
            .enumerate()
            .for_each_init(arena::lease::<E::Real>, |lease, (sb_idx, b_chunk)| {
                let sb_packs = b_chunk.len() / bps;
                self.run_superblock(
                    alpha,
                    panel_cap,
                    a,
                    b_chunk,
                    bps,
                    b_rows,
                    sb_idx * gp,
                    sb_packs,
                    lease.buffer(),
                );
            });
        Ok(())
    }

    /// Structured description of what one `execute()` will do. `k` is 0
    /// (triangular op); tile classes are diagonal blocks × column panels.
    /// No install-time generator exists for the TRMM kernels yet, so the
    /// kernel-stats list is empty.
    pub fn explain(&self) -> obs::PlanExplain {
        let main = (E::TRSM_TB, E::TRSM_NR);
        let classes = ex::tile_classes(
            self.blocks
                .iter()
                .flat_map(|&(_, mb)| self.panels.iter().map(move |&(_, w)| (mb, w))),
            main,
        );
        let scalar_bytes = core::mem::size_of::<E::Real>() as u64;
        let t = self.map.t;
        // triangular multiply: t(t+1)/2 MACs per B column
        let macs = (t * (t + 1) / 2 * self.map.bn * self.count) as u64;
        let panel_bytes: usize = if self.pack_b_structural {
            self.panels
                .iter()
                .map(|&(_, w)| pk::panel_b_len::<E>(self.p, t, w))
                .sum()
        } else {
            0
        };
        obs::PlanExplain {
            op: "trmm".into(),
            dtype: E::DTYPE.to_string(),
            m: self.dims.m,
            n: self.dims.n,
            k: 0,
            mode: self.mode.to_string(),
            count: self.count,
            p: self.p,
            width_bits: self.width.bits(),
            uarch: iatf_kernels::row_for(self.width).uarch.to_string(),
            packs: self.packs,
            group_packs: self.group_packs,
            main_kernel: main,
            main_area_fraction: ex::main_area_fraction(&classes, t * self.map.bn),
            pack_a: "packed".into(),
            pack_b: if self.pack_b_structural {
                "packed"
            } else {
                "direct"
            }
            .into(),
            predicted_flops: E::DTYPE.flops_per_mac() as u64 * macs,
            predicted_packed_bytes: ((self.a_len + panel_bytes) * self.packs) as u64
                * scalar_bytes,
            predicted_dispatches: (self.blocks.len() * self.panels.len() * self.packs) as u64,
            kernels: Vec::new(),
            // No install-time kernel is dispatched, so there is nothing to
            // certify at plan time.
            verify: None,
            tile_classes: classes,
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_uniform_kernel_height() {
        let cfg = TuningConfig::default();
        let p = TrmmPlan::<f64>::new(TrsmDims::new(11, 4), TrsmMode::LNLN, false, 4, &cfg)
            .unwrap();
        assert_eq!(p.blocks(), &[(0, 4), (4, 4), (8, 3)]);
        let p = TrmmPlan::<iatf_simd::c32>::new(TrsmDims::new(5, 4), TrsmMode::LNLN, false, 4, &cfg)
            .unwrap();
        assert_eq!(p.blocks(), &[(0, 2), (2, 2), (4, 1)]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let cfg = TuningConfig::default();
        let plan =
            TrmmPlan::<f32>::new(TrsmDims::new(4, 6), TrsmMode::LNLN, false, 5, &cfg).unwrap();
        let a = CompactBatch::<f32>::zeroed(4, 4, 5);
        let mut b = CompactBatch::<f32>::zeroed(4, 6, 5);
        assert!(plan.execute(1.0, &a, &mut b).is_ok());
        let a_bad = CompactBatch::<f32>::zeroed(5, 5, 5);
        assert!(plan.execute(1.0, &a_bad, &mut b).is_err());
    }
}
