//! Process-wide execution-plan cache.
//!
//! The paper's run-time stage is amortized by design: it "only generates
//! this execution plan at the beginning" and reuses it for the whole group
//! (§5.3). The one-shot entry points in [`crate::api`] extend that
//! amortization **across calls**: plans are keyed by every input property
//! the planner consumes — routine, element type, dimensions, mode,
//! conjugation flags, group count, and a fingerprint of the tuning config —
//! so steady-state traffic over repeated shapes skips the Batch Counter,
//! Pack Selecter, and tile decomposition entirely and pays only per-call
//! validation.
//!
//! Plan construction here is tens of nanoseconds, so the lookup has to be
//! almost free to be worth anything. Two layers keep it that way:
//!
//! 1. A **thread-local front cache** of the last few plans this thread
//!    dispatched: no lock, no allocation, a linear scan of a handful of
//!    keys. Steady-state same-shape traffic never leaves this layer.
//! 2. A **sharded shared cache** behind it (a `Mutex`-guarded flat vector
//!    per shard, shard picked by a cheap multiply-rotate hash — no
//!    `SipHash` on the dispatch path). It is bounded: each shard holds at
//!    most [`SHARD_CAP`] plans and evicts the least-recently-used entry
//!    when full. Plans are `Arc`s, so eviction never invalidates a plan a
//!    caller (or a front cache) still holds.
//!
//! [`clear`] bumps a global epoch that invalidates every thread's front
//! cache on its next lookup.
//!
//! Callers that manage plan lifetimes themselves set
//! [`PlanCachePolicy::Bypass`](crate::config::PlanCachePolicy) (or build
//! plans directly) and never touch the cache.

use crate::config::{fx_mix, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{GemmPlan, TrmmPlan, TrsmPlan};
use iatf_layout::{GemmDims, GemmMode, LayoutError, TrsmDims, TrsmMode};
use iatf_obs as obs;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 8;

/// Plans held per shard before LRU eviction kicks in.
pub const SHARD_CAP: usize = 16;

/// Plans remembered per thread in the lock-free front cache.
const FRONT_SLOTS: usize = 8;

/// Everything the planners key their decisions on, flattened to primitives.
#[derive(Copy, Clone, PartialEq, Eq)]
struct Key {
    /// 0 = GEMM, 1 = TRSM, 2 = TRMM.
    op: u8,
    /// `DType` discriminant.
    dtype: u8,
    m: usize,
    n: usize,
    k: usize,
    /// GEMM: transa/transb bits. TRSM/TRMM: side/trans/uplo/diag bits.
    mode: u8,
    /// GEMM: conj_a | conj_b << 1. TRSM/TRMM: conj.
    conj: u8,
    count: usize,
    cfg: u64,
}

impl Key {
    fn hash64(&self) -> u64 {
        let tags = ((self.op as u64) << 48)
            | ((self.dtype as u64) << 32)
            | ((self.mode as u64) << 16)
            | (self.conj as u64);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fx_mix(h, tags);
        h = fx_mix(h, self.m as u64);
        h = fx_mix(h, self.n as u64);
        h = fx_mix(h, self.k as u64);
        h = fx_mix(h, self.count as u64);
        h = fx_mix(h, self.cfg);
        h
    }
}

type AnyPlan = Arc<dyn Any + Send + Sync>;

struct Entry {
    hash: u64,
    key: Key,
    plan: AnyPlan,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    /// Flat storage: at most [`SHARD_CAP`] entries, scanned linearly
    /// (hash compared first). Cheaper than a `HashMap` at this size and
    /// avoids a second hashing pass.
    entries: Vec<Entry>,
    tick: u64,
}

struct PlanCache {
    shards: [Mutex<Shard>; SHARDS],
    /// Bumped by [`clear`]; front caches self-invalidate on mismatch.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

fn cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache {
        shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        epoch: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
        bypasses: AtomicU64::new(0),
    })
}

struct FrontCache {
    epoch: u64,
    /// Round-robin replacement cursor.
    next: usize,
    entries: Vec<(Key, AnyPlan)>,
}

thread_local! {
    static FRONT: RefCell<FrontCache> = RefCell::new(FrontCache {
        epoch: 0,
        next: 0,
        entries: Vec::new(),
    });
}

/// Looks `key` up in the front cache, then its shard; on a miss, builds
/// the plan (outside the shard lock — concurrent same-shape misses may
/// build twice, and the first insert wins) and caches it in both layers.
fn get_or_build<P, F>(key: Key, build: F) -> Result<Arc<P>, LayoutError>
where
    P: Send + Sync + 'static,
    F: FnOnce() -> Result<P, LayoutError>,
{
    let c = cache();
    let epoch = c.epoch.load(Relaxed);

    // Fast path: this thread dispatched the same shape recently.
    let front_hit = FRONT.with(|front| {
        let mut f = front.borrow_mut();
        if f.epoch != epoch {
            f.entries.clear();
            f.next = 0;
            f.epoch = epoch;
            return None;
        }
        f.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, plan)| Arc::clone(plan))
    });
    if let Some(plan) = front_hit {
        c.hits.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Hit);
        return Ok(plan
            .downcast::<P>()
            .expect("plan cache keys encode the concrete plan type"));
    }

    let hash = key.hash64();
    let shard = &c.shards[(hash % SHARDS as u64) as usize];
    let shared: Option<AnyPlan> = {
        let mut s = shard.lock().expect("plan cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        s.entries
            .iter_mut()
            .find(|e| e.hash == hash && e.key == key)
            .map(|e| {
                e.last_used = tick;
                Arc::clone(&e.plan)
            })
    };
    let (plan, hit) = match shared {
        Some(plan) => (plan, true),
        None => {
            // build without holding the shard lock — planning allocates
            let built: AnyPlan = Arc::new(build()?);
            let mut s = shard.lock().expect("plan cache shard poisoned");
            s.tick += 1;
            let tick = s.tick;
            let plan = match s.entries.iter_mut().find(|e| e.hash == hash && e.key == key) {
                // another thread inserted while we built: keep its plan
                Some(e) => {
                    e.last_used = tick;
                    Arc::clone(&e.plan)
                }
                None => {
                    if s.entries.len() >= SHARD_CAP {
                        let oldest = s
                            .entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(i, _)| i)
                            .expect("shard at capacity is non-empty");
                        s.entries.swap_remove(oldest);
                        c.evictions.fetch_add(1, Relaxed);
                        obs::count_plan_cache(obs::CacheEvent::Eviction);
                    }
                    s.entries.push(Entry {
                        hash,
                        key,
                        plan: Arc::clone(&built),
                        last_used: tick,
                    });
                    built
                }
            };
            (plan, false)
        }
    };
    if hit {
        c.hits.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Hit);
    } else {
        c.misses.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Miss);
    }

    // Remember in the front cache (round-robin over a few slots).
    FRONT.with(|front| {
        let mut f = front.borrow_mut();
        if f.epoch == epoch {
            let slot = f.next;
            if f.entries.len() < FRONT_SLOTS {
                f.entries.push((key, Arc::clone(&plan)));
            } else {
                f.entries[slot] = (key, Arc::clone(&plan));
            }
            f.next = (slot + 1) % FRONT_SLOTS;
        }
    });

    Ok(plan
        .downcast::<P>()
        .expect("plan cache keys encode the concrete plan type"))
}

/// Records a deliberate cache skip (the `Bypass` policy) in the stats.
pub(crate) fn note_bypass() {
    cache().bypasses.fetch_add(1, Relaxed);
    obs::count_plan_cache(obs::CacheEvent::Bypass);
}

pub(crate) fn gemm_mode_bits(mode: GemmMode) -> u8 {
    (mode.transa.is_trans() as u8) | ((mode.transb.is_trans() as u8) << 1)
}

pub(crate) fn trsm_mode_bits(mode: TrsmMode) -> u8 {
    ((mode.side == iatf_layout::Side::Right) as u8)
        | ((mode.trans.is_trans() as u8) << 1)
        | ((mode.uplo == iatf_layout::Uplo::Upper) as u8) << 2
        | ((mode.diag == iatf_layout::Diag::Unit) as u8) << 3
}

/// Returns the shared GEMM plan for this shape, building it on first use.
pub fn cached_gemm_plan<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<GemmPlan<E>>, LayoutError> {
    let key = Key {
        op: 0,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: dims.k,
        mode: gemm_mode_bits(mode),
        conj: (conj_a as u8) | ((conj_b as u8) << 1),
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(key, || {
        GemmPlan::<E>::new(dims, mode, conj_a, conj_b, count, cfg)
    })
}

/// Returns the shared TRSM plan for this shape, building it on first use.
pub fn cached_trsm_plan<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<TrsmPlan<E>>, LayoutError> {
    let key = Key {
        op: 1,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: 0,
        mode: trsm_mode_bits(mode),
        conj: conj as u8,
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(key, || TrsmPlan::<E>::new(dims, mode, conj, count, cfg))
}

/// Returns the shared TRMM plan for this shape, building it on first use.
pub fn cached_trmm_plan<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<TrmmPlan<E>>, LayoutError> {
    let key = Key {
        op: 2,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: 0,
        mode: trsm_mode_bits(mode),
        conj: conj as u8,
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(key, || TrmmPlan::<E>::new(dims, mode, conj, count, cfg))
}

/// Point-in-time plan-cache statistics. Always live (plain atomics,
/// independent of the `obs` feature). Hits count both front-cache and
/// shared-cache hits; every lookup is exactly one hit or one miss.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (either layer).
    pub hits: u64,
    /// Lookups that built and inserted a plan.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
    /// Calls that skipped the cache via `PlanCachePolicy::Bypass`.
    pub bypasses: u64,
    /// Plans resident in the shared cache (front caches not counted).
    pub entries: usize,
}

/// Snapshot of the cache counters and current occupancy.
pub fn stats() -> PlanCacheStats {
    let c = cache();
    PlanCacheStats {
        hits: c.hits.load(Relaxed),
        misses: c.misses.load(Relaxed),
        evictions: c.evictions.load(Relaxed),
        bypasses: c.bypasses.load(Relaxed),
        entries: c
            .shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").entries.len())
            .sum(),
    }
}

/// Drops every cached plan (outstanding `Arc`s stay valid), invalidates
/// all front caches via the epoch, and zeroes the counters. Intended for
/// tests and long-lived processes that change tuning configs wholesale.
pub fn clear() {
    let c = cache();
    c.epoch.fetch_add(1, Relaxed);
    for shard in &c.shards {
        let mut s = shard.lock().expect("plan cache shard poisoned");
        s.entries.clear();
        s.tick = 0;
    }
    c.hits.store(0, Relaxed);
    c.misses.store(0, Relaxed);
    c.evictions.store(0, Relaxed);
    c.bypasses.store(0, Relaxed);
}

/// Total capacity of the shared cache in plans.
pub const fn capacity() -> usize {
    SHARDS * SHARD_CAP
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cache behaviour tests live in `tests/plan_cache.rs`, serialized
    // against the global state; here only the pure key helpers.
    #[test]
    fn mode_bits_are_injective() {
        let mut seen = std::collections::HashSet::new();
        for mode in GemmMode::ALL {
            assert!(seen.insert(gemm_mode_bits(mode)));
        }
        let mut seen = std::collections::HashSet::new();
        for mode in TrsmMode::all() {
            assert!(seen.insert(trsm_mode_bits(mode)));
        }
    }

    #[test]
    fn key_hash_separates_nearby_keys() {
        let base = Key {
            op: 0,
            dtype: 1,
            m: 4,
            n: 4,
            k: 4,
            mode: 0,
            conj: 0,
            count: 32,
            cfg: 7,
        };
        let mut hashes = std::collections::HashSet::new();
        hashes.insert(base.hash64());
        for (i, variant) in [
            Key { op: 1, ..base },
            Key { dtype: 2, ..base },
            Key { m: 5, ..base },
            Key { n: 5, ..base },
            Key { k: 5, ..base },
            Key { mode: 1, ..base },
            Key { conj: 1, ..base },
            Key { count: 33, ..base },
            Key { cfg: 8, ..base },
        ]
        .into_iter()
        .enumerate()
        {
            assert!(hashes.insert(variant.hash64()), "collision at field {i}");
        }
    }
}
