//! Process-wide execution-plan cache.
//!
//! The paper's run-time stage is amortized by design: it "only generates
//! this execution plan at the beginning" and reuses it for the whole group
//! (§5.3). The one-shot entry points in [`crate::api`] extend that
//! amortization **across calls**: plans are keyed by every input property
//! the planner consumes — routine, element type, dimensions, mode,
//! conjugation flags, group count, and a fingerprint of the tuning config —
//! so steady-state traffic over repeated shapes skips the Batch Counter,
//! Pack Selecter, and tile decomposition entirely and pays only per-call
//! validation.
//!
//! Plan construction here is tens of nanoseconds, so the lookup has to be
//! almost free to be worth anything. Two layers keep it that way:
//!
//! 1. A **thread-local front cache** of the last few plans this thread
//!    dispatched: no lock, no allocation, a linear scan of a handful of
//!    keys. Steady-state same-shape traffic never leaves this layer.
//! 2. A **sharded shared cache** behind it (a `Mutex`-guarded flat vector
//!    per shard, shard picked by a cheap multiply-rotate hash — no
//!    `SipHash` on the dispatch path). It is bounded: each shard holds at
//!    most [`SHARD_CAP`] plans and evicts the least-recently-used entry
//!    when full. Plans are `Arc`s, so eviction never invalidates a plan a
//!    caller (or a front cache) still holds.
//!
//! [`clear`] bumps a global epoch that invalidates every thread's front
//! cache on its next lookup.
//!
//! Callers that manage plan lifetimes themselves set
//! [`PlanCachePolicy::Bypass`](crate::config::PlanCachePolicy) (or build
//! plans directly) and never touch the cache.

use crate::config::{fx_mix, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{GemmPlan, TrmmPlan, TrsmPlan};
use crate::sync::{AtomicU64, Ordering::Relaxed};
use iatf_layout::{GemmDims, GemmMode, LayoutError, TrsmDims, TrsmMode};
use iatf_obs as obs;
use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 8;

/// Plans held per shard before LRU eviction kicks in.
pub const SHARD_CAP: usize = 16;

/// Plans remembered per thread in the lock-free front cache.
const FRONT_SLOTS: usize = 8;

/// Everything the planners key their decisions on, flattened to primitives.
#[derive(Copy, Clone, PartialEq, Eq)]
struct Key {
    /// 0 = GEMM, 1 = TRSM, 2 = TRMM.
    op: u8,
    /// `DType` discriminant.
    dtype: u8,
    m: usize,
    n: usize,
    k: usize,
    /// GEMM: transa/transb bits. TRSM/TRMM: side/trans/uplo/diag bits.
    mode: u8,
    /// GEMM: conj_a | conj_b << 1. TRSM/TRMM: conj.
    conj: u8,
    count: usize,
    cfg: u64,
}

impl Key {
    /// Stable journal-key rendering (tune-key style, minus the width —
    /// the cfg fingerprint folds it in and travels in the event payload).
    fn journal_key(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}",
            self.op, self.dtype, self.m, self.n, self.k, self.mode, self.conj, self.count
        )
    }

    fn hash64(&self) -> u64 {
        let tags = ((self.op as u64) << 48)
            | ((self.dtype as u64) << 32)
            | ((self.mode as u64) << 16)
            | (self.conj as u64);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fx_mix(h, tags);
        h = fx_mix(h, self.m as u64);
        h = fx_mix(h, self.n as u64);
        h = fx_mix(h, self.k as u64);
        h = fx_mix(h, self.count as u64);
        h = fx_mix(h, self.cfg);
        h
    }
}

type AnyPlan = Arc<dyn Any + Send + Sync>;

struct Entry {
    hash: u64,
    key: Key,
    plan: AnyPlan,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    /// Flat storage: at most [`SHARD_CAP`] entries, scanned linearly
    /// (hash compared first). Cheaper than a `HashMap` at this size and
    /// avoids a second hashing pass.
    entries: Vec<Entry>,
    tick: u64,
}

struct PlanCache {
    shards: [Mutex<Shard>; SHARDS],
    /// Bumped by [`clear`]; front caches self-invalidate on mismatch.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

fn cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache {
        shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        epoch: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
        bypasses: AtomicU64::new(0),
    })
}

/// The per-thread front of the plan cache. It holds no lock and no
/// atomics of its own; its correctness contract is the *epoch protocol*
/// against [`PlanCache::epoch`]:
///
/// 1. a dispatch loads the global epoch exactly once, at entry;
/// 2. [`revalidate`](FrontCache::revalidate) runs against that observed
///    epoch before any lookup, dropping everything remembered under an
///    older epoch;
/// 3. [`remember`](FrontCache::remember) re-checks the same observed
///    epoch, so a plan is never stored into a front that has since moved
///    on.
///
/// Together these guarantee that a dispatch observing epoch `E` never
/// serves (or stores) a plan remembered under an epoch `< E` — the
/// invariant the `loom_models` module at the bottom of this file drives
/// through every bounded interleaving with a concurrent [`clear`].
struct FrontCache {
    epoch: u64,
    /// Round-robin replacement cursor.
    next: usize,
    entries: Vec<(Key, AnyPlan)>,
}

impl FrontCache {
    const fn new() -> Self {
        FrontCache {
            epoch: 0,
            next: 0,
            entries: Vec::new(),
        }
    }

    /// Step 2 of the epoch protocol: drops every remembered plan unless
    /// it was remembered under `epoch` (the value this dispatch observed
    /// in [`PlanCache::epoch`]).
    fn revalidate(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.entries.clear();
            self.next = 0;
            self.epoch = epoch;
        }
    }

    /// Linear scan over the (few) remembered plans. Only meaningful after
    /// [`revalidate`](Self::revalidate) in the same dispatch.
    fn lookup(&self, key: &Key) -> Option<AnyPlan> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, plan)| Arc::clone(plan))
    }

    /// Step 3 of the epoch protocol: stores `plan` round-robin, unless a
    /// newer epoch was installed since this dispatch observed `epoch` (a
    /// concurrent [`clear`] raced us — the plan is then dropped rather
    /// than remembered under an epoch it does not belong to).
    fn remember(&mut self, epoch: u64, key: Key, plan: &AnyPlan) {
        if self.epoch != epoch {
            return;
        }
        let slot = self.next;
        if self.entries.len() < FRONT_SLOTS {
            self.entries.push((key, Arc::clone(plan)));
        } else {
            self.entries[slot] = (key, Arc::clone(plan));
        }
        self.next = (slot + 1) % FRONT_SLOTS;
    }
}

thread_local! {
    static FRONT: RefCell<FrontCache> = const { RefCell::new(FrontCache::new()) };
}

/// Journal probe for a freshly planned shape (runs only on the shared-
/// cache miss path, so sweep-built and bypass plans stay silent): the
/// chosen pack/tile/width decisions plus a digest of the full explain
/// document. Returns the event id for the cache-insert probe to cite.
fn journal_plan_build(key: &Key, x: &obs::PlanExplain) -> u64 {
    iatf_journal::publish(
        iatf_journal::EventKind::PlanBuild,
        &key.journal_key(),
        0,
        obs::Json::object()
            .set("op", x.op.as_str())
            .set("dtype", x.dtype.as_str())
            .set("mode", x.mode.as_str())
            .set("p", x.p)
            .set("width_bits", x.width_bits)
            .set("uarch", x.uarch.as_str())
            .set("group_packs", x.group_packs)
            .set("pack_a", x.pack_a.as_str())
            .set("pack_b", x.pack_b.as_str())
            .set("main_mr", x.main_kernel.0)
            .set("main_nr", x.main_kernel.1)
            .set("tiles", x.tiles_per_matrix())
            .set(
                "explain_digest",
                format!("{:016x}", iatf_journal::digest64(&x.to_json().to_compact())).as_str(),
            ),
    )
}

/// Looks `key` up in the front cache, then its shard; on a miss, builds
/// the plan (outside the shard lock — concurrent same-shape misses may
/// build twice, and the first insert wins) and caches it in both layers.
/// `describe` journals the freshly built plan (a no-op closure returning
/// 0 when the journal is off) and hands back the `plan_build` event id.
fn get_or_build<P, F, D>(key: Key, build: F, describe: D) -> Result<Arc<P>, LayoutError>
where
    P: Send + Sync + 'static,
    F: FnOnce() -> Result<P, LayoutError>,
    D: FnOnce(&P) -> u64,
{
    let c = cache();
    // ordering: Relaxed — the epoch is the only shared word of the front
    // protocol and carries no payload of its own: observing a stale value
    // only delays invalidation by one dispatch (the stale front still
    // serves plans remembered under the epoch it observed, which is the
    // invariant; see FrontCache). Plans themselves are published by the
    // shard Mutex, never through this load.
    let epoch = c.epoch.load(Relaxed);

    // Fast path: this thread dispatched the same shape recently.
    let front_hit = FRONT.with(|front| {
        let mut f = front.borrow_mut();
        f.revalidate(epoch);
        f.lookup(&key)
    });
    if let Some(plan) = front_hit {
        // ordering: Relaxed — monotonic statistics counter; no reader
        // infers anything from it about other memory.
        c.hits.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Hit);
        return Ok(plan
            .downcast::<P>()
            .expect("plan cache keys encode the concrete plan type"));
    }

    let hash = key.hash64();
    let shard = &c.shards[(hash % SHARDS as u64) as usize];
    let shared: Option<AnyPlan> = {
        let mut s = shard.lock().expect("plan cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        s.entries
            .iter_mut()
            .find(|e| e.hash == hash && e.key == key)
            .map(|e| {
                e.last_used = tick;
                Arc::clone(&e.plan)
            })
    };
    let (plan, hit) = match shared {
        Some(plan) => (plan, true),
        None => {
            // build without holding the shard lock — planning allocates
            let planned = build()?;
            let build_event = describe(&planned);
            let built: AnyPlan = Arc::new(planned);
            // Journaled outside the shard lock below; `Some` only when
            // this thread actually inserted (the race loser stays quiet).
            let mut evicted: Option<Key> = None;
            let mut inserted = false;
            let mut s = shard.lock().expect("plan cache shard poisoned");
            s.tick += 1;
            let tick = s.tick;
            let plan = match s.entries.iter_mut().find(|e| e.hash == hash && e.key == key) {
                // another thread inserted while we built: keep its plan
                Some(e) => {
                    e.last_used = tick;
                    Arc::clone(&e.plan)
                }
                None => {
                    if s.entries.len() >= SHARD_CAP {
                        let oldest = s
                            .entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(i, _)| i)
                            .expect("shard at capacity is non-empty");
                        evicted = Some(s.entries[oldest].key);
                        s.entries.swap_remove(oldest);
                        // ordering: Relaxed — monotonic statistics
                        // counter (shard state is guarded by its Mutex).
                        c.evictions.fetch_add(1, Relaxed);
                        obs::count_plan_cache(obs::CacheEvent::Eviction);
                    }
                    s.entries.push(Entry {
                        hash,
                        key,
                        plan: Arc::clone(&built),
                        last_used: tick,
                    });
                    inserted = true;
                    built
                }
            };
            drop(s);
            if iatf_journal::is_enabled() && inserted {
                if let Some(old) = evicted {
                    iatf_journal::publish(
                        iatf_journal::EventKind::CacheEvict,
                        &old.journal_key(),
                        build_event,
                        obs::Json::object()
                            .set("cfg", format!("{:016x}", old.cfg).as_str())
                            .set("shard", (hash % SHARDS as u64) as usize),
                    );
                }
                iatf_journal::publish(
                    iatf_journal::EventKind::CacheInsert,
                    &key.journal_key(),
                    build_event,
                    obs::Json::object()
                        .set("cfg", format!("{:016x}", key.cfg).as_str())
                        .set("shard", (hash % SHARDS as u64) as usize),
                );
            }
            (plan, false)
        }
    };
    // ordering: Relaxed — monotonic statistics counters; no reader infers
    // anything from them about other memory.
    if hit {
        c.hits.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Hit);
    } else {
        c.misses.fetch_add(1, Relaxed);
        obs::count_plan_cache(obs::CacheEvent::Miss);
    }

    // Remember in the front cache (round-robin over a few slots).
    FRONT.with(|front| front.borrow_mut().remember(epoch, key, &plan));

    Ok(plan
        .downcast::<P>()
        .expect("plan cache keys encode the concrete plan type"))
}

/// Records a deliberate cache skip (the `Bypass` policy) in the stats.
pub(crate) fn note_bypass() {
    // ordering: Relaxed — monotonic statistics counter.
    cache().bypasses.fetch_add(1, Relaxed);
    obs::count_plan_cache(obs::CacheEvent::Bypass);
}

pub(crate) fn gemm_mode_bits(mode: GemmMode) -> u8 {
    (mode.transa.is_trans() as u8) | ((mode.transb.is_trans() as u8) << 1)
}

pub(crate) fn trsm_mode_bits(mode: TrsmMode) -> u8 {
    ((mode.side == iatf_layout::Side::Right) as u8)
        | ((mode.trans.is_trans() as u8) << 1)
        | ((mode.uplo == iatf_layout::Uplo::Upper) as u8) << 2
        | ((mode.diag == iatf_layout::Diag::Unit) as u8) << 3
}

/// Returns the shared GEMM plan for this shape, building it on first use.
pub fn cached_gemm_plan<E: CompactElement>(
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<GemmPlan<E>>, LayoutError> {
    let key = Key {
        op: 0,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: dims.k,
        mode: gemm_mode_bits(mode),
        conj: (conj_a as u8) | ((conj_b as u8) << 1),
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(
        key,
        || GemmPlan::<E>::new(dims, mode, conj_a, conj_b, count, cfg),
        |p| {
            if !iatf_journal::is_enabled() {
                return 0;
            }
            journal_plan_build(&key, &p.explain())
        },
    )
}

/// Returns the shared TRSM plan for this shape, building it on first use.
pub fn cached_trsm_plan<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<TrsmPlan<E>>, LayoutError> {
    let key = Key {
        op: 1,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: 0,
        mode: trsm_mode_bits(mode),
        conj: conj as u8,
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(
        key,
        || TrsmPlan::<E>::new(dims, mode, conj, count, cfg),
        |p| {
            if !iatf_journal::is_enabled() {
                return 0;
            }
            journal_plan_build(&key, &p.explain())
        },
    )
}

/// Returns the shared TRMM plan for this shape, building it on first use.
pub fn cached_trmm_plan<E: CompactElement>(
    dims: TrsmDims,
    mode: TrsmMode,
    conj: bool,
    count: usize,
    cfg: &TuningConfig,
) -> Result<Arc<TrmmPlan<E>>, LayoutError> {
    let key = Key {
        op: 2,
        dtype: E::DTYPE as u8,
        m: dims.m,
        n: dims.n,
        k: 0,
        mode: trsm_mode_bits(mode),
        conj: conj as u8,
        count,
        cfg: cfg.fingerprint(),
    };
    get_or_build(
        key,
        || TrmmPlan::<E>::new(dims, mode, conj, count, cfg),
        |p| {
            if !iatf_journal::is_enabled() {
                return 0;
            }
            journal_plan_build(&key, &p.explain())
        },
    )
}

/// Point-in-time plan-cache statistics. Always live (plain atomics,
/// independent of the `obs` feature). Hits count both front-cache and
/// shared-cache hits; every lookup is exactly one hit or one miss.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (either layer).
    pub hits: u64,
    /// Lookups that built and inserted a plan.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
    /// Calls that skipped the cache via `PlanCachePolicy::Bypass`.
    pub bypasses: u64,
    /// Plans resident in the shared cache (front caches not counted).
    pub entries: usize,
}

/// Snapshot of the cache counters and current occupancy.
pub fn stats() -> PlanCacheStats {
    let c = cache();
    // ordering: Relaxed — point-in-time reads of independent monotonic
    // counters; the snapshot is advisory, not a consistent cut.
    PlanCacheStats {
        hits: c.hits.load(Relaxed),
        misses: c.misses.load(Relaxed),
        evictions: c.evictions.load(Relaxed),
        bypasses: c.bypasses.load(Relaxed),
        entries: c
            .shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").entries.len())
            .sum(),
    }
}

/// Drops every cached plan (outstanding `Arc`s stay valid), invalidates
/// all front caches via the epoch, and zeroes the counters. Intended for
/// tests and long-lived processes that change tuning configs wholesale.
pub fn clear() {
    let c = cache();
    // ordering: Relaxed — the bump needs no release fence because it
    // publishes nothing: fronts that observe the new value drop their
    // entries and rebuild through the shard Mutex (which is the real
    // synchronization point), and fronts that observe the old value keep
    // serving plans remembered under it, which is the documented
    // transient-staleness window of `clear`. The bump-before-clear order
    // below is still load-bearing for the *shared* cache: a thread that
    // finds a shard empty after this line can only remember the rebuilt
    // plan under the epoch it observed at entry.
    let epoch = c.epoch.fetch_add(1, Relaxed) + 1;
    if iatf_journal::is_enabled() {
        iatf_journal::publish(
            iatf_journal::EventKind::CacheGenerationBump,
            "*",
            0,
            obs::Json::object().set("epoch", epoch),
        );
    }
    for shard in &c.shards {
        let mut s = shard.lock().expect("plan cache shard poisoned");
        s.entries.clear();
        s.tick = 0;
    }
    // ordering: Relaxed — statistics counters reset; racing dispatches
    // may re-add a count, which the stats snapshot tolerates.
    c.hits.store(0, Relaxed);
    c.misses.store(0, Relaxed);
    c.evictions.store(0, Relaxed);
    c.bypasses.store(0, Relaxed);
}

/// Total capacity of the shared cache in plans.
pub const fn capacity() -> usize {
    SHARDS * SHARD_CAP
}

/// Bounded model checking of the front-cache epoch protocol (run with
/// `RUSTFLAGS="--cfg loom" cargo test -p iatf-core --lib loom`): every
/// interleaving of a dispatching thread against a concurrent `clear()`
/// epoch bump, within the model checker's preemption bound.
#[cfg(all(loom, test))]
mod loom_models {
    use super::*;
    use crate::sync::AtomicU64;
    use loom::thread;

    fn model_key() -> Key {
        Key {
            op: 0,
            dtype: 1,
            m: 4,
            n: 4,
            k: 4,
            mode: 0,
            conj: 0,
            count: 32,
            cfg: 7,
        }
    }

    /// Plans in the model are `Arc<u64>` tagged with the epoch they were
    /// remembered under, so a served plan can testify which generation it
    /// belongs to.
    fn tagged(epoch: u64) -> AnyPlan {
        Arc::new(epoch) as AnyPlan
    }

    fn tag_of(plan: &AnyPlan) -> u64 {
        *plan.downcast_ref::<u64>().expect("model plans are epoch tags")
    }

    /// Invariant: a dispatch that observes epoch `E` never serves a plan
    /// remembered under an epoch `< E`, no matter how a concurrent
    /// `clear()` bump interleaves with it.
    #[test]
    fn front_never_serves_plan_from_dead_epoch() {
        loom::model(|| {
            let epoch = Arc::new(AtomicU64::new(0));
            let key = model_key();
            let mut front = FrontCache::new();

            // Dispatch 1 (pre-race): remember a plan under the epoch it
            // observed.
            let e1 = epoch.load(Relaxed);
            front.revalidate(e1);
            front.remember(e1, key, &tagged(e1));

            // Concurrent clear(): the epoch bump, as clear() issues it.
            let writer = {
                let epoch = Arc::clone(&epoch);
                thread::spawn(move || {
                    epoch.fetch_add(1, Relaxed);
                })
            };

            // Dispatch 2 races the bump: whatever epoch it observes, any
            // plan it serves must carry exactly that epoch.
            let e2 = epoch.load(Relaxed);
            front.revalidate(e2);
            if let Some(plan) = front.lookup(&key) {
                assert_eq!(
                    tag_of(&plan),
                    e2,
                    "front served a plan remembered under a dead epoch"
                );
            }

            writer.join().unwrap();

            // Dispatch 3 (post-race): the bump is now visible; the plan
            // remembered under epoch 0 must be gone.
            let e3 = epoch.load(Relaxed);
            assert_eq!(e3, 1);
            front.revalidate(e3);
            assert!(
                front.lookup(&key).is_none(),
                "plan from generation 0 survived the generation bump"
            );
        });
    }

    /// Invariant: `remember` never stores a plan into a front that has
    /// already revalidated against a newer epoch — a build that straddles
    /// a `clear()` is dropped, not cached under the wrong generation.
    #[test]
    fn front_remember_refuses_stale_epoch() {
        loom::model(|| {
            let epoch = Arc::new(AtomicU64::new(0));
            let key = model_key();
            let mut front = FrontCache::new();

            // A dispatch observes epoch 0 and starts building.
            let e1 = epoch.load(Relaxed);
            front.revalidate(e1);

            let writer = {
                let epoch = Arc::clone(&epoch);
                thread::spawn(move || {
                    epoch.fetch_add(1, Relaxed);
                })
            };

            // Another dispatch on the same thread may interleave and
            // observe the bumped epoch before the first one's remember
            // runs (thread-local fronts serialize dispatches, but the
            // remember of a long build can follow a fresher revalidate).
            let e2 = epoch.load(Relaxed);
            front.revalidate(e2);
            front.remember(e1, key, &tagged(e1));

            // If the front moved on to epoch 1, the stale remember must
            // have been dropped; if it is still on epoch 0, the entry is
            // legitimately epoch-0 and dispatch 3 below clears it.
            if e2 > e1 {
                assert!(
                    front.lookup(&key).is_none(),
                    "remember stored a plan under a dead epoch"
                );
            }

            writer.join().unwrap();

            let e3 = epoch.load(Relaxed);
            front.revalidate(e3);
            if let Some(plan) = front.lookup(&key) {
                assert_eq!(tag_of(&plan), e3);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cache behaviour tests live in `tests/plan_cache.rs`, serialized
    // against the global state; here the pure key helpers plus a real-
    // thread stress probe of the front-cache epoch protocol (the loom
    // models above prove the same invariant exhaustively but only within
    // the checker's preemption bound).
    #[test]
    fn mode_bits_are_injective() {
        let mut seen = std::collections::HashSet::new();
        for mode in GemmMode::ALL {
            assert!(seen.insert(gemm_mode_bits(mode)));
        }
        let mut seen = std::collections::HashSet::new();
        for mode in TrsmMode::all() {
            assert!(seen.insert(trsm_mode_bits(mode)));
        }
    }

    #[test]
    fn key_hash_separates_nearby_keys() {
        let base = Key {
            op: 0,
            dtype: 1,
            m: 4,
            n: 4,
            k: 4,
            mode: 0,
            conj: 0,
            count: 32,
            cfg: 7,
        };
        let mut hashes = std::collections::HashSet::new();
        hashes.insert(base.hash64());
        for (i, variant) in [
            Key { op: 1, ..base },
            Key { dtype: 2, ..base },
            Key { m: 5, ..base },
            Key { n: 5, ..base },
            Key { k: 5, ..base },
            Key { mode: 1, ..base },
            Key { conj: 1, ..base },
            Key { count: 33, ..base },
            Key { cfg: 8, ..base },
        ]
        .into_iter()
        .enumerate()
        {
            assert!(hashes.insert(variant.hash64()), "collision at field {i}");
        }
    }

    /// Real-thread stress test of the invariant the loom model proves in
    /// the bounded case: a dispatch that observed epoch `E` never serves
    /// a plan remembered under an epoch `< E` (a "dead generation").
    /// Plans are tagged with the epoch they were remembered under, a
    /// bumper thread races `clear()`-style epoch advances against worker
    /// dispatch loops, and every front hit must carry the tag of the
    /// epoch the serving dispatch observed.
    #[test]
    #[cfg(not(loom))]
    fn stress_front_never_serves_dead_generation() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
        use std::sync::Arc;

        const WORKERS: usize = 4;
        const DISPATCHES: usize = 100_000;

        let epoch = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let bumper = {
            let (epoch, stop) = (Arc::clone(&epoch), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    epoch.fetch_add(1, Relaxed);
                    std::thread::yield_now();
                }
            })
        };

        let key = Key {
            op: 0,
            dtype: 1,
            m: 8,
            n: 8,
            k: 8,
            mode: 0,
            conj: 0,
            count: 1,
            cfg: 42,
        };
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let epoch = Arc::clone(&epoch);
                std::thread::spawn(move || {
                    let mut front = FrontCache::new();
                    for _ in 0..DISPATCHES {
                        // The epoch protocol: observe once, revalidate,
                        // lookup, remember under the observed value.
                        let e = epoch.load(Relaxed);
                        front.revalidate(e);
                        if let Some(plan) = front.lookup(&key) {
                            let tag = *plan
                                .downcast::<u64>()
                                .expect("stress plans are epoch tags");
                            assert_eq!(
                                tag, e,
                                "front served a plan remembered under a dead generation"
                            );
                        }
                        let plan: AnyPlan = Arc::new(e);
                        front.remember(e, key, &plan);
                    }
                })
            })
            .collect();

        for w in workers {
            w.join().expect("stress worker panicked");
        }
        stop.store(true, Relaxed);
        bumper.join().expect("epoch bumper panicked");
    }
}
