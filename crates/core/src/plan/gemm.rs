//! GEMM execution plans.

use crate::autotune;
use crate::config::{PackPolicy, TuningConfig};
use crate::elem::CompactElement;
use crate::plan::{explain as ex, group_packs, tiles, Command};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, LayoutError};
use iatf_simd::VecWidth;
use iatf_obs as obs;
use iatf_pack::gemm as pk;
use iatf_trace as trace;
use iatf_pack::{arena, PackBuffer};
use std::sync::OnceLock;

/// How one GEMM operand is accessed (Pack Selecter output).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OperandPlan {
    /// Gather into a unit-stride panel before computing.
    Packed,
    /// Stream directly from the compact layout (no-pack, §4.4).
    Direct,
}

/// A reusable execution plan for compact batched GEMM:
/// `C = α·op(A)·op(B) + β·C` over a group of `count` matrices.
#[derive(Clone, Debug)]
pub struct GemmPlan<E: CompactElement> {
    dims: GemmDims,
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    count: usize,
    /// Vector width the plan was built for (from `cfg.width`); operand
    /// batches must be laid out at the same width.
    width: VecWidth,
    /// Interleaving factor at that width (matrices per pack).
    p: usize,
    packs: usize,
    /// Packs per super-block (Batch Counter output).
    pub group_packs: usize,
    /// A access decision.
    pub a_plan: OperandPlan,
    /// B access decision.
    pub b_plan: OperandPlan,
    m_tiles: Vec<(usize, usize)>,
    n_tiles: Vec<(usize, usize)>,
    /// Kernel handles resolved at build time, one per `(n_tile, m_tile)`
    /// grid cell (row-major over `n_tiles × m_tiles`), so the hot loop
    /// does one indirect call per tile with no table walk.
    tile_kernels: Vec<E::GemmK>,
    use_parallel: bool,
    a_panel_len: usize,
    b_panel_len: usize,
    commands: OnceLock<Vec<Command>>,
    _marker: core::marker::PhantomData<E>,
}

impl<E: CompactElement> GemmPlan<E> {
    /// Builds a plan from the input matrix properties.
    pub fn new(
        dims: GemmDims,
        mode: GemmMode,
        conj_a: bool,
        conj_b: bool,
        count: usize,
        cfg: &TuningConfig,
    ) -> Result<Self, LayoutError> {
        let _span = obs::phase(obs::Phase::PlanBuild);
        let _trace = trace::span_arg(trace::SpanKind::PlanBuild, count as u64);
        dims.validate()?;
        if count == 0 {
            return Err(LayoutError::EmptyDimension("batch count"));
        }
        let width = cfg.width;
        let p = E::p_at(width);
        let g = p * E::SCALARS;
        let m_tiles = tiles(dims.m, E::MR);
        let n_tiles = tiles(dims.n, E::NR);

        // A tuned entry (when the policy consults the db) overrides the
        // static Pack Selecter / Batch Counter outputs below.
        let tuned = autotune::lookup_gemm::<E>(dims, mode, conj_a, conj_b, count, cfg);

        // Pack Selecter (§5.2): pack only when the kernel cannot stream the
        // operand — more than one tile row/column — or when conjugation must
        // happen during a copy. Policy overrides support the ablations.
        let pack_policy = tuned.and_then(|t| t.pack).unwrap_or(cfg.pack);
        let a_plan = decide(pack_policy, conj_a, dims.m > E::MR);
        let b_plan = decide(pack_policy, conj_b, dims.n > E::NR);

        let a_panel_len = pk::panel_a_len::<E>(p, dims.m, dims.k);
        let b_panel_len = pk::panel_b_len::<E>(p, dims.k, dims.n);
        let scalar_bytes = core::mem::size_of::<E::Real>();
        // Batch Counter: packed A and B panels (or their directly-streamed
        // sources, same footprint) plus the C pack must cycle through L1.
        let bytes_per_pack =
            (a_panel_len + b_panel_len + dims.m * dims.n * g) * scalar_bytes;
        let packs = count.div_ceil(p);
        let gp = match tuned.and_then(|t| t.group_packs) {
            Some(tuned_gp) => tuned_gp.clamp(1, packs.max(1)),
            None => group_packs(cfg.batch, cfg.l1_budget_bytes(), bytes_per_pack, packs),
        };

        let tile_kernels = n_tiles
            .iter()
            .flat_map(|&(_, w)| {
                m_tiles
                    .iter()
                    .map(move |&(_, h)| E::gemm_kernel_for(width, h, w))
            })
            .collect();

        obs::count_plan_build(obs::Op::Gemm, count);
        Ok(Self {
            dims,
            mode,
            conj_a,
            conj_b,
            count,
            width,
            p,
            packs,
            group_packs: gp,
            a_plan,
            b_plan,
            m_tiles,
            n_tiles,
            tile_kernels,
            use_parallel: tuned.is_some_and(|t| t.parallel),
            a_panel_len,
            b_panel_len,
            commands: OnceLock::new(),
            _marker: core::marker::PhantomData,
        })
    }

    /// Problem dimensions.
    pub fn dims(&self) -> GemmDims {
        self.dims
    }

    /// Transpose mode.
    pub fn mode(&self) -> GemmMode {
        self.mode
    }

    /// Group size the plan was built for.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Vector width the plan was built for.
    pub fn width(&self) -> VecWidth {
        self.width
    }

    /// Whether the tuned serial→parallel crossover picked parallel
    /// execution for this input (always `false` under pure heuristics).
    /// The one-shot API dispatches on this; plan holders may too.
    pub fn use_parallel(&self) -> bool {
        self.use_parallel
    }

    /// Validates operand batches against the planned shapes.
    fn validate(
        &self,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        c: &CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        let (ar, ac) = self.dims.a_shape(self.mode);
        check_shape("A", a, ar, ac, self.count, self.width)?;
        let (br, bc) = self.dims.b_shape(self.mode);
        check_shape("B", b, br, bc, self.count, self.width)?;
        let (cr, cc) = self.dims.c_shape();
        check_shape("C", c, cr, cc, self.count, self.width)?;
        Ok(())
    }

    /// Executes the plan: `C = α·op(A)·op(B) + β·C`.
    ///
    /// Scratch comes from the thread-local [`arena`], so repeated executes
    /// are allocation-free after the first call on a thread.
    pub fn execute(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        beta: E,
        c: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        self.validate(a, b, c)?;
        obs::count_execute(obs::Op::Gemm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        let mut lease = arena::lease::<E::Real>();
        let gp = self.group_packs;
        let ps = c.pack_stride();
        for (sb_idx, c_chunk) in c.as_scalars_mut().chunks_mut(ps * gp).enumerate() {
            let sb_packs = c_chunk.len() / ps;
            self.run_superblock(alpha, a, b, beta, c_chunk, ps, sb_idx * gp, sb_packs, lease.buffer());
        }
        Ok(())
    }

    /// Scalar lengths of the packed A and B panels (0 when streamed).
    fn panel_lens(&self) -> (usize, usize) {
        let a_len = if self.a_plan == OperandPlan::Packed {
            self.a_panel_len
        } else {
            0
        };
        let b_len = if self.b_plan == OperandPlan::Packed {
            self.b_panel_len
        } else {
            0
        };
        (a_len, b_len)
    }

    /// Packs one pack's operands into the given buffer slots (no-ops for
    /// streamed operands, whose slots are empty).
    fn pack_one(
        &self,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        pk_idx: usize,
        buf_a: &mut [E::Real],
        buf_b: &mut [E::Real],
    ) {
        if !buf_a.is_empty() {
            let _span = obs::phase(obs::Phase::PackA);
            let _trace = trace::span_arg(trace::SpanKind::PackA, pk_idx as u64);
            pk::pack_a(
                buf_a,
                a,
                pk_idx,
                self.mode.transa,
                self.conj_a,
                E::MR,
                self.dims.m,
                self.dims.k,
            );
            obs::count_packed_bytes_a(core::mem::size_of_val(buf_a));
        }
        if !buf_b.is_empty() {
            let _span = obs::phase(obs::Phase::PackB);
            let _trace = trace::span_arg(trace::SpanKind::PackB, pk_idx as u64);
            pk::pack_b(
                buf_b,
                b,
                pk_idx,
                self.mode.transb,
                self.conj_b,
                E::NR,
                self.dims.k,
                self.dims.n,
            );
            obs::count_packed_bytes_b(core::mem::size_of_val(buf_b));
        }
    }

    /// Computes one pack's C tiles. `cp` is the pack's base scalar pointer.
    #[allow(clippy::too_many_arguments)]
    fn compute_one(
        &self,
        alpha: E,
        beta: E,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        pk_idx: usize,
        buf_a: &[E::Real],
        buf_b: &[E::Real],
        cp: *mut E::Real,
    ) {
        let _span = obs::phase(obs::Phase::Compute);
        let _trace = trace::span_arg(trace::SpanKind::Compute, pk_idx as u64);
        let g = self.p * E::SCALARS;
        let dims = self.dims;
        let da = pk::direct_a::<E>(self.p, self.mode.transa, a.rows());
        let db = pk::direct_b::<E>(self.p, self.mode.transb, b.rows());
        let c_rows = dims.m;
        let ap_direct = a.pack_ptr(pk_idx);
        let bp_direct = b.pack_ptr(pk_idx);
        let m_count = self.m_tiles.len();
        for (jj, &(j0, w)) in self.n_tiles.iter().enumerate() {
            let (pb, b_j, b_k) = if !buf_b.is_empty() {
                // SAFETY: `b_tile_offset` indexes inside `buf_b`, which was sized for the full packed B at plan build (tiles validated against the batch shape).
                let base = unsafe { buf_b.as_ptr().add(pk::b_tile_offset::<E>(self.p, j0, dims.k)) };
                (base, g, w * g)
            } else {
                (
                    // SAFETY: `j0` is a validated n-tile origin, so the direct-B offset stays inside the compact matrix.
                    unsafe { bp_direct.add(j0 * db.tile_scale) },
                    db.minor,
                    db.step_k,
                )
            };
            for (ii, &(i0, h)) in self.m_tiles.iter().enumerate() {
                let (pa, a_i, a_k) = if !buf_a.is_empty() {
                    // SAFETY: `a_tile_offset` indexes inside `buf_a`, which was sized for the full packed A at plan build.
                    let base =
                        unsafe { buf_a.as_ptr().add(pk::a_tile_offset::<E>(self.p, i0, dims.k)) };
                    (base, g, h * g)
                } else {
                    (
                        // SAFETY: `i0` is a validated m-tile origin, so the direct-A offset stays inside the compact matrix.
                        unsafe { ap_direct.add(i0 * da.tile_scale) },
                        da.minor,
                        da.step_k,
                    )
                };
                // SAFETY: `(j0, i0)` is a validated tile origin of the m×n grid, so the C offset stays inside the compact output.
                let ct = unsafe { cp.add((j0 * c_rows + i0) * g) };
                obs::count_dispatch(obs::Op::Gemm, h, w, h == E::MR && w == E::NR);
                // Safety: pointers/strides cover exactly the tile regions
                // validated against the batch shapes above; the handle was
                // resolved for this grid cell's (h, w) at build time.
                unsafe {
                    E::gemm_kernel(
                        self.tile_kernels[jj * m_count + ii],
                        dims.k,
                        alpha,
                        beta,
                        pa,
                        a_i,
                        a_k,
                        pb,
                        b_j,
                        b_k,
                        ct,
                        g,
                        c_rows * g,
                    );
                }
            }
        }
    }

    /// Packs then computes one super-block of packs. `c_chunk` is the
    /// contiguous scalar storage of packs `sb..sb + sb_packs` (pack stride
    /// `ps`) — the same code path serves the serial loop and the parallel
    /// executor's per-task chunks, so both produce bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn run_superblock(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        beta: E,
        c_chunk: &mut [E::Real],
        ps: usize,
        sb: usize,
        sb_packs: usize,
        buf: &mut PackBuffer<E::Real>,
    ) {
        obs::count_superblock(obs::Op::Gemm, sb_packs);
        let _trace = trace::span_arg(trace::SpanKind::Superblock, sb_packs as u64);
        let (a_len, b_len) = self.panel_lens();
        let (buf_a, buf_b) = buf.split_two(a_len * sb_packs, b_len * sb_packs);

        // Packing phase: the whole super-block's panels land in L1 together.
        for slot in 0..sb_packs {
            self.pack_one(
                a,
                b,
                sb + slot,
                &mut buf_a[slot * a_len..(slot + 1) * a_len],
                &mut buf_b[slot * b_len..(slot + 1) * b_len],
            );
        }

        // Compute phase.
        for slot in 0..sb_packs {
            let pk_idx = sb + slot;
            let cp = c_chunk[slot * ps..(slot + 1) * ps].as_mut_ptr();
            self.compute_one(
                alpha,
                beta,
                a,
                b,
                pk_idx,
                &buf_a[slot * a_len..(slot + 1) * a_len],
                &buf_b[slot * b_len..(slot + 1) * b_len],
                cp,
            );
        }
    }

    /// Multi-threaded execution: *super-blocks* are distributed across the
    /// rayon pool (the paper's "extend our approach to multicore CPU"
    /// future-work item). Partitioning at super-block granularity preserves
    /// the Batch Counter's L1 sizing per worker — each task packs and
    /// computes exactly the working set the serial schedule would keep live
    /// — and each worker leases its own scratch from the thread-local
    /// [`arena`]. Tasks run the same [`Self::run_superblock`] body over the
    /// same disjoint C chunks as the serial loop, so the result is
    /// bit-identical to [`Self::execute`].
    #[cfg(feature = "parallel")]
    pub fn execute_parallel(
        &self,
        alpha: E,
        a: &CompactBatch<E>,
        b: &CompactBatch<E>,
        beta: E,
        c: &mut CompactBatch<E>,
    ) -> Result<(), LayoutError> {
        use rayon::prelude::*;
        self.validate(a, b, c)?;
        obs::count_execute(obs::Op::Gemm);
        let _trace = trace::span_arg(trace::SpanKind::Execute, self.packs as u64);
        let gp = self.group_packs;
        let ps = c.pack_stride();
        c.as_scalars_mut()
            .par_chunks_mut(ps * gp)
            .enumerate()
            .for_each_init(arena::lease::<E::Real>, |lease, (sb_idx, c_chunk)| {
                let sb_packs = c_chunk.len() / ps;
                self.run_superblock(
                    alpha,
                    a,
                    b,
                    beta,
                    c_chunk,
                    ps,
                    sb_idx * gp,
                    sb_packs,
                    lease.buffer(),
                );
            });
        Ok(())
    }

    /// The plan rendered as the paper's command-queue view. Rendered once
    /// on first call and cached in the plan; subsequent calls return the
    /// same slice.
    pub fn commands(&self) -> &[Command] {
        self.commands.get_or_init(|| self.render_commands())
    }

    fn render_commands(&self) -> Vec<Command> {
        let mut out = Vec::new();
        let mut sb = 0usize;
        while sb < self.packs {
            let sb_packs = self.group_packs.min(self.packs - sb);
            for slot in 0..sb_packs {
                let pack = sb + slot;
                if self.a_plan == OperandPlan::Packed {
                    out.push(Command::PackA { pack });
                }
                if self.b_plan == OperandPlan::Packed {
                    out.push(Command::PackB { pack });
                }
            }
            for slot in 0..sb_packs {
                let pack = sb + slot;
                for &(j0, w) in &self.n_tiles {
                    for &(i0, h) in &self.m_tiles {
                        out.push(Command::Gemm {
                            pack,
                            i0,
                            j0,
                            mr: h,
                            nr: w,
                        });
                    }
                }
            }
            sb += sb_packs;
        }
        obs::count_plan_commands(out.len());
        out
    }

    /// Structured description of what one `execute()` will do: kernel
    /// sizes, tile grid, pack strategy, predicted work, and install-time
    /// scheduling stats for every dispatchable kernel.
    pub fn explain(&self) -> obs::PlanExplain {
        let d = self.dims;
        let main = (E::MR, E::NR);
        let classes = ex::tile_classes(
            self.n_tiles
                .iter()
                .flat_map(|&(_, w)| self.m_tiles.iter().map(move |&(_, h)| (h, w))),
            main,
        );
        let tiles_per_matrix: usize = classes.iter().map(|t| t.tiles).sum();
        let (a_len, b_len) = self.panel_lens();
        let scalar_bytes = core::mem::size_of::<E::Real>() as u64;
        let macs = (d.m * d.n * d.k * self.count) as u64;
        obs::PlanExplain {
            op: "gemm".into(),
            dtype: E::DTYPE.to_string(),
            m: d.m,
            n: d.n,
            k: d.k,
            mode: self.mode.to_string(),
            count: self.count,
            p: self.p,
            width_bits: self.width.bits(),
            uarch: iatf_kernels::row_for(self.width).uarch.to_string(),
            packs: self.packs,
            group_packs: self.group_packs,
            main_kernel: main,
            main_area_fraction: ex::main_area_fraction(&classes, d.m * d.n),
            pack_a: ex::operand_str(self.a_plan).into(),
            pack_b: ex::operand_str(self.b_plan).into(),
            predicted_flops: E::DTYPE.flops_per_mac() as u64 * macs,
            predicted_packed_bytes: ((a_len + b_len) * self.packs) as u64 * scalar_bytes,
            predicted_dispatches: (tiles_per_matrix * self.packs) as u64,
            kernels: ex::gemm_kernel_stats(E::DTYPE, &classes, d.k, d.m),
            verify: (d.k > 0).then(|| {
                ex::verify_summary(ex::gemm_contracts(E::DTYPE, &classes, d.k, d.m))
            }),
            tile_classes: classes,
        }
    }
}


fn decide(policy: PackPolicy, conj: bool, needs_pack: bool) -> OperandPlan {
    match policy {
        PackPolicy::Always => OperandPlan::Packed,
        PackPolicy::Never => {
            if conj {
                OperandPlan::Packed
            } else {
                OperandPlan::Direct
            }
        }
        PackPolicy::Auto => {
            if conj || needs_pack {
                OperandPlan::Packed
            } else {
                OperandPlan::Direct
            }
        }
    }
}

fn check_shape<E: CompactElement>(
    operand: &'static str,
    batch: &CompactBatch<E>,
    rows: usize,
    cols: usize,
    count: usize,
    width: VecWidth,
) -> Result<(), LayoutError> {
    if batch.width() != width {
        return Err(LayoutError::WidthMismatch {
            operand,
            expected: width,
            got: batch.width(),
        });
    }
    if (batch.rows(), batch.cols()) != (rows, cols) {
        return Err(LayoutError::ShapeMismatch {
            operand,
            expected: (rows, cols),
            got: (batch.rows(), batch.cols()),
        });
    }
    if batch.count() != count {
        return Err(LayoutError::BatchMismatch {
            operand,
            expected: count,
            got: batch.count(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_selection_follows_paper_rule() {
        let cfg = TuningConfig::default();
        // M ≤ m_r and N ≤ n_r: both direct.
        let p = GemmPlan::<f64>::new(GemmDims::new(4, 4, 9), GemmMode::NN, false, false, 10, &cfg)
            .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Direct);
        assert_eq!(p.b_plan, OperandPlan::Direct);
        // M > m_r forces A packing.
        let p = GemmPlan::<f64>::new(GemmDims::new(5, 4, 9), GemmMode::NN, false, false, 10, &cfg)
            .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Packed);
        assert_eq!(p.b_plan, OperandPlan::Direct);
        // complex kernels are 3×2
        let p = GemmPlan::<iatf_simd::c32>::new(
            GemmDims::new(3, 3, 3),
            GemmMode::NN,
            false,
            false,
            4,
            &cfg,
        )
        .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Direct);
        assert_eq!(p.b_plan, OperandPlan::Packed); // 3 > NR = 2
    }

    #[test]
    fn conjugation_forces_packing() {
        let cfg = TuningConfig::default();
        let p = GemmPlan::<iatf_simd::c64>::new(
            GemmDims::new(2, 2, 2),
            GemmMode::NN,
            true,
            true,
            4,
            &cfg,
        )
        .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Packed);
        assert_eq!(p.b_plan, OperandPlan::Packed);
    }

    #[test]
    fn policy_overrides() {
        let mut cfg = TuningConfig {
            pack: PackPolicy::Always,
            ..TuningConfig::default()
        };
        let p = GemmPlan::<f32>::new(GemmDims::new(2, 2, 2), GemmMode::NN, false, false, 4, &cfg)
            .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Packed);
        cfg.pack = PackPolicy::Never;
        let p = GemmPlan::<f32>::new(
            GemmDims::new(20, 20, 20),
            GemmMode::TT,
            false,
            false,
            4,
            &cfg,
        )
        .unwrap();
        assert_eq!(p.a_plan, OperandPlan::Direct);
        assert_eq!(p.b_plan, OperandPlan::Direct);
    }

    #[test]
    fn batch_counter_scales_with_size() {
        let cfg = TuningConfig::default();
        let small =
            GemmPlan::<f32>::new(GemmDims::square(2), GemmMode::NN, false, false, 4096, &cfg)
                .unwrap();
        let large =
            GemmPlan::<f32>::new(GemmDims::square(32), GemmMode::NN, false, false, 4096, &cfg)
                .unwrap();
        assert!(small.group_packs > large.group_packs);
        assert!(large.group_packs >= 1);
    }

    #[test]
    fn command_queue_covers_every_tile_once() {
        // Pinned to W128 (P=2 for f64): count 5 → 3 packs.
        let cfg = TuningConfig {
            width: VecWidth::W128,
            ..TuningConfig::default()
        };
        let plan =
            GemmPlan::<f64>::new(GemmDims::new(7, 6, 5), GemmMode::NN, false, false, 5, &cfg)
                .unwrap();
        let cmds = plan.commands();
        let mut tiles_seen = std::collections::HashSet::new();
        let mut area_by_pack = vec![0usize; 3];
        for c in cmds {
            if let Command::Gemm {
                pack,
                i0,
                j0,
                mr,
                nr,
            } = c
            {
                assert!(tiles_seen.insert((*pack, *i0, *j0)), "duplicate tile");
                area_by_pack[*pack] += mr * nr;
            }
        }
        for area in area_by_pack {
            assert_eq!(area, 42);
        }
    }

    #[test]
    fn pack_commands_precede_compute_within_superblock() {
        let cfg = TuningConfig {
            pack: PackPolicy::Always,
            batch: crate::config::BatchPolicy::Fixed(2),
            width: VecWidth::W128,
            ..TuningConfig::default()
        };
        let plan =
            GemmPlan::<f64>::new(GemmDims::square(4), GemmMode::NN, false, false, 8, &cfg).unwrap();
        let cmds = plan.commands();
        // with P=2 → 4 packs → 2 super-blocks of 2
        let pack_positions: Vec<usize> = cmds
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Command::PackA { .. } | Command::PackB { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(pack_positions.len(), 8);
        // first superblock: packs 0,1 packed before any Gemm command
        let first_gemm = cmds
            .iter()
            .position(|c| matches!(c, Command::Gemm { .. }))
            .unwrap();
        assert!(pack_positions.iter().filter(|&&p| p < first_gemm).count() == 4);
    }

    #[test]
    fn rejects_bad_shapes() {
        let cfg = TuningConfig::default();
        let plan =
            GemmPlan::<f64>::new(GemmDims::new(3, 4, 5), GemmMode::NN, false, false, 2, &cfg)
                .unwrap();
        let a = CompactBatch::<f64>::zeroed(3, 5, 2);
        let b = CompactBatch::<f64>::zeroed(5, 4, 2);
        let mut c_bad = CompactBatch::<f64>::zeroed(4, 3, 2);
        assert!(plan.execute(1.0, &a, &b, 1.0, &mut c_bad).is_err());
        let b_bad = CompactBatch::<f64>::zeroed(4, 5, 2);
        let mut c = CompactBatch::<f64>::zeroed(3, 4, 2);
        assert!(plan.execute(1.0, &a, &b_bad, 1.0, &mut c).is_err());
        let a_badcount = CompactBatch::<f64>::zeroed(3, 5, 3);
        assert!(plan.execute(1.0, &a_badcount, &b, 1.0, &mut c).is_err());
        assert!(plan.execute(1.0, &a, &b, 1.0, &mut c).is_ok());
    }

    #[test]
    fn rejects_width_mismatched_operands() {
        // A plan built for one width must refuse batches laid out at
        // another — their group geometry differs element-by-element.
        let cfg = TuningConfig {
            width: VecWidth::W128,
            ..TuningConfig::default()
        };
        let plan =
            GemmPlan::<f64>::new(GemmDims::new(3, 4, 5), GemmMode::NN, false, false, 2, &cfg)
                .unwrap();
        assert_eq!(plan.width(), VecWidth::W128);
        let a = CompactBatch::<f64>::zeroed_at(3, 5, 2, VecWidth::W128);
        let b = CompactBatch::<f64>::zeroed_at(5, 4, 2, VecWidth::W128);
        let mut c = CompactBatch::<f64>::zeroed_at(3, 4, 2, VecWidth::Scalar);
        match plan.execute(1.0, &a, &b, 1.0, &mut c) {
            Err(LayoutError::WidthMismatch {
                operand,
                expected,
                got,
            }) => {
                assert_eq!(operand, "C");
                assert_eq!(expected, VecWidth::W128);
                assert_eq!(got, VecWidth::Scalar);
            }
            other => panic!("expected WidthMismatch, got {other:?}"),
        }
        let mut c_ok = CompactBatch::<f64>::zeroed_at(3, 4, 2, VecWidth::W128);
        assert!(plan.execute(1.0, &a, &b, 1.0, &mut c_ok).is_ok());
    }

    #[test]
    fn zero_dims_rejected_at_planning() {
        let cfg = TuningConfig::default();
        assert!(
            GemmPlan::<f32>::new(GemmDims::new(0, 1, 1), GemmMode::NN, false, false, 1, &cfg)
                .is_err()
        );
        assert!(
            GemmPlan::<f32>::new(GemmDims::new(1, 1, 1), GemmMode::NN, false, false, 0, &cfg)
                .is_err()
        );
    }
}
