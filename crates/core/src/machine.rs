//! Machine profiles (paper Table 2) and host detection.
//!
//! The run-time stage's Batch Counter needs the L1D capacity; the benchmark
//! harness needs peak-FLOPS figures to reproduce the percent-of-peak plots
//! (Figures 11–12). The two evaluation machines of the paper are encoded
//! verbatim; the host profile is detected from sysfs with conservative
//! fallbacks.

/// Static description of a CPU for tuning and reporting purposes.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Microarchitecture label.
    pub arch: &'static str,
    /// L1 data cache per core, bytes.
    pub l1d_bytes: usize,
    /// L2 cache per core, bytes.
    pub l2_bytes: usize,
    /// SIMD width in bits.
    pub simd_bits: usize,
    /// Nominal frequency in GHz.
    pub freq_ghz: f64,
    /// Single-core FP64 peak, GFLOPS (0 = unknown; measure instead).
    pub peak_fp64_gflops: f64,
    /// Single-core FP32 peak, GFLOPS (0 = unknown; measure instead).
    pub peak_fp32_gflops: f64,
}

/// Kunpeng 920 (ARMv8.2), the paper's primary evaluation machine.
pub const KUNPENG_920: MachineProfile = MachineProfile {
    name: "Kunpeng 920",
    arch: "ARMv8.2",
    l1d_bytes: 64 * 1024,
    l2_bytes: 512 * 1024,
    simd_bits: 128,
    freq_ghz: 2.6,
    peak_fp64_gflops: 10.4,
    peak_fp32_gflops: 41.6,
};

/// Intel Xeon Gold 6240 (Cascade Lake), the paper's MKL-compact reference.
pub const XEON_6240: MachineProfile = MachineProfile {
    name: "Intel Xeon Gold 6240",
    arch: "Cascade Lake",
    l1d_bytes: 32 * 1024,
    l2_bytes: 1024 * 1024,
    simd_bits: 512,
    freq_ghz: 2.6,
    peak_fp64_gflops: 83.2,
    peak_fp32_gflops: 166.4,
};

/// Parses a sysfs cache `size` string into bytes. The kernel usually
/// writes a `K` suffix (`"64K"`), but large last-level caches report `M`
/// (`"1M"`) and some hypervisor-synthesized topologies emit a bare byte
/// count (`"32768"`); all three occur in the wild.
fn parse_cache_size_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, scale) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024usize),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(scale)
}

fn read_sysfs_cache_bytes(index: usize) -> Option<usize> {
    let path = format!("/sys/devices/system/cpu/cpu0/cache/index{index}/size");
    parse_cache_size_bytes(&std::fs::read_to_string(path).ok()?)
}

fn read_sysfs_cache_level(index: usize) -> Option<(usize, String)> {
    let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
    let level = std::fs::read_to_string(format!("{base}/level"))
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()?;
    let ty = std::fs::read_to_string(format!("{base}/type")).ok()?;
    Some((level, ty.trim().to_string()))
}

/// Detects the host's cache hierarchy, falling back to 32 KiB L1D / 512 KiB
/// L2 when sysfs is unavailable.
pub fn host_profile() -> MachineProfile {
    let mut l1d = 32 * 1024;
    let mut l2 = 512 * 1024;
    for index in 0..6 {
        if let Some((level, ty)) = read_sysfs_cache_level(index) {
            if let Some(bytes) = read_sysfs_cache_bytes(index) {
                if level == 1 && ty == "Data" {
                    l1d = bytes;
                } else if level == 2 {
                    l2 = bytes;
                }
            }
        }
    }
    MachineProfile {
        name: "host",
        arch: if cfg!(target_arch = "aarch64") {
            "aarch64"
        } else if cfg!(target_arch = "x86_64") {
            "x86_64"
        } else {
            "unknown"
        },
        l1d_bytes: l1d,
        l2_bytes: l2,
        simd_bits: 128,
        freq_ghz: 0.0,
        peak_fp64_gflops: 0.0,
        peak_fp32_gflops: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        // Paper Table 2, row for row.
        assert_eq!(KUNPENG_920.l1d_bytes, 65536);
        assert_eq!(KUNPENG_920.l2_bytes, 524288);
        assert_eq!(KUNPENG_920.simd_bits, 128);
        assert_eq!(KUNPENG_920.freq_ghz, 2.6);
        assert_eq!(KUNPENG_920.peak_fp64_gflops, 10.4);
        assert_eq!(KUNPENG_920.peak_fp32_gflops, 41.6);
        assert_eq!(XEON_6240.l1d_bytes, 32768);
        assert_eq!(XEON_6240.l2_bytes, 1048576);
        assert_eq!(XEON_6240.simd_bits, 512);
        assert_eq!(XEON_6240.peak_fp32_gflops, 166.4);
    }

    #[test]
    fn peak_ratio_is_consistent() {
        // FP32 peak is 4× FP64 on Kunpeng 920 (128-bit unit) and 2× on the
        // Xeon (512-bit with different port counts in the paper's counting).
        assert!((KUNPENG_920.peak_fp32_gflops / KUNPENG_920.peak_fp64_gflops - 4.0).abs() < 1e-9);
        assert!((XEON_6240.peak_fp32_gflops / XEON_6240.peak_fp64_gflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cache_size_parsing_handles_all_sysfs_forms() {
        // Kibibyte suffix (the common case).
        assert_eq!(parse_cache_size_bytes("64K"), Some(64 * 1024));
        assert_eq!(parse_cache_size_bytes(" 512K\n"), Some(512 * 1024));
        // Mebibyte suffix (large L2/L3).
        assert_eq!(parse_cache_size_bytes("1M"), Some(1024 * 1024));
        assert_eq!(parse_cache_size_bytes("24M"), Some(24 * 1024 * 1024));
        // Bare byte count (some virtualized topologies).
        assert_eq!(parse_cache_size_bytes("32768"), Some(32768));
        // Gibibyte suffix and lowercase variants.
        assert_eq!(parse_cache_size_bytes("1G"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_cache_size_bytes("48k"), Some(48 * 1024));
        // Rejects junk rather than misparsing it.
        assert_eq!(parse_cache_size_bytes(""), None);
        assert_eq!(parse_cache_size_bytes("K"), None);
        assert_eq!(parse_cache_size_bytes("fastK"), None);
        assert_eq!(parse_cache_size_bytes("12KB"), None);
    }

    #[test]
    fn host_profile_is_sane() {
        let h = host_profile();
        assert!(h.l1d_bytes >= 8 * 1024);
        assert!(h.l2_bytes >= h.l1d_bytes);
        assert_eq!(h.simd_bits, 128);
    }
}
