//! Framework configuration.

use crate::machine::{host_profile, MachineProfile};
use iatf_simd::{dispatched_width, VecWidth};

/// Packing policy for the Pack Selecter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PackPolicy {
    /// Paper behaviour: pack only when the kernel cannot already stream the
    /// operand sequentially (no-pack "as much as possible", §5.2).
    #[default]
    Auto,
    /// Always pack (ablation: isolates the cost of packing).
    Always,
    /// Never pack where structurally possible (ablation: isolates the cost
    /// of strided kernel access; conjugated operands still pack since
    /// conjugation cannot be expressed as a stride).
    Never,
}

/// Super-block sizing policy for the Batch Counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Paper behaviour: as many packs per super-block as fit the L1 budget.
    #[default]
    Auto,
    /// Fixed number of packs per super-block (ablation).
    Fixed(usize),
}

/// Whether one-shot entry points may share plans through the global cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlanCachePolicy {
    /// Consult the process-wide plan cache: same-shape traffic reuses the
    /// plan built by the first call (the paper's "only generates this
    /// execution plan at the beginning", extended across calls).
    #[default]
    Shared,
    /// Build a fresh plan on every call — for callers that manage their own
    /// plans, or measurements that must include planning cost.
    Bypass,
}

/// How the run-time stage uses the empirical tuning database
/// (`iatf-tune`): whether measured winners override the static heuristics
/// and whether unseen inputs trigger a micro-benchmark sweep.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// Static heuristics only (paper behaviour). The tuning db is never
    /// consulted; this is the default and the fallback when the db is
    /// absent or corrupt.
    #[default]
    Heuristic,
    /// Consult the db: a recorded winner overrides the Pack Selecter /
    /// Batch Counter outputs and drives serial/parallel auto dispatch.
    /// Unseen inputs fall back to the heuristics — nothing is measured.
    Cached,
    /// Like [`TunePolicy::Cached`], but the first call with an unseen
    /// input fingerprint runs a calibrated micro-benchmark sweep within
    /// roughly this many milliseconds of wall clock, records the winner,
    /// and then dispatches with it.
    FirstTouch(u64),
}

/// Tuning configuration consumed by the run-time stage.
#[derive(Clone, Debug)]
pub struct TuningConfig {
    /// L1 data cache capacity the Batch Counter budgets against.
    pub l1d_bytes: usize,
    /// Vector width plans are built for. Defaults to the process-wide
    /// dispatched width (widest the host supports, unless
    /// `IATF_FORCE_WIDTH` narrowed it), which matches the width
    /// [`iatf_layout::CompactBatch::zeroed`] lays batches out at. The
    /// interleaving factor `P`, kernel tables, and autotune candidate
    /// lists all derive from this — and it is folded into
    /// [`TuningConfig::fingerprint`], so plans and tuning records from one
    /// width are never served at another.
    pub width: VecWidth,
    /// Fraction of L1 the packed working set may occupy (the remainder is
    /// headroom for C traffic and stacks; the paper "reserves space for
    /// matrix C").
    pub l1_budget_fraction: f64,
    /// Packing policy.
    pub pack: PackPolicy,
    /// Super-block sizing policy.
    pub batch: BatchPolicy,
    /// Plan-cache policy for the one-shot entry points.
    pub plan_cache: PlanCachePolicy,
    /// Empirical-autotuner policy (see [`TunePolicy`]).
    pub tune: TunePolicy,
}

impl TuningConfig {
    /// Configuration for an explicit machine profile.
    pub fn for_machine(m: &MachineProfile) -> Self {
        Self {
            l1d_bytes: m.l1d_bytes,
            width: dispatched_width(),
            l1_budget_fraction: 0.5,
            pack: PackPolicy::Auto,
            batch: BatchPolicy::Auto,
            plan_cache: PlanCachePolicy::Shared,
            tune: TunePolicy::Heuristic,
        }
    }

    /// Host-detected configuration.
    pub fn host() -> Self {
        Self::for_machine(&host_profile())
    }

    /// Bytes of packed operands the Batch Counter may keep live at once.
    pub fn l1_budget_bytes(&self) -> usize {
        ((self.l1d_bytes as f64) * self.l1_budget_fraction) as usize
    }

    /// Hash of every field that influences plan construction — part of the
    /// plan-cache key, so configs that would plan differently never share a
    /// cached plan. The cache policy itself is deliberately excluded (it
    /// changes where a plan lives, not what it contains).
    ///
    /// Computed on every one-shot call, so it uses the cheap process-local
    /// mixer ([`fx_mix`]) rather than `SipHash` — the value never leaves
    /// the process, only distinctness of configs matters.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fx_mix(h, self.l1d_bytes as u64);
        // Width changes the interleaving factor and therefore every pack
        // geometry decision a plan bakes in: configs differing only in
        // width must never share a cached plan.
        h = fx_mix(h, self.width.code() as u64);
        h = fx_mix(h, self.l1_budget_fraction.to_bits());
        let (batch_tag, batch_g) = match self.batch {
            BatchPolicy::Auto => (0u64, 0u64),
            BatchPolicy::Fixed(g) => (1u64, g as u64),
        };
        h = fx_mix(h, ((self.pack as u64) << 8) | batch_tag);
        h = fx_mix(h, batch_g);
        // The tuning db only influences plan construction when the policy
        // consults it — and then the *db generation* is part of the
        // fingerprint, so recording a new winner changes every subsequent
        // cache key and stale cached plans age out by eviction.
        let (tune_tag, tune_budget) = match self.tune {
            TunePolicy::Heuristic => (0u64, 0u64),
            TunePolicy::Cached => (1u64, 0u64),
            TunePolicy::FirstTouch(ms) => (2u64, ms),
        };
        h = fx_mix(h, tune_tag);
        if tune_tag != 0 {
            h = fx_mix(h, tune_budget);
            h = fx_mix(h, iatf_tune::TuningDb::global().generation());
        }
        h
    }
}

/// One round of the fx-style multiply-rotate mixer shared by
/// [`TuningConfig::fingerprint`] and the plan-cache key hash. Far cheaper
/// than `SipHash` (no per-hash init/finalization), which matters because it
/// sits on the one-shot dispatch path.
#[inline]
pub(crate) fn fx_mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95)
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::KUNPENG_920;

    #[test]
    fn kunpeng_budget() {
        let cfg = TuningConfig::for_machine(&KUNPENG_920);
        assert_eq!(cfg.l1d_bytes, 65536);
        assert_eq!(cfg.l1_budget_bytes(), 32768);
    }

    #[test]
    fn default_is_host() {
        let cfg = TuningConfig::default();
        assert!(cfg.l1_budget_bytes() > 0);
        assert_eq!(cfg.pack, PackPolicy::Auto);
        assert_eq!(cfg.batch, BatchPolicy::Auto);
        assert_eq!(cfg.tune, TunePolicy::Heuristic);
    }

    #[test]
    fn fingerprint_separates_widths() {
        let base = TuningConfig::for_machine(&KUNPENG_920);
        let mut prints = std::collections::HashSet::new();
        for width in VecWidth::ALL {
            let cfg = TuningConfig {
                width,
                ..base.clone()
            };
            assert!(prints.insert(cfg.fingerprint()), "{width:?} collided");
        }
    }

    #[test]
    fn default_width_is_dispatched() {
        assert_eq!(TuningConfig::host().width, dispatched_width());
    }

    #[test]
    fn fingerprint_separates_tune_policies() {
        let base = TuningConfig::for_machine(&KUNPENG_920);
        let cached = TuningConfig {
            tune: TunePolicy::Cached,
            ..base.clone()
        };
        let ft = TuningConfig {
            tune: TunePolicy::FirstTouch(50),
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), cached.fingerprint());
        assert_ne!(base.fingerprint(), ft.fingerprint());
        assert_ne!(cached.fingerprint(), ft.fingerprint());
        // Heuristic fingerprints are independent of the tuning db, so
        // repeated calls are stable even while the db mutates.
        assert_eq!(base.fingerprint(), base.fingerprint());
    }
}
