//! Framework configuration.

use crate::machine::{host_profile, MachineProfile};

/// Packing policy for the Pack Selecter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PackPolicy {
    /// Paper behaviour: pack only when the kernel cannot already stream the
    /// operand sequentially (no-pack "as much as possible", §5.2).
    #[default]
    Auto,
    /// Always pack (ablation: isolates the cost of packing).
    Always,
    /// Never pack where structurally possible (ablation: isolates the cost
    /// of strided kernel access; conjugated operands still pack since
    /// conjugation cannot be expressed as a stride).
    Never,
}

/// Super-block sizing policy for the Batch Counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Paper behaviour: as many packs per super-block as fit the L1 budget.
    #[default]
    Auto,
    /// Fixed number of packs per super-block (ablation).
    Fixed(usize),
}

/// Tuning configuration consumed by the run-time stage.
#[derive(Clone, Debug)]
pub struct TuningConfig {
    /// L1 data cache capacity the Batch Counter budgets against.
    pub l1d_bytes: usize,
    /// Fraction of L1 the packed working set may occupy (the remainder is
    /// headroom for C traffic and stacks; the paper "reserves space for
    /// matrix C").
    pub l1_budget_fraction: f64,
    /// Packing policy.
    pub pack: PackPolicy,
    /// Super-block sizing policy.
    pub batch: BatchPolicy,
}

impl TuningConfig {
    /// Configuration for an explicit machine profile.
    pub fn for_machine(m: &MachineProfile) -> Self {
        Self {
            l1d_bytes: m.l1d_bytes,
            l1_budget_fraction: 0.5,
            pack: PackPolicy::Auto,
            batch: BatchPolicy::Auto,
        }
    }

    /// Host-detected configuration.
    pub fn host() -> Self {
        Self::for_machine(&host_profile())
    }

    /// Bytes of packed operands the Batch Counter may keep live at once.
    pub fn l1_budget_bytes(&self) -> usize {
        ((self.l1d_bytes as f64) * self.l1_budget_fraction) as usize
    }
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::KUNPENG_920;

    #[test]
    fn kunpeng_budget() {
        let cfg = TuningConfig::for_machine(&KUNPENG_920);
        assert_eq!(cfg.l1d_bytes, 65536);
        assert_eq!(cfg.l1_budget_bytes(), 32768);
    }

    #[test]
    fn default_is_host() {
        let cfg = TuningConfig::default();
        assert!(cfg.l1_budget_bytes() > 0);
        assert_eq!(cfg.pack, PackPolicy::Auto);
        assert_eq!(cfg.batch, BatchPolicy::Auto);
    }
}
