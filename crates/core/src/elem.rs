//! Element-to-kernel dispatch glue.
//!
//! [`CompactElement`] extends `iatf_simd::Element` with the install-time
//! constants (main kernel sizes, TRSM blocking parameters) and the kernel
//! invocation shims the run-time stage needs. Real and complex elements
//! route to different kernel families but expose the same interface, so the
//! planners are written once.

use iatf_kernels::table::{
    cplx_gemm_kernel, cplx_trmm_kernel, cplx_trsm_kernel, real_gemm_kernel, real_trmm_kernel,
    real_trsm_kernel,
};
use iatf_simd::Element;

/// An element type the IATF framework can plan and execute for.
pub trait CompactElement: Element {
    /// Main GEMM kernel rows (CMAR-optimal: 4 real, 3 complex).
    const MR: usize;
    /// Main GEMM kernel columns (4 real, 2 complex).
    const NR: usize;
    /// TRSM diagonal-block height for the blocked path (4 real, 2 complex —
    /// Table 1's rectangular kernel heights).
    const TRSM_TB: usize;
    /// Largest order solved entirely in registers (5 real, 2 complex).
    const TRSM_TMAX: usize;
    /// TRSM B-panel width (4 real, 2 complex).
    const TRSM_NR: usize;

    /// Invokes the `(mr, nr)` GEMM microkernel. See
    /// `iatf_kernels::RealGemmKernel` for the addressing contract.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel.
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_kernel(
        mr: usize,
        nr: usize,
        k: usize,
        alpha: Self,
        beta: Self,
        pa: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pb: *const Self::Real,
        b_j: usize,
        b_k: usize,
        c: *mut Self::Real,
        c_i: usize,
        c_j: usize,
    );

    /// Invokes the fused `(mr, nr)` TRSM block kernel. See
    /// `iatf_kernels::RealTrsmKernel` for the addressing contract.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel.
    #[allow(clippy::too_many_arguments)]
    unsafe fn trsm_kernel(
        mr: usize,
        nr: usize,
        kk: usize,
        pa_rect: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pa_tri: *const Self::Real,
        panel: *mut Self::Real,
        row0: usize,
        row_stride: usize,
        col_stride: usize,
    );

    /// Invokes the fused `(mr, nr)` TRMM block kernel (extension). Same
    /// addressing as [`CompactElement::trsm_kernel`] with a direct-diagonal
    /// triangle and an explicit `alpha`.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel.
    #[allow(clippy::too_many_arguments)]
    unsafe fn trmm_kernel(
        mr: usize,
        nr: usize,
        kk: usize,
        alpha: Self,
        pa_rect: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pa_tri: *const Self::Real,
        panel: *mut Self::Real,
        row0: usize,
        row_stride: usize,
        col_stride: usize,
    );
}

macro_rules! impl_real_compact {
    ($t:ty) => {
        impl CompactElement for $t {
            const MR: usize = 4;
            const NR: usize = 4;
            const TRSM_TB: usize = 4;
            const TRSM_TMAX: usize = 5;
            const TRSM_NR: usize = 4;

            #[inline]
            unsafe fn gemm_kernel(
                mr: usize,
                nr: usize,
                k: usize,
                alpha: Self,
                beta: Self,
                pa: *const Self,
                a_i: usize,
                a_k: usize,
                pb: *const Self,
                b_j: usize,
                b_k: usize,
                c: *mut Self,
                c_i: usize,
                c_j: usize,
            ) {
                real_gemm_kernel::<$t>(mr, nr)(
                    k, alpha, beta, pa, a_i, a_k, pb, b_j, b_k, c, c_i, c_j,
                )
            }

            #[inline]
            unsafe fn trsm_kernel(
                mr: usize,
                nr: usize,
                kk: usize,
                pa_rect: *const Self,
                a_i: usize,
                a_k: usize,
                pa_tri: *const Self,
                panel: *mut Self,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                real_trsm_kernel::<$t>(mr, nr)(
                    kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride,
                )
            }

            #[inline]
            unsafe fn trmm_kernel(
                mr: usize,
                nr: usize,
                kk: usize,
                alpha: Self,
                pa_rect: *const Self,
                a_i: usize,
                a_k: usize,
                pa_tri: *const Self,
                panel: *mut Self,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                real_trmm_kernel::<$t>(mr, nr)(
                    kk, alpha, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride,
                )
            }
        }
    };
}

impl_real_compact!(f32);
impl_real_compact!(f64);

macro_rules! impl_cplx_compact {
    ($t:ty, $r:ty) => {
        impl CompactElement for $t {
            const MR: usize = 3;
            const NR: usize = 2;
            const TRSM_TB: usize = 2;
            const TRSM_TMAX: usize = 2;
            const TRSM_NR: usize = 2;

            #[inline]
            unsafe fn gemm_kernel(
                mr: usize,
                nr: usize,
                k: usize,
                alpha: Self,
                beta: Self,
                pa: *const $r,
                a_i: usize,
                a_k: usize,
                pb: *const $r,
                b_j: usize,
                b_k: usize,
                c: *mut $r,
                c_i: usize,
                c_j: usize,
            ) {
                cplx_gemm_kernel::<$r>(mr, nr)(
                    k,
                    [alpha.re, alpha.im],
                    [beta.re, beta.im],
                    pa,
                    a_i,
                    a_k,
                    pb,
                    b_j,
                    b_k,
                    c,
                    c_i,
                    c_j,
                )
            }

            #[inline]
            unsafe fn trsm_kernel(
                mr: usize,
                nr: usize,
                kk: usize,
                pa_rect: *const $r,
                a_i: usize,
                a_k: usize,
                pa_tri: *const $r,
                panel: *mut $r,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                cplx_trsm_kernel::<$r>(mr, nr)(
                    kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride,
                )
            }

            #[inline]
            unsafe fn trmm_kernel(
                mr: usize,
                nr: usize,
                kk: usize,
                alpha: Self,
                pa_rect: *const $r,
                a_i: usize,
                a_k: usize,
                pa_tri: *const $r,
                panel: *mut $r,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                cplx_trmm_kernel::<$r>(mr, nr)(
                    kk,
                    [alpha.re, alpha.im],
                    pa_rect,
                    a_i,
                    a_k,
                    pa_tri,
                    panel,
                    row0,
                    row_stride,
                    col_stride,
                )
            }
        }
    };
}

impl_cplx_compact!(iatf_simd::c32, f32);
impl_cplx_compact!(iatf_simd::c64, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use iatf_simd::{c32, c64};

    #[test]
    fn main_kernel_sizes_match_cmar_analysis() {
        assert_eq!((f32::MR, f32::NR), analysis::optimal_real_kernel());
        assert_eq!((f64::MR, f64::NR), analysis::optimal_real_kernel());
        let (m, n) = analysis::optimal_complex_kernel();
        assert_eq!((c32::MR, c32::NR), (m, n));
        assert_eq!((c64::MR, c64::NR), (m, n));
    }

    #[test]
    fn trsm_capacity_matches_analysis() {
        assert_eq!(f32::TRSM_TMAX, analysis::trsm_register_capacity());
        assert_eq!(f64::TRSM_TMAX, analysis::trsm_register_capacity());
        assert_eq!(c64::TRSM_TMAX, 2);
    }
}
