//! Element-to-kernel dispatch glue.
//!
//! [`CompactElement`] extends `iatf_simd::Element` with the install-time
//! constants (main kernel sizes, TRSM blocking parameters) and the kernel
//! invocation shims the run-time stage needs. Real and complex elements
//! route to different kernel families but expose the same interface, so the
//! planners are written once.
//!
//! Dispatch is split in two so the per-tile hot loops never walk the
//! install-time kernel table: `*_kernel_for(width, mr, nr)` resolves a kernel
//! *handle* (a plain function pointer) once at plan-build time, and the
//! `unsafe` invocation shims take that pre-resolved handle — one indirect
//! call per tile, no table lookup.

use iatf_kernels::table::{
    cplx_gemm_kernel, cplx_trmm_kernel, cplx_trsm_kernel, real_gemm_kernel, real_trmm_kernel,
    real_trsm_kernel,
};
use iatf_kernels::{
    CplxGemmKernel, CplxTrmmKernel, CplxTrsmKernel, RealGemmKernel, RealTrmmKernel, RealTrsmKernel,
};
use iatf_simd::{Element, VecWidth};

/// An element type the IATF framework can plan and execute for.
pub trait CompactElement: Element {
    /// Main GEMM kernel rows (CMAR-optimal: 4 real, 3 complex).
    const MR: usize;
    /// Main GEMM kernel columns (4 real, 2 complex).
    const NR: usize;
    /// TRSM diagonal-block height for the blocked path (4 real, 2 complex —
    /// Table 1's rectangular kernel heights).
    const TRSM_TB: usize;
    /// Largest order solved entirely in registers (5 real, 2 complex).
    const TRSM_TMAX: usize;
    /// TRSM B-panel width (4 real, 2 complex).
    const TRSM_NR: usize;

    /// Resolved GEMM microkernel handle (a bare function pointer). Plans
    /// resolve one per register tile at build time and store it.
    type GemmK: Copy + Send + Sync + core::fmt::Debug + 'static;
    /// Resolved TRSM block-kernel handle.
    type TrsmK: Copy + Send + Sync + core::fmt::Debug + 'static;
    /// Resolved TRMM block-kernel handle.
    type TrmmK: Copy + Send + Sync + core::fmt::Debug + 'static;

    /// Looks up the `(mr, nr)` GEMM microkernel in the install-time table.
    fn gemm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::GemmK;
    /// Looks up the `(mr, nr)` fused TRSM block kernel.
    fn trsm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrsmK;
    /// Looks up the `(mr, nr)` fused TRMM block kernel.
    fn trmm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrmmK;

    /// Invokes a pre-resolved GEMM microkernel. See
    /// `iatf_kernels::RealGemmKernel` for the addressing contract.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel; `kernel` must
    /// have been resolved by [`CompactElement::gemm_kernel_for`] with the
    /// tile shape the pointers describe.
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_kernel(
        kernel: Self::GemmK,
        k: usize,
        alpha: Self,
        beta: Self,
        pa: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pb: *const Self::Real,
        b_j: usize,
        b_k: usize,
        c: *mut Self::Real,
        c_i: usize,
        c_j: usize,
    );

    /// Invokes a pre-resolved fused TRSM block kernel. See
    /// `iatf_kernels::RealTrsmKernel` for the addressing contract.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel; `kernel` must
    /// match the block shape.
    #[allow(clippy::too_many_arguments)]
    unsafe fn trsm_kernel(
        kernel: Self::TrsmK,
        kk: usize,
        pa_rect: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pa_tri: *const Self::Real,
        panel: *mut Self::Real,
        row0: usize,
        row_stride: usize,
        col_stride: usize,
    );

    /// Invokes a pre-resolved fused TRMM block kernel (extension). Same
    /// addressing as [`CompactElement::trsm_kernel`] with a direct-diagonal
    /// triangle and an explicit `alpha`.
    ///
    /// # Safety
    /// Pointer/stride contract of the underlying kernel; `kernel` must
    /// match the block shape.
    #[allow(clippy::too_many_arguments)]
    unsafe fn trmm_kernel(
        kernel: Self::TrmmK,
        kk: usize,
        alpha: Self,
        pa_rect: *const Self::Real,
        a_i: usize,
        a_k: usize,
        pa_tri: *const Self::Real,
        panel: *mut Self::Real,
        row0: usize,
        row_stride: usize,
        col_stride: usize,
    );
}

macro_rules! impl_real_compact {
    ($t:ty) => {
        impl CompactElement for $t {
            const MR: usize = 4;
            const NR: usize = 4;
            const TRSM_TB: usize = 4;
            const TRSM_TMAX: usize = 5;
            const TRSM_NR: usize = 4;

            type GemmK = RealGemmKernel<$t>;
            type TrsmK = RealTrsmKernel<$t>;
            type TrmmK = RealTrmmKernel<$t>;

            #[inline]
            fn gemm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::GemmK {
                real_gemm_kernel::<$t>(width, mr, nr)
            }

            #[inline]
            fn trsm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrsmK {
                real_trsm_kernel::<$t>(width, mr, nr)
            }

            #[inline]
            fn trmm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrmmK {
                real_trmm_kernel::<$t>(width, mr, nr)
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn gemm_kernel(
                kernel: Self::GemmK,
                k: usize,
                alpha: Self,
                beta: Self,
                pa: *const Self,
                a_i: usize,
                a_k: usize,
                pb: *const Self,
                b_j: usize,
                b_k: usize,
                c: *mut Self,
                c_i: usize,
                c_j: usize,
            ) {
                kernel(k, alpha, beta, pa, a_i, a_k, pb, b_j, b_k, c, c_i, c_j)
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn trsm_kernel(
                kernel: Self::TrsmK,
                kk: usize,
                pa_rect: *const Self,
                a_i: usize,
                a_k: usize,
                pa_tri: *const Self,
                panel: *mut Self,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                kernel(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn trmm_kernel(
                kernel: Self::TrmmK,
                kk: usize,
                alpha: Self,
                pa_rect: *const Self,
                a_i: usize,
                a_k: usize,
                pa_tri: *const Self,
                panel: *mut Self,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                kernel(kk, alpha, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }
        }
    };
}

impl_real_compact!(f32);
impl_real_compact!(f64);

macro_rules! impl_cplx_compact {
    ($t:ty, $r:ty) => {
        impl CompactElement for $t {
            const MR: usize = 3;
            const NR: usize = 2;
            const TRSM_TB: usize = 2;
            const TRSM_TMAX: usize = 2;
            const TRSM_NR: usize = 2;

            type GemmK = CplxGemmKernel<$r>;
            type TrsmK = CplxTrsmKernel<$r>;
            type TrmmK = CplxTrmmKernel<$r>;

            #[inline]
            fn gemm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::GemmK {
                cplx_gemm_kernel::<$r>(width, mr, nr)
            }

            #[inline]
            fn trsm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrsmK {
                cplx_trsm_kernel::<$r>(width, mr, nr)
            }

            #[inline]
            fn trmm_kernel_for(width: VecWidth, mr: usize, nr: usize) -> Self::TrmmK {
                cplx_trmm_kernel::<$r>(width, mr, nr)
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn gemm_kernel(
                kernel: Self::GemmK,
                k: usize,
                alpha: Self,
                beta: Self,
                pa: *const $r,
                a_i: usize,
                a_k: usize,
                pb: *const $r,
                b_j: usize,
                b_k: usize,
                c: *mut $r,
                c_i: usize,
                c_j: usize,
            ) {
                kernel(
                    k,
                    [alpha.re, alpha.im],
                    [beta.re, beta.im],
                    pa,
                    a_i,
                    a_k,
                    pb,
                    b_j,
                    b_k,
                    c,
                    c_i,
                    c_j,
                )
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn trsm_kernel(
                kernel: Self::TrsmK,
                kk: usize,
                pa_rect: *const $r,
                a_i: usize,
                a_k: usize,
                pa_tri: *const $r,
                panel: *mut $r,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                kernel(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            #[inline]
            // SAFETY: unsafe fn — thin monomorphization shim; the pointer/stride contract is exactly the wrapped kernel type's (see iatf-kernels), forwarded unchanged.
            unsafe fn trmm_kernel(
                kernel: Self::TrmmK,
                kk: usize,
                alpha: Self,
                pa_rect: *const $r,
                a_i: usize,
                a_k: usize,
                pa_tri: *const $r,
                panel: *mut $r,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                kernel(
                    kk,
                    [alpha.re, alpha.im],
                    pa_rect,
                    a_i,
                    a_k,
                    pa_tri,
                    panel,
                    row0,
                    row_stride,
                    col_stride,
                )
            }
        }
    };
}

impl_cplx_compact!(iatf_simd::c32, f32);
impl_cplx_compact!(iatf_simd::c64, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use iatf_simd::{c32, c64};

    #[test]
    fn main_kernel_sizes_match_cmar_analysis() {
        assert_eq!((f32::MR, f32::NR), analysis::optimal_real_kernel());
        assert_eq!((f64::MR, f64::NR), analysis::optimal_real_kernel());
        let (m, n) = analysis::optimal_complex_kernel();
        assert_eq!((c32::MR, c32::NR), (m, n));
        assert_eq!((c64::MR, c64::NR), (m, n));
    }

    #[test]
    fn trsm_capacity_matches_analysis() {
        assert_eq!(f32::TRSM_TMAX, analysis::trsm_register_capacity());
        assert_eq!(f64::TRSM_TMAX, analysis::trsm_register_capacity());
        assert_eq!(c64::TRSM_TMAX, 2);
    }

    #[test]
    fn resolved_handles_match_the_install_time_table() {
        // The plan-build-time resolver must agree with a direct table walk
        // for every tile shape the planners can produce, at every width.
        for width in VecWidth::ALL {
            for mr in 1..=f64::MR {
                for nr in 1..=f64::NR {
                    assert_eq!(
                        f64::gemm_kernel_for(width, mr, nr) as usize,
                        real_gemm_kernel::<f64>(width, mr, nr) as usize
                    );
                }
            }
            for mr in 1..=c32::MR {
                for nr in 1..=c32::NR {
                    assert_eq!(
                        c32::gemm_kernel_for(width, mr, nr) as usize,
                        cplx_gemm_kernel::<f32>(width, mr, nr) as usize
                    );
                }
            }
        }
    }
}
