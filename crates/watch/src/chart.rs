//! EWMA/CUSUM control chart — the drift detector's math, dependency-free.
//!
//! One [`ControlChart`] watches one shape class against one expectation
//! (the performance envelope's `expected_ns`). Each warm dispatch feeds
//! its latency in; the chart maintains
//!
//! * an EWMA of the latency ratio `observed / expected` — smoothed state
//!   used for reporting, confidence, and recovery checks, and
//! * a one-sided clipped CUSUM of the ratio's excess over the tolerated
//!   band — the trip statistic.
//!
//! Per sample the CUSUM adds `min(ratio, clip) − (1 + slack)` and floors
//! at zero; it trips when the sum reaches `threshold` after a warm-up of
//! `min_samples`. The slack is noise-aware: `max(3·noise, slack_floor)`,
//! so a class whose envelope was measured under 4% noise tolerates at
//! least 12% excursions before the sum even starts accumulating.
//!
//! Two properties follow directly and are locked in by the tests below:
//!
//! 1. **No false positives under bounded noise.** If every sample stays
//!    within `expected · (1 ± η)` and `slack ≥ η`, each increment is
//!    `≤ η − slack ≤ 0`, the CUSUM never leaves zero, and the chart never
//!    trips — deterministically, not just in expectation.
//! 2. **Guaranteed detection of a sustained slowdown.** A sustained 2×
//!    regression with noise `η` contributes at least `1 − 2η − slack`
//!    per sample, so the chart trips within
//!    `⌈threshold / (1 − 2η − slack)⌉` samples of the onset (once past
//!    warm-up) — e.g. ≤ 27 samples at the default threshold 8, slack 0.5,
//!    η = 0.1.
//!
//! The clip bounds the influence of any single outlier: one
//! pathologically slow dispatch (page fault, scheduler hiccup) can move
//! the sum by at most `clip − 1 − slack`, so no single sample trips a
//! default chart on its own.

use iatf_obs::env::{env_f64, env_usize};

/// Tunable detector parameters, shared by every shape class.
///
/// Loaded once per process from `IATF_WATCH_*` environment knobs (see
/// [`WatchConfig::from_env`]); invalid values fall back to these defaults
/// with a logged warning, per the workspace env policy.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WatchConfig {
    /// EWMA smoothing factor for the reported latency ratio.
    pub alpha: f64,
    /// Floor on the tolerated relative excess (the per-class slack is
    /// `max(3 · envelope.noise, slack_floor)`).
    pub slack_floor: f64,
    /// Per-sample ratio clip bounding a single outlier's CUSUM influence.
    pub clip: f64,
    /// CUSUM level at which the chart trips.
    pub threshold: f64,
    /// Samples before a chart may trip; doubles as the self-calibration
    /// window for classes with no seeded envelope.
    pub min_samples: u64,
    /// Sweep budget for a drift-triggered retune, milliseconds.
    pub retune_budget_ms: u64,
    /// Maximum retained [`DriftEvent`](crate::DriftEvent)s.
    pub events_cap: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            alpha: 0.08,
            slack_floor: 0.5,
            clip: 4.0,
            threshold: 8.0,
            min_samples: 16,
            retune_budget_ms: 50,
            events_cap: 256,
        }
    }
}

impl WatchConfig {
    /// Reads the `IATF_WATCH_*` knobs, falling back (loudly) to defaults
    /// on garbage per [`iatf_obs::env`].
    pub fn from_env() -> Self {
        let d = WatchConfig::default();
        WatchConfig {
            alpha: env_f64("IATF_WATCH_ALPHA", d.alpha, 1e-3, 1.0),
            slack_floor: env_f64("IATF_WATCH_SLACK", d.slack_floor, 0.05, 10.0),
            clip: env_f64("IATF_WATCH_CLIP", d.clip, 1.5, 100.0),
            threshold: env_f64("IATF_WATCH_THRESHOLD", d.threshold, 0.5, 1e6),
            min_samples: env_usize("IATF_WATCH_MIN_SAMPLES", d.min_samples as usize, 2) as u64,
            retune_budget_ms: env_usize("IATF_WATCH_RETUNE_MS", d.retune_budget_ms as usize, 1)
                as u64,
            events_cap: env_usize("IATF_WATCH_EVENTS_CAP", d.events_cap, 1),
        }
    }

    /// The noise-aware slack for an envelope measured under `noise`
    /// relative jitter.
    pub fn slack_for(&self, noise: f64) -> f64 {
        (3.0 * noise.max(0.0)).max(self.slack_floor)
    }
}

/// Sequential drift detector for one shape class (see module docs).
#[derive(Clone, Debug)]
pub struct ControlChart {
    expected_ns: f64,
    slack: f64,
    alpha: f64,
    clip: f64,
    threshold: f64,
    min_samples: u64,
    samples: u64,
    ewma_ratio: f64,
    cusum: f64,
}

impl ControlChart {
    /// Chart against `expected_ns` with noise-aware slack from `cfg`.
    pub fn new(expected_ns: f64, noise: f64, cfg: &WatchConfig) -> Self {
        ControlChart {
            expected_ns: expected_ns.max(1.0),
            slack: cfg.slack_for(noise),
            alpha: cfg.alpha,
            clip: cfg.clip,
            threshold: cfg.threshold,
            min_samples: cfg.min_samples,
            samples: 0,
            ewma_ratio: 1.0,
            cusum: 0.0,
        }
    }

    /// Feeds one dispatch latency; returns `true` when the chart is in
    /// the tripped region (caller latches the first trip into an event).
    pub fn observe(&mut self, ns: f64) -> bool {
        let ratio = ns / self.expected_ns;
        self.ewma_ratio = if self.samples == 0 {
            ratio
        } else {
            self.alpha * ratio + (1.0 - self.alpha) * self.ewma_ratio
        };
        self.samples += 1;
        let d = ratio.min(self.clip) - (1.0 + self.slack);
        self.cusum = (self.cusum + d).max(0.0);
        self.samples >= self.min_samples && self.cusum >= self.threshold
    }

    /// Re-arms the chart against a fresh expectation (post-retune),
    /// zeroing all sequential state.
    pub fn rearm(&mut self, expected_ns: f64, noise: f64, cfg: &WatchConfig) {
        *self = ControlChart::new(expected_ns, noise, cfg);
    }

    /// The expectation this chart compares against, nanoseconds.
    pub fn expected_ns(&self) -> f64 {
        self.expected_ns
    }

    /// Tolerated relative excess before the CUSUM accumulates.
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Samples observed since (re)arming.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Smoothed latency ratio (observed / expected).
    pub fn ewma_ratio(&self) -> f64 {
        self.ewma_ratio
    }

    /// Smoothed observed latency, nanoseconds.
    pub fn ewma_ns(&self) -> f64 {
        self.ewma_ratio * self.expected_ns
    }

    /// Current CUSUM level.
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Whether the smoothed ratio currently exceeds the tolerated band
    /// (used for whole-process throttle classification).
    pub fn elevated(&self) -> bool {
        self.ewma_ratio > 1.0 + self.slack
    }

    /// How far past the tolerated band the smoothed ratio sits, as a
    /// clamped confidence in `[0.05, 0.99]`: ~0.05 right at the band edge
    /// (barely past the threshold), saturating toward 0.99 as the
    /// smoothed excess approaches another full tolerated band.
    pub fn confidence(&self) -> f64 {
        let band = 1.0 + self.slack;
        ((self.ewma_ratio - band) / band).clamp(0.05, 0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so property-style tests are reproducible.
    struct Rng(u64);
    impl Rng {
        fn next_unit(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        /// Uniform in [-1, 1].
        fn next_signed(&mut self) -> f64 {
            2.0 * self.next_unit() - 1.0
        }
    }

    const EXPECTED: f64 = 10_000.0;

    #[test]
    fn no_false_positive_under_bounded_noise() {
        // Property 1 from the module docs: noise bounded by ±η with
        // slack ≥ η can never trip — for any seed, any length.
        let cfg = WatchConfig::default();
        let eta = 0.15; // slack_for(0.04) = max(0.12, 0.5) = 0.5 ≥ 3η is not
                        // needed; η < slack suffices (see docs)
        for seed in [1u64, 7, 42, 0xDEADBEEF, 2026] {
            let mut chart = ControlChart::new(EXPECTED, 0.04, &cfg);
            let mut rng = Rng(seed);
            for i in 0..10_000 {
                let ns = EXPECTED * (1.0 + eta * rng.next_signed());
                assert!(!chart.observe(ns), "false positive at sample {i} (seed {seed})");
            }
            assert_eq!(chart.cusum(), 0.0, "CUSUM accumulated under pure noise");
        }
    }

    #[test]
    fn sustained_2x_slowdown_always_trips_within_bound() {
        // Property 2: sustained 2x with noise η trips within
        // ceil(threshold / (1 - 2η - slack)) samples of onset.
        let cfg = WatchConfig::default();
        let eta = 0.1;
        let noise = 0.04;
        let slack = cfg.slack_for(noise);
        let per_sample = 2.0 * (1.0 - eta) - 1.0 - slack; // worst-case increment
        assert!(per_sample > 0.0);
        let bound = (cfg.threshold / per_sample).ceil() as u64;
        for seed in [3u64, 11, 99, 0xFEED, 31337] {
            let mut chart = ControlChart::new(EXPECTED, noise, &cfg);
            let mut rng = Rng(seed);
            // Healthy warm-up well past min_samples.
            for _ in 0..64 {
                assert!(!chart.observe(EXPECTED * (1.0 + eta * rng.next_signed())));
            }
            // Onset of a sustained 2x slowdown.
            let mut tripped_at = None;
            for i in 1..=bound {
                let ns = 2.0 * EXPECTED * (1.0 + eta * rng.next_signed());
                if chart.observe(ns) {
                    tripped_at = Some(i);
                    break;
                }
            }
            let at = tripped_at.unwrap_or_else(|| {
                panic!("no trip within {bound} samples of 2x onset (seed {seed})")
            });
            assert!(at <= bound);
            assert!(chart.ewma_ratio() > 1.0, "EWMA did not move toward 2x");
        }
    }

    #[test]
    fn single_outlier_cannot_trip_a_default_chart() {
        let cfg = WatchConfig::default();
        let mut chart = ControlChart::new(EXPECTED, 0.0, &cfg);
        for _ in 0..100 {
            assert!(!chart.observe(EXPECTED));
        }
        // One catastrophic outlier: influence is clipped to clip-1-slack.
        assert!(!chart.observe(1e12));
        assert!(chart.cusum() <= cfg.clip - 1.0 - cfg.slack_floor + 1e-9);
        // And it decays back on the next healthy samples.
        for _ in 0..10 {
            chart.observe(EXPECTED);
        }
        assert_eq!(chart.cusum(), 0.0);
    }

    #[test]
    fn warmup_suppresses_early_trips() {
        let cfg = WatchConfig::default();
        let mut chart = ControlChart::new(EXPECTED, 0.0, &cfg);
        // Massive regression from sample one: may not trip before
        // min_samples, must trip at min_samples.
        for i in 1..cfg.min_samples {
            assert!(
                !chart.observe(4.0 * EXPECTED) || i >= cfg.min_samples,
                "tripped during warmup at sample {i}"
            );
        }
        assert!(chart.observe(4.0 * EXPECTED));
    }

    #[test]
    fn rearm_and_confidence_behave() {
        let cfg = WatchConfig::default();
        let mut chart = ControlChart::new(EXPECTED, 0.0, &cfg);
        for _ in 0..200 {
            chart.observe(3.0 * EXPECTED);
        }
        assert!(chart.elevated());
        assert!(chart.confidence() > 0.5);
        chart.rearm(3.0 * EXPECTED, 0.05, &cfg);
        assert_eq!(chart.samples(), 0);
        assert_eq!(chart.cusum(), 0.0);
        for _ in 0..100 {
            assert!(!chart.observe(3.0 * EXPECTED), "tripped at the new expectation");
        }
        assert!((chart.ewma_ratio() - 1.0).abs() < 1e-6);
        assert!(chart.confidence() <= 0.05 + 1e-9);
    }

    #[test]
    fn config_from_env_rejects_garbage_knobs() {
        // Unique vars per workspace env policy; loader is exercised
        // directly (the process-wide cached config is read elsewhere).
        std::env::set_var("IATF_WATCH_THRESHOLD", "lots");
        std::env::set_var("IATF_WATCH_MIN_SAMPLES", "0");
        std::env::set_var("IATF_WATCH_ALPHA", "0.25");
        let cfg = WatchConfig::from_env();
        let d = WatchConfig::default();
        assert_eq!(cfg.threshold, d.threshold, "garbage threshold accepted");
        assert_eq!(cfg.min_samples, d.min_samples, "zero min_samples accepted");
        assert_eq!(cfg.alpha, 0.25, "valid alpha rejected");
        std::env::remove_var("IATF_WATCH_THRESHOLD");
        std::env::remove_var("IATF_WATCH_MIN_SAMPLES");
        std::env::remove_var("IATF_WATCH_ALPHA");
    }
}
