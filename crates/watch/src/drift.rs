//! Online drift detection and retune remediation (enabled builds only).
//!
//! One [`ClassWatch`] per shape class pairs a performance envelope with a
//! [`ControlChart`]. Envelopes are seeded in precedence order:
//!
//! 1. a persisted entry in the global [`EnvelopeDb`],
//! 2. the tuning db's measured winner (`expected_ns = flops /
//!    tuned_gflops`), persisted back as a `tuned` envelope,
//! 3. self-calibration — the first `min_samples` dispatches establish
//!    the expectation, persisted as an `observed` envelope.
//!
//! When a chart first trips, the class is latched as drifting, a
//! [`DriftEvent`] is queued (bounded), and the class is flagged for
//! retune. `iatf-core`'s dispatch path polls the flag via
//! [`take_retune`](crate::take_retune), evicts the stale tuning-db entry
//! (bumping the db generation, which invalidates cached plans), re-runs
//! the sweep, and reports back through [`note_retuned`](crate::note_retuned),
//! which re-arms the chart against the fresh expectation.
//!
//! The latency *injection shim* is a test hook: it multiplies recorded
//! latencies for one class so reproduction harnesses can fake a
//! regression without slowing anything down — the dispatch itself is
//! untouched, only the telemetry sees the skew.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sync::{AtomicBool, AtomicU64, Ordering::Relaxed};

use iatf_tune::{EnvelopeDb, EnvelopeSource, PerfEnvelope, TuneKey, TuningDb};

use crate::chart::{ControlChart, WatchConfig};
use crate::snapshot::{ClassSnapshot, DriftCause, DriftEvent, WatchSnapshot};

pub(crate) fn config() -> &'static WatchConfig {
    static CONFIG: OnceLock<WatchConfig> = OnceLock::new();
    CONFIG.get_or_init(WatchConfig::from_env)
}

/// Detector state for one shape class.
pub(crate) struct ClassWatch {
    pub(crate) key: TuneKey,
    pub(crate) flops_per_call: f64,
    state: Mutex<ClassState>,
}

struct ClassState {
    /// Armed chart plus the envelope it guards; `None` while
    /// self-calibrating.
    armed: Option<(ControlChart, PerfEnvelope)>,
    /// Self-calibration accumulators (used only while `armed` is None).
    calib_sum: f64,
    calib_sum_sq: f64,
    calib_n: u64,
    /// Latched on the first trip, cleared by `note_retuned`.
    tripped: bool,
    /// Journal id of the seed/recalibrate event that armed the current
    /// envelope; a drift raised against it cites this as its cause.
    seed_event: u64,
}

impl ClassWatch {
    fn new(key: TuneKey, flops_per_call: f64) -> Self {
        let mut seed_event = 0;
        let armed = seed_envelope(&key, flops_per_call).map(|(env, cause)| {
            seed_event = journal_envelope(JournalKind::EnvelopeSeed, &key, &env, cause);
            (ControlChart::new(env.expected_ns, env.noise, config()), env)
        });
        ClassWatch {
            key,
            flops_per_call,
            state: Mutex::new(ClassState {
                armed,
                calib_sum: 0.0,
                calib_sum_sq: 0.0,
                calib_n: 0,
                tripped: false,
                seed_event,
            }),
        }
    }

    /// Feeds one (possibly skewed) dispatch latency into the detector.
    pub(crate) fn observe(&self, ns: u64) {
        let mut state = self.state.lock().unwrap();
        let already_tripped = state.tripped;
        match &mut state.armed {
            Some((chart, env)) => {
                let tripping = chart.observe(ns as f64);
                if tripping && !already_tripped {
                    let event = DriftEvent {
                        key: self.key,
                        expected_ns: env.expected_ns,
                        observed_ns: chart.ewma_ns(),
                        ratio: chart.ewma_ratio(),
                        confidence: chart.confidence(),
                        cause: DriftCause::ShapeLocal, // refined below
                        sample: chart.samples(),
                        source: env.source,
                    };
                    state.tripped = true;
                    let seed_event = state.seed_event;
                    drop(state);
                    raise(
                        DriftEvent {
                            cause: classify(&self.key),
                            ..event
                        },
                        seed_event,
                    );
                }
            }
            None => {
                let x = ns as f64;
                state.calib_sum += x;
                state.calib_sum_sq += x * x;
                state.calib_n += 1;
                if state.calib_n >= config().min_samples {
                    let n = state.calib_n as f64;
                    let mean = state.calib_sum / n;
                    let var = (state.calib_sum_sq / n - mean * mean).max(0.0);
                    let noise = if mean > 0.0 {
                        (var.sqrt() / mean).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let env = PerfEnvelope {
                        expected_ns: mean.max(1.0),
                        expected_gflops: self.flops_per_call / mean.max(1.0),
                        noise,
                        source: EnvelopeSource::Observed,
                    };
                    EnvelopeDb::global().record(self.key, env);
                    state.seed_event =
                        journal_envelope(JournalKind::EnvelopeSeed, &self.key, &env, 0);
                    state.armed = Some((ControlChart::new(env.expected_ns, env.noise, config()), env));
                }
            }
        }
    }

    /// Re-arms against a fresh expectation after a retune.
    fn rearm(&self, env: PerfEnvelope, seed_event: u64) {
        let mut state = self.state.lock().unwrap();
        state.tripped = false;
        state.calib_sum = 0.0;
        state.calib_sum_sq = 0.0;
        state.calib_n = 0;
        state.seed_event = seed_event;
        state.armed = Some((ControlChart::new(env.expected_ns, env.noise, config()), env));
    }

    /// Resets sequential detector state, keeping the envelope.
    fn reset(&self) {
        let mut state = self.state.lock().unwrap();
        state.tripped = false;
        state.calib_sum = 0.0;
        state.calib_sum_sq = 0.0;
        state.calib_n = 0;
        if let Some((chart, env)) = &mut state.armed {
            chart.rearm(env.expected_ns, env.noise, config());
        }
    }

    fn elevated(&self) -> Option<bool> {
        let state = self.state.lock().unwrap();
        state
            .armed
            .as_ref()
            .filter(|(chart, _)| chart.samples() >= config().min_samples)
            .map(|(chart, _)| chart.elevated() || state.tripped)
    }
}

/// Envelope seeding precedence 1–2 (see module docs); `None` means
/// self-calibrate. The second element is the journal cause to cite for
/// the seed event: the tuning-db winner's recorded `sweep_winner` event
/// when one is known, 0 otherwise.
fn seed_envelope(key: &TuneKey, flops_per_call: f64) -> Option<(PerfEnvelope, u64)> {
    if let Some(env) = EnvelopeDb::global().lookup(key) {
        let cause = TuningDb::global()
            .lookup(key)
            .map_or(0, |e| e.provenance.journal_event);
        return Some((env, cause));
    }
    let entry = TuningDb::global().lookup(key)?;
    // NaN-safe: only a strictly positive measured GFLOPS seeds an envelope.
    if entry.tuned_gflops.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || flops_per_call <= 0.0
    {
        return None;
    }
    let env = PerfEnvelope {
        expected_ns: flops_per_call / entry.tuned_gflops,
        expected_gflops: entry.tuned_gflops,
        noise: entry.noise.clamp(0.0, 1.0),
        source: EnvelopeSource::Tuned,
    };
    EnvelopeDb::global().record(*key, env);
    Some((env, entry.provenance.journal_event))
}

use iatf_journal::EventKind as JournalKind;

/// Journal probe for an envelope arming or re-arming; returns the event
/// id (0 when the journal is off) so a later drift can cite it.
fn journal_envelope(kind: JournalKind, key: &TuneKey, env: &PerfEnvelope, cause: u64) -> u64 {
    if !iatf_journal::is_enabled() {
        return 0;
    }
    iatf_journal::publish(
        kind,
        &key.encode(),
        cause,
        iatf_obs::Json::object()
            .set("expected_ns", env.expected_ns)
            .set("expected_gflops", env.expected_gflops)
            .set("noise", env.noise)
            .set("source", env.source.name()),
    )
}

/// Journal probe for a raised drift; returns the drift event id (0 when
/// the journal is off), which travels with the retune flag so the
/// remediation can cite it.
fn journal_drift(event: &DriftEvent, seed_event: u64) -> u64 {
    if !iatf_journal::is_enabled() {
        return 0;
    }
    iatf_journal::publish(
        JournalKind::Drift,
        &event.key.encode(),
        seed_event,
        iatf_obs::Json::object()
            .set("expected_ns", event.expected_ns)
            .set("observed_ns", event.observed_ns)
            .set("ratio", event.ratio)
            .set("confidence", event.confidence)
            .set("cause", event.cause.name())
            .set("sample", event.sample)
            .set("source", event.source.name()),
    )
}

fn classes() -> &'static Mutex<HashMap<TuneKey, Arc<ClassWatch>>> {
    static CLASSES: OnceLock<Mutex<HashMap<TuneKey, Arc<ClassWatch>>>> = OnceLock::new();
    CLASSES.get_or_init(|| Mutex::new(HashMap::new()))
}

pub(crate) fn class_for(key: TuneKey, flops_per_call: f64) -> Arc<ClassWatch> {
    let mut classes = classes().lock().unwrap();
    Arc::clone(
        classes
            .entry(key)
            .or_insert_with(|| Arc::new(ClassWatch::new(key, flops_per_call))),
    )
}

/// Whole-process correlation: if at least half of the active classes
/// (and at least two) are elevated alongside this one, the regression is
/// machine-wide (throttling, contention) rather than shape-local.
fn classify(key: &TuneKey) -> DriftCause {
    let classes = classes().lock().unwrap();
    let mut active = 0u64;
    let mut elevated = 0u64;
    for (k, watch) in classes.iter() {
        if k == key {
            continue;
        }
        if let Some(e) = watch.elevated() {
            active += 1;
            if e {
                elevated += 1;
            }
        }
    }
    drop(classes);
    // The drifting class itself counts on both sides.
    active += 1;
    elevated += 1;
    if elevated >= 2 && 2 * elevated >= active {
        DriftCause::ThrottleWide
    } else {
        DriftCause::ShapeLocal
    }
}

struct EventQueue {
    events: Mutex<VecDeque<DriftEvent>>,
    total: AtomicU64,
}

fn queue() -> &'static EventQueue {
    static QUEUE: OnceLock<EventQueue> = OnceLock::new();
    QUEUE.get_or_init(|| EventQueue {
        events: Mutex::new(VecDeque::new()),
        total: AtomicU64::new(0),
    })
}

/// Pending-retune flags; the value is the journal id of the drift event
/// that raised the flag (0 when the journal is off), handed to the
/// remediation so the retune cites its cause.
fn retune_flags() -> &'static Mutex<HashMap<TuneKey, u64>> {
    static FLAGS: OnceLock<Mutex<HashMap<TuneKey, u64>>> = OnceLock::new();
    FLAGS.get_or_init(|| Mutex::new(HashMap::new()))
}

static RETUNES_DONE: AtomicU64 = AtomicU64::new(0);

fn raise(event: DriftEvent, seed_event: u64) {
    let key = event.key;
    let drift_id = journal_drift(&event, seed_event);
    {
        let mut events = queue().events.lock().unwrap();
        if events.len() >= config().events_cap {
            events.pop_front();
        }
        events.push_back(event);
    }
    // ordering: Relaxed — monotonic event counter; the events themselves
    // travel through the Mutex-guarded queue above, never this word.
    queue().total.fetch_add(1, Relaxed);
    retune_flags().lock().unwrap().insert(key, drift_id);
}

pub(crate) fn events_total() -> u64 {
    // ordering: Relaxed — advisory read of a monotonic counter.
    queue().total.load(Relaxed)
}

pub(crate) fn drain_events() -> Vec<DriftEvent> {
    queue().events.lock().unwrap().drain(..).collect()
}

pub(crate) fn take_retune(key: &TuneKey) -> Option<u64> {
    retune_flags().lock().unwrap().remove(key)
}

pub(crate) fn retune_pending(key: &TuneKey) -> bool {
    retune_flags().lock().unwrap().contains_key(key)
}

pub(crate) fn note_retuned(key: &TuneKey, tuned_gflops: f64, noise: f64) {
    let Some(watch) = classes().lock().unwrap().get(key).map(Arc::clone) else {
        return;
    };
    let env = if tuned_gflops > 0.0 && watch.flops_per_call > 0.0 {
        PerfEnvelope {
            expected_ns: watch.flops_per_call / tuned_gflops,
            expected_gflops: tuned_gflops,
            noise: noise.clamp(0.0, 1.0),
            source: EnvelopeSource::Tuned,
        }
    } else {
        // Sweep produced nothing usable: fall back to re-calibrating.
        let mut state = watch.state.lock().unwrap();
        state.tripped = false;
        state.calib_sum = 0.0;
        state.calib_sum_sq = 0.0;
        state.calib_n = 0;
        state.armed = None;
        // ordering: Relaxed — monotonic remediation counter, advisory.
        RETUNES_DONE.fetch_add(1, Relaxed);
        return;
    };
    EnvelopeDb::global().record(*key, env);
    // Ambient cause: the core retune path runs this inside the drift's
    // cause scope, so the recalibration chains to the drift event.
    let seed_event = journal_envelope(JournalKind::EnvelopeRecalibrate, key, &env, 0);
    watch.rearm(env, seed_event);
    // ordering: Relaxed — monotonic remediation counter, advisory.
    RETUNES_DONE.fetch_add(1, Relaxed);
}

// --- latency injection shim (test hook) ---------------------------------

static INJECT_ACTIVE: AtomicBool = AtomicBool::new(false);

fn injection() -> &'static Mutex<Option<(TuneKey, f64)>> {
    static INJECTION: OnceLock<Mutex<Option<(TuneKey, f64)>>> = OnceLock::new();
    INJECTION.get_or_init(|| Mutex::new(None))
}

pub(crate) fn set_injection(skew: Option<(TuneKey, f64)>) {
    // ordering: Relaxed — fast-path hint flag only: the authoritative
    // skew value lives behind the Mutex below, and `skewed` re-checks it
    // under the lock before applying anything. A stale flag read merely
    // skips or takes the lock once more.
    INJECT_ACTIVE.store(skew.is_some(), Relaxed);
    *injection().lock().unwrap() = skew;
}

/// Applies the injection multiplier to a recorded latency if the shim is
/// armed for this class; one relaxed load on the common (unarmed) path.
#[inline]
pub(crate) fn skewed(key: TuneKey, ns: u64) -> u64 {
    // ordering: Relaxed — hint only; see `set_injection`.
    if !INJECT_ACTIVE.load(Relaxed) {
        return ns;
    }
    match *injection().lock().unwrap() {
        Some((k, f)) if k == key => (ns as f64 * f) as u64,
        _ => ns,
    }
}

// --- snapshot assembly ---------------------------------------------------

pub(crate) fn snapshot() -> WatchSnapshot {
    let threads: Vec<_> = crate::stats::registry()
        .lock()
        .unwrap()
        .iter()
        .map(|shard| (shard.read(), shard.min_ns(), shard.max_ns(), shard.flops_per_call))
        .collect();

    // Merge shards by class.
    let mut merged: HashMap<TuneKey, ClassSnapshot> = HashMap::new();
    for (t, min_ns, max_ns, flops) in &threads {
        let c = merged.entry(t.key).or_insert_with(|| ClassSnapshot {
            key: t.key,
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist: [0; iatf_obs::metrics::HIST_BUCKETS],
            flops_per_call: *flops,
            ewma_ns: 0.0,
            ewma_ratio: 1.0,
            cusum: 0.0,
            expected_ns: 0.0,
            expected_gflops: 0.0,
            slack: config().slack_floor,
            source: None,
            drifting: false,
            retune_pending: false,
        });
        c.count += t.count;
        c.total_ns += t.total_ns;
        if t.count > 0 {
            c.min_ns = c.min_ns.min(*min_ns);
            c.max_ns = c.max_ns.max(*max_ns);
        }
        for (dst, src) in c.hist.iter_mut().zip(t.hist.iter()) {
            *dst += src;
        }
    }

    // Overlay detector state.
    {
        let classes = classes().lock().unwrap();
        for c in merged.values_mut() {
            if c.min_ns == u64::MAX {
                c.min_ns = 0;
            }
            let Some(watch) = classes.get(&c.key) else {
                continue;
            };
            let state = watch.state.lock().unwrap();
            if let Some((chart, env)) = &state.armed {
                c.ewma_ns = chart.ewma_ns();
                c.ewma_ratio = chart.ewma_ratio();
                c.cusum = chart.cusum();
                c.expected_ns = env.expected_ns;
                c.expected_gflops = env.expected_gflops;
                c.slack = chart.slack();
                c.source = Some(env.source);
            }
            c.drifting = state.tripped;
            drop(state);
            c.retune_pending = retune_pending(&c.key);
        }
    }

    let mut classes: Vec<_> = merged.into_values().collect();
    classes.sort_by_key(|c| c.key.encode());
    let mut thread_shards: Vec<_> = threads.into_iter().map(|(t, ..)| t).collect();
    thread_shards.sort_by_key(|t| (t.tid, t.key.encode()));

    WatchSnapshot {
        enabled: true,
        classes,
        threads: thread_shards,
        events: queue().events.lock().unwrap().iter().copied().collect(),
        events_total: events_total(),
        retunes_pending: retune_flags().lock().unwrap().len() as u64,
        // ordering: Relaxed — advisory read of a monotonic counter.
        retunes_done: RETUNES_DONE.load(Relaxed),
    }
}

/// Zeroes telemetry and sequential detector state in place. Class
/// registrations, envelopes, and thread-local caches stay valid; the
/// event queue, counters, flags, and injection shim are cleared.
pub(crate) fn reset() {
    crate::stats::zero_all();
    for watch in classes().lock().unwrap().values() {
        watch.reset();
    }
    queue().events.lock().unwrap().clear();
    // ordering: Relaxed — counter resets on the quiesced reset path;
    // racing dispatches would merely re-add an event, which the advisory
    // snapshot tolerates.
    queue().total.store(0, Relaxed);
    retune_flags().lock().unwrap().clear();
    RETUNES_DONE.store(0, Relaxed);
    set_injection(None);
}
