//! Point-in-time view of the watch state: merged per-class telemetry,
//! per-thread shards, drift events, and remediation counters.
//!
//! These types are always compiled (a disabled build snapshots to the
//! empty [`WatchSnapshot`]) so exposition code downstream does not need
//! feature gates.

use iatf_obs::metrics::HIST_BUCKETS;
use iatf_obs::Json;
use iatf_tune::{EnvelopeSource, TuneKey};

/// Why a drift event believes performance regressed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DriftCause {
    /// Most active shape classes are elevated at once — consistent with
    /// frequency throttling, CPU contention, or another machine-wide
    /// slowdown. Retuning one shape will not fix this.
    ThrottleWide,
    /// Only this shape class (or a small minority) is elevated — the
    /// recorded tuning decision has likely gone stale for this input.
    ShapeLocal,
}

impl DriftCause {
    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            DriftCause::ThrottleWide => "throttle_wide",
            DriftCause::ShapeLocal => "shape_local",
        }
    }
}

/// A detected sustained regression on one shape class.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DriftEvent {
    /// The drifting shape class.
    pub key: TuneKey,
    /// The envelope's expected warm-dispatch latency, nanoseconds.
    pub expected_ns: f64,
    /// Smoothed observed latency at trip time, nanoseconds.
    pub observed_ns: f64,
    /// Smoothed latency ratio (observed / expected) at trip time.
    pub ratio: f64,
    /// Detector confidence in `[0.05, 0.99]` (how far past the tolerated
    /// band the smoothed ratio sits).
    pub confidence: f64,
    /// Suspected cause from cross-class correlation.
    pub cause: DriftCause,
    /// Class sample count at trip time.
    pub sample: u64,
    /// Provenance of the envelope that was violated.
    pub source: EnvelopeSource,
}

impl DriftEvent {
    /// JSON form used by snapshots and BENCH artifacts.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("key", self.key.encode().as_str())
            .set("expected_ns", self.expected_ns)
            .set("observed_ns", self.observed_ns)
            .set("ratio", self.ratio)
            .set("confidence", self.confidence)
            .set("cause", self.cause.name())
            .set("sample", self.sample)
            .set("source", self.source.name())
    }
}

/// Merged telemetry and detector state for one shape class.
#[derive(Clone, Debug)]
pub struct ClassSnapshot {
    /// The shape class.
    pub key: TuneKey,
    /// Warm dispatches observed.
    pub count: u64,
    /// Sum of dispatch latencies, nanoseconds.
    pub total_ns: u64,
    /// Fastest observed dispatch (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest observed dispatch.
    pub max_ns: u64,
    /// log2 latency histogram: bucket 0 holds zeros, bucket `i` holds
    /// `[2^(i-1), 2^i)` nanoseconds.
    pub hist: [u64; HIST_BUCKETS],
    /// Flops one dispatch of this class performs.
    pub flops_per_call: f64,
    /// Smoothed observed latency, nanoseconds (0 until first sample).
    pub ewma_ns: f64,
    /// Smoothed latency ratio against the envelope (1.0 until armed).
    pub ewma_ratio: f64,
    /// Current CUSUM level of the drift chart.
    pub cusum: f64,
    /// The envelope's expected latency (0 while self-calibrating).
    pub expected_ns: f64,
    /// The envelope's expected throughput, GFLOPS.
    pub expected_gflops: f64,
    /// Tolerated relative excess before drift accumulates.
    pub slack: f64,
    /// Envelope provenance; `None` while still self-calibrating.
    pub source: Option<EnvelopeSource>,
    /// Whether the chart has tripped and not yet been remediated.
    pub drifting: bool,
    /// Whether a retune is flagged but not yet executed.
    pub retune_pending: bool,
}

impl ClassSnapshot {
    /// Mean observed latency, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Achieved throughput over the whole window, GFLOPS.
    pub fn gflops(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.flops_per_call * self.count as f64 / self.total_ns as f64
        }
    }

    /// Latency quantile from the log2 histogram, reported as the upper
    /// bound of the bucket containing the `q`-quantile sample (a ≤ 2×
    /// overestimate by construction — bias toward alarming late, never
    /// under-reporting).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_hi(b);
            }
        }
        bucket_hi(HIST_BUCKETS - 1)
    }

    fn to_json(&self) -> Json {
        let hist: Vec<Json> = self
            .hist
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                Json::object()
                    .set("bucket", b as u64)
                    .set("hi_ns", bucket_hi(b))
                    .set("count", n)
            })
            .collect();
        Json::object()
            .set("key", self.key.encode().as_str())
            .set("count", self.count)
            .set("total_ns", self.total_ns)
            .set("mean_ns", self.mean_ns())
            .set("min_ns", self.min_ns)
            .set("max_ns", self.max_ns)
            .set("p50_ns", self.quantile_ns(0.50))
            .set("p95_ns", self.quantile_ns(0.95))
            .set("p99_ns", self.quantile_ns(0.99))
            .set("gflops", self.gflops())
            .set("ewma_ns", self.ewma_ns)
            .set("ewma_ratio", self.ewma_ratio)
            .set("cusum", self.cusum)
            .set("expected_ns", self.expected_ns)
            .set("expected_gflops", self.expected_gflops)
            .set("slack", self.slack)
            .set(
                "source",
                match self.source {
                    Some(s) => Json::from(s.name()),
                    None => Json::Null,
                },
            )
            .set("drifting", self.drifting)
            .set("retune_pending", self.retune_pending)
            .set("hist", hist)
    }
}

/// One thread's unmerged shard of one class (diagnostic view; the merged
/// [`ClassSnapshot`] totals are exactly the sums of these).
#[derive(Clone, Debug)]
pub struct ThreadClassSnapshot {
    /// Recording thread (small dense id, assigned at first dispatch).
    pub tid: u64,
    /// The shape class.
    pub key: TuneKey,
    /// Dispatches recorded by this thread.
    pub count: u64,
    /// Latency sum recorded by this thread, nanoseconds.
    pub total_ns: u64,
    /// This thread's log2 latency histogram.
    pub hist: [u64; HIST_BUCKETS],
}

/// Everything the watch layer knows, at one instant.
#[derive(Clone, Debug, Default)]
pub struct WatchSnapshot {
    /// Whether the `enabled` feature (workspace `watch`) is on.
    pub enabled: bool,
    /// Merged per-class telemetry, sorted by encoded key.
    pub classes: Vec<ClassSnapshot>,
    /// Per-thread shards (diagnostics / merge verification).
    pub threads: Vec<ThreadClassSnapshot>,
    /// Retained drift events, oldest first (bounded queue; see
    /// [`WatchConfig::events_cap`](crate::WatchConfig)).
    pub events: Vec<DriftEvent>,
    /// Drift events ever raised (monotonic, not bounded by the queue).
    pub events_total: u64,
    /// Shape classes currently flagged for retune.
    pub retunes_pending: u64,
    /// Drift-triggered retunes completed.
    pub retunes_done: u64,
}

impl WatchSnapshot {
    /// JSON form (the `"watch"` half of the unified snapshot document).
    pub fn to_json(&self) -> Json {
        let classes: Vec<Json> = self.classes.iter().map(ClassSnapshot::to_json).collect();
        let events: Vec<Json> = self.events.iter().map(DriftEvent::to_json).collect();
        Json::object()
            .set("enabled", self.enabled)
            .set("classes", classes)
            .set("events", events)
            .set("events_total", self.events_total)
            .set("retunes_pending", self.retunes_pending)
            .set("retunes_done", self.retunes_done)
    }
}

/// Upper bound (inclusive) of log2 histogram bucket `b`, matching the
/// recording convention `bucket = 64 - leading_zeros(ns)`.
pub fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_tune::TuneOp;

    fn key() -> TuneKey {
        TuneKey {
            op: TuneOp::Gemm,
            dtype: 1,
            m: 8,
            n: 8,
            k: 8,
            mode: 0,
            conj: 0,
            count: 512,
            width: 1,
        }
    }

    #[test]
    fn quantiles_come_from_bucket_upper_bounds() {
        let mut hist = [0u64; HIST_BUCKETS];
        // 90 samples in bucket 10 ([512, 1023]), 10 in bucket 14.
        hist[10] = 90;
        hist[14] = 10;
        let c = ClassSnapshot {
            key: key(),
            count: 100,
            total_ns: 100_000,
            min_ns: 512,
            max_ns: 16_000,
            hist,
            flops_per_call: 1.0e6,
            ewma_ns: 0.0,
            ewma_ratio: 1.0,
            cusum: 0.0,
            expected_ns: 0.0,
            expected_gflops: 0.0,
            slack: 0.5,
            source: None,
            drifting: false,
            retune_pending: false,
        };
        assert_eq!(c.quantile_ns(0.50), 1023);
        assert_eq!(c.quantile_ns(0.90), 1023);
        assert_eq!(c.quantile_ns(0.95), (1u64 << 14) - 1);
        assert_eq!(c.quantile_ns(0.99), (1u64 << 14) - 1);
        assert!((c.gflops() - 1000.0).abs() < 1e-9);
        assert!((c.mean_ns() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_is_parseable_and_shaped() {
        let snap = WatchSnapshot {
            enabled: true,
            classes: vec![],
            threads: vec![],
            events: vec![DriftEvent {
                key: key(),
                expected_ns: 1000.0,
                observed_ns: 2500.0,
                ratio: 2.5,
                confidence: 0.66,
                cause: DriftCause::ShapeLocal,
                sample: 42,
                source: EnvelopeSource::Tuned,
            }],
            events_total: 1,
            retunes_pending: 1,
            retunes_done: 0,
        };
        let doc = iatf_obs::parse_json(&snap.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("events_total").and_then(Json::as_u64), Some(1));
        let ev = &doc.get("events").and_then(Json::as_array).unwrap()[0];
        assert_eq!(ev.get("cause").and_then(Json::as_str), Some("shape_local"));
        assert_eq!(ev.get("ratio").and_then(Json::as_f64), Some(2.5));
    }
}
