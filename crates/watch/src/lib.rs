//! iatf-watch: always-on dispatch telemetry, performance envelopes, and
//! online drift detection with retune remediation.
//!
//! The paper's tuning story ends when a winner lands in the tuning db —
//! but tuned decisions go stale: cores throttle, neighbors appear,
//! governors change. This crate closes the loop at run time:
//!
//! * [`dispatch_span`] — a scoped probe `iatf-core` wraps around every
//!   warm dispatch. Per shape class (the autotuner's [`TuneKey`]) it
//!   streams latency into per-thread lock-free log2 histograms
//!   ([`stats`]-internal) and feeds the class's drift detector.
//! * **Performance envelopes** — expected latency/throughput per class,
//!   seeded from the tuning db's measurements (or self-calibrated) and
//!   persisted in [`iatf_tune::EnvelopeDb`] next to the tuning db.
//! * **Drift detection** — an EWMA/CUSUM [`ControlChart`] per class trips
//!   on sustained regressions past a noise-aware slack, raising a bounded
//!   queue of structured [`DriftEvent`]s with a suspected cause
//!   (machine-wide throttle vs shape-local staleness).
//! * **Remediation** — a tripped class is flagged; the next dispatch of
//!   that class (under a db-backed tune policy) evicts its tuning-db
//!   entry — bumping the db generation, which invalidates cached plans —
//!   re-sweeps, and re-arms the chart via [`note_retuned`].
//! * **Exposition** — [`snapshot`] (JSON via
//!   [`WatchSnapshot::to_json`], unified with the obs counters by
//!   [`unified_json`]) and [`render_prometheus`].
//!
//! Everything stateful is behind the `enabled` cargo feature
//! (workspace: `watch`). Disabled, [`dispatch_span`] returns a
//! zero-sized guard with no `Drop` impl and never calls its closure,
//! [`take_retune`] is a constant `false`, and snapshots are empty — the
//! warm dispatch hot path compiles exactly as before. The chart math,
//! snapshot types, and Prometheus renderer stay available either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod prom;
pub mod snapshot;

#[cfg(feature = "enabled")]
mod drift;
#[cfg(feature = "enabled")]
mod stats;
#[cfg(feature = "enabled")]
mod sync;

pub use chart::{ControlChart, WatchConfig};
pub use iatf_tune::{EnvelopeDb, EnvelopeSource, PerfEnvelope, TuneKey};
pub use prom::render_prometheus;
pub use snapshot::{ClassSnapshot, DriftCause, DriftEvent, ThreadClassSnapshot, WatchSnapshot};

use iatf_obs::{Json, MetricsSnapshot};

/// Whether the dispatch probes are compiled in.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Scoped telemetry for one warm dispatch: records wall latency for the
/// shape class on drop. Zero-sized with no `Drop` impl when disabled.
#[must_use = "the guard records on drop; binding it to _ discards the span"]
pub struct DispatchGuard {
    #[cfg(feature = "enabled")]
    key: TuneKey,
    #[cfg(feature = "enabled")]
    flops_per_call: f64,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

#[cfg(feature = "enabled")]
impl Drop for DispatchGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        stats::record(self.key, ns, self.flops_per_call);
    }
}

/// Opens a dispatch span. The closure supplies the shape class and the
/// flops one call performs; it is only invoked when the feature is on,
/// so a disabled build pays nothing — not even the key construction.
#[inline(always)]
pub fn dispatch_span<F: FnOnce() -> (TuneKey, f64)>(f: F) -> DispatchGuard {
    #[cfg(feature = "enabled")]
    {
        let (key, flops_per_call) = f();
        DispatchGuard {
            key,
            flops_per_call,
            start: std::time::Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = f;
        DispatchGuard {}
    }
}

/// Feeds one synthetic dispatch sample (used by tests and reproduction
/// harnesses that need deterministic latencies). No-op when disabled.
#[inline(always)]
pub fn observe_ns(key: TuneKey, ns: u64, flops_per_call: f64) {
    #[cfg(feature = "enabled")]
    stats::record(key, ns, flops_per_call);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (key, ns, flops_per_call);
    }
}

/// Snapshot of all watch state (empty with `enabled: false` when the
/// feature is off).
pub fn snapshot() -> WatchSnapshot {
    #[cfg(feature = "enabled")]
    {
        drift::snapshot()
    }
    #[cfg(not(feature = "enabled"))]
    {
        WatchSnapshot::default()
    }
}

/// Zeroes telemetry, detector state, events, flags, and the injection
/// shim in place. Class registrations and persisted envelopes survive.
pub fn reset() {
    #[cfg(feature = "enabled")]
    drift::reset();
}

/// Removes and returns all queued drift events, oldest first.
pub fn drain_events() -> Vec<DriftEvent> {
    #[cfg(feature = "enabled")]
    {
        drift::drain_events()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Drift events ever raised (monotonic; unaffected by [`drain_events`]).
pub fn events_total() -> u64 {
    #[cfg(feature = "enabled")]
    {
        drift::events_total()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Claims a pending retune flag for `key`. `iatf-core` polls this at
/// dispatch: `true` means "evict the tuning-db entry and re-sweep now".
/// Constant `false` when disabled, so the remediation branch folds away.
#[inline(always)]
pub fn take_retune(key: &TuneKey) -> bool {
    take_retune_cause(key).is_some()
}

/// Like [`take_retune`], but also hands back the journal id of the drift
/// event that raised the flag (0 when the journal feature is off), so the
/// remediation can publish its work under that cause. Constant `None`
/// when disabled, so the remediation branch folds away.
#[inline(always)]
pub fn take_retune_cause(key: &TuneKey) -> Option<u64> {
    #[cfg(feature = "enabled")]
    {
        drift::take_retune(key)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = key;
        None
    }
}

/// Whether `key` is currently flagged for retune (observability only —
/// does not claim the flag).
pub fn retune_pending(key: &TuneKey) -> bool {
    #[cfg(feature = "enabled")]
    {
        drift::retune_pending(key)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = key;
        false
    }
}

/// Reports a completed retune: re-seeds the class envelope from the
/// fresh sweep (`tuned_gflops`, relative `noise`) and re-arms its chart.
/// Pass `tuned_gflops <= 0.0` if the sweep failed — the class falls back
/// to self-calibration.
pub fn note_retuned(key: &TuneKey, tuned_gflops: f64, noise: f64) {
    #[cfg(feature = "enabled")]
    drift::note_retuned(key, tuned_gflops, noise);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (key, tuned_gflops, noise);
    }
}

/// Sweep budget for drift-triggered retunes, milliseconds
/// (`IATF_WATCH_RETUNE_MS`).
pub fn retune_budget_ms() -> u64 {
    #[cfg(feature = "enabled")]
    {
        drift::config().retune_budget_ms
    }
    #[cfg(not(feature = "enabled"))]
    {
        WatchConfig::default().retune_budget_ms
    }
}

/// Test hook: multiplies recorded latencies for one shape class by a
/// skew factor (`None` disarms). The dispatch itself is untouched — only
/// the telemetry sees the slowdown, letting reproduction harnesses prove
/// the detect→retune→recover loop without actually degrading anything.
pub fn inject_latency_skew(skew: Option<(TuneKey, f64)>) {
    #[cfg(feature = "enabled")]
    drift::set_injection(skew);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = skew;
    }
}

/// One document carrying both halves of the runtime's observability: the
/// obs counters and the watch telemetry.
pub fn unified_json(watch: &WatchSnapshot, metrics: &MetricsSnapshot) -> Json {
    Json::object()
        .set("metrics", metrics.to_json())
        .set("watch", watch.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_tune::TuneOp;

    fn key(m: u32, count: u64) -> TuneKey {
        TuneKey {
            op: TuneOp::Gemm,
            dtype: 1,
            m,
            n: m,
            k: m,
            mode: 0,
            conj: 0,
            count,
            width: 1,
        }
    }

    /// Keep the global stores away from the developer's real cache files:
    /// tests in this binary share a process, so disable persistence once.
    fn isolate() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            std::env::set_var("IATF_WATCH_ENVELOPES", "");
            std::env::set_var("IATF_TUNE_DB", "");
        });
    }

    #[test]
    fn guard_is_zero_sized_when_disabled() {
        if !is_enabled() {
            assert_eq!(std::mem::size_of::<DispatchGuard>(), 0);
            assert!(!std::mem::needs_drop::<DispatchGuard>());
        }
    }

    #[test]
    fn disabled_probes_are_inert() {
        isolate();
        if is_enabled() {
            return;
        }
        let k = key(4, 64);
        observe_ns(k, 1_000, 1.0e3);
        let _guard = dispatch_span(|| (k, 1.0e3));
        drop(_guard);
        let s = snapshot();
        assert!(!s.enabled);
        assert!(s.classes.is_empty());
        assert!(!take_retune(&k));
        assert_eq!(events_total(), 0);
    }

    /// The tentpole's exactness claim: N threads hammer a mix of shared
    /// and private shape classes; the merged per-class totals must equal
    /// the per-thread shard sums *exactly*, and the histogram mass must
    /// equal the counts.
    #[test]
    fn concurrent_shard_merge_is_exact() {
        isolate();
        if !is_enabled() {
            return;
        }
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let shared = key(6, 4096);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let private = key(100 + t as u32, 4096);
                    for i in 0..PER_THREAD {
                        // Deterministic latencies spread across buckets.
                        observe_ns(shared, 1000 + i * 7 + t, 1.0e6);
                        observe_ns(private, 500 + i, 1.0e6);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let s = snapshot();
        assert!(s.enabled);
        let merged = s
            .classes
            .iter()
            .find(|c| c.key == shared)
            .expect("shared class missing");
        assert_eq!(merged.count, THREADS * PER_THREAD);

        // Exact equality against the per-thread shards, field by field.
        let shards: Vec<_> = s.threads.iter().filter(|t| t.key == shared).collect();
        assert!(shards.len() >= 2, "expected multiple shards for the shared class");
        assert_eq!(merged.count, shards.iter().map(|t| t.count).sum::<u64>());
        assert_eq!(merged.total_ns, shards.iter().map(|t| t.total_ns).sum::<u64>());
        for b in 0..merged.hist.len() {
            assert_eq!(
                merged.hist[b],
                shards.iter().map(|t| t.hist[b]).sum::<u64>(),
                "bucket {b} merge mismatch"
            );
        }
        assert_eq!(merged.hist.iter().sum::<u64>(), merged.count);

        // Private classes: one shard each, merged == shard.
        for t in 0..THREADS {
            let k = key(100 + t as u32, 4096);
            let c = s.classes.iter().find(|c| c.key == k).unwrap();
            assert_eq!(c.count, PER_THREAD);
            let shards: Vec<_> = s.threads.iter().filter(|th| th.key == k).collect();
            assert_eq!(shards.len(), 1);
            assert_eq!(shards[0].count, c.count);
        }
    }

    /// End-to-end inside the crate: calibration → injected sustained
    /// slowdown → drift event with sane fields → retune flag → rearm →
    /// healthy again.
    #[test]
    fn injected_slowdown_trips_flags_and_rearms() {
        isolate();
        if !is_enabled() {
            return;
        }
        let k = key(24, 1024);
        let flops = 2.0e6;
        let healthy = 10_000u64;

        // Calibration + steady healthy traffic: no events for this key.
        for _ in 0..200 {
            observe_ns(k, healthy, flops);
        }
        assert!(
            !drain_events().iter().any(|e| e.key == k),
            "false positive under steady traffic"
        );

        // Sustained 2.5x via the injection shim.
        inject_latency_skew(Some((k, 2.5)));
        let mut fired = false;
        for _ in 0..200 {
            observe_ns(k, healthy, flops);
            if retune_pending(&k) {
                fired = true;
                break;
            }
        }
        assert!(fired, "no drift event within 200 slow dispatches");
        inject_latency_skew(None);

        let events = drain_events();
        let ev = events.iter().find(|e| e.key == k).expect("event missing");
        assert!(ev.ratio > 1.5, "ratio {} not elevated", ev.ratio);
        assert!(ev.observed_ns > ev.expected_ns);
        assert!((0.05..=0.99).contains(&ev.confidence));
        assert!(events_total() >= 1);

        let class = snapshot().classes.into_iter().find(|c| c.key == k).unwrap();
        assert!(class.drifting);
        assert!(class.retune_pending);

        // Remediation: claim the flag (idempotent), re-arm at the slower
        // reality, and verify steady traffic no longer trips.
        assert!(take_retune(&k));
        assert!(!take_retune(&k), "flag not consumed");
        note_retuned(&k, flops / (2.5 * healthy as f64), 0.02);
        let class = snapshot().classes.into_iter().find(|c| c.key == k).unwrap();
        assert!(!class.drifting, "trip latch survived retune");
        inject_latency_skew(Some((k, 2.5)));
        for _ in 0..100 {
            observe_ns(k, healthy, flops);
        }
        inject_latency_skew(None);
        assert!(
            !drain_events().iter().any(|e| e.key == k),
            "re-armed chart tripped at its own expectation"
        );
    }

    #[test]
    fn unified_json_carries_both_halves() {
        isolate();
        let doc = unified_json(&snapshot(), &iatf_obs::snapshot());
        let parsed = iatf_obs::parse_json(&doc.to_pretty()).unwrap();
        assert!(parsed.get("metrics").is_some());
        assert!(parsed
            .get("watch")
            .and_then(|w| w.get("events_total"))
            .is_some());
    }
}
