//! Atomic-type shim: real `std` atomics by default, `loom` model-checked
//! atomics under `--cfg loom`.
//!
//! The single-writer telemetry shards ([`crate::stats`]) and the drift
//! detector's lock-free flags ([`crate::drift`]) route every atomic
//! through this module so the shard merge protocol can be driven by the
//! bounded model checker (`RUSTFLAGS="--cfg loom" cargo test -p
//! iatf-watch --features enabled --lib loom`). With the cfg off these are
//! plain re-exports — identical codegen to naming `std::sync::atomic`.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
