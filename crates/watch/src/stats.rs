//! Streaming per-class telemetry: the hot path of the watch layer.
//!
//! Each `(thread, shape-class)` pair owns a [`ClassShard`] of relaxed
//! atomics — a dispatch count, latency sum, min/max, and a log2 latency
//! histogram (same bucketing as `iatf-obs`). Shards are created on a
//! thread's first dispatch of a class, cached in a thread-local map, and
//! registered in a global list that snapshots merge; after that first
//! touch the record path is a handful of relaxed atomic adds with no
//! locks, no allocation, and no syscalls. Single-writer/multi-reader
//! atomics make the merged totals *exactly* the per-thread sums — the
//! merge test in `lib.rs` asserts equality, not approximation.
//!
//! This module only exists when the `enabled` feature is on; the
//! disabled crate exposes no-op fronts instead.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::sync::{AtomicU64, Ordering::Relaxed};

use iatf_obs::metrics::HIST_BUCKETS;
use iatf_tune::TuneKey;

use crate::drift::{self, ClassWatch};
use crate::snapshot::ThreadClassSnapshot;

/// One thread's telemetry for one shape class.
pub(crate) struct ClassShard {
    pub(crate) tid: u64,
    pub(crate) key: TuneKey,
    pub(crate) flops_per_call: f64,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl ClassShard {
    fn new(tid: u64, key: TuneKey, flops_per_call: f64) -> Self {
        ClassShard {
            tid,
            key,
            flops_per_call,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Write side of the shard protocol. Field order is load-bearing
    /// against concurrent `read()`: `count` is bumped *before* the
    /// histogram, and `read()` loads the histogram *before* `count`, so a
    /// snapshot's histogram mass never exceeds its count (the merge code
    /// treats count as authoritative). The `loom_models` module below
    /// drives this pairing through every bounded interleaving.
    #[inline]
    fn record(&self, ns: u64) {
        // ordering: Relaxed — single-writer shard: only the owning thread
        // writes, so each atomic is an independent monotonic accumulator
        // and relaxed read-modify-writes lose nothing; no payload is
        // published through these words (snapshot readers tolerate the
        // bounded skew, see `read`). Exactness of the merged totals comes
        // from quiescence at merge time, not from ordering.
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.min_ns.fetch_min(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
        let bucket = (64 - ns.leading_zeros()) as usize;
        self.hist[bucket].fetch_add(1, Relaxed);
    }

    fn zero(&self) {
        // ordering: Relaxed — reset is only called from quiesced test /
        // reset paths; racing writers would merely re-add a sample, which
        // the advisory snapshot tolerates.
        self.count.store(0, Relaxed);
        self.total_ns.store(0, Relaxed);
        self.min_ns.store(u64::MAX, Relaxed);
        self.max_ns.store(0, Relaxed);
        for b in &self.hist {
            b.store(0, Relaxed);
        }
    }

    /// Read side of the shard protocol: histogram first, `count` last —
    /// the mirror image of `record`'s write order — so concurrent
    /// snapshots satisfy `hist mass <= count` (see `record`).
    pub(crate) fn read(&self) -> ThreadClassSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        // ordering: Relaxed — advisory snapshot of single-writer
        // accumulators; the only cross-field guarantee needed is the
        // hist-before-count read order above, which program order plus
        // the write order in `record` already gives on every target this
        // crate supports (and which the loom model checks).
        for (dst, src) in hist.iter_mut().zip(self.hist.iter()) {
            *dst = src.load(Relaxed);
        }
        ThreadClassSnapshot {
            tid: self.tid,
            key: self.key,
            count: self.count.load(Relaxed),
            total_ns: self.total_ns.load(Relaxed),
            hist,
        }
    }

    pub(crate) fn min_ns(&self) -> u64 {
        // ordering: Relaxed — advisory snapshot of a single-writer word.
        self.min_ns.load(Relaxed)
    }

    pub(crate) fn max_ns(&self) -> u64 {
        // ordering: Relaxed — advisory snapshot of a single-writer word.
        self.max_ns.load(Relaxed)
    }
}

pub(crate) fn registry() -> &'static Mutex<Vec<Arc<ClassShard>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<ClassShard>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// One class's record-path handles: this thread's shard plus the shared
/// per-class detector.
type ClassHandles = (Arc<ClassShard>, Arc<ClassWatch>);

thread_local! {
    /// This thread's shard + detector handle per class, so the steady
    /// state touches no global locks.
    static CACHE: RefCell<HashMap<TuneKey, ClassHandles>> = RefCell::new(HashMap::new());
}

fn thread_id() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        // ordering: Relaxed — id allocator: fetch_add's atomicity alone
        // guarantees uniqueness; no other memory rides on it.
        static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
    }
    TID.with(|t| *t)
}

/// Records one warm dispatch: `ns` wall latency for one call of `key`
/// performing `flops_per_call` flops. First touch of a class on a thread
/// registers a shard; afterwards this is lock-free except the per-class
/// detector update.
pub(crate) fn record(key: TuneKey, ns: u64, flops_per_call: f64) {
    let ns = drift::skewed(key, ns);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let (shard, watch) = cache.entry(key).or_insert_with(|| {
            let shard = Arc::new(ClassShard::new(thread_id(), key, flops_per_call));
            registry().lock().unwrap().push(Arc::clone(&shard));
            (shard, drift::class_for(key, flops_per_call))
        });
        shard.record(ns);
        watch.observe(ns);
    });
}

/// Zeroes every shard in place (registrations and thread caches stay
/// valid; see `reset()` in the crate root for the full story).
pub(crate) fn zero_all() {
    for shard in registry().lock().unwrap().iter() {
        shard.zero();
    }
}

/// Bounded model checking of the shard write/read protocol (run with
/// `RUSTFLAGS="--cfg loom" cargo test -p iatf-watch --features enabled
/// --lib loom`): a recording writer against a concurrent snapshot reader,
/// through every interleaving within the model checker's preemption
/// bound.
#[cfg(all(loom, test))]
mod loom_models {
    use super::*;
    use iatf_tune::TuneOp;
    use loom::thread;

    fn model_key() -> TuneKey {
        TuneKey {
            op: TuneOp::Gemm,
            dtype: 1,
            m: 4,
            n: 4,
            k: 4,
            mode: 0,
            conj: 0,
            count: 32,
            width: 1,
        }
    }

    fn mass(hist: &[u64; HIST_BUCKETS]) -> u64 {
        hist.iter().sum()
    }

    /// Invariants: (a) a snapshot taken *while* the owning thread records
    /// never shows more histogram mass than count (`record` bumps count
    /// first, `read` loads it last); (b) once the writer has joined, the
    /// merge is exact — counts, totals, and histogram mass all equal the
    /// per-thread sums, nothing lost and nothing double-counted.
    #[test]
    fn shard_merge_is_exact_and_snapshots_never_overcount() {
        loom::model(|| {
            let shard = Arc::new(ClassShard::new(1, model_key(), 2.0));
            let writer = {
                let shard = Arc::clone(&shard);
                thread::spawn(move || {
                    shard.record(100);
                    shard.record(200);
                })
            };

            // Concurrent snapshot: may land before, between, or inside
            // the two records.
            let mid = shard.read();
            assert!(
                mass(&mid.hist) <= mid.count,
                "snapshot histogram mass {} exceeds count {}",
                mass(&mid.hist),
                mid.count
            );
            assert!(mid.count <= 2);

            writer.join().unwrap();

            // Post-join: the merge is exact, not approximate.
            let fin = shard.read();
            assert_eq!(fin.count, 2);
            assert_eq!(fin.total_ns, 300);
            assert_eq!(mass(&fin.hist), 2);
            assert_eq!(shard.min_ns(), 100);
            assert_eq!(shard.max_ns(), 200);
        });
    }

    /// Two shards (two recording threads) merged by summation: the
    /// single-writer discipline makes the merged totals exactly the sum
    /// of the per-thread sums in every interleaving.
    #[test]
    fn cross_shard_merge_is_exact_under_concurrent_recording() {
        loom::model(|| {
            let a = Arc::new(ClassShard::new(1, model_key(), 2.0));
            let b = Arc::new(ClassShard::new(2, model_key(), 2.0));
            let wa = {
                let a = Arc::clone(&a);
                thread::spawn(move || a.record(100))
            };
            b.record(50);
            wa.join().unwrap();

            let (sa, sb) = (a.read(), b.read());
            assert_eq!(sa.count + sb.count, 2);
            assert_eq!(sa.total_ns + sb.total_ns, 150);
            assert_eq!(mass(&sa.hist) + mass(&sb.hist), 2);
        });
    }
}
