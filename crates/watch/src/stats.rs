//! Streaming per-class telemetry: the hot path of the watch layer.
//!
//! Each `(thread, shape-class)` pair owns a [`ClassShard`] of relaxed
//! atomics — a dispatch count, latency sum, min/max, and a log2 latency
//! histogram (same bucketing as `iatf-obs`). Shards are created on a
//! thread's first dispatch of a class, cached in a thread-local map, and
//! registered in a global list that snapshots merge; after that first
//! touch the record path is a handful of relaxed atomic adds with no
//! locks, no allocation, and no syscalls. Single-writer/multi-reader
//! atomics make the merged totals *exactly* the per-thread sums — the
//! merge test in `lib.rs` asserts equality, not approximation.
//!
//! This module only exists when the `enabled` feature is on; the
//! disabled crate exposes no-op fronts instead.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use iatf_obs::metrics::HIST_BUCKETS;
use iatf_tune::TuneKey;

use crate::drift::{self, ClassWatch};
use crate::snapshot::ThreadClassSnapshot;

/// One thread's telemetry for one shape class.
pub(crate) struct ClassShard {
    pub(crate) tid: u64,
    pub(crate) key: TuneKey,
    pub(crate) flops_per_call: f64,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl ClassShard {
    fn new(tid: u64, key: TuneKey, flops_per_call: f64) -> Self {
        ClassShard {
            tid,
            key,
            flops_per_call,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.min_ns.fetch_min(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
        let bucket = (64 - ns.leading_zeros()) as usize;
        self.hist[bucket].fetch_add(1, Relaxed);
    }

    fn zero(&self) {
        self.count.store(0, Relaxed);
        self.total_ns.store(0, Relaxed);
        self.min_ns.store(u64::MAX, Relaxed);
        self.max_ns.store(0, Relaxed);
        for b in &self.hist {
            b.store(0, Relaxed);
        }
    }

    pub(crate) fn read(&self) -> ThreadClassSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (dst, src) in hist.iter_mut().zip(self.hist.iter()) {
            *dst = src.load(Relaxed);
        }
        ThreadClassSnapshot {
            tid: self.tid,
            key: self.key,
            count: self.count.load(Relaxed),
            total_ns: self.total_ns.load(Relaxed),
            hist,
        }
    }

    pub(crate) fn min_ns(&self) -> u64 {
        self.min_ns.load(Relaxed)
    }

    pub(crate) fn max_ns(&self) -> u64 {
        self.max_ns.load(Relaxed)
    }
}

pub(crate) fn registry() -> &'static Mutex<Vec<Arc<ClassShard>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<ClassShard>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// One class's record-path handles: this thread's shard plus the shared
/// per-class detector.
type ClassHandles = (Arc<ClassShard>, Arc<ClassWatch>);

thread_local! {
    /// This thread's shard + detector handle per class, so the steady
    /// state touches no global locks.
    static CACHE: RefCell<HashMap<TuneKey, ClassHandles>> = RefCell::new(HashMap::new());
}

fn thread_id() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
    }
    TID.with(|t| *t)
}

/// Records one warm dispatch: `ns` wall latency for one call of `key`
/// performing `flops_per_call` flops. First touch of a class on a thread
/// registers a shard; afterwards this is lock-free except the per-class
/// detector update.
pub(crate) fn record(key: TuneKey, ns: u64, flops_per_call: f64) {
    let ns = drift::skewed(key, ns);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let (shard, watch) = cache.entry(key).or_insert_with(|| {
            let shard = Arc::new(ClassShard::new(thread_id(), key, flops_per_call));
            registry().lock().unwrap().push(Arc::clone(&shard));
            (shard, drift::class_for(key, flops_per_call))
        });
        shard.record(ns);
        watch.observe(ns);
    });
}

/// Zeroes every shard in place (registrations and thread caches stay
/// valid; see `reset()` in the crate root for the full story).
pub(crate) fn zero_all() {
    for shard in registry().lock().unwrap().iter() {
        shard.zero();
    }
}
