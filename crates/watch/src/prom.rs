//! Prometheus text-format exposition (version 0.0.4).
//!
//! Renders a [`WatchSnapshot`] plus the obs [`MetricsSnapshot`] into one
//! scrape document. Per-class series carry an `op` label and a `class`
//! label holding the stable `TuneKey` encoding; latency histograms use
//! the standard cumulative `_bucket{le=…}` form derived from the log2
//! histograms, so `histogram_quantile()` works out of the box.
//!
//! Always compiled — rendering a disabled build's empty snapshot yields
//! a document that just says so.

use std::fmt::Write;

use iatf_obs::MetricsSnapshot;
use iatf_tune::{TuneKey, TuneOp};

use crate::snapshot::{bucket_hi, WatchSnapshot};

fn op_name(op: TuneOp) -> &'static str {
    match op {
        TuneOp::Gemm => "gemm",
        TuneOp::Trsm => "trsm",
        TuneOp::Trmm => "trmm",
    }
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn class_labels(out: &mut String, key: &TuneKey) {
    out.push_str("{op=\"");
    out.push_str(op_name(key.op));
    out.push_str("\",class=\"");
    escape_label(out, &key.encode());
    out.push_str("\"}");
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn series(out: &mut String, name: &str, key: Option<&TuneKey>, value: f64) {
    out.push_str(name);
    if let Some(key) = key {
        class_labels(out, key);
    }
    if value.fract() == 0.0 && value.abs() < 9e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value}");
    }
}

/// Renders the unified scrape document.
pub fn render_prometheus(watch: &WatchSnapshot, metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    header(&mut out, "iatf_watch_enabled", "gauge", "1 when the watch feature is compiled in.");
    series(&mut out, "iatf_watch_enabled", None, watch.enabled as u64 as f64);

    header(&mut out, "iatf_dispatch_total", "counter", "Warm dispatches observed per shape class.");
    for c in &watch.classes {
        series(&mut out, "iatf_dispatch_total", Some(&c.key), c.count as f64);
    }

    header(&mut out, "iatf_dispatch_ns", "histogram", "Warm dispatch latency per shape class, nanoseconds.");
    for c in &watch.classes {
        let mut cumulative = 0u64;
        for (b, &n) in c.hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            out.push_str("iatf_dispatch_ns_bucket{op=\"");
            out.push_str(op_name(c.key.op));
            out.push_str("\",class=\"");
            escape_label(&mut out, &c.key.encode());
            let _ = writeln!(out, "\",le=\"{}\"}} {cumulative}", bucket_hi(b));
        }
        out.push_str("iatf_dispatch_ns_bucket{op=\"");
        out.push_str(op_name(c.key.op));
        out.push_str("\",class=\"");
        escape_label(&mut out, &c.key.encode());
        let _ = writeln!(out, "\",le=\"+Inf\"}} {}", c.count);
        series(&mut out, "iatf_dispatch_ns_sum", Some(&c.key), c.total_ns as f64);
        series(&mut out, "iatf_dispatch_ns_count", Some(&c.key), c.count as f64);
    }

    header(&mut out, "iatf_dispatch_p99_ns", "gauge", "p99 warm dispatch latency per shape class (log2-bucket upper bound).");
    for c in &watch.classes {
        series(&mut out, "iatf_dispatch_p99_ns", Some(&c.key), c.quantile_ns(0.99) as f64);
    }

    header(&mut out, "iatf_dispatch_gflops", "gauge", "Achieved throughput per shape class over the window.");
    for c in &watch.classes {
        series(&mut out, "iatf_dispatch_gflops", Some(&c.key), c.gflops());
    }

    header(&mut out, "iatf_envelope_expected_ns", "gauge", "Performance-envelope expected latency per shape class (0 while calibrating).");
    for c in &watch.classes {
        series(&mut out, "iatf_envelope_expected_ns", Some(&c.key), c.expected_ns);
    }

    header(&mut out, "iatf_drift_ewma_ratio", "gauge", "Smoothed observed/expected latency ratio per shape class.");
    for c in &watch.classes {
        series(&mut out, "iatf_drift_ewma_ratio", Some(&c.key), c.ewma_ratio);
    }

    header(&mut out, "iatf_drift_cusum", "gauge", "Drift-chart CUSUM level per shape class.");
    for c in &watch.classes {
        series(&mut out, "iatf_drift_cusum", Some(&c.key), c.cusum);
    }

    header(&mut out, "iatf_drift_active", "gauge", "1 while a shape class is tripped and awaiting remediation.");
    for c in &watch.classes {
        series(&mut out, "iatf_drift_active", Some(&c.key), c.drifting as u64 as f64);
    }

    header(&mut out, "iatf_drift_events_total", "counter", "Drift events raised since start.");
    series(&mut out, "iatf_drift_events_total", None, watch.events_total as f64);

    header(&mut out, "iatf_retunes_pending", "gauge", "Shape classes flagged for retune.");
    series(&mut out, "iatf_retunes_pending", None, watch.retunes_pending as f64);

    header(&mut out, "iatf_retunes_done_total", "counter", "Drift-triggered retunes completed.");
    series(&mut out, "iatf_retunes_done_total", None, watch.retunes_done as f64);

    // A slice of the obs counters most useful on a dashboard next to the
    // watch series; the full obs snapshot stays available as JSON.
    header(&mut out, "iatf_plan_cache_events_total", "counter", "Plan-cache lookups by outcome.");
    for (i, kind) in ["hit", "miss", "eviction", "bypass"].iter().enumerate() {
        let _ = writeln!(out, "iatf_plan_cache_events_total{{kind=\"{kind}\"}} {}", metrics.plan_cache[i]);
    }
    header(&mut out, "iatf_tune_events_total", "counter", "Autotuner events by kind.");
    for (i, kind) in ["sweep", "apply", "miss", "db_corrupt", "persist", "retune"]
        .iter()
        .enumerate()
    {
        let _ = writeln!(out, "iatf_tune_events_total{{kind=\"{kind}\"}} {}", metrics.tune[i]);
    }
    header(&mut out, "iatf_fallback_hits_total", "counter", "Calls routed to a non-compact fallback.");
    series(&mut out, "iatf_fallback_hits_total", None, metrics.fallback_hits as f64);

    header(&mut out, "iatf_plan_builds_total", "counter", "Plans built per routine.");
    for (i, op) in ["gemm", "trsm", "trmm"].iter().enumerate() {
        let _ = writeln!(out, "iatf_plan_builds_total{{op=\"{op}\"}} {}", metrics.plan_builds[i]);
    }
    header(&mut out, "iatf_arena_leases_total", "counter", "Pack-arena leases by outcome (reuse = warm buffer, no allocation).");
    let _ = writeln!(out, "iatf_arena_leases_total{{kind=\"lease\"}} {}", metrics.arena_leases);
    let _ = writeln!(out, "iatf_arena_leases_total{{kind=\"reuse\"}} {}", metrics.arena_reuses);
    header(&mut out, "iatf_arena_bytes_total", "counter", "Pack-arena bytes by disposition (reused without re-zeroing vs first-touch grown).");
    let _ = writeln!(out, "iatf_arena_bytes_total{{kind=\"reused\"}} {}", metrics.arena_bytes_reused);
    let _ = writeln!(out, "iatf_arena_bytes_total{{kind=\"grown\"}} {}", metrics.arena_bytes_grown);
    header(&mut out, "iatf_superblock_tasks_total", "counter", "Parallel super-block work units dispatched per routine.");
    for (i, op) in ["gemm", "trsm", "trmm"].iter().enumerate() {
        let _ = writeln!(out, "iatf_superblock_tasks_total{{op=\"{op}\"}} {}", metrics.superblock_tasks[i]);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ClassSnapshot, WatchSnapshot};
    use iatf_obs::metrics::HIST_BUCKETS;

    fn sample_class() -> ClassSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        hist[10] = 7;
        hist[12] = 3;
        ClassSnapshot {
            key: TuneKey {
                op: TuneOp::Gemm,
                dtype: 1,
                m: 8,
                n: 8,
                k: 8,
                mode: 0,
                conj: 0,
                count: 512,
                width: 1,
            },
            count: 10,
            total_ns: 12_000,
            min_ns: 600,
            max_ns: 4000,
            hist,
            flops_per_call: 5.24e5,
            ewma_ns: 1200.0,
            ewma_ratio: 1.1,
            cusum: 0.0,
            expected_ns: 1100.0,
            expected_gflops: 0.47,
            slack: 0.5,
            source: Some(iatf_tune::EnvelopeSource::Tuned),
            drifting: false,
            retune_pending: false,
        }
    }

    /// Minimal exposition-format check: every sample line is
    /// `name{labels} value` with a finite value, TYPE lines precede their
    /// series, histogram buckets are cumulative and consistent.
    fn check_parseable(doc: &str) {
        let mut typed: Vec<String> = Vec::new();
        for line in doc.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                typed.push(it.next().unwrap().to_string());
                assert!(
                    matches!(it.next(), Some("counter" | "gauge" | "histogram")),
                    "bad TYPE line {line:?}"
                );
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
            assert!(
                value.parse::<f64>().is_ok_and(f64::is_finite),
                "bad value in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|b| typed.iter().any(|t| t == b))
                .unwrap_or(name);
            assert!(typed.iter().any(|t| t == base), "series {name} has no TYPE");
            if series.contains('{') {
                assert!(series.ends_with('}'), "unbalanced labels in {line:?}");
            }
        }
    }

    #[test]
    fn rendered_document_is_parseable_and_complete() {
        let snap = WatchSnapshot {
            enabled: true,
            classes: vec![sample_class()],
            ..Default::default()
        };
        let doc = render_prometheus(&snap, &iatf_obs::snapshot());
        check_parseable(&doc);
        for series in [
            "iatf_dispatch_total{op=\"gemm\",class=\"0:1:8:8:8:0:0:512:1\"} 10",
            "iatf_dispatch_ns_bucket",
            "le=\"+Inf\"} 10",
            "iatf_dispatch_ns_sum{op=\"gemm\",class=\"0:1:8:8:8:0:0:512:1\"} 12000",
            "iatf_drift_events_total 0",
            "iatf_tune_events_total{kind=\"retune\"}",
            "iatf_plan_builds_total{op=\"trsm\"}",
            "iatf_arena_leases_total{kind=\"reuse\"}",
            "iatf_arena_bytes_total{kind=\"grown\"}",
            "iatf_superblock_tasks_total{op=\"gemm\"}",
        ] {
            assert!(doc.contains(series), "missing {series:?} in:\n{doc}");
        }
        // Cumulative buckets: last le bucket before +Inf equals count.
        let last = doc
            .lines()
            .rfind(|l| l.starts_with("iatf_dispatch_ns_bucket") && !l.contains("+Inf"))
            .unwrap();
        assert!(last.ends_with(" 10"), "buckets not cumulative: {last}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = String::new();
        escape_label(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }
}
