//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce <target> [--paper|--quick] [--batch N] [--csv|--json]
//!
//! targets:
//!   table1 table2 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12
//!   ablation-pack ablation-batch ablation-kernel-size ablation-fmls
//!   ablation-schedule callamort obs tune widths backends trace sentinel
//!   watch verify all
//! ```
//!
//! `callamort` measures call-amortization: per-call cost of a prebuilt
//! plan's `execute` vs the cached and bypass (fresh-plan-per-call) one-shot
//! paths at small sizes, where run-time-stage overhead is comparable to
//! compute. `--json` emits one combined document with the per-size numbers
//! and the plan-cache counters.
//!
//! `obs` exercises every routine/precision once and prints the telemetry
//! document: plan explainers (always live) plus the runtime counters,
//! which are non-zero only when built with `--features obs`.
//!
//! `tune` exercises the input-aware empirical autotuner: a grid of
//! (op, dtype, size, batch) points is first-touch-tuned, and the recorded
//! winners are reported against the heuristic baseline that was measured
//! in the same calibrated sweep. `--json` emits the `BENCH_4.json`
//! document the CI gate checks (tuned must never lose to the heuristic
//! beyond noise, and must be strictly faster on a fraction of the grid).
//!
//! `widths` sweeps GEMM/TRSM across the size grid at every vector width
//! the host can execute and compares each wider backend against the
//! 128-bit baseline measured in the same interleaved rounds. `--json`
//! emits the `BENCH_8.json` document the CI gate checks (wider must not
//! lose to 128-bit beyond noise, and must win on part of the grid where
//! a 256-bit backend exists). `backends` prints the executable registry
//! rows for the verify-script width matrix.
//!
//! `trace` runs a workload set that touches every runtime phase under the
//! flight recorder and a `perf_event` counter group, writes the recorded
//! spans as Chrome `trace_event` JSON (openable in Perfetto/`chrome://
//! tracing`) to `target/trace_reproduce.json`, and prints the roofline
//! attribution joining each plan's predicted flops/bytes with the measured
//! cycles and cache traffic. Spans record only with `--features trace`;
//! without a usable PMU the roofline degrades to predictions-only and says
//! why. `--json` emits the `BENCH_5.json` document.
//!
//! `sentinel` is the noise-aware performance regression gate: it re-runs
//! the throughput workloads behind the committed `BENCH_3.json`, the
//! autotuner points behind `BENCH_4.json`, and the roofline points behind
//! `BENCH_5.json`, and fails (exit 1) if any current number regresses
//! beyond `max(3 × measured noise, 5%)` of its committed baseline. A
//! missing baseline file is recorded from the current build (announced,
//! never silently passed) so the gate arms itself once the file is
//! committed.
//!
//! `watch` drives the always-on monitoring loop end to end: mixed-shape
//! warm traffic under `--features watch` establishes per-class envelopes,
//! an injected telemetry-side slowdown on one shape class raises a
//! DriftEvent, and the triggered retune (db generation bump, plan-cache
//! invalidation, re-sweep) restores the class. `--json` emits the
//! `BENCH_6.json` document; the Prometheus exposition is written to
//! `target/watch_prometheus.txt`.
//!
//! `verify` statically certifies the exhaustive kernel enumeration with
//! `iatf-verify` (register budgets, memory safety, pipeline structure,
//! symbolic semantics) and exits non-zero unless 100% certify. `--json`
//! prints the `verify_report.json` document instead of the text summary.
//!
//! `--quick` (default) uses a reduced size grid and a scaled batch so a full
//! `reproduce all` finishes in minutes; `--paper` uses the paper's exact
//! protocol (sizes 1–33, batch 16384, 100 repetitions).

use iatf_bench::report::{render_csv, render_json, render_table, speedup_summary, Series};
use iatf_bench::runners;
use iatf_bench::timer::TimeOpts;
use iatf_bench::workloads::{gemm_workload, scaled_batch, trsm_workload};
use iatf_bench::{paper_sizes, quick_sizes, PAPER_BATCH};
use iatf_core::{
    analysis, BatchPolicy, CompactElement, PackPolicy, TuningConfig, KUNPENG_920, XEON_6240,
};
use iatf_layout::{GemmMode, TrsmMode};
use iatf_simd::{c32, c64, DType};

#[derive(Clone)]
struct Opts {
    sizes: Vec<usize>,
    batch_base: usize,
    time: TimeOpts,
    csv: bool,
    json: bool,
    paper: bool,
}

/// Flags consumed only by the `journal` target (query filters, the causal
/// walk, the machine report, and the two CI modes).
#[derive(Default)]
struct JournalOpts {
    selftest: bool,
    overhead: bool,
    report: bool,
    follow: Option<u64>,
    kind: Option<String>,
    op: Option<String>,
    key: Option<String>,
    since: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut opts = Opts {
        sizes: quick_sizes(),
        batch_base: 2048,
        time: TimeOpts::quick(),
        csv: false,
        json: false,
        paper: false,
    };
    let mut audit_self_test = false;
    let mut jopts = JournalOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-test" => audit_self_test = true,
            "--selftest" => jopts.selftest = true,
            "--overhead" => jopts.overhead = true,
            "--report" => jopts.report = true,
            "--follow" => {
                jopts.follow = match it.next().and_then(|s| s.parse().ok()) {
                    Some(id) => Some(id),
                    None => {
                        eprintln!("error: --follow requires an event id");
                        std::process::exit(2);
                    }
                };
            }
            "--kind" => jopts.kind = it.next().cloned(),
            "--op" => jopts.op = it.next().cloned(),
            "--key" => jopts.key = it.next().cloned(),
            "--since" => {
                jopts.since = match it.next().and_then(|s| s.parse().ok()) {
                    Some(t) => Some(t),
                    None => {
                        eprintln!("error: --since requires a unix timestamp in seconds");
                        std::process::exit(2);
                    }
                };
            }
            "--paper" => {
                opts.sizes = paper_sizes();
                opts.batch_base = PAPER_BATCH;
                opts.time = TimeOpts::paper();
                opts.paper = true;
            }
            "--quick" => {}
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--batch" => {
                opts.batch_base = match it.next().and_then(|s| s.parse().ok()) {
                    Some(b) => b,
                    None => {
                        eprintln!("error: --batch requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--sizes" => {
                let Some(list) = it.next() else {
                    eprintln!("error: --sizes requires a comma-separated list");
                    std::process::exit(2);
                };
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.parse::<usize>()).collect();
                match parsed {
                    Ok(sizes) if !sizes.is_empty() && sizes.iter().all(|&n| n >= 1) => {
                        opts.sizes = sizes;
                    }
                    _ => {
                        eprintln!("error: --sizes takes positive integers, e.g. --sizes 2,4,8");
                        std::process::exit(2);
                    }
                }
            }
            t if !t.starts_with('-') => target = t.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    match target.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig7" => fig7(&opts),
        "fig8" => fig8(&opts),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "ablation-pack" => ablation_pack(&opts),
        "ablation-batch" => ablation_batch(&opts),
        "ablation-kernel-size" => ablation_kernel_size(&opts),
        "ablation-fmls" => ablation_fmls(&opts),
        "ablation-pingpong" => ablation_pingpong(&opts),
        "ext-trmm" => ext_trmm(&opts),
        "ablation-schedule" => ablation_schedule(),
        "callamort" => callamort(&opts),
        "obs" => obs_telemetry(&opts),
        "tune" => tune_bench(&opts),
        "trace" => trace_bench(&opts),
        "widths" => widths_bench(&opts),
        "backends" => backends(),
        "sentinel" => sentinel(&opts),
        "watch" => watch_bench(&opts),
        "journal" => journal_cmd(&opts, &jopts),
        "verify" => verify_kernels(&opts),
        "audit" => audit_workspace_sources(&opts, audit_self_test),
        "all" => {
            table1();
            table2();
            fig4();
            fig5();
            fig7(&opts);
            fig8(&opts);
            fig9(&opts);
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            ablation_pack(&opts);
            ablation_batch(&opts);
            ablation_kernel_size(&opts);
            ablation_fmls(&opts);
            ablation_pingpong(&opts);
            ablation_schedule();
            ext_trmm(&opts);
            callamort(&opts);
            obs_telemetry(&opts);
            tune_bench(&opts);
            widths_bench(&opts);
            trace_bench(&opts);
            watch_bench(&opts);
            verify_kernels(&opts);
        }
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    }
}

/// Registry provenance stamped into the BENCH_* documents: which µarch
/// row and vector width produced the numbers. The sentinel refuses to
/// gate a baseline recorded on a different row — throughput measured at
/// one width is not comparable to another — announcing the mismatch and
/// skipping instead of failing on foreign numbers.
fn registry_meta() -> iatf_obs::Json {
    let row = iatf_kernels::dispatched_row();
    iatf_obs::Json::object()
        .set("uarch", row.uarch)
        .set("width", row.width.name())
        .set("width_bits", row.width.bits() as u64)
}

/// True when `base` was recorded on the registry row this process
/// dispatches to (or predates the provenance stamp — those legacy
/// baselines gate as before). On mismatch, announces the skip.
fn baseline_row_matches(path: &str, base: &iatf_obs::Json) -> bool {
    let Some(reg) = base.get("registry") else {
        return true;
    };
    let row = iatf_kernels::dispatched_row();
    let b_uarch = reg.get("uarch").and_then(|v| v.as_str()).unwrap_or("?");
    let b_width = reg.get("width").and_then(|v| v.as_str()).unwrap_or("?");
    if b_uarch == row.uarch && b_width == row.width.name() {
        return true;
    }
    eprintln!(
        "   {path}: baseline recorded on {b_uarch} at width {b_width}, current dispatch is {} at width {} — skipping (re-record on this host to arm the gate)",
        row.uarch,
        row.width.name(),
    );
    false
}

fn emit(opts: &Opts, title: &str, xlabel: &str, xs: &[usize], series: &[Series]) {
    if opts.json {
        println!("{}", render_json(title, xlabel, xs, series));
        return;
    }
    if opts.csv {
        println!("# {title}");
        print!("{}", render_csv(xlabel, xs, series));
    } else {
        print!("{}", render_table(title, xlabel, xs, series));
    }
    if series.len() >= 2 {
        // comment prefix keeps CSV output machine-readable
        let prefix = if opts.csv { "# " } else { "   " };
        for other in &series[1..] {
            let (max, geo) = speedup_summary(&series[0], other);
            println!(
                "{prefix}speedup of {} over {}: max {max:.2}x, geomean {geo:.2}x",
                series[0].name, other.name
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// Tables 1, 2 and Figures 4, 5 (structural reproductions)
// ---------------------------------------------------------------------------

fn table1() {
    println!("## Table 1: all generated kernels");
    let classes = [
        (iatf_kernels::KernelClass::RealGemm, "SGEMM/DGEMM"),
        (iatf_kernels::KernelClass::CplxGemm, "CGEMM/ZGEMM"),
        (iatf_kernels::KernelClass::RealTrsm, "STRSM/DTRSM"),
        (iatf_kernels::KernelClass::CplxTrsm, "CTRSM/ZTRSM"),
    ];
    for (class, label) in classes {
        let main: Vec<String> = iatf_kernels::TABLE1
            .iter()
            .filter(|k| k.class == class && k.main)
            .map(|k| format!("{}x{}", k.mr, k.nr))
            .collect();
        let edge: Vec<String> = iatf_kernels::TABLE1
            .iter()
            .filter(|k| k.class == class && !k.main)
            .map(|k| format!("{}x{}", k.mr, k.nr))
            .collect();
        println!("{label:>12}:  main {}   edge {}", main.join(","), edge.join(","));
    }
    println!();
}

fn table2() {
    println!("## Table 2: experimental environments");
    for m in [KUNPENG_920, XEON_6240, iatf_core::host_profile()] {
        println!(
            "{:>22}: arch {:<13} L1D {:>4} KB  L2 {:>5} KB  SIMD {:>3}b  {:.1} GHz  peak fp64/fp32 {}/{} GFLOPS",
            m.name,
            m.arch,
            m.l1d_bytes / 1024,
            m.l2_bytes / 1024,
            m.simd_bits,
            m.freq_ghz,
            m.peak_fp64_gflops,
            m.peak_fp32_gflops,
        );
    }
    println!();
}

fn fig4() {
    println!("## Figure 4: tiling of 15x15 SGEMM, traditional (12x8 main) vs compact (4x4 main)");
    for (label, mr, nr) in [("traditional", 12usize, 8usize), ("compact", 4, 4)] {
        let tiles = analysis::tile_decomposition(15, 15, mr, nr);
        let mut sizes: Vec<(usize, usize)> = tiles.iter().map(|t| (t.h, t.w)).collect();
        sizes.sort();
        sizes.dedup();
        let frac = analysis::main_kernel_area_fraction(15, 15, mr, nr);
        println!(
            "{label:>12}: {} tiles, kernel sizes {:?}, main-kernel area {:.0}%",
            tiles.len(),
            sizes,
            frac * 100.0
        );
    }
    println!();
}

fn fig5() {
    use iatf_codegen::{
        generate_gemm_kernel, optimize, DataType, GemmKernelSpec, PipelineModel,
    };
    println!("## Figure 5: kernel optimizer on the DGEMM 4x4 kernel (K = 8)");
    let model = PipelineModel::default();
    let prog = generate_gemm_kernel(&GemmKernelSpec {
        mc: 4,
        nc: 4,
        k: 8,
        dtype: DataType::F64,
        alpha: 1.0,
        ldc: 4,
    });
    let opt = optimize(&prog, &model);
    let before = model.simulate(&prog);
    let after = model.simulate(&opt);
    println!(
        "original : {} insts, {} modeled cycles (port bound {})",
        prog.len(),
        before.cycles,
        before.port_bound
    );
    println!(
        "optimized: {} insts, {} modeled cycles",
        opt.len(),
        after.cycles
    );
    println!(
        "stall reduction: {:.1}%",
        100.0 * (before.cycles - after.cycles) as f64 / before.cycles as f64
    );
    println!("--- first 24 optimized instructions ---");
    let text = opt.render();
    for line in text.lines().take(24) {
        println!("{line}");
    }
    println!();
}

// ---------------------------------------------------------------------------
// Figures 7–10: GFLOPS sweeps
// ---------------------------------------------------------------------------

fn gemm_sweep<E: CompactElement + iatf_baselines::blasloop::BaselineElement>(
    opts: &Opts,
    mode: GemmMode,
) -> (Vec<usize>, Vec<Series>) {
    let cfg = TuningConfig::default();
    let mut iatf = Vec::new();
    let mut armpl = Vec::new();
    let mut openblas = Vec::new();
    for &n in &opts.sizes {
        let batch = if opts.paper {
            opts.batch_base
        } else {
            scaled_batch(opts.batch_base, n)
        };
        let mut w = gemm_workload::<E>(n, mode, batch, n as u64);
        iatf.push(runners::iatf_gemm(&mut w, &cfg, &opts.time));
        armpl.push(runners::batched_gemm(&mut w, &opts.time));
        openblas.push(runners::blasloop_gemm(&mut w, &opts.time));
    }
    (
        opts.sizes.clone(),
        vec![
            Series::new("IATF", iatf),
            Series::new("ARMPL-batch*", armpl),
            Series::new("OpenBLAS-loop*", openblas),
        ],
    )
}

fn gemm_sweep_real<R>(opts: &Opts, mode: GemmMode) -> (Vec<usize>, Vec<Series>)
where
    R: CompactElement
        + iatf_baselines::blasloop::BaselineElement
        + iatf_simd::Real
        + iatf_simd::HasSimd,
{
    let (xs, mut series) = gemm_sweep::<R>(opts, mode);
    let mut xsmm = Vec::new();
    for &n in &xs {
        let batch = if opts.paper {
            opts.batch_base
        } else {
            scaled_batch(opts.batch_base, n)
        };
        let mut w = gemm_workload::<R>(n, mode, batch, n as u64);
        xsmm.push(runners::specialized_gemm(&mut w, &opts.time));
    }
    series.insert(2, Series::new("LIBXSMM*", xsmm));
    (xs, series)
}

fn fig7(opts: &Opts) {
    for dt in DType::ALL {
        let title = format!(
            "Figure 7: compact {}gemm GFLOPS vs baselines, NN mode",
            dt.prefix()
        );
        let (xs, series) = match dt {
            DType::F32 => gemm_sweep_real::<f32>(opts, GemmMode::NN),
            DType::F64 => gemm_sweep_real::<f64>(opts, GemmMode::NN),
            DType::C32 => gemm_sweep::<c32>(opts, GemmMode::NN),
            DType::C64 => gemm_sweep::<c64>(opts, GemmMode::NN),
        };
        emit(opts, &title, "n", &xs, &series);
    }
}

fn fig8(opts: &Opts) {
    for mode in GemmMode::ALL {
        for dt in DType::ALL {
            let title = format!(
                "Figure 8: compact {}gemm GFLOPS, {mode} mode",
                dt.prefix()
            );
            let (xs, series) = match dt {
                DType::F32 => gemm_sweep_real::<f32>(opts, mode),
                DType::F64 => gemm_sweep_real::<f64>(opts, mode),
                DType::C32 => gemm_sweep::<c32>(opts, mode),
                DType::C64 => gemm_sweep::<c64>(opts, mode),
            };
            emit(opts, &title, "n", &xs, &series);
        }
    }
}

fn trsm_sweep<E: CompactElement>(opts: &Opts, mode: TrsmMode) -> (Vec<usize>, Vec<Series>) {
    let cfg = TuningConfig::default();
    let mut iatf = Vec::new();
    let mut armpl = Vec::new();
    let mut openblas = Vec::new();
    for &n in &opts.sizes {
        let batch = if opts.paper {
            opts.batch_base
        } else {
            scaled_batch(opts.batch_base, n)
        };
        let w = trsm_workload::<E>(n, mode, batch, 7 + n as u64);
        iatf.push(runners::iatf_trsm(&w, &cfg, &opts.time));
        armpl.push(runners::batched_trsm(&w, &opts.time));
        openblas.push(runners::blasloop_trsm(&w, &opts.time));
    }
    (
        opts.sizes.clone(),
        vec![
            Series::new("IATF", iatf),
            Series::new("ARMPL-loop*", armpl),
            Series::new("OpenBLAS-loop*", openblas),
        ],
    )
}

fn fig9(opts: &Opts) {
    for dt in DType::ALL {
        let title = format!(
            "Figure 9: compact {}trsm GFLOPS vs baselines, LNLN mode",
            dt.prefix()
        );
        let (xs, series) = match dt {
            DType::F32 => trsm_sweep::<f32>(opts, TrsmMode::LNLN),
            DType::F64 => trsm_sweep::<f64>(opts, TrsmMode::LNLN),
            DType::C32 => trsm_sweep::<c32>(opts, TrsmMode::LNLN),
            DType::C64 => trsm_sweep::<c64>(opts, TrsmMode::LNLN),
        };
        emit(opts, &title, "n", &xs, &series);
    }
}

fn fig10(opts: &Opts) {
    for mode in TrsmMode::FIG10 {
        for dt in [DType::F32, DType::F64, DType::C32, DType::C64] {
            let title = format!(
                "Figure 10: compact {}trsm GFLOPS, {mode} mode",
                dt.prefix()
            );
            let (xs, series) = match dt {
                DType::F32 => trsm_sweep::<f32>(opts, mode),
                DType::F64 => trsm_sweep::<f64>(opts, mode),
                DType::C32 => trsm_sweep::<c32>(opts, mode),
                DType::C64 => trsm_sweep::<c64>(opts, mode),
            };
            emit(opts, &title, "n", &xs, &series);
        }
    }
}

// ---------------------------------------------------------------------------
// Figures 11–12: percent of peak
// ---------------------------------------------------------------------------

fn percent_of_peak(gflops: &[f64], peak: f64) -> Vec<f64> {
    gflops.iter().map(|g| 100.0 * g / peak).collect()
}

fn fig11(opts: &Opts) {
    let peak = iatf_bench::peak::measure_peak(&opts.time);
    println!(
        "measured single-core peak: fp32 {:.2} GFLOPS, fp64 {:.2} GFLOPS",
        peak.fp32_gflops, peak.fp64_gflops
    );
    let cfg = TuningConfig::default();
    for dt in DType::ALL {
        let peak_g = match dt {
            DType::F32 | DType::C32 => peak.fp32_gflops,
            DType::F64 | DType::C64 => peak.fp64_gflops,
        };
        let mut vals = Vec::new();
        for &n in &opts.sizes {
            let batch = if opts.paper {
                opts.batch_base
            } else {
                scaled_batch(opts.batch_base, n)
            };
            let g = match dt {
                DType::F32 => {
                    let mut w = gemm_workload::<f32>(n, GemmMode::NN, batch, n as u64);
                    runners::iatf_gemm(&mut w, &cfg, &opts.time)
                }
                DType::F64 => {
                    let mut w = gemm_workload::<f64>(n, GemmMode::NN, batch, n as u64);
                    runners::iatf_gemm(&mut w, &cfg, &opts.time)
                }
                DType::C32 => {
                    let mut w = gemm_workload::<c32>(n, GemmMode::NN, batch, n as u64);
                    runners::iatf_gemm(&mut w, &cfg, &opts.time)
                }
                DType::C64 => {
                    let mut w = gemm_workload::<c64>(n, GemmMode::NN, batch, n as u64);
                    runners::iatf_gemm(&mut w, &cfg, &opts.time)
                }
            };
            vals.push(g);
        }
        let title = format!(
            "Figure 11: {}gemm as % of measured peak (paper compares vs MKL compact on Xeon 6240)",
            dt.prefix()
        );
        let series = vec![Series::new(
            "IATF %peak",
            percent_of_peak(&vals, peak_g),
        )];
        emit(opts, &title, "n", &opts.sizes, &series);
    }
}

fn fig12(opts: &Opts) {
    let peak = iatf_bench::peak::measure_peak(&opts.time);
    let cfg = TuningConfig::default();
    for dt in DType::ALL {
        let peak_g = match dt {
            DType::F32 | DType::C32 => peak.fp32_gflops,
            DType::F64 | DType::C64 => peak.fp64_gflops,
        };
        let mut vals = Vec::new();
        for &n in &opts.sizes {
            let batch = if opts.paper {
                opts.batch_base
            } else {
                scaled_batch(opts.batch_base, n)
            };
            let g = match dt {
                DType::F32 => {
                    let w = trsm_workload::<f32>(n, TrsmMode::LNLN, batch, n as u64);
                    runners::iatf_trsm(&w, &cfg, &opts.time)
                }
                DType::F64 => {
                    let w = trsm_workload::<f64>(n, TrsmMode::LNLN, batch, n as u64);
                    runners::iatf_trsm(&w, &cfg, &opts.time)
                }
                DType::C32 => {
                    let w = trsm_workload::<c32>(n, TrsmMode::LNLN, batch, n as u64);
                    runners::iatf_trsm(&w, &cfg, &opts.time)
                }
                DType::C64 => {
                    let w = trsm_workload::<c64>(n, TrsmMode::LNLN, batch, n as u64);
                    runners::iatf_trsm(&w, &cfg, &opts.time)
                }
            };
            vals.push(g);
        }
        let title = format!(
            "Figure 12: {}trsm as % of measured peak (paper compares vs MKL compact on Xeon 6240)",
            dt.prefix()
        );
        let series = vec![Series::new(
            "IATF %peak",
            percent_of_peak(&vals, peak_g),
        )];
        emit(opts, &title, "n", &opts.sizes, &series);
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

fn ablation_pack(opts: &Opts) {
    let mut series_map: Vec<(PackPolicy, &str, Vec<f64>)> = vec![
        (PackPolicy::Auto, "Auto (paper)", Vec::new()),
        (PackPolicy::Always, "Always pack", Vec::new()),
        (PackPolicy::Never, "Never pack", Vec::new()),
    ];
    for &n in &opts.sizes {
        let batch = scaled_batch(opts.batch_base, n);
        for (policy, _, vals) in &mut series_map {
            let cfg = TuningConfig {
                pack: *policy,
                ..TuningConfig::default()
            };
            let mut w = gemm_workload::<f32>(n, GemmMode::NN, batch, n as u64);
            vals.push(runners::iatf_gemm(&mut w, &cfg, &opts.time));
        }
    }
    let series: Vec<Series> = series_map
        .into_iter()
        .map(|(_, name, vals)| Series::new(name, vals))
        .collect();
    emit(
        opts,
        "Ablation: pack-selecter policy (sgemm NN)",
        "n",
        &opts.sizes,
        &series,
    );
}

fn ablation_batch(opts: &Opts) {
    let policies: Vec<(BatchPolicy, String)> = vec![
        (BatchPolicy::Auto, "L1-fitted (paper)".into()),
        (BatchPolicy::Fixed(1), "1 pack/superblock".into()),
        (BatchPolicy::Fixed(4096), "whole group".into()),
    ];
    let mut all: Vec<Series> = Vec::new();
    for (policy, name) in policies {
        let mut vals = Vec::new();
        for &n in &opts.sizes {
            let batch = scaled_batch(opts.batch_base, n);
            let cfg = TuningConfig {
                batch: policy,
                ..TuningConfig::default()
            };
            let mut w = gemm_workload::<f64>(n, GemmMode::NN, batch, n as u64);
            vals.push(runners::iatf_gemm(&mut w, &cfg, &opts.time));
        }
        all.push(Series::new(name, vals));
    }
    emit(
        opts,
        "Ablation: batch-counter policy (dgemm NN)",
        "n",
        &opts.sizes,
        &all,
    );
}

fn ablation_kernel_size(opts: &Opts) {
    println!("## Ablation: microkernel size vs achieved GFLOPS (dgemm kernels, K = 16)");
    println!("{:>6} {:>6} {:>8} {:>10} {:>10}", "m", "n", "CMAR", "regs", "GFLOPS");
    for m in 1..=4 {
        for n in 1..=4 {
            let g = runners::microkernel_gemm_gflops(m, n, 16, &opts.time);
            println!(
                "{m:>6} {n:>6} {:>8.3} {:>10} {:>10.3}",
                analysis::cmar_real(m, n),
                analysis::real_register_cost(m, n),
                g
            );
        }
    }
    println!("(CMAR-optimal (4,4) should achieve the best GFLOPS — Eq. 2)\n");
}

fn ablation_fmls(opts: &Opts) {
    println!("## Ablation: FMLS rectangular kernel vs general GEMM update (Eq. 4)");
    println!("{:>6} {:>12} {:>12} {:>9}", "kk", "FMLS GF", "GEMM GF", "saving");
    for kk in [1usize, 2, 4, 8, 16, 32] {
        let (fmls, gemm) = runners::fmls_vs_gemm_update(kk, &opts.time);
        println!(
            "{kk:>6} {fmls:>12.3} {gemm:>12.3} {:>8.1}%",
            100.0 * (fmls - gemm) / gemm
        );
    }
    println!("(the paper's predicted instruction saving is M*N/(M*M*N+M*N) = 1/(M+1))\n");
}

/// Geometric mean over reps; the step closure restores state untimed and
/// returns the measured seconds of the solve alone.
fn restored_secs(opts: &TimeOpts, mut step: impl FnMut() -> f64) -> f64 {
    for _ in 0..opts.warmup {
        step();
    }
    let mut log_sum = 0.0;
    for _ in 0..opts.reps {
        log_sum += step().max(1e-9).ln();
    }
    (log_sum / opts.reps as f64).exp()
}

fn ext_trmm(opts: &Opts) {
    use iatf_bench::timer::gflops;
    use iatf_bench::workloads::{trsm_flops, trsm_workload};
    use iatf_layout::TrsmDims;
    let cfg = TuningConfig::default();
    for dt in [DType::F32, DType::F64] {
        let mut iatf = Vec::new();
        let mut base = Vec::new();
        for &n in &opts.sizes {
            let batch = scaled_batch(opts.batch_base, n);
            match dt {
                DType::F32 => {
                    let w = trsm_workload::<f32>(n, TrsmMode::LNLN, batch, n as u64);
                    let plan = iatf_core::TrmmPlan::<f32>::new(
                        TrsmDims::square(n),
                        TrsmMode::LNLN,
                        false,
                        batch,
                        &cfg,
                    )
                    .unwrap();
                    let mut b = w.b_c.clone();
                    let pristine = w.b_c.clone();
                    // restore untimed: only the solve is measured
                    let secs = restored_secs(&opts.time, || {
                        b.as_scalars_mut().copy_from_slice(pristine.as_scalars());
                        let t0 = std::time::Instant::now();
                        plan.execute(1.0, &w.a_c, &mut b).unwrap();
                        t0.elapsed().as_secs_f64()
                    });
                    iatf.push(gflops(trsm_flops::<f32>(n, batch), secs));
                    let mut bs = w.b_std.clone();
                    let ps = w.b_std.clone();
                    let secs = restored_secs(&opts.time, || {
                        bs.as_mut_slice().copy_from_slice(ps.as_slice());
                        let t0 = std::time::Instant::now();
                        iatf_baselines::batched::trmm(TrsmMode::LNLN, 1.0f32, &w.a_std, &mut bs);
                        t0.elapsed().as_secs_f64()
                    });
                    base.push(gflops(trsm_flops::<f32>(n, batch), secs));
                }
                _ => {
                    let w = trsm_workload::<f64>(n, TrsmMode::LNLN, batch, n as u64);
                    let plan = iatf_core::TrmmPlan::<f64>::new(
                        TrsmDims::square(n),
                        TrsmMode::LNLN,
                        false,
                        batch,
                        &cfg,
                    )
                    .unwrap();
                    let mut b = w.b_c.clone();
                    let pristine = w.b_c.clone();
                    let secs = restored_secs(&opts.time, || {
                        b.as_scalars_mut().copy_from_slice(pristine.as_scalars());
                        let t0 = std::time::Instant::now();
                        plan.execute(1.0, &w.a_c, &mut b).unwrap();
                        t0.elapsed().as_secs_f64()
                    });
                    iatf.push(gflops(trsm_flops::<f64>(n, batch), secs));
                    let mut bs = w.b_std.clone();
                    let ps = w.b_std.clone();
                    let secs = restored_secs(&opts.time, || {
                        bs.as_mut_slice().copy_from_slice(ps.as_slice());
                        let t0 = std::time::Instant::now();
                        iatf_baselines::batched::trmm(TrsmMode::LNLN, 1.0f64, &w.a_std, &mut bs);
                        t0.elapsed().as_secs_f64()
                    });
                    base.push(gflops(trsm_flops::<f64>(n, batch), secs));
                }
            }
        }
        let title = format!(
            "Extension: compact {}trmm GFLOPS vs batched scalar baseline, LNLN",
            dt.prefix()
        );
        let series = vec![
            Series::new("IATF-TRMM", iatf),
            Series::new("batched-scalar", base),
        ];
        emit(opts, &title, "n", &opts.sizes, &series);
    }
}

fn ablation_pingpong(opts: &Opts) {
    println!("## Ablation: ping-pong pipelined vs plain 4x4 DGEMM microkernel");
    println!("{:>6} {:>14} {:>12} {:>8}", "K", "pipelined GF", "plain GF", "gain");
    for k in [2usize, 4, 8, 16, 33] {
        let (pp, plain) = runners::pingpong_vs_plain(k, &opts.time);
        println!(
            "{k:>6} {pp:>14.3} {plain:>12.3} {:>7.1}%",
            100.0 * (pp - plain) / plain
        );
    }
    println!("(on out-of-order hosts the hardware scheduler hides much of the\n difference; the modeled in-order gap is in ablation-schedule)\n");
}

// ---------------------------------------------------------------------------
// Observability telemetry export
// ---------------------------------------------------------------------------

fn obs_gemm_once<E: CompactElement>(n: usize, count: usize) -> iatf_obs::PlanExplain {
    use iatf_layout::{CompactBatch, GemmDims};
    let cfg = TuningConfig::default();
    let plan = iatf_core::GemmPlan::<E>::new(
        GemmDims::square(n),
        GemmMode::NN,
        false,
        false,
        count,
        &cfg,
    )
    .unwrap();
    let a = CompactBatch::<E>::zeroed(n, n, count);
    let b = CompactBatch::<E>::zeroed(n, n, count);
    let mut c = CompactBatch::<E>::zeroed(n, n, count);
    plan.execute(E::one(), &a, &b, E::one(), &mut c).unwrap();
    plan.explain()
}

fn obs_trsm_once<E: CompactElement>(n: usize, count: usize) -> iatf_obs::PlanExplain {
    use iatf_layout::{CompactBatch, TrsmDims};
    let cfg = TuningConfig::default();
    let plan =
        iatf_core::TrsmPlan::<E>::new(TrsmDims::square(n), TrsmMode::LNLN, false, count, &cfg)
            .unwrap();
    let mut a = CompactBatch::<E>::zeroed(n, n, count);
    // all-ones triangle: unit diagonal, so the solve is well-defined
    for s in a.as_scalars_mut().iter_mut() {
        *s = <E::Real as iatf_simd::Real>::ONE;
    }
    let mut b = CompactBatch::<E>::zeroed(n, n, count);
    plan.execute(E::one(), &a, &mut b).unwrap();
    plan.explain()
}

fn obs_trmm_once<E: CompactElement>(n: usize, count: usize) -> iatf_obs::PlanExplain {
    use iatf_layout::{CompactBatch, TrsmDims};
    let cfg = TuningConfig::default();
    let plan =
        iatf_core::TrmmPlan::<E>::new(TrsmDims::square(n), TrsmMode::LNLN, false, count, &cfg)
            .unwrap();
    let a = CompactBatch::<E>::zeroed(n, n, count);
    let mut b = CompactBatch::<E>::zeroed(n, n, count);
    plan.execute(E::one(), &a, &mut b).unwrap();
    plan.explain()
}

/// Runs every routine × precision once over a small batch, then prints the
/// full telemetry document: one explainer per plan plus the counter
/// snapshot. The explainers' main-kernel sizes reproduce Table 1 (real
/// GEMM 4×4, complex GEMM 3×2, real TRSM 4×4, complex TRSM 2×2).
fn obs_telemetry(opts: &Opts) {
    iatf_obs::reset();
    iatf_core::plan::cache::clear();
    // n=10 has edge tiles in every precision (Table 1 main kernels: real
    // GEMM 4x4, complex GEMM 3x2, real TRSM 4x4, complex TRSM 2x2)
    let n = 10;
    let count = opts.batch_base.clamp(1, 64);
    // A few one-shot calls so the plan-cache counters show a miss-then-hit
    // pattern alongside the prebuilt-plan explainers below.
    {
        use iatf_layout::CompactBatch;
        let cfg = TuningConfig::default();
        let a = CompactBatch::<f64>::zeroed(n, n, count);
        let b = CompactBatch::<f64>::zeroed(n, n, count);
        let mut c = CompactBatch::<f64>::zeroed(n, n, count);
        for _ in 0..3 {
            iatf_core::compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        }
    }
    let explainers: Vec<iatf_obs::Json> = vec![
        obs_gemm_once::<f32>(n, count).to_json(),
        obs_gemm_once::<f64>(n, count).to_json(),
        obs_gemm_once::<c32>(n, count).to_json(),
        obs_gemm_once::<c64>(n, count).to_json(),
        obs_trsm_once::<f32>(n, count).to_json(),
        obs_trsm_once::<f64>(n, count).to_json(),
        obs_trsm_once::<c32>(n, count).to_json(),
        obs_trsm_once::<c64>(n, count).to_json(),
        obs_trmm_once::<f64>(n, count).to_json(),
    ];

    let doc = iatf_obs::Json::object()
        .set("obs_enabled", iatf_obs::is_enabled())
        .set("workload", iatf_obs::Json::object().set("n", n).set("count", count))
        .set("explainers", explainers)
        .set("metrics", iatf_obs::snapshot().to_json());
    println!("{}", doc.to_pretty());
}

// ---------------------------------------------------------------------------
// Call-amortization sweep (the plan cache's reason to exist)
// ---------------------------------------------------------------------------

/// Per-call dispatch cost at small sizes, four ways:
///
/// * `exec` — a prebuilt [`iatf_core::GemmPlan`], `execute` per call: the
///   floor (no planning, no cache lookup).
/// * `hit` — one-shot `compact_gemm` under the default `Shared` policy on
///   a fixed shape: after warmup every call is a cache hit.
/// * `miss` — one-shot under `Shared` where every call carries a config
///   with a fresh fingerprint (an `l1_budget_fraction` perturbation too
///   small to change any planning decision), so every lookup is a cold
///   miss that runs the full run-time stage *and* the insert/evict path.
/// * `bypass` — one-shot under `Bypass`: the run-time stage per call, no
///   cache traffic at all (the reference for what the cache must beat).
///
/// The *overhead* columns subtract the `exec` floor, isolating what the
/// caller pays for dispatch; `ratio` is miss-overhead over hit-overhead —
/// how much cheaper a cached call is than an uncached one.
///
/// Because those overheads are tens of nanoseconds riding on microsecond
/// call times, a second table measures dispatch *directly* — the
/// plan-resolution step alone (warm lookup vs cold miss vs bare build),
/// no subtraction — and that aggregate is the headline amortization
/// figure. A final table records serial vs parallel executor GFLOPS as
/// the perf-trajectory baseline for `BENCH_3.json`.
fn callamort(opts: &Opts) {
    use iatf_core::plan::cache;
    use iatf_core::{compact_gemm, GemmPlan, PlanCachePolicy};
    use iatf_layout::GemmDims;

    let sizes: Vec<usize> = {
        let small: Vec<usize> = opts.sizes.iter().copied().filter(|&n| n <= 8).collect();
        if small.is_empty() {
            vec![2, 4, 8]
        } else {
            small
        }
    };
    // Small batches keep per-call dispatch visible next to compute: the
    // overhead columns are floor-subtracted, and a multi-microsecond floor
    // would bury a ~100 ns dispatch delta in timing jitter.
    let count = opts.batch_base.clamp(1, 8);
    let cfg = TuningConfig::default();
    let bypass = TuningConfig {
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    };

    let mut exec_ns = Vec::new();
    let mut hit_ns = Vec::new();
    let mut miss_ns = Vec::new();
    let mut bypass_ns = Vec::new();
    cache::clear();
    // Monotone counter across all timing passes: every `miss` call gets a
    // config whose fingerprint has never been seen, so it can never hit.
    let mut fresh = 0u64;
    // The overhead columns below are floor-subtracted differences of tens
    // of nanoseconds, so a load spike landing on one series would swamp
    // them. The four series are therefore measured *interleaved* over
    // several short rounds, keeping the minimum per series — the minimum
    // approximates the unloaded per-call time, and interleaving keeps
    // drift (frequency, thermal, background load) from biasing one series.
    let round = iatf_bench::timer::TimeOpts {
        reps: 1,
        min_rep_secs: 0.004,
        warmup: 1,
    };
    const ROUNDS: usize = 5;
    for &n in &sizes {
        let w = gemm_workload::<f64>(n, GemmMode::NN, count, 42);
        let plan = GemmPlan::<f64>::new(
            GemmDims::square(n),
            GemmMode::NN,
            false,
            false,
            count,
            &cfg,
        )
        .unwrap();
        let (mut t_exec, mut t_hit, mut t_miss, mut t_bypass) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut c_exec = w.c_c.clone();
        let mut c_hit = w.c_c.clone();
        let mut c_miss = w.c_c.clone();
        let mut c_bypass = w.c_c.clone();
        for _ in 0..ROUNDS {
            t_exec = t_exec.min(iatf_bench::timer::time_secs(&round, || {
                plan.execute(1.0, &w.a_c, &w.b_c, 0.0, &mut c_exec).unwrap();
            }));
            t_hit = t_hit.min(iatf_bench::timer::time_secs(&round, || {
                compact_gemm(GemmMode::NN, 1.0, &w.a_c, &w.b_c, 0.0, &mut c_hit, &cfg).unwrap();
            }));
            t_miss = t_miss.min(iatf_bench::timer::time_secs(&round, || {
                fresh += 1;
                let cold = TuningConfig {
                    // Distinct fingerprint, identical planning decisions:
                    // the budget moves by well under one element.
                    l1_budget_fraction: cfg.l1_budget_fraction + fresh as f64 * 1e-9,
                    ..cfg.clone()
                };
                compact_gemm(GemmMode::NN, 1.0, &w.a_c, &w.b_c, 0.0, &mut c_miss, &cold).unwrap();
            }));
            t_bypass = t_bypass.min(iatf_bench::timer::time_secs(&round, || {
                compact_gemm(GemmMode::NN, 1.0, &w.a_c, &w.b_c, 0.0, &mut c_bypass, &bypass)
                    .unwrap();
            }));
        }
        exec_ns.push(t_exec * 1e9);
        hit_ns.push(t_hit * 1e9);
        miss_ns.push(t_miss * 1e9);
        bypass_ns.push(t_bypass * 1e9);
    }

    // Dispatch cost measured *directly*: time the plan-resolution step
    // alone (what a one-shot call does before `execute`), with no floor
    // subtraction to amplify jitter. `hit` is a warm cache lookup, `miss`
    // a never-seen fingerprint (lookup + build + insert + eviction at
    // capacity), `bypass` a bare plan build.
    let mut dispatch_hit_ns = Vec::new();
    let mut dispatch_miss_ns = Vec::new();
    let mut dispatch_bypass_ns = Vec::new();
    for &n in &sizes {
        let dims = GemmDims::square(n);
        let (mut t_hit, mut t_miss, mut t_bypass) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..ROUNDS {
            t_hit = t_hit.min(iatf_bench::timer::time_secs(&round, || {
                let plan =
                    cache::cached_gemm_plan::<f64>(dims, GemmMode::NN, false, false, count, &cfg)
                        .unwrap();
                std::hint::black_box(&plan);
            }));
            t_miss = t_miss.min(iatf_bench::timer::time_secs(&round, || {
                fresh += 1;
                let cold = TuningConfig {
                    l1_budget_fraction: cfg.l1_budget_fraction + fresh as f64 * 1e-9,
                    ..cfg.clone()
                };
                let plan =
                    cache::cached_gemm_plan::<f64>(dims, GemmMode::NN, false, false, count, &cold)
                        .unwrap();
                std::hint::black_box(&plan);
            }));
            t_bypass = t_bypass.min(iatf_bench::timer::time_secs(&round, || {
                let plan =
                    GemmPlan::<f64>::new(dims, GemmMode::NN, false, false, count, &bypass).unwrap();
                std::hint::black_box(&plan);
            }));
        }
        dispatch_hit_ns.push(t_hit * 1e9);
        dispatch_miss_ns.push(t_miss * 1e9);
        dispatch_bypass_ns.push(t_bypass * 1e9);
    }

    let overhead = |per_call: &[f64]| -> Vec<f64> {
        per_call
            .iter()
            .zip(&exec_ns)
            .map(|(&t, &floor)| (t - floor).max(0.0))
            .collect::<Vec<f64>>()
    };
    let oh_hit = overhead(&hit_ns);
    let oh_miss = overhead(&miss_ns);
    let oh_bypass = overhead(&bypass_ns);
    // Denominator floored at 1 ns: a hit that measures at or below the
    // prebuilt floor is timing jitter, not a free lookup.
    let ratio: Vec<f64> = oh_miss
        .iter()
        .zip(&oh_hit)
        .map(|(&m, &h)| m / h.max(1.0))
        .collect();
    // Headline number: total *directly measured* dispatch cost across the
    // sweep, uncached (cold miss) over cached (warm hit). The end-to-end
    // overhead columns tell the same story but ride on a floor subtraction
    // of tens of nanoseconds against microsecond call times, so they
    // jitter; the direct measurement does not.
    let aggregate =
        dispatch_miss_ns.iter().sum::<f64>() / dispatch_hit_ns.iter().sum::<f64>().max(1.0);
    let stats = cache::stats();

    // Executor-throughput trajectory for the BENCH artifact: serial vs
    // parallel GFLOPS on a batch big enough to span many superblocks.
    // (With the vendored sequential rayon the two coincide; on a real
    // rayon the parallel series shows the superblock-partitioned scaling.)
    let tp_sizes = [8usize, 16, 32];
    let tp_count = opts.batch_base.clamp(256, 4096);
    let mut serial_gflops = Vec::new();
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut parallel_gflops: Vec<f64> = Vec::new();
    for &n in &tp_sizes {
        let w = gemm_workload::<f64>(n, GemmMode::NN, tp_count, 7);
        let plan = GemmPlan::<f64>::new(
            GemmDims::square(n),
            GemmMode::NN,
            false,
            false,
            tp_count,
            &cfg,
        )
        .unwrap();
        let flops = 2.0 * (n * n * n * tp_count) as f64;
        let mut c = w.c_c.clone();
        let t = iatf_bench::timer::time_secs(&opts.time, || {
            plan.execute(1.0, &w.a_c, &w.b_c, 0.0, &mut c).unwrap();
        });
        serial_gflops.push(flops / t / 1e9);
        #[cfg(feature = "parallel")]
        {
            let mut c = w.c_c.clone();
            let t = iatf_bench::timer::time_secs(&opts.time, || {
                plan.execute_parallel(1.0, &w.a_c, &w.b_c, 0.0, &mut c).unwrap();
            });
            parallel_gflops.push(flops / t / 1e9);
        }
    }

    if opts.json {
        let ns_list = |v: &[f64]| v.iter().map(|&x| iatf_obs::Json::from(x)).collect::<Vec<_>>();
        let doc = iatf_obs::Json::object()
            .set("title", "callamort: per-call dispatch overhead, cached vs uncached")
            .set("registry", registry_meta())
            .set("count", count)
            .set("sizes", sizes.iter().map(|&n| iatf_obs::Json::from(n)).collect::<Vec<_>>())
            .set("exec_ns", ns_list(&exec_ns))
            .set("hit_ns", ns_list(&hit_ns))
            .set("miss_ns", ns_list(&miss_ns))
            .set("bypass_ns", ns_list(&bypass_ns))
            .set("hit_overhead_ns", ns_list(&oh_hit))
            .set("miss_overhead_ns", ns_list(&oh_miss))
            .set("bypass_overhead_ns", ns_list(&oh_bypass))
            .set("dispatch_hit_ns", ns_list(&dispatch_hit_ns))
            .set("dispatch_miss_ns", ns_list(&dispatch_miss_ns))
            .set("dispatch_bypass_ns", ns_list(&dispatch_bypass_ns))
            .set("amortization_ratio", ns_list(&ratio))
            .set("aggregate_amortization_ratio", aggregate)
            .set(
                "throughput",
                iatf_obs::Json::object()
                    .set("count", tp_count)
                    .set(
                        "sizes",
                        tp_sizes.iter().map(|&n| iatf_obs::Json::from(n)).collect::<Vec<_>>(),
                    )
                    .set("serial_gflops", ns_list(&serial_gflops))
                    .set("parallel_gflops", ns_list(&parallel_gflops))
                    .set("parallel_feature", cfg!(feature = "parallel")),
            )
            .set(
                "plan_cache",
                iatf_obs::Json::object()
                    .set("hits", stats.hits)
                    .set("misses", stats.misses)
                    .set("evictions", stats.evictions)
                    .set("bypasses", stats.bypasses)
                    .set("entries", stats.entries as u64),
            );
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Call amortization: per-call dispatch overhead (f64 GEMM NN, batch {count})");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "n", "exec ns", "hit ns", "miss ns", "bypass ns", "hit oh", "miss oh", "ratio"
    );
    for (i, &n) in sizes.iter().enumerate() {
        println!(
            "{n:>4} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7.1}x",
            exec_ns[i], hit_ns[i], miss_ns[i], bypass_ns[i], oh_hit[i], oh_miss[i], ratio[i]
        );
    }
    println!();
    println!("## Dispatch cost, measured directly (plan resolution only)");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>8}",
        "n", "hit ns", "miss ns", "build ns", "ratio"
    );
    for (i, &n) in sizes.iter().enumerate() {
        println!(
            "{n:>4} {:>12.1} {:>12.1} {:>12.1} {:>7.1}x",
            dispatch_hit_ns[i],
            dispatch_miss_ns[i],
            dispatch_bypass_ns[i],
            dispatch_miss_ns[i] / dispatch_hit_ns[i].max(1.0)
        );
    }
    println!("   aggregate: uncached dispatch costs {aggregate:.1}x the cached dispatch");
    println!(
        "   plan cache: {} hits, {} misses, {} evictions, {} bypasses, {} resident",
        stats.hits, stats.misses, stats.evictions, stats.bypasses, stats.entries
    );
    println!();
    println!("## Executor throughput (f64 GEMM NN, batch {tp_count})");
    for (i, &n) in tp_sizes.iter().enumerate() {
        let par = parallel_gflops
            .get(i).map_or_else(|| format!("{:>10}", "(off)"), |g| format!("{g:>10.2}"));
        println!("{n:>4} serial {:>10.2} GFLOPS   parallel {par} GFLOPS", serial_gflops[i]);
    }
    println!();
}

// ---------------------------------------------------------------------------
// Input-aware autotuner sweep (the `reproduce tune` CI gate, BENCH_4.json)
// ---------------------------------------------------------------------------

struct TunePoint {
    op: &'static str,
    dtype: &'static str,
    n: usize,
    count: usize,
    tuned_gflops: f64,
    heuristic_gflops: f64,
    noise: f64,
}

impl TunePoint {
    /// Mirrors the sweep's own significance rule (`secs[w] < secs[0] *
    /// (1 - noise)` in time terms): the winner beat the heuristic by more
    /// than the measured round-to-round noise.
    fn strictly_faster(&self) -> bool {
        self.tuned_gflops * (1.0 - self.noise) > self.heuristic_gflops
    }
}

/// First-touch-tunes a grid of (op, dtype, size, batch) points and reports
/// the recorded winners against the heuristic baseline measured in the
/// same calibrated sweep. Both numbers come out of one interleaved
/// min-of-rounds measurement, so the comparison is load-controlled; the
/// winner is selected as the time minimum over candidates *including* the
/// heuristic, so `tuned >= heuristic` holds by construction and the
/// interesting statistic is how often the win clears the noise floor.
fn tune_bench(opts: &Opts) {
    use iatf_core::autotune::{gemm_tune_key, trsm_tune_key};
    use iatf_core::TunePolicy;
    use iatf_layout::{GemmDims, TrsmDims};
    use iatf_tune::TuningDb;

    // Hermetic run: drop anything loaded from a pre-existing db so every
    // point below is tuned fresh (recordings still persist to the
    // configured path, so `IATF_TUNE_DB` runs leave a db behind for
    // inspection).
    let db = TuningDb::global();
    db.clear();
    iatf_core::plan::cache::clear();

    let budget_ms: u64 = if opts.paper { 250 } else { 60 };
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(budget_ms),
        ..TuningConfig::default()
    };
    let mut points: Vec<TunePoint> = Vec::new();
    for &n in &opts.sizes {
        let count = scaled_batch(opts.batch_base, n);
        let gdims = GemmDims::square(n);
        iatf_core::ensure_tuned_gemm::<f32>(gdims, GemmMode::NN, false, false, count, &cfg);
        if let Some(e) = db.lookup(&gemm_tune_key::<f32>(gdims, GemmMode::NN, false, false, count, cfg.width))
        {
            points.push(TunePoint {
                op: "gemm",
                dtype: "f32",
                n,
                count,
                tuned_gflops: e.tuned_gflops,
                heuristic_gflops: e.heuristic_gflops,
                noise: e.noise,
            });
        }
        let tdims = TrsmDims::square(n);
        iatf_core::ensure_tuned_trsm::<f64>(tdims, TrsmMode::LNLN, false, count, &cfg);
        if let Some(e) = db.lookup(&trsm_tune_key::<f64>(tdims, TrsmMode::LNLN, false, count, cfg.width)) {
            points.push(TunePoint {
                op: "trsm",
                dtype: "f64",
                n,
                count,
                tuned_gflops: e.tuned_gflops,
                heuristic_gflops: e.heuristic_gflops,
                noise: e.noise,
            });
        }
    }

    let total = points.len();
    let strict = points.iter().filter(|p| p.strictly_faster()).count();
    if opts.json {
        let doc = iatf_obs::Json::object()
            .set(
                "title",
                "tune: input-aware autotuner, measured winners vs heuristic baseline",
            )
            .set("registry", registry_meta())
            .set("budget_ms", budget_ms)
            .set("db_entries", db.len() as u64)
            .set("generation", db.generation())
            .set(
                "points",
                points
                    .iter()
                    .map(|p| {
                        iatf_obs::Json::object()
                            .set("op", p.op)
                            .set("dtype", p.dtype)
                            .set("n", p.n)
                            .set("count", p.count)
                            .set("tuned_gflops", p.tuned_gflops)
                            .set("heuristic_gflops", p.heuristic_gflops)
                            .set("noise", p.noise)
                            .set("strictly_faster", p.strictly_faster())
                    })
                    .collect::<Vec<_>>(),
            )
            .set("total_points", total as u64)
            .set("strictly_faster_points", strict as u64);
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Input-aware autotuner: recorded winners vs heuristic (budget {budget_ms} ms/point)");
    println!(
        "{:>6} {:>6} {:>4} {:>7} {:>11} {:>13} {:>8} {:>7}",
        "op", "dtype", "n", "count", "tuned GF", "heuristic GF", "noise", "strict"
    );
    for p in &points {
        println!(
            "{:>6} {:>6} {:>4} {:>7} {:>11.3} {:>13.3} {:>7.1}% {:>7}",
            p.op,
            p.dtype,
            p.n,
            p.count,
            p.tuned_gflops,
            p.heuristic_gflops,
            100.0 * p.noise,
            if p.strictly_faster() { "yes" } else { "-" }
        );
    }
    println!(
        "   {strict}/{total} points strictly faster than the heuristic; db has {} entries (generation {})",
        db.len(),
        db.generation()
    );
    println!();
}

// ---------------------------------------------------------------------------
// Width sweep: wider vector backends vs the 128-bit baseline (the
// `reproduce widths` target, BENCH_8.json)
// ---------------------------------------------------------------------------

/// One wider-width measurement against the 128-bit backend on the same
/// problem. `noise` is the worse of the two measurements' round spreads;
/// a loss only counts beyond `max(3 × noise, 2%)`, mirroring the tuner's
/// significance rule with a tighter floor (same backend family, same
/// operands — only the lane count differs).
struct WidthPoint {
    op: &'static str,
    dtype: &'static str,
    n: usize,
    count: usize,
    width: iatf_simd::VecWidth,
    gflops: f64,
    baseline_gflops: f64,
    noise: f64,
}

impl WidthPoint {
    fn tolerance(&self) -> f64 {
        (3.0 * self.noise).max(0.02)
    }

    /// Strictly faster than the 128-bit backend beyond measured noise.
    fn wins(&self) -> bool {
        self.gflops * (1.0 - self.noise) > self.baseline_gflops
    }

    /// Slower than the 128-bit backend beyond tolerance — a gate failure.
    fn loses(&self) -> bool {
        self.gflops < self.baseline_gflops * (1.0 - self.tolerance())
    }
}

/// Interleaved min-of-rounds GFLOPS per width for one square-GEMM point.
/// Every width's operands are laid out (`P` differs per width) and
/// planned up front; the rounds then cycle through the widths so load
/// drift hits all of them equally. Returns `(width, gflops, noise)`.
fn widths_gemm_point<E: CompactElement>(
    n: usize,
    count: usize,
    widths: &[iatf_simd::VecWidth],
    round: &TimeOpts,
) -> Vec<(iatf_simd::VecWidth, f64, f64)> {
    use iatf_core::{GemmPlan, PlanCachePolicy};
    use iatf_layout::{CompactBatch, GemmDims, StdBatch};

    let a = StdBatch::<E>::random(n, n, count, 0x80);
    let b = StdBatch::<E>::random(n, n, count, 0x81);
    let mut runs: Vec<_> = widths
        .iter()
        .map(|&w| {
            let cfg = TuningConfig {
                width: w,
                plan_cache: PlanCachePolicy::Bypass,
                ..TuningConfig::default()
            };
            let plan =
                GemmPlan::<E>::new(GemmDims::square(n), GemmMode::NN, false, false, count, &cfg)
                    .unwrap();
            let ca = CompactBatch::from_std_at(&a, w);
            let cb = CompactBatch::from_std_at(&b, w);
            let cc = CompactBatch::<E>::zeroed_at(n, n, count, w);
            (w, plan, ca, cb, cc)
        })
        .collect();
    let flops = iatf_bench::workloads::gemm_flops::<E>(n, count);
    const ROUNDS: usize = 5;
    let mut t_min = vec![f64::INFINITY; runs.len()];
    let mut t_max = vec![0.0f64; runs.len()];
    for _ in 0..ROUNDS {
        for (i, (_, plan, ca, cb, cc)) in runs.iter_mut().enumerate() {
            let t = iatf_bench::timer::time_secs(round, || {
                plan.execute(E::one(), ca, cb, E::one(), cc).unwrap();
            });
            t_min[i] = t_min[i].min(t);
            t_max[i] = t_max[i].max(t);
        }
    }
    runs.iter()
        .enumerate()
        .map(|(i, (w, ..))| (*w, flops / t_min[i] / 1e9, 1.0 - t_min[i] / t_max[i]))
        .collect()
}

/// Same protocol for f64 TRSM (LNUN, diagonally dominant A: the in-place
/// solve decays toward zero without overflow, so reps need no restore).
fn widths_trsm_point(
    n: usize,
    count: usize,
    widths: &[iatf_simd::VecWidth],
    round: &TimeOpts,
) -> Vec<(iatf_simd::VecWidth, f64, f64)> {
    use iatf_core::{PlanCachePolicy, TrsmPlan};
    use iatf_layout::{CompactBatch, StdBatch, TrsmDims};

    let mode = TrsmMode::LNUN;
    let a = StdBatch::<f64>::random_triangular(n, count, mode.uplo, mode.diag, 0x82);
    let b = StdBatch::<f64>::random(n, n, count, 0x83);
    let mut runs: Vec<_> = widths
        .iter()
        .map(|&w| {
            let cfg = TuningConfig {
                width: w,
                plan_cache: PlanCachePolicy::Bypass,
                ..TuningConfig::default()
            };
            let plan = TrsmPlan::<f64>::new(TrsmDims::square(n), mode, false, count, &cfg).unwrap();
            let ca = CompactBatch::from_std_at(&a, w);
            let cb = CompactBatch::from_std_at(&b, w);
            (w, plan, ca, cb)
        })
        .collect();
    let flops = iatf_bench::workloads::trsm_flops::<f64>(n, count);
    const ROUNDS: usize = 5;
    let mut t_min = vec![f64::INFINITY; runs.len()];
    let mut t_max = vec![0.0f64; runs.len()];
    for _ in 0..ROUNDS {
        for (i, (_, plan, ca, cb)) in runs.iter_mut().enumerate() {
            let t = iatf_bench::timer::time_secs(round, || {
                plan.execute(1.0, ca, cb).unwrap();
            });
            t_min[i] = t_min[i].min(t);
            t_max[i] = t_max[i].max(t);
        }
    }
    runs.iter()
        .enumerate()
        .map(|(i, (w, ..))| (*w, flops / t_min[i] / 1e9, 1.0 - t_min[i] / t_max[i]))
        .collect()
}

/// Sweeps GEMM (f32/f64) and TRSM (f64) across the size grid at every
/// SIMD width the host can execute and reports each wider backend
/// against the 128-bit baseline measured in the same interleaved rounds.
/// `--json` emits the `BENCH_8.json` document `scripts/verify.sh` gates:
/// wider must never lose to 128-bit beyond `max(3 × noise, 2%)`, and on
/// hosts with a 256-bit backend it must win on at least 25% of the grid.
fn widths_bench(opts: &Opts) {
    use iatf_simd::{available_widths, VecWidth};

    let widths: Vec<VecWidth> = available_widths()
        .iter()
        .copied()
        .filter(|&w| w != VecWidth::Scalar)
        .collect();
    let round = TimeOpts {
        reps: 1,
        min_rep_secs: 0.004,
        warmup: 1,
    };
    let mut points: Vec<WidthPoint> = Vec::new();
    let mut push_points = |op: &'static str,
                           dtype: &'static str,
                           n: usize,
                           count: usize,
                           measured: Vec<(VecWidth, f64, f64)>| {
        let &(_, base_gflops, base_noise) = measured
            .iter()
            .find(|(w, ..)| *w == VecWidth::W128)
            .expect("W128 backend is always available");
        for (w, gflops, noise) in measured {
            if w == VecWidth::W128 {
                continue;
            }
            points.push(WidthPoint {
                op,
                dtype,
                n,
                count,
                width: w,
                gflops,
                baseline_gflops: base_gflops,
                noise: noise.max(base_noise),
            });
        }
    };
    for &n in &opts.sizes {
        let count = scaled_batch(opts.batch_base, n);
        push_points("gemm", "f32", n, count, widths_gemm_point::<f32>(n, count, &widths, &round));
        push_points("gemm", "f64", n, count, widths_gemm_point::<f64>(n, count, &widths, &round));
        push_points("trsm", "f64", n, count, widths_trsm_point(n, count, &widths, &round));
    }

    let total = points.len();
    let wins = points.iter().filter(|p| p.wins()).count();
    let losses = points.iter().filter(|p| p.loses()).count();
    if opts.json {
        let doc = iatf_obs::Json::object()
            .set("title", "widths: wider vector backends vs the 128-bit baseline")
            .set("registry", registry_meta())
            .set(
                "host_widths",
                available_widths()
                    .iter()
                    .map(|w| iatf_obs::Json::from(w.name()))
                    .collect::<Vec<_>>(),
            )
            .set(
                "points",
                points
                    .iter()
                    .map(|p| {
                        iatf_obs::Json::object()
                            .set("op", p.op)
                            .set("dtype", p.dtype)
                            .set("n", p.n)
                            .set("count", p.count)
                            .set("width", p.width.name())
                            .set("uarch", iatf_kernels::row_for(p.width).uarch)
                            .set("gflops", p.gflops)
                            .set("baseline_gflops", p.baseline_gflops)
                            .set("noise", p.noise)
                            .set("wins", p.wins())
                            .set("loses", p.loses())
                    })
                    .collect::<Vec<_>>(),
            )
            .set("wider_points", total as u64)
            .set("wins", wins as u64)
            .set("losses", losses as u64);
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Width sweep: wider vector backends vs the 128-bit baseline");
    if points.is_empty() {
        println!("   host executes only the 128-bit backend — nothing to compare");
        println!();
        return;
    }
    println!(
        "{:>6} {:>6} {:>4} {:>7} {:>6} {:>11} {:>11} {:>8} {:>8}",
        "op", "dtype", "n", "count", "width", "GF", "128b GF", "noise", "status"
    );
    for p in &points {
        println!(
            "{:>6} {:>6} {:>4} {:>7} {:>6} {:>11.3} {:>11.3} {:>7.1}% {:>8}",
            p.op,
            p.dtype,
            p.n,
            p.count,
            p.width.name(),
            p.gflops,
            p.baseline_gflops,
            100.0 * p.noise,
            if p.loses() {
                "LOSS"
            } else if p.wins() {
                "win"
            } else {
                "tie"
            }
        );
    }
    println!("   {wins}/{total} wider points strictly faster, {losses} losses beyond tolerance");
    println!();
}

/// Prints one line per registry row the host can execute (narrowest
/// first): `<width> <uarch>`. The width matrix in `scripts/verify.sh`
/// reads the first column to decide which `IATF_FORCE_WIDTH` values to
/// run the tier-1 suite under.
fn backends() {
    for row in iatf_kernels::rows() {
        println!("{} {}", row.width.name(), row.uarch);
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder trace + PMU roofline (the `reproduce trace` target,
// BENCH_5.json)
// ---------------------------------------------------------------------------

/// Accumulates flight-recorder drains across the trace run. The ring is
/// lossy (overwrite-oldest), so a long measured loop would evict the
/// one-off spans recorded before it — plan builds, TRSM scale/unpack of
/// the early reps. Draining at workload boundaries keeps at least the
/// newest complete execution of every phase in the exported trace.
#[derive(Default)]
struct TraceSink {
    events: Vec<iatf_core::trace::SpanEvent>,
    dropped: u64,
}

impl TraceSink {
    fn drain(&mut self) {
        // dropped() is relative to the drain watermark — read it first.
        self.dropped += iatf_core::trace::dropped();
        self.events.extend(iatf_core::trace::drain());
    }
}

/// Builds and executes one square-GEMM point with the recorder live and
/// `reps` executes under the PMU counter group, returning the roofline
/// input that joins the explainer's predictions with the measurement.
/// Predicted traffic is the compulsory operand traffic — read A, read B,
/// read + write C — which is what the Batch Counter's L1-residency model
/// promises the L1 refill stream converges to.
fn trace_gemm_point<E: CompactElement>(
    n: usize,
    count: usize,
    reps: u64,
    pmu: &mut iatf_core::trace::PmuSource,
    sink: &mut TraceSink,
) -> iatf_core::trace::RooflineInput {
    use iatf_layout::GemmDims;
    let cfg = TuningConfig::default();
    let plan =
        iatf_core::GemmPlan::<E>::new(GemmDims::square(n), GemmMode::NN, false, false, count, &cfg)
            .unwrap();
    let ex = plan.explain();
    sink.drain();
    let w = gemm_workload::<E>(n, GemmMode::NN, count, 11);
    let mut c = w.c_c.clone();
    // one warm-up outside the counted region: page faults and first-touch
    // cache fills are not steady-state traffic
    plan.execute(E::one(), &w.a_c, &w.b_c, E::one(), &mut c).unwrap();
    let (elapsed_ns, counters) = pmu.measure(|| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            plan.execute(E::one(), &w.a_c, &w.b_c, E::one(), &mut c).unwrap();
        }
        t0.elapsed().as_nanos() as u64
    });
    sink.drain();
    let esize = std::mem::size_of::<E>() as u64;
    iatf_core::trace::RooflineInput {
        label: format!("gemm {} n={n}", ex.dtype),
        op: "gemm".into(),
        dtype: ex.dtype.clone(),
        n,
        count,
        reps,
        predicted_flops: ex.predicted_flops,
        predicted_bytes: esize * (n * n * count) as u64 * 4,
        elapsed_ns,
        counters,
    }
}

/// TRSM point for the roofline: LNUN so panel packing reverses rows and
/// the Scale/Unpack phases run. The solve happens in place (A is
/// diagonally dominant, so repeated solves decay toward zero without
/// overflow) — restoring B between reps would pollute the counted cache
/// traffic with the restore copy. Predicted traffic: read A, read+write B.
fn trace_trsm_point(
    n: usize,
    count: usize,
    reps: u64,
    pmu: &mut iatf_core::trace::PmuSource,
    sink: &mut TraceSink,
) -> iatf_core::trace::RooflineInput {
    use iatf_layout::TrsmDims;
    let cfg = TuningConfig::default();
    let plan =
        iatf_core::TrsmPlan::<f64>::new(TrsmDims::square(n), TrsmMode::LNUN, false, count, &cfg)
            .unwrap();
    let ex = plan.explain();
    sink.drain();
    let w = trsm_workload::<f64>(n, TrsmMode::LNUN, count, 13);
    let mut b = w.b_c.clone();
    plan.execute(1.0, &w.a_c, &mut b).unwrap();
    let (elapsed_ns, counters) = pmu.measure(|| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            plan.execute(1.0, &w.a_c, &mut b).unwrap();
        }
        t0.elapsed().as_nanos() as u64
    });
    sink.drain();
    let esize = std::mem::size_of::<f64>() as u64;
    iatf_core::trace::RooflineInput {
        label: format!("trsm {} n={n}", ex.dtype),
        op: "trsm".into(),
        dtype: ex.dtype.clone(),
        n,
        count,
        reps,
        predicted_flops: ex.predicted_flops,
        predicted_bytes: esize * (n * n * count) as u64 * 3,
        elapsed_ns,
        counters,
    }
}

/// Runs the flight recorder + PMU roofline reproduction: a workload set
/// chosen so every span kind records at least once (n=16 GEMM packs both
/// operands and super-blocks; LNUN TRSM scales and unpacks; a first-touch
/// tune sweeps), executed under a `perf_event` counter group when the
/// host grants one. Always writes the Chrome `trace_event` document to
/// `target/trace_reproduce.json`; `--json` prints the `BENCH_5.json`
/// document, text mode prints the span summary and the roofline table.
fn trace_bench(opts: &Opts) {
    use iatf_core::trace;

    trace::reset();
    iatf_core::plan::cache::clear();

    let mut pmu = trace::PmuSource::open();
    // Surface the open outcome in the obs counters too, so a `--features
    // obs,trace` telemetry document records whether measurements are real.
    match pmu.availability() {
        Ok(_) => iatf_obs::count_pmu(iatf_obs::PmuEvent::Opened),
        Err((kind, _)) => iatf_obs::count_pmu(match kind {
            trace::PmuUnavailable::Unsupported => iatf_obs::PmuEvent::Unsupported,
            trace::PmuUnavailable::Permission => iatf_obs::PmuEvent::Permission,
            trace::PmuUnavailable::NoPmu => iatf_obs::PmuEvent::NoPmu,
            trace::PmuUnavailable::Other => iatf_obs::PmuEvent::OpenFailed,
        }),
    }
    let pmu_available = pmu.availability().is_ok();
    let pmu_desc = pmu.describe();

    let reps: u64 = if opts.paper { 64 } else { 16 };
    let count = opts.batch_base.clamp(64, 512);
    let mut sink = TraceSink::default();
    let inputs = vec![
        trace_gemm_point::<f32>(16, count, reps, &mut pmu, &mut sink),
        trace_gemm_point::<f64>(16, count, reps, &mut pmu, &mut sink),
        trace_trsm_point(12, count, reps, &mut pmu, &mut sink),
    ];

    // One fresh first-touch tune so the recorder also carries a
    // tune_sweep span (the db is cleared so the sweep cannot be skipped).
    {
        use iatf_core::TunePolicy;
        use iatf_layout::GemmDims;
        iatf_tune::TuningDb::global().clear();
        let tcfg = TuningConfig {
            tune: TunePolicy::FirstTouch(10),
            ..TuningConfig::default()
        };
        iatf_core::ensure_tuned_gemm::<f32>(GemmDims::square(4), GemmMode::NN, false, false, 64, &tcfg);
    }
    sink.drain();

    let TraceSink { mut events, dropped } = sink;
    events.sort_by_key(|e| (e.start_ns, e.tid));
    let chrome = trace::chrome_trace_json("iatf reproduce trace", &events);
    std::fs::create_dir_all("target").ok();
    let trace_path = "target/trace_reproduce.json";
    if let Err(e) = std::fs::write(trace_path, &chrome) {
        eprintln!("error: cannot write {trace_path}: {e}");
        std::process::exit(1);
    }

    let kind_counts: Vec<(&'static str, usize)> = trace::SPAN_KINDS
        .iter()
        .map(|&k| (k.name(), events.iter().filter(|e| e.kind == k).count()))
        .collect();
    let report = trace::RooflineReport::new(pmu_available, pmu_desc.clone(), inputs);

    if opts.json {
        let mut by_kind = iatf_obs::Json::object();
        for &(name, n) in &kind_counts {
            by_kind = by_kind.set(name, n as u64);
        }
        let points: Vec<iatf_obs::Json> = report
            .points
            .iter()
            .map(|p| {
                let opt = |v: Option<f64>| v.map_or(iatf_obs::Json::Null, iatf_obs::Json::from);
                let mut o = iatf_obs::Json::object()
                    .set("label", p.input.label.clone())
                    .set("op", p.input.op.clone())
                    .set("dtype", p.input.dtype.clone())
                    .set("n", p.input.n)
                    .set("count", p.input.count)
                    .set("reps", p.input.reps)
                    .set("predicted_flops", p.input.predicted_flops)
                    .set("predicted_bytes", p.input.predicted_bytes)
                    .set("elapsed_ns", p.input.elapsed_ns)
                    .set("achieved_gflops", p.achieved_gflops)
                    .set("predicted_cmar", p.predicted_cmar)
                    .set("measured_bytes", opt(p.measured_bytes))
                    .set("achieved_cmar", opt(p.achieved_cmar))
                    .set("flops_per_cycle", opt(p.flops_per_cycle))
                    .set("ipc", opt(p.ipc))
                    .set("model_error_pct", opt(p.model_error_pct));
                if let Some(c) = &p.input.counters {
                    let cnt = |v: Option<u64>| {
                        v.map_or(iatf_obs::Json::Null, iatf_obs::Json::from)
                    };
                    o = o.set(
                        "counters",
                        iatf_obs::Json::object()
                            .set("cycles", c.cycles)
                            .set("instructions", cnt(c.instructions))
                            .set("l1d_access", cnt(c.l1d_access))
                            .set("l1d_refill", cnt(c.l1d_refill))
                            .set("ll_access", cnt(c.ll_access))
                            .set("ll_refill", cnt(c.ll_refill))
                            .set("scaled", c.scaled),
                    );
                }
                o
            })
            .collect();
        let doc = iatf_obs::Json::object()
            .set("title", "trace: flight-recorder spans + PMU roofline attribution")
            .set("registry", registry_meta())
            .set("trace_enabled", trace::is_enabled())
            .set("span_events", events.len() as u64)
            .set("spans_dropped", dropped)
            .set("spans_by_kind", by_kind)
            .set("chrome_trace_path", trace_path)
            .set(
                "pmu",
                iatf_obs::Json::object()
                    .set("available", pmu_available)
                    .set("source", pmu_desc.clone()),
            )
            .set(
                "roofline",
                iatf_obs::Json::object()
                    .set("line_bytes", report.line_bytes)
                    .set(
                        "worst_model_error_pct",
                        report
                            .worst_model_error_pct()
                            .map_or(iatf_obs::Json::Null, iatf_obs::Json::from),
                    )
                    .set("points", points),
            );
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Flight recorder: spans per phase (trace feature {})",
        if trace::is_enabled() { "on" } else { "off — counts are zero" });
    for &(name, n) in &kind_counts {
        println!("{name:>12}: {n}");
    }
    println!("   {} events total, {} dropped (ring overwrite)", events.len(), dropped);
    println!("   wrote {trace_path} (open in https://ui.perfetto.dev or chrome://tracing)");
    println!();
    print!("{}", report.render_text());
    println!();
}

// ---------------------------------------------------------------------------
// Noise-aware performance regression gate (the `reproduce sentinel` target)
// ---------------------------------------------------------------------------

/// One baseline-vs-current comparison. `noise` is the relative spread of
/// the current measurement's rounds; a regression must clear
/// `max(3 × noise, 5%)` of the committed number to fail the gate, so a
/// loaded CI host does not fail on jitter.
struct SentinelCheck {
    name: String,
    baseline: f64,
    current: f64,
    noise: f64,
}

impl SentinelCheck {
    fn tolerance(&self) -> f64 {
        (3.0 * self.noise).max(0.05)
    }

    fn regressed(&self) -> bool {
        self.current < self.baseline * (1.0 - self.tolerance())
    }
}

/// Loads a committed baseline. A missing file is not a silent pass: the
/// sentinel records one from the current build (by re-running the target
/// that produces it with `--json`) and tells the user to commit it — the
/// gate is then armed from the next run onward.
fn load_baseline(path: &str, target: &str) -> Option<iatf_obs::Json> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("   no committed baseline at {path}: recording one from the current build");
        record_baseline(path, target);
        return None;
    };
    match iatf_obs::parse_json(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("error: baseline {path} is not valid JSON at byte {}: {}", e.at, e.msg);
            std::process::exit(2);
        }
    }
}

/// Re-executes this binary as `reproduce <target> --json` and writes the
/// document to `path`. Self-exec reuses the exact measurement protocol
/// behind the committed artifact instead of approximating it here.
fn record_baseline(path: &str, target: &str) {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("   warning: cannot locate own binary to record {path}: {e}");
            return;
        }
    };
    let out = match std::process::Command::new(exe).args([target, "--json"]).output() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("   warning: recording {path} via `reproduce {target} --json` failed: {e}");
            return;
        }
    };
    if !out.status.success() {
        println!(
            "   warning: `reproduce {target} --json` exited with {} — {path} not recorded",
            out.status
        );
        return;
    }
    match std::fs::write(path, &out.stdout) {
        Ok(()) => eprintln!("   recorded {path} — commit it to arm this gate on the next run"),
        Err(e) => eprintln!("   warning: cannot write {path}: {e}"),
    }
}

/// Measures serial (and, when built, parallel) f64 GEMM NN GFLOPS the same
/// way `callamort` records them into `BENCH_3.json`: interleaved
/// min-of-rounds, noise = spread of the per-round times.
fn sentinel_throughput(base: &iatf_obs::Json, checks: &mut Vec<SentinelCheck>) {
    use iatf_core::GemmPlan;
    use iatf_layout::GemmDims;

    let Some(tp) = base.get("throughput") else {
        eprintln!("   warning: BENCH_3.json has no throughput section — skipping");
        return;
    };
    let sizes: Vec<usize> = tp
        .get("sizes")
        .and_then(|v| v.as_array())
        .map(|a| a.iter().filter_map(|x| x.as_u64()).map(|x| x as usize).collect())
        .unwrap_or_default();
    let count = tp.get("count").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
    let serial_base: Vec<f64> = tp
        .get("serial_gflops")
        .and_then(|v| v.as_array())
        .map(|a| a.iter().filter_map(|x| x.as_f64()).collect())
        .unwrap_or_default();
    let parallel_base: Vec<f64> = tp
        .get("parallel_gflops")
        .and_then(|v| v.as_array())
        .map(|a| a.iter().filter_map(|x| x.as_f64()).collect())
        .unwrap_or_default();
    if sizes.is_empty() || count == 0 || serial_base.len() != sizes.len() {
        eprintln!("   warning: BENCH_3.json throughput section is incomplete — skipping");
        return;
    }
    let gate_parallel = parallel_base.len() == sizes.len() && cfg!(feature = "parallel");
    if parallel_base.len() == sizes.len() && !gate_parallel {
        eprintln!("   note: baseline has parallel numbers but this build lacks --features parallel — serial gate only");
    }

    let round = TimeOpts {
        reps: 1,
        min_rep_secs: 0.004,
        warmup: 1,
    };
    const ROUNDS: usize = 5;
    let cfg = TuningConfig::default();
    for (i, &n) in sizes.iter().enumerate() {
        let w = gemm_workload::<f64>(n, GemmMode::NN, count, 7);
        let plan = GemmPlan::<f64>::new(GemmDims::square(n), GemmMode::NN, false, false, count, &cfg)
            .unwrap();
        let flops = 2.0 * (n * n * count) as f64 * n as f64;
        let mut c = w.c_c.clone();
        let (mut t_min, mut t_max) = (f64::INFINITY, 0.0f64);
        for _ in 0..ROUNDS {
            let t = iatf_bench::timer::time_secs(&round, || {
                plan.execute(1.0, &w.a_c, &w.b_c, 0.0, &mut c).unwrap();
            });
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
        checks.push(SentinelCheck {
            name: format!("gemm f64 n={n} serial GFLOPS"),
            baseline: serial_base[i],
            current: flops / t_min / 1e9,
            noise: 1.0 - t_min / t_max,
        });
        #[cfg(feature = "parallel")]
        if gate_parallel {
            let mut c = w.c_c.clone();
            let (mut t_min, mut t_max) = (f64::INFINITY, 0.0f64);
            for _ in 0..ROUNDS {
                let t = iatf_bench::timer::time_secs(&round, || {
                    plan.execute_parallel(1.0, &w.a_c, &w.b_c, 0.0, &mut c).unwrap();
                });
                t_min = t_min.min(t);
                t_max = t_max.max(t);
            }
            checks.push(SentinelCheck {
                name: format!("gemm f64 n={n} parallel GFLOPS"),
                baseline: parallel_base[i],
                current: flops / t_min / 1e9,
                noise: 1.0 - t_min / t_max,
            });
        }
    }
}

/// Re-tunes a deterministic subset of `BENCH_4.json`'s points — the
/// smallest and largest n per (op, dtype) — and gates the recorded
/// tuned-GFLOPS against the committed numbers. The subset keeps the gate
/// fast; the full grid is re-measured whenever the baseline regenerates.
fn sentinel_tune(base: &iatf_obs::Json, checks: &mut Vec<SentinelCheck>) {
    use iatf_core::autotune::{gemm_tune_key, trsm_tune_key};
    use iatf_core::TunePolicy;
    use iatf_layout::{GemmDims, TrsmDims};

    let Some(points) = base.get("points").and_then(|v| v.as_array()) else {
        eprintln!("   warning: BENCH_4.json has no points array — skipping");
        return;
    };
    // (op, dtype, n, count, tuned_gflops, noise)
    let mut parsed: Vec<(String, String, usize, usize, f64, f64)> = Vec::new();
    for p in points {
        let get_s = |k: &str| p.get(k).and_then(|v| v.as_str()).map(str::to_string);
        let get_u = |k: &str| p.get(k).and_then(|v| v.as_u64()).map(|x| x as usize);
        let get_f = |k: &str| p.get(k).and_then(|v| v.as_f64());
        if let (Some(op), Some(dt), Some(n), Some(c), Some(g), Some(noise)) = (
            get_s("op"),
            get_s("dtype"),
            get_u("n"),
            get_u("count"),
            get_f("tuned_gflops"),
            get_f("noise"),
        ) {
            parsed.push((op, dt, n, c, g, noise));
        }
    }
    // smallest and largest n per (op, dtype)
    let mut selected: Vec<&(String, String, usize, usize, f64, f64)> = Vec::new();
    for (kop, kdt) in [("gemm", "f32"), ("trsm", "f64")] {
        let mut group: Vec<_> = parsed
            .iter()
            .filter(|(op, dt, ..)| op == kop && dt == kdt)
            .collect();
        group.sort_by_key(|p| p.2);
        if let Some(first) = group.first() {
            selected.push(first);
        }
        if group.len() > 1 {
            selected.push(group[group.len() - 1]);
        }
    }
    if selected.len() < parsed.len() {
        eprintln!(
            "   note: re-tuning {}/{} baseline points (min/max n per routine); the full grid re-measures when the baseline regenerates",
            selected.len(),
            parsed.len()
        );
    }

    let db = iatf_tune::TuningDb::global();
    db.clear();
    iatf_core::plan::cache::clear();
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(60),
        ..TuningConfig::default()
    };
    for &&(ref op, ref dt, n, count, baseline, base_noise) in &selected {
        let entry = match (op.as_str(), dt.as_str()) {
            ("gemm", "f32") => {
                let dims = GemmDims::square(n);
                iatf_core::ensure_tuned_gemm::<f32>(dims, GemmMode::NN, false, false, count, &cfg);
                db.lookup(&gemm_tune_key::<f32>(dims, GemmMode::NN, false, false, count, cfg.width))
            }
            ("trsm", "f64") => {
                let dims = TrsmDims::square(n);
                iatf_core::ensure_tuned_trsm::<f64>(dims, TrsmMode::LNLN, false, count, &cfg);
                db.lookup(&trsm_tune_key::<f64>(dims, TrsmMode::LNLN, false, count, cfg.width))
            }
            _ => {
                eprintln!("   warning: unknown baseline point {op}/{dt} — skipping");
                continue;
            }
        };
        let Some(e) = entry else {
            eprintln!("   warning: tuner recorded nothing for {op}/{dt} n={n} — skipping");
            continue;
        };
        checks.push(SentinelCheck {
            name: format!("{op} {dt} n={n} tuned GFLOPS"),
            baseline,
            current: e.tuned_gflops,
            noise: e.noise.max(base_noise),
        });
    }
}

/// Re-measures the roofline workloads behind `BENCH_5.json`'s points
/// (plain wall-clock, no PMU — the gate tracks throughput, not counter
/// availability) and gates achieved GFLOPS per point.
fn sentinel_trace(base: &iatf_obs::Json, checks: &mut Vec<SentinelCheck>) {
    use iatf_core::{GemmPlan, TrsmPlan};
    use iatf_layout::{GemmDims, TrsmDims};

    let Some(points) = base
        .get("roofline")
        .and_then(|r| r.get("points"))
        .and_then(|v| v.as_array())
    else {
        eprintln!("   warning: BENCH_5.json has no roofline points — skipping");
        return;
    };
    let round = TimeOpts {
        reps: 1,
        min_rep_secs: 0.004,
        warmup: 1,
    };
    const ROUNDS: usize = 5;
    let cfg = TuningConfig::default();
    for p in points {
        let op = p.get("op").and_then(|v| v.as_str()).unwrap_or("");
        let dtype = p.get("dtype").and_then(|v| v.as_str()).unwrap_or("");
        let n = p.get("n").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        let count = p.get("count").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        let flops = p.get("predicted_flops").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let baseline = p.get("achieved_gflops").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if n == 0 || count == 0 || flops <= 0.0 || baseline <= 0.0 {
            eprintln!("   warning: BENCH_5.json point {op}/{dtype} n={n} is incomplete — skipping");
            continue;
        }
        // Same single-plan execute loop as `trace_gemm_point` /
        // `trace_trsm_point`, minus the recorder and counter group.
        let timed: Option<(f64, f64)> = match (op, dtype) {
            ("gemm", "f32") | ("gemm", "f64") => {
                let dims = GemmDims::square(n);
                let (mut t_min, mut t_max) = (f64::INFINITY, 0.0f64);
                if dtype == "f32" {
                    let w = gemm_workload::<f32>(n, GemmMode::NN, count, 11);
                    let plan =
                        GemmPlan::<f32>::new(dims, GemmMode::NN, false, false, count, &cfg).unwrap();
                    let mut c = w.c_c.clone();
                    for _ in 0..ROUNDS {
                        let t = iatf_bench::timer::time_secs(&round, || {
                            plan.execute(1.0, &w.a_c, &w.b_c, 1.0, &mut c).unwrap();
                        });
                        t_min = t_min.min(t);
                        t_max = t_max.max(t);
                    }
                } else {
                    let w = gemm_workload::<f64>(n, GemmMode::NN, count, 11);
                    let plan =
                        GemmPlan::<f64>::new(dims, GemmMode::NN, false, false, count, &cfg).unwrap();
                    let mut c = w.c_c.clone();
                    for _ in 0..ROUNDS {
                        let t = iatf_bench::timer::time_secs(&round, || {
                            plan.execute(1.0, &w.a_c, &w.b_c, 1.0, &mut c).unwrap();
                        });
                        t_min = t_min.min(t);
                        t_max = t_max.max(t);
                    }
                }
                Some((t_min, t_max))
            }
            ("trsm", "f64") => {
                let plan = TrsmPlan::<f64>::new(TrsmDims::square(n), TrsmMode::LNUN, false, count, &cfg)
                    .unwrap();
                let w = trsm_workload::<f64>(n, TrsmMode::LNUN, count, 13);
                let mut b = w.b_c.clone();
                let (mut t_min, mut t_max) = (f64::INFINITY, 0.0f64);
                for _ in 0..ROUNDS {
                    let t = iatf_bench::timer::time_secs(&round, || {
                        plan.execute(1.0, &w.a_c, &mut b).unwrap();
                    });
                    t_min = t_min.min(t);
                    t_max = t_max.max(t);
                }
                Some((t_min, t_max))
            }
            _ => {
                eprintln!("   warning: unknown BENCH_5.json point {op}/{dtype} — skipping");
                None
            }
        };
        if let Some((t_min, t_max)) = timed {
            checks.push(SentinelCheck {
                name: format!("{op} {dtype} n={n} roofline GFLOPS"),
                baseline,
                current: flops / t_min / 1e9,
                noise: 1.0 - t_min / t_max,
            });
        }
    }
}

/// Noise-aware regression gate: re-measures the workloads behind the
/// committed `BENCH_3.json` (executor throughput), `BENCH_4.json`
/// (autotuned points), and `BENCH_5.json` (roofline throughput) and exits
/// 1 if anything regresses beyond `max(3 × noise, 5%)`. A missing
/// baseline is recorded from the current build and announced, never
/// silently passed. A baseline whose recorded registry row (µarch,
/// width) differs from the current dispatch is announced and skipped:
/// numbers measured at one vector width never gate another.
fn sentinel(opts: &Opts) {
    let mut checks: Vec<SentinelCheck> = Vec::new();
    if let Some(b3) = load_baseline("BENCH_3.json", "callamort") {
        if baseline_row_matches("BENCH_3.json", &b3) {
            sentinel_throughput(&b3, &mut checks);
        }
    }
    if let Some(b4) = load_baseline("BENCH_4.json", "tune") {
        if baseline_row_matches("BENCH_4.json", &b4) {
            sentinel_tune(&b4, &mut checks);
        }
    }
    if let Some(b5) = load_baseline("BENCH_5.json", "trace") {
        if baseline_row_matches("BENCH_5.json", &b5) {
            sentinel_trace(&b5, &mut checks);
        }
    }

    let regressions = checks.iter().filter(|c| c.regressed()).count();
    if opts.json {
        let doc = iatf_obs::Json::object()
            .set("title", "sentinel: noise-aware perf regression gate vs committed baselines")
            .set(
                "checks",
                checks
                    .iter()
                    .map(|c| {
                        iatf_obs::Json::object()
                            .set("name", c.name.clone())
                            .set("baseline", c.baseline)
                            .set("current", c.current)
                            .set("noise", c.noise)
                            .set("tolerance", c.tolerance())
                            .set("regressed", c.regressed())
                    })
                    .collect::<Vec<_>>(),
            )
            .set("total_checks", checks.len() as u64)
            .set("regressions", regressions as u64);
        println!("{}", doc.to_pretty());
    } else {
        println!("## Sentinel: current vs committed baselines (tolerance = max(3*noise, 5%))");
        println!(
            "{:>34} {:>10} {:>10} {:>7} {:>7} {:>8}",
            "check", "baseline", "current", "noise", "tol", "status"
        );
        for c in &checks {
            println!(
                "{:>34} {:>10.3} {:>10.3} {:>6.1}% {:>6.1}% {:>8}",
                c.name,
                c.baseline,
                c.current,
                100.0 * c.noise,
                100.0 * c.tolerance(),
                if c.regressed() { "REGRESS" } else { "ok" }
            );
        }
        println!("   {} checks, {regressions} regressions", checks.len());
        println!();
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Always-on dispatch telemetry + online drift detection (the `reproduce
// watch` target, BENCH_6.json)
// ---------------------------------------------------------------------------

/// Drives the full observe → detect → retune loop through the one-shot
/// API: mixed-shape warm traffic establishes per-class envelopes, a
/// steady phase proves the detector is quiet under real dispatch noise,
/// a telemetry-side latency-skew injection on one shape class makes it
/// fire, and the triggered retune (db eviction → generation bump → plan
/// cache invalidation → re-sweep) restores the class to within noise of
/// its fresh envelope. `--json` emits the `BENCH_6.json` document; the
/// Prometheus exposition always lands in `target/watch_prometheus.txt`.
fn watch_bench(opts: &Opts) {
    use iatf_core::autotune::gemm_tune_key;
    use iatf_core::{compact_gemm, watch, PlanCachePolicy, TunePolicy};
    use iatf_layout::{CompactBatch, GemmDims, StdBatch};
    use iatf_tune::TuningDb;

    if !watch::is_enabled() {
        let doc = iatf_obs::Json::object()
            .set("title", "watch: dispatch telemetry, drift detection, retune remediation")
            .set("watch_enabled", false);
        if opts.json {
            println!("{}", doc.to_pretty());
        } else {
            println!("## Watch: dispatch telemetry + drift detection");
            println!("   built without --features watch — every probe is a compile-time no-op");
            println!();
        }
        return;
    }

    // Hermetic run: fresh tuning db, plan cache, and watch state.
    let db = TuningDb::global();
    db.clear();
    iatf_core::plan::cache::clear();
    watch::reset();

    let budget_ms: u64 = if opts.paper { 60 } else { 20 };
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(budget_ms),
        plan_cache: PlanCachePolicy::Shared,
        ..TuningConfig::default()
    };
    let count = opts.batch_base.clamp(64, 256);
    let sizes = [4usize, 8, 12];

    struct Shape {
        a: CompactBatch<f32>,
        b: CompactBatch<f32>,
        c: CompactBatch<f32>,
        key: iatf_tune::TuneKey,
    }
    let mut shapes: Vec<Shape> = sizes
        .iter()
        .map(|&n| Shape {
            a: CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 11)),
            b: CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 22)),
            c: CompactBatch::<f32>::zeroed(n, n, count),
            key: gemm_tune_key::<f32>(GemmDims::square(n), GemmMode::NN, false, false, count, cfg.width),
        })
        .collect();

    // Phase 1 — tune + steady mixed traffic. The first dispatch per shape
    // first-touch-tunes (seeding the envelope from the recorded winner);
    // the rest are warm and must leave the detector quiet.
    const STEADY: usize = 96;
    for _ in 0..STEADY {
        for s in &mut shapes {
            compact_gemm(GemmMode::NN, 1.0, &s.a, &s.b, 0.0, &mut s.c, &cfg).unwrap();
        }
    }
    let events_without_injection = watch::events_total();

    // Phase 2 — inject a telemetry-side slowdown on one class only and
    // count dispatches until the detector fires.
    const SKEW: f64 = 2.5;
    let victim = 1; // n=8
    let victim_key = shapes[victim].key;
    watch::inject_latency_skew(Some((victim_key, SKEW)));
    let before = watch::events_total();
    let mut detection_dispatches: Option<usize> = None;
    for i in 0..400 {
        let s = &mut shapes[victim];
        compact_gemm(GemmMode::NN, 1.0, &s.a, &s.b, 0.0, &mut s.c, &cfg).unwrap();
        if watch::events_total() > before {
            detection_dispatches = Some(i + 1);
            break;
        }
    }
    watch::inject_latency_skew(None);
    let event = watch::drain_events().into_iter().find(|e| e.key == victim_key);

    // Phase 3 — remediation: the flagged class retunes on its next
    // dispatch (db eviction bumps the generation, invalidating every
    // cached plan fingerprinted against it).
    let gen_before = db.generation();
    let retune_flagged = watch::retune_pending(&victim_key);
    {
        let s = &mut shapes[victim];
        compact_gemm(GemmMode::NN, 1.0, &s.a, &s.b, 0.0, &mut s.c, &cfg).unwrap();
    }
    let gen_after = db.generation();
    let rerecorded = db.lookup(&victim_key).is_some();

    // Phase 4 — recovery: healthy traffic against the fresh envelope.
    let events_at_recovery_start = watch::events_total();
    const RECOVERY: usize = 64;
    for _ in 0..RECOVERY {
        for s in &mut shapes {
            compact_gemm(GemmMode::NN, 1.0, &s.a, &s.b, 0.0, &mut s.c, &cfg).unwrap();
        }
    }
    let events_after_recovery = watch::events_total() - events_at_recovery_start;

    let snap = watch::snapshot();
    let metrics = iatf_obs::snapshot();
    let class = snap.classes.iter().find(|c| c.key == victim_key);
    let recovered_within_envelope = class
        .is_some_and(|c| c.ewma_ratio <= 1.0 + c.slack && !c.drifting);

    std::fs::create_dir_all("target").ok();
    let prom_path = "target/watch_prometheus.txt";
    if let Err(e) = std::fs::write(prom_path, watch::render_prometheus(&snap, &metrics)) {
        eprintln!("error: cannot write {prom_path}: {e}");
        std::process::exit(1);
    }

    // Committed baseline, if any: like the sentinel, a document recorded
    // on a different registry row is announced and skipped, not compared.
    let baseline = std::fs::read_to_string("BENCH_6.json")
        .ok()
        .and_then(|t| iatf_obs::parse_json(&t).ok())
        .filter(|b| baseline_row_matches("BENCH_6.json", b));

    if opts.json {
        let ev_json = event
            .as_ref()
            .map_or(iatf_obs::Json::Null, |e| e.to_json());
        let doc = iatf_obs::Json::object()
            .set("title", "watch: dispatch telemetry, drift detection, retune remediation")
            .set("watch_enabled", true)
            .set("registry", registry_meta())
            .set("db_generation", gen_after)
            .set("count", count)
            .set(
                "sizes",
                sizes.iter().map(|&n| iatf_obs::Json::from(n)).collect::<Vec<_>>(),
            )
            .set("steady_dispatches_per_class", STEADY as u64)
            .set("events_without_injection", events_without_injection)
            .set(
                "injection",
                iatf_obs::Json::object()
                    .set("class", victim_key.encode().as_str())
                    .set("factor", SKEW)
                    .set(
                        "detection_dispatches",
                        detection_dispatches
                            .map_or(iatf_obs::Json::Null, |d| iatf_obs::Json::from(d as u64)),
                    )
                    .set("event", ev_json),
            )
            .set(
                "retune",
                iatf_obs::Json::object()
                    .set("flagged", retune_flagged)
                    .set("generation_before", gen_before)
                    .set("generation_after", gen_after)
                    .set("winner_rerecorded", rerecorded)
                    .set("retunes_done", snap.retunes_done),
            )
            .set(
                "recovery",
                iatf_obs::Json::object()
                    .set("dispatches_per_class", RECOVERY as u64)
                    .set("events_after_recovery", events_after_recovery)
                    .set(
                        "ewma_ratio",
                        class.map_or(iatf_obs::Json::Null, |c| iatf_obs::Json::from(c.ewma_ratio)),
                    )
                    .set("within_envelope", recovered_within_envelope),
            )
            .set("prometheus_path", prom_path)
            .set("snapshot", watch::unified_json(&snap, &metrics));
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Watch: dispatch telemetry + drift detection (f32 GEMM NN, batch {count})");
    println!(
        "{:>28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "class", "count", "p50 ns", "p99 ns", "GFLOPS", "expect GF", "drift"
    );
    for c in &snap.classes {
        println!(
            "{:>28} {:>8} {:>10} {:>10} {:>10.3} {:>10.3} {:>8}",
            c.key.encode(),
            c.count,
            c.quantile_ns(0.50),
            c.quantile_ns(0.99),
            c.gflops(),
            c.expected_gflops,
            if c.drifting { "DRIFT" } else { "ok" }
        );
    }
    println!("   steady phase: {events_without_injection} drift events in {STEADY} warm dispatches/class (want 0)");
    match (detection_dispatches, &event) {
        (Some(d), Some(e)) => println!(
            "   injected {SKEW}x on {}: detected after {d} dispatches (ratio {:.2}, confidence {:.2}, cause {})",
            victim_key.encode(),
            e.ratio,
            e.confidence,
            e.cause.name()
        ),
        _ => println!("   injected {SKEW}x on {}: NOT detected within 400 dispatches", victim_key.encode()),
    }
    println!(
        "   retune: flagged {retune_flagged}, db generation {gen_before} -> {gen_after}, winner re-recorded {rerecorded}, {} done",
        snap.retunes_done
    );
    println!(
        "   recovery: {events_after_recovery} events in {RECOVERY} post-retune dispatches/class, within envelope: {recovered_within_envelope}"
    );
    if let Some(b) = &baseline {
        let b_det = b
            .get("injection")
            .and_then(|i| i.get("detection_dispatches"))
            .and_then(|v| v.as_u64());
        match (b_det, detection_dispatches) {
            (Some(bd), Some(cd)) => println!(
                "   baseline BENCH_6.json (same registry row): detected after {bd} dispatches, current {cd}"
            ),
            _ => println!("   baseline BENCH_6.json loaded (same registry row)"),
        }
    }
    println!("   wrote {prom_path}");
    println!();
}

// ---------------------------------------------------------------------------
// Unified provenance journal (the `reproduce journal` target, BENCH_9.json)
// ---------------------------------------------------------------------------

/// `reproduce journal`: queries and renders the provenance ledger.
/// Default mode replays the configured journal directory and prints the
/// matching events (`--kind`, `--op`, `--key`, `--since` filter;
/// `--follow <id>` walks one causal chain; `--report` joins the events
/// with the live watch/metrics snapshots into one JSON document). The
/// two CI modes stand alone: `--selftest` drives a sweep → drift →
/// retune loop and asserts the full chain is reconstructable, and
/// `--overhead` times the warm dispatch path so `verify.sh` can gate
/// journal-on against journal-off.
fn journal_cmd(opts: &Opts, jopts: &JournalOpts) {
    use iatf_core::journal;

    if jopts.selftest {
        journal_selftest(opts);
        return;
    }
    if jopts.overhead {
        journal_overhead(opts);
        return;
    }

    journal::sync();
    let Some(report) = journal::replay() else {
        eprintln!(
            "error: journal persistence is disabled (IATF_JOURNAL_DIR is set but empty) — nothing to replay"
        );
        std::process::exit(2);
    };
    let dir = journal::journal_dir().map_or_else(|| "?".to_string(), |p| p.display().to_string());

    let mut events = report.events.clone();
    if let Some(id) = jopts.follow {
        events = journal::follow(&events, id);
        if events.is_empty() {
            eprintln!("error: event {id} not found in the journal at {dir}");
            std::process::exit(1);
        }
    }
    if let Some(name) = &jopts.kind {
        let Some(kind) = journal::EventKind::from_name(name) else {
            let known: Vec<&str> = journal::EventKind::ALL.iter().map(|k| k.name()).collect();
            eprintln!("error: unknown --kind {name}; known kinds: {}", known.join(", "));
            std::process::exit(2);
        };
        events.retain(|e| e.kind == kind);
    }
    if let Some(op) = &jopts.op {
        // TuneKey encodings lead with the numeric op discriminant.
        let code = match op.as_str() {
            "gemm" => "0",
            "trsm" => "1",
            "trmm" => "2",
            other => {
                eprintln!("error: unknown --op {other}; known ops: gemm, trsm, trmm");
                std::process::exit(2);
            }
        };
        events.retain(|e| e.key.split(':').next() == Some(code));
    }
    if let Some(frag) = &jopts.key {
        events.retain(|e| e.key.contains(frag.as_str()));
    }
    if let Some(secs) = jopts.since {
        let floor = secs.saturating_mul(1_000_000);
        events.retain(|e| e.ts_micros >= floor);
    }

    if jopts.report {
        let snap = iatf_core::watch::snapshot();
        let metrics = iatf_obs::snapshot();
        let doc = iatf_obs::Json::object()
            .set("title", "journal: provenance report")
            .set("journal_enabled", journal::is_enabled())
            .set("dir", dir.as_str())
            .set("segments", report.segments as u64)
            .set("truncated_segments", report.truncated_segments as u64)
            .set("dropped_records", report.dropped_records)
            .set("events", events.iter().map(|e| e.to_json()).collect::<Vec<_>>())
            .set("snapshot", iatf_core::watch::unified_json(&snap, &metrics));
        println!("{}", doc.to_pretty());
        return;
    }
    if opts.json {
        let doc = iatf_obs::Json::object()
            .set("title", "journal: event query")
            .set("dir", dir.as_str())
            .set("events", events.iter().map(|e| e.to_json()).collect::<Vec<_>>());
        println!("{}", doc.to_pretty());
        return;
    }

    println!("## Provenance journal: {dir}");
    println!(
        "   {} segment(s), {} truncated, {} record(s) dropped, {} event(s) after filters",
        report.segments,
        report.truncated_segments,
        report.dropped_records,
        events.len()
    );
    if !events.is_empty() {
        println!(
            "{:>16} {:>16} {:>22} {:>28}  data",
            "id", "cause", "kind", "key"
        );
    }
    for e in &events {
        println!(
            "{:>16} {:>16} {:>22} {:>28}  {}",
            e.id,
            e.cause,
            e.kind.name(),
            e.key,
            e.data.to_compact()
        );
    }
    println!();
}

/// Points scratch-state env vars at `target/tune-tests/` paths (clearing
/// stale state) unless the caller already set them — the selftest must
/// not touch a developer's real tuning db, envelopes, or journal.
fn journal_scratch_env() {
    let scratch = [
        ("IATF_TUNE_DB", "target/tune-tests/journal-selftest-db.json"),
        ("IATF_WATCH_ENVELOPES", "target/tune-tests/journal-selftest-envelopes.json"),
        ("IATF_JOURNAL_DIR", "target/tune-tests/journal-selftest-ledger"),
    ];
    std::fs::create_dir_all("target/tune-tests").ok();
    for (var, path) in scratch {
        if std::env::var_os(var).is_none() {
            let _ = std::fs::remove_file(path);
            let _ = std::fs::remove_dir_all(path);
            std::env::set_var(var, path);
        }
    }
}

/// `reproduce journal --selftest`: drives tune → steady traffic → drift
/// injection → retune through the one-shot API (the same loop as
/// `reproduce watch`, one shape class), then asserts every link of the
/// causal chain — sweep start → winner → envelope seed → drift → retune,
/// plus the drift-caused eviction, re-sweep, and re-arm — is present and
/// reconstructable via `follow`, both from the in-memory ledger and from
/// a disk replay. Exits 1 listing every broken link.
fn journal_selftest(opts: &Opts) {
    use iatf_core::autotune::gemm_tune_key;
    use iatf_core::{compact_gemm, journal, watch, PlanCachePolicy, TunePolicy};
    use iatf_layout::{CompactBatch, GemmDims, StdBatch};
    use iatf_tune::TuningDb;

    if !journal::is_enabled() || !watch::is_enabled() {
        let doc = iatf_obs::Json::object()
            .set("title", "journal: causal-chain selftest")
            .set("journal_enabled", journal::is_enabled())
            .set("watch_enabled", watch::is_enabled())
            .set("ok", true);
        if opts.json {
            println!("{}", doc.to_pretty());
        } else {
            println!("## Journal selftest");
            println!("   requires --features watch,journal — every probe is a compile-time no-op");
            println!();
        }
        return;
    }

    journal_scratch_env();

    // Hermetic run: fresh tuning db, plan cache, watch state, and ledger.
    let db = TuningDb::global();
    db.clear();
    iatf_core::plan::cache::clear();
    watch::reset();
    journal::reset_memory();

    let budget_ms: u64 = if opts.paper { 60 } else { 20 };
    let cfg = TuningConfig {
        tune: TunePolicy::FirstTouch(budget_ms),
        plan_cache: PlanCachePolicy::Shared,
        ..TuningConfig::default()
    };
    let n = 8usize;
    let count = opts.batch_base.clamp(64, 256);
    let key = gemm_tune_key::<f32>(GemmDims::square(n), GemmMode::NN, false, false, count, cfg.width);
    let kstr = key.encode();

    let a = CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 11));
    let b = CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 22));
    let mut c = CompactBatch::<f32>::zeroed(n, n, count);

    // Tune + steady traffic, then inject a latency skew until the
    // detector fires, then one more dispatch to run the retune.
    const STEADY: usize = 96;
    for _ in 0..STEADY {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    }
    const SKEW: f64 = 2.5;
    watch::inject_latency_skew(Some((key, SKEW)));
    let before = watch::events_total();
    let mut detected = false;
    for _ in 0..400 {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        if watch::events_total() > before {
            detected = true;
            break;
        }
    }
    watch::inject_latency_skew(None);
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();

    journal::sync();
    let events = journal::recent();

    // Reconstruct the expected chain link by link. Every lookup failure
    // or mislinked cause lands in `fails` so one run reports them all.
    let mut fails: Vec<String> = Vec::new();
    if !detected {
        fails.push("drift was not detected within 400 injected dispatches".to_string());
    }
    let mut find = |desc: &str, pred: &dyn Fn(&journal::Event) -> bool| -> Option<journal::Event> {
        match events.iter().find(|e| pred(e)) {
            Some(e) => Some(e.clone()),
            None => {
                fails.push(format!("missing event: {desc}"));
                None
            }
        }
    };

    use journal::EventKind as K;
    let start = find("first sweep_start for the class", &|e| {
        e.kind == K::SweepStart && e.key == kstr
    });
    let start_id = start.as_ref().map_or(0, |e| e.id);
    let winner = find("sweep_winner caused by the first sweep_start", &|e| {
        e.kind == K::SweepWinner && e.cause == start_id && start_id != 0
    });
    let winner_id = winner.as_ref().map_or(0, |e| e.id);
    let seed = find("envelope_seed caused by the first winner", &|e| {
        e.kind == K::EnvelopeSeed && e.cause == winner_id && winner_id != 0
    });
    let seed_id = seed.as_ref().map_or(0, |e| e.id);
    let drift = find("drift caused by the envelope seed", &|e| {
        e.kind == K::Drift && e.cause == seed_id && seed_id != 0
    });
    let drift_id = drift.as_ref().map_or(0, |e| e.id);
    for (desc, kind) in [
        ("retune caused by the drift event", K::Retune),
        ("db_evict caused by the drift event", K::DbEvict),
        ("re-sweep (sweep_start) caused by the drift event", K::SweepStart),
        ("envelope_recalibrate caused by the drift event", K::EnvelopeRecalibrate),
    ] {
        find(desc, &|e| e.kind == kind && e.cause == drift_id && drift_id != 0);
    }
    let resweep = events
        .iter()
        .find(|e| e.kind == K::SweepStart && e.cause == drift_id && drift_id != 0);
    if let Some(rs) = resweep {
        let rs_id = rs.id;
        find("second sweep_winner caused by the re-sweep", &|e| {
            e.kind == K::SweepWinner && e.cause == rs_id
        });
    }
    let record = find("db_record caused by a sweep_winner", &|e| {
        e.kind == K::DbRecord && events.iter().any(|w| w.kind == K::SweepWinner && w.id == e.cause)
    });

    // The chain must be walkable from its root in memory and from disk.
    let want: Vec<u64> = [drift_id, winner_id, seed_id]
        .into_iter()
        .filter(|&id| id != 0)
        .collect();
    if start_id != 0 {
        let chain = journal::follow(&events, start_id);
        for id in &want {
            if !chain.iter().any(|e| e.id == *id) {
                fails.push(format!("follow({start_id}) does not reach event {id} in memory"));
            }
        }
        match journal::replay() {
            Some(disk) => {
                let chain = journal::follow(&disk.events, start_id);
                for id in &want {
                    if !chain.iter().any(|e| e.id == *id) {
                        fails.push(format!("follow({start_id}) does not reach event {id} on disk"));
                    }
                }
            }
            None => fails.push("disk replay unavailable with persistence active".to_string()),
        }
    }

    let ok = fails.is_empty();
    if opts.json {
        let doc = iatf_obs::Json::object()
            .set("title", "journal: causal-chain selftest")
            .set("journal_enabled", true)
            .set("watch_enabled", true)
            .set("key", kstr.as_str())
            .set("events_published", journal::events_published())
            .set("sweep_start", start_id)
            .set("sweep_winner", winner_id)
            .set("envelope_seed", seed_id)
            .set("drift", drift_id)
            .set("db_record", record.as_ref().map_or(0, |e| e.id))
            .set(
                "failures",
                fails.iter().map(|f| iatf_obs::Json::from(f.as_str())).collect::<Vec<_>>(),
            )
            .set("ok", ok);
        println!("{}", doc.to_pretty());
    } else {
        println!("## Journal selftest: sweep -> winner -> seed -> drift -> retune ({kstr})");
        println!(
            "   chain ids: start {start_id}, winner {winner_id}, seed {seed_id}, drift {drift_id}"
        );
        if ok {
            println!("   causal chain reconstructed end-to-end (memory and disk replay)");
        } else {
            for f in &fails {
                println!("   FAIL: {f}");
            }
        }
        println!();
    }
    if !ok {
        std::process::exit(1);
    }
}

/// `reproduce journal --overhead`: min-of-rounds ns/call of a warm cached
/// dispatch (the path every journal probe sits next to). `verify.sh` runs
/// this twice — built with and without the journal feature — and gates
/// the delta, proving the "zero-cost when disabled, cheap when enabled"
/// claim with numbers instead of by inspection.
fn journal_overhead(opts: &Opts) {
    use iatf_core::{compact_gemm, PlanCachePolicy, TunePolicy};
    use iatf_layout::{CompactBatch, StdBatch};

    let cfg = TuningConfig {
        tune: TunePolicy::Heuristic,
        plan_cache: PlanCachePolicy::Shared,
        ..TuningConfig::default()
    };
    let n = 8usize;
    let count = opts.batch_base.clamp(64, 256);
    let a = CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 31));
    let b = CompactBatch::from_std(&StdBatch::<f32>::random(n, n, count, 32));
    let mut c = CompactBatch::<f32>::zeroed(n, n, count);

    // Warm the shared plan cache so the timed loop below sees only the
    // steady-state dispatch path.
    for _ in 0..16 {
        compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    }

    let t0 = std::time::Instant::now();
    compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
    let single = t0.elapsed().as_secs_f64().max(1e-9);
    let per_round = if opts.paper { 0.1 } else { 0.02 };
    let iters = ((per_round / single) as usize).clamp(16, 1_000_000);

    const ROUNDS: usize = 5;
    let mut best = f64::INFINITY;
    let mut worst = 0.0f64;
    for _ in 0..ROUNDS {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            compact_gemm(GemmMode::NN, 1.0, &a, &b, 0.0, &mut c, &cfg).unwrap();
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per);
        worst = worst.max(per);
    }
    let noise = if worst > 0.0 { (worst - best) / worst } else { 0.0 };

    if opts.json {
        let doc = iatf_obs::Json::object()
            .set("title", "journal: warm-dispatch overhead probe")
            .set("journal_enabled", iatf_core::journal::is_enabled())
            .set("op", "gemm")
            .set("dtype", "f32")
            .set("n", n)
            .set("count", count)
            .set("iters", iters as u64)
            .set("rounds", ROUNDS as u64)
            .set("ns_per_call", best * 1e9)
            .set("noise", noise);
        println!("{}", doc.to_pretty());
    } else {
        println!("## Journal overhead: warm f32 GEMM NN dispatch, n={n}, batch {count}");
        println!(
            "   journal {}: {:.1} ns/call (min of {ROUNDS} rounds x {iters} iters, noise {:.1}%)",
            if iatf_core::journal::is_enabled() { "on" } else { "off" },
            best * 1e9,
            noise * 100.0
        );
        println!();
    }
}

// ---------------------------------------------------------------------------
// Static kernel certification (the `reproduce verify` CI gate)
// ---------------------------------------------------------------------------

/// Certifies every enumerated kernel with `iatf-verify`. Text mode prints
/// the per-family summary; `--json` prints the `verify_report.json`
/// document. Exits non-zero unless every kernel certifies, so CI can gate
/// on it directly.
fn verify_kernels(opts: &Opts) {
    let report = iatf_verify::certify_all();
    if opts.json {
        println!("{}", report.to_json().to_pretty());
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_certified() {
        std::process::exit(1);
    }
}

/// `reproduce audit`: static source certification of the workspace
/// (unsafe allowlist, atomic-ordering justifications, cross-crate
/// hygiene). `--self-test` first proves the gate can fail by seeding
/// violations of every rule class; `--json` emits the machine report.
fn audit_workspace_sources(opts: &Opts, self_test: bool) {
    // The binary lives at crates/bench; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if self_test {
        match iatf_audit::self_test() {
            Ok(lines) => {
                println!("## Audit self-test: every rule class fires on a seeded violation");
                for line in &lines {
                    println!("    {line}");
                }
            }
            Err(msg) => {
                eprintln!("error: audit self-test failed: {msg}");
                std::process::exit(2);
            }
        }
    }
    let findings = match iatf_audit::audit_workspace(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("error: audit could not read the workspace: {e}");
            std::process::exit(2);
        }
    };
    if opts.json {
        println!("{}", iatf_audit::report_json(&findings).to_pretty());
    } else if findings.is_empty() {
        println!("## Source audit: workspace clean ({} rules)", iatf_audit::RuleId::ALL.len());
    } else {
        println!("## Source audit: {} finding(s)", findings.len());
        for d in &findings {
            println!("{d}");
        }
    }
    if !findings.is_empty() {
        std::process::exit(2);
    }
}

fn ablation_schedule() {
    use iatf_codegen::{
        generate_gemm_kernel, schedule_stats, DataType, GemmKernelSpec, PipelineModel,
    };
    println!("## Ablation: instruction scheduling (modeled cycles, dual-issue in-order)");
    println!(
        "{:>6} {:>6} {:>6} {:>7} {:>10} {:>10} {:>6} {:>9}",
        "mc", "nc", "K", "insts", "before", "after", "bound", "gain"
    );
    let model = PipelineModel::default();
    for (mc, nc) in [(4usize, 4usize), (4, 3), (3, 3), (2, 2)] {
        for k in [4usize, 8, 16, 33] {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc,
                nc,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: mc,
            });
            let s = schedule_stats(&p, &model);
            println!(
                "{mc:>6} {nc:>6} {k:>6} {:>7} {:>10} {:>10} {:>6} {:>8.1}%",
                s.insts,
                s.cycles_before,
                s.cycles_after,
                s.port_bound,
                100.0 * (s.cycles_before - s.cycles_after) as f64 / s.cycles_before as f64
            );
        }
    }
    println!();
}
