//! Benchmark harness reproducing the paper's evaluation (§6).
//!
//! The `reproduce` binary regenerates every table and figure; the Criterion
//! benches under `benches/` cover the same measurements in statistical
//! form. The shared machinery lives here:
//!
//! * [`timer`] — wall-clock measurement with the paper's protocol (repeat,
//!   geometric mean);
//! * [`peak`] — the FMA-throughput calibrator that measures the host's
//!   single-core peak for the percent-of-peak figures (11–12);
//! * [`workloads`] — batch generators for every figure's input;
//! * [`runners`] — one entry per measured implementation (IATF and the
//!   three baseline stand-ins), returning GFLOPS;
//! * [`report`] — fixed-width table and CSV rendering.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop, clippy::too_many_arguments, clippy::manual_is_multiple_of)]

pub mod peak;
pub mod report;
pub mod runners;
pub mod timer;
pub mod workloads;

/// Default size sweep of the paper: square matrices 1..=33 (§6: "we
/// evaluate the performance of square matrices of sizes 1 – 33").
pub fn paper_sizes() -> Vec<usize> {
    (1..=33).collect()
}

/// Reduced sweep for quick runs.
pub fn quick_sizes() -> Vec<usize> {
    vec![1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32, 33]
}

/// The paper's batch size (§6: "The batch size is 16384").
pub const PAPER_BATCH: usize = 16384;
