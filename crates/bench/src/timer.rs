//! Wall-clock measurement following the paper's protocol: each kernel runs
//! repeatedly and the *geometric mean* of the per-run times is reported
//! (§6: "We run each kernel 100 times and take the geometric mean").

use std::time::Instant;

/// Measurement options.
#[derive(Copy, Clone, Debug)]
pub struct TimeOpts {
    /// Timed repetitions entering the geometric mean.
    pub reps: usize,
    /// Minimum total measured time per repetition; the workload is looped
    /// until this floor is reached so timer resolution never dominates.
    pub min_rep_secs: f64,
    /// Untimed warm-up runs.
    pub warmup: usize,
}

impl TimeOpts {
    /// Fast settings for smoke tests and quick sweeps.
    pub fn quick() -> Self {
        Self {
            reps: 5,
            min_rep_secs: 0.01,
            warmup: 1,
        }
    }

    /// The paper's 100-repetition protocol.
    pub fn paper() -> Self {
        Self {
            reps: 100,
            min_rep_secs: 0.001,
            warmup: 3,
        }
    }
}

/// Times `f`, returning seconds per invocation (geometric mean over reps).
///
/// The result is always finite and strictly positive: zero reps are treated
/// as one, and each per-rep interval is floored at a picosecond before
/// entering the geometric mean — a coarse clock returning a zero (or a
/// platform hiccup, a negative) elapsed interval can therefore never
/// propagate an `inf`/`NaN` into a derived GFLOPS figure.
pub fn time_secs(opts: &TimeOpts, mut f: impl FnMut()) -> f64 {
    let reps = opts.reps.max(1);
    for _ in 0..opts.warmup {
        f();
    }
    // calibrate inner iterations to the per-rep floor
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= opts.min_rep_secs || iters >= 1 << 20 {
            break;
        }
        let scale = (opts.min_rep_secs / dt.max(1e-9)).ceil().max(2.0);
        iters = (iters as f64 * scale).min(1e9) as usize;
    }

    let mut log_sum = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        log_sum += per.max(1e-12).ln();
    }
    (log_sum / reps as f64).exp()
}

/// GFLOPS for a measured time. Non-positive or non-finite `secs` (which
/// [`time_secs`] never produces, but hand-computed intervals can) yields
/// `NaN` rather than `inf`, so downstream geomean/table code — which
/// already skips non-finite entries — degrades gracefully.
pub fn gflops(total_flops: f64, secs: f64) -> f64 {
    if !secs.is_finite() || secs <= 0.0 {
        return f64::NAN;
    }
    total_flops / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let opts = TimeOpts {
            reps: 3,
            min_rep_secs: 0.001,
            warmup: 1,
        };
        let mut acc = 0u64;
        let t = time_secs(&opts, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1e9, 0.5), 2.0);
    }

    #[test]
    fn degenerate_intervals_never_yield_inf_or_nan_rates() {
        // zero reps + an effectively-zero workload: the old code divided by
        // reps (NaN) and a zero interval made GFLOPS infinite
        let opts = TimeOpts {
            reps: 0,
            min_rep_secs: 0.0,
            warmup: 0,
        };
        let t = time_secs(&opts, || {});
        assert!(t.is_finite() && t > 0.0, "time_secs returned {t}");
        assert!(gflops(1e9, t).is_finite());
        // gflops on raw degenerate intervals reports NaN, never inf
        assert!(gflops(1e9, 0.0).is_nan());
        assert!(gflops(1e9, -1.0).is_nan());
        assert!(gflops(1e9, f64::NAN).is_nan());
        assert!(gflops(1e9, f64::INFINITY).is_nan());
    }

    #[test]
    fn geometric_mean_is_stable_for_constant_work() {
        let opts = TimeOpts {
            reps: 4,
            min_rep_secs: 0.002,
            warmup: 1,
        };
        let mut v = vec![0.0f64; 4096];
        let t1 = time_secs(&opts, || {
            for (i, x) in v.iter_mut().enumerate() {
                *x += i as f64;
            }
            std::hint::black_box(&v);
        });
        let t2 = time_secs(&opts, || {
            for (i, x) in v.iter_mut().enumerate() {
                *x += i as f64;
            }
            std::hint::black_box(&v);
        });
        // within 20x of each other (very loose; we only need sanity)
        assert!(t1 / t2 < 20.0 && t2 / t1 < 20.0);
    }
}
