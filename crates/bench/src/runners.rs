//! One runner per measured implementation. Every runner returns GFLOPS for
//! a prepared workload under the given timing options.

use crate::timer::{gflops, time_secs, TimeOpts};
use crate::workloads::{gemm_flops, trsm_flops, GemmWorkload, TrsmWorkload};
use iatf_baselines::blasloop::BaselineElement;
use iatf_baselines::{batched, blasloop, specialized};
use iatf_core::{CompactElement, GemmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{GemmDims, TrsmDims};
use iatf_simd::{Element, HasSimd, Real};

/// IATF compact GEMM (plan built once, execution timed — the compact
/// interface's contract, like MKL compact: data is already in the compact
/// layout).
pub fn iatf_gemm<E: CompactElement>(
    w: &mut GemmWorkload<E>,
    cfg: &TuningConfig,
    opts: &TimeOpts,
) -> f64 {
    let plan = GemmPlan::<E>::new(
        GemmDims::square(w.n),
        w.mode,
        false,
        false,
        w.batch,
        cfg,
    )
    .expect("plan");
    let (a, b, c) = (&w.a_c, &w.b_c, &mut w.c_c);
    let one = E::one();
    let secs = time_secs(opts, || {
        plan.execute(one, a, b, one, c).expect("execute");
    });
    gflops(gemm_flops::<E>(w.n, w.batch), secs)
}

/// Loop-around-library-calls GEMM (OpenBLAS stand-in).
pub fn blasloop_gemm<E: CompactElement + BaselineElement>(
    w: &mut GemmWorkload<E>,
    opts: &TimeOpts,
) -> f64 {
    let one = E::one();
    let (a, b, c) = (&w.a_std, &w.b_std, &mut w.c_std);
    let mode = w.mode;
    let secs = time_secs(opts, || {
        blasloop::gemm(mode, one, a, b, one, c);
    });
    gflops(gemm_flops::<E>(w.n, w.batch), secs)
}

/// Batch-interface GEMM (ARMPL batched stand-in).
pub fn batched_gemm<E: CompactElement + BaselineElement>(
    w: &mut GemmWorkload<E>,
    opts: &TimeOpts,
) -> f64 {
    let one = E::one();
    let (a, b, c) = (&w.a_std, &w.b_std, &mut w.c_std);
    let mode = w.mode;
    let secs = time_secs(opts, || {
        batched::gemm(mode, one, a, b, one, c);
    });
    gflops(gemm_flops::<E>(w.n, w.batch), secs)
}

/// Shape-specialized GEMM (LIBXSMM stand-in; real types only).
pub fn specialized_gemm<R: Real + HasSimd + Element + CompactElement>(
    w: &mut GemmWorkload<R>,
    opts: &TimeOpts,
) -> f64 {
    let plan = specialized::SpecializedGemm::new(w.n, w.n, w.n, w.mode);
    let one = <R as Element>::one();
    let (a, b, c) = (&w.a_std, &w.b_std, &mut w.c_std);
    let secs = time_secs(opts, || {
        plan.execute(one, a, b, one, c);
    });
    gflops(gemm_flops::<R>(w.n, w.batch), secs)
}

/// IATF compact TRSM. The pristine compact B is restored before every timed
/// repetition (untimed) so the in-place solve stays on well-scaled data.
pub fn iatf_trsm<E: CompactElement>(
    w: &TrsmWorkload<E>,
    cfg: &TuningConfig,
    opts: &TimeOpts,
) -> f64 {
    let plan = TrsmPlan::<E>::new(TrsmDims::square(w.n), w.mode, false, w.batch, cfg)
        .expect("plan");
    let one = E::one();
    let mut b = w.b_c.clone();
    let pristine = w.b_c.clone();
    let secs = geomean_secs(opts, || {
        b.as_scalars_mut().copy_from_slice(pristine.as_scalars());
        let t0 = std::time::Instant::now();
        plan.execute(one, &w.a_c, &mut b).expect("execute");
        t0.elapsed().as_secs_f64()
    });
    gflops(trsm_flops::<E>(w.n, w.batch), secs)
}

/// Loop-around-library-calls TRSM (OpenBLAS stand-in).
pub fn blasloop_trsm<E: CompactElement>(w: &TrsmWorkload<E>, opts: &TimeOpts) -> f64 {
    let one = E::one();
    let mut b = w.b_std.clone();
    let pristine = w.b_std.clone();
    let mode = w.mode;
    let a = &w.a_std;
    let secs = geomean_secs(opts, || {
        b.as_mut_slice().copy_from_slice(pristine.as_slice());
        let t0 = std::time::Instant::now();
        blasloop::trsm(mode, one, a, &mut b);
        t0.elapsed().as_secs_f64()
    });
    gflops(trsm_flops::<E>(w.n, w.batch), secs)
}

/// Batch-interface TRSM (ARMPL loop stand-in).
pub fn batched_trsm<E: CompactElement>(w: &TrsmWorkload<E>, opts: &TimeOpts) -> f64 {
    let one = E::one();
    let mut b = w.b_std.clone();
    let pristine = w.b_std.clone();
    let mode = w.mode;
    let a = &w.a_std;
    let secs = geomean_secs(opts, || {
        b.as_mut_slice().copy_from_slice(pristine.as_slice());
        let t0 = std::time::Instant::now();
        batched::trsm(mode, one, a, &mut b);
        t0.elapsed().as_secs_f64()
    });
    gflops(trsm_flops::<E>(w.n, w.batch), secs)
}

/// Geometric mean of per-step measured seconds; the step closure restores
/// state untimed and returns the timed portion's duration.
fn geomean_secs(opts: &TimeOpts, mut step: impl FnMut() -> f64) -> f64 {
    for _ in 0..opts.warmup {
        step();
    }
    let mut log_sum = 0.0f64;
    for _ in 0..opts.reps {
        log_sum += step().max(1e-9).ln();
    }
    (log_sum / opts.reps as f64).exp()
}

/// Measures one raw GEMM microkernel size over resident packed panels —
/// the kernel-size (CMAR) ablation. Returns GFLOPS of pure kernel work.
pub fn microkernel_gemm_gflops(mr: usize, nr: usize, k: usize, opts: &TimeOpts) -> f64 {
    use iatf_kernels::real_gemm_kernel;
    use iatf_simd::F64x2;
    let p = <F64x2 as iatf_simd::SimdReal>::LANES;
    let tiles = 256usize;
    let pa = vec![0.5f64; k * mr * p];
    let pb = vec![0.25f64; k * nr * p];
    let mut c = vec![0.0f64; mr * nr * p];
    let kern = real_gemm_kernel::<f64>(iatf_simd::VecWidth::W128, mr, nr);
    let secs = time_secs(opts, || {
        for _ in 0..tiles {
            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
            unsafe {
                kern(
                    k,
                    1.0,
                    1.0,
                    pa.as_ptr(),
                    p,
                    mr * p,
                    pb.as_ptr(),
                    p,
                    nr * p,
                    c.as_mut_ptr(),
                    p,
                    mr * p,
                );
            }
        }
        std::hint::black_box(&c);
    });
    let flops = (tiles * mr * nr * k * p * 2) as f64;
    gflops(flops, secs)
}

/// FMLS-rectangular vs plain-GEMM TRSM update (the Eq. 4 ablation): returns
/// (fmls_gflops, gemm_gflops) for the same elimination workload.
pub fn fmls_vs_gemm_update(kk: usize, opts: &TimeOpts) -> (f64, f64) {
    use iatf_kernels::table::real_trsm_rect_kernel;
    use iatf_kernels::real_gemm_kernel;
    use iatf_simd::F64x2;
    let p = <F64x2 as iatf_simd::SimdReal>::LANES;
    const MR: usize = 4;
    const NR: usize = 4;
    let reps = 128usize;
    let pa = vec![0.01f64; kk.max(1) * MR * p];
    // panel: kk solved rows + MR target rows
    let mut panel = vec![0.5f64; (kk + MR) * NR * p];
    let row_stride = NR * p;

    let rect = real_trsm_rect_kernel::<f64>(iatf_simd::VecWidth::W128, MR, NR);
    let secs_fmls = time_secs(opts, || {
        for _ in 0..reps {
            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
            unsafe {
                rect(
                    kk,
                    pa.as_ptr(),
                    p,
                    MR * p,
                    core::ptr::null(),
                    panel.as_mut_ptr(),
                    kk,
                    row_stride,
                    p,
                );
            }
        }
        std::hint::black_box(&panel);
    });

    // the GEMM alternative: C tile = (-1)·A·X + 1·C — same elimination via
    // the general kernel, paying the alpha multiplies of Eq. 4
    let kern = real_gemm_kernel::<f64>(iatf_simd::VecWidth::W128, MR, NR);
    // X rows gathered as a "B panel": kk slivers of NR groups
    let pb = vec![0.5f64; kk.max(1) * NR * p];
    let mut c = vec![0.5f64; MR * NR * p];
    let secs_gemm = time_secs(opts, || {
        for _ in 0..reps {
            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
            unsafe {
                kern(
                    kk.max(1),
                    -1.0,
                    1.0,
                    pa.as_ptr(),
                    p,
                    MR * p,
                    pb.as_ptr(),
                    p,
                    NR * p,
                    c.as_mut_ptr(),
                    p,
                    MR * p,
                );
            }
        }
        std::hint::black_box(&c);
    });

    let macs = (reps * MR * NR * kk.max(1) * p) as f64;
    (gflops(macs * 2.0, secs_fmls), gflops(macs * 2.0, secs_gemm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{gemm_workload, trsm_workload};
    use iatf_layout::{GemmMode, TrsmMode};

    fn topts() -> TimeOpts {
        TimeOpts {
            reps: 2,
            min_rep_secs: 0.001,
            warmup: 1,
        }
    }

    #[test]
    fn all_gemm_runners_produce_gflops() {
        let mut w = gemm_workload::<f32>(4, GemmMode::NN, 64, 1);
        let cfg = TuningConfig::default();
        assert!(iatf_gemm(&mut w, &cfg, &topts()) > 0.0);
        assert!(blasloop_gemm(&mut w, &topts()) > 0.0);
        assert!(batched_gemm(&mut w, &topts()) > 0.0);
        assert!(specialized_gemm(&mut w, &topts()) > 0.0);
    }

    #[test]
    fn all_trsm_runners_produce_gflops() {
        let w = trsm_workload::<f64>(5, TrsmMode::LNLN, 32, 2);
        let cfg = TuningConfig::default();
        assert!(iatf_trsm(&w, &cfg, &topts()) > 0.0);
        assert!(blasloop_trsm(&w, &topts()) > 0.0);
        assert!(batched_trsm(&w, &topts()) > 0.0);
    }

    #[test]
    fn microkernel_and_ablation_runners() {
        assert!(microkernel_gemm_gflops(4, 4, 8, &topts()) > 0.0);
        let (fmls, gemm) = fmls_vs_gemm_update(8, &topts());
        assert!(fmls > 0.0 && gemm > 0.0);
    }
}

#[allow(clippy::items_after_test_module)]
/// Ping-pong (software-pipelined) vs plain kernel — the §4.2 pipelining
/// ablation. Returns (pipelined_gflops, plain_gflops) for a 4×4 DGEMM
/// microkernel at depth `k`.
pub fn pingpong_vs_plain(k: usize, opts: &TimeOpts) -> (f64, f64) {
    use iatf_kernels::{gemm_ukr, gemm_ukr_nopipeline};
    use iatf_simd::{F64x2, SimdReal};
    let p = <F64x2 as SimdReal>::LANES;
    let tiles = 256usize;
    let pa = vec![0.5f64; k * 4 * p];
    let pb = vec![0.25f64; k * 4 * p];
    let mut c = vec![0.0f64; 16 * p];
    let mut run = |f: iatf_kernels::RealGemmKernel<f64>| {
        time_secs(opts, || {
            for _ in 0..tiles {
                // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
                unsafe {
                    f(
                        k,
                        1.0,
                        1.0,
                        pa.as_ptr(),
                        p,
                        4 * p,
                        pb.as_ptr(),
                        p,
                        4 * p,
                        c.as_mut_ptr(),
                        p,
                        4 * p,
                    );
                }
            }
            std::hint::black_box(&c);
        })
    };
    let secs_pp = run(gemm_ukr::<F64x2, 4, 4>);
    let secs_plain = run(gemm_ukr_nopipeline::<F64x2, 4, 4>);
    let flops = (tiles * 16 * k * p * 2) as f64;
    (gflops(flops, secs_pp), gflops(flops, secs_plain))
}
