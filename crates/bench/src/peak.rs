//! Single-core peak-FLOPS calibration for the percent-of-peak figures.
//!
//! The paper's Figures 11–12 normalize by the processor's theoretical peak
//! (Table 2). On an arbitrary host the honest equivalent is a *measured*
//! peak: a register-blocked chain of independent vector FMAs that saturates
//! the FP pipes without touching memory. Percent-of-peak is then
//! machine-neutral, which is exactly why the paper uses it to compare the
//! Kunpeng 920 against the Xeon.

use crate::timer::{time_secs, TimeOpts};
use iatf_simd::{F32x4, F64x2, SimdReal};

/// Measured single-core peaks in GFLOPS.
#[derive(Copy, Clone, Debug)]
pub struct MeasuredPeak {
    /// Single-precision FMA peak.
    pub fp32_gflops: f64,
    /// Double-precision FMA peak.
    pub fp64_gflops: f64,
}

#[inline(never)]
fn fma_loop<V: SimdReal>(iters: usize) -> f64 {
    // 16 independent accumulator chains — enough ILP to cover FMA latency
    // on any reasonable core. Inputs pass through black_box so the chain
    // cannot be constant-folded into a single evaluation.
    let mut acc = [V::splat(V::Scalar::from_f64(1.0)); 16];
    let x = V::splat(std::hint::black_box(V::Scalar::from_f64(0.999_999)));
    let y = V::splat(std::hint::black_box(V::Scalar::from_f64(1e-9)));
    for _ in 0..iters {
        for a in &mut acc {
            *a = a.fma(x, y);
        }
    }
    // fold so the optimizer cannot elide the loop
    let mut sink = V::zero();
    for a in acc {
        sink = sink.add(a);
    }
    std::hint::black_box(sink.to_array()[0].to_f64())
}

use iatf_simd::Real;

/// Measures the peak for one vector type: FLOPs = iters · 16 FMAs · 2 ops ·
/// lanes.
fn measure_one<V: SimdReal>(opts: &TimeOpts) -> f64 {
    const ITERS: usize = 4096;
    let mut sink = 0.0;
    let secs = time_secs(opts, || {
        sink += fma_loop::<V>(ITERS);
    });
    std::hint::black_box(sink);
    let flops = (ITERS * 16 * 2 * V::LANES) as f64;
    flops / secs / 1e9
}

/// Runs the calibration.
pub fn measure_peak(opts: &TimeOpts) -> MeasuredPeak {
    MeasuredPeak {
        fp32_gflops: measure_one::<F32x4>(opts),
        fp64_gflops: measure_one::<F64x2>(opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_positive_and_ordered() {
        let p = measure_peak(&TimeOpts {
            reps: 3,
            min_rep_secs: 0.005,
            warmup: 1,
        });
        assert!(p.fp32_gflops > 0.1, "{p:?}");
        assert!(p.fp64_gflops > 0.1, "{p:?}");
        // f32 peak should be roughly 2× f64 on a 128-bit unit (loose bound)
        let ratio = p.fp32_gflops / p.fp64_gflops;
        assert!(ratio > 1.2 && ratio < 4.0, "ratio {ratio}");
    }
}
