//! Table and CSV rendering for the reproduced figures.

use std::fmt::Write as _;

/// One measured implementation's curve over the size sweep.
#[derive(Clone, Debug)]
pub struct Series {
    /// Implementation label (e.g. "IATF", "OpenBLAS-loop").
    pub name: String,
    /// One value per size in the sweep (GFLOPS or % of peak).
    pub values: Vec<f64>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }
}

/// Renders a fixed-width table: one row per size, one column per series.
pub fn render_table(title: &str, xlabel: &str, xs: &[usize], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{:>6}", xlabel);
    for s in series {
        let _ = write!(out, " {:>14}", truncate(&s.name, 14));
    }
    let _ = writeln!(out);
    for (row, &x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>6}");
        for s in series {
            let v = s.values.get(row).copied().unwrap_or(f64::NAN);
            let _ = write!(out, " {v:>14.3}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the same data as a JSON document (pretty-printed), using the
/// serializer from `iatf-obs` so figure exports and telemetry share one
/// schema style. Non-finite values become `null`.
pub fn render_json(title: &str, xlabel: &str, xs: &[usize], series: &[Series]) -> String {
    use iatf_obs::Json;
    Json::object()
        .set("title", title)
        .set("x_label", xlabel)
        .set("x", xs.iter().map(|&x| Json::from(x)).collect::<Vec<_>>())
        .set(
            "series",
            series
                .iter()
                .map(|s| {
                    Json::object().set("name", s.name.as_str()).set(
                        "values",
                        s.values.iter().map(|&v| Json::from(v)).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>(),
        )
        .to_pretty()
}

/// Renders the same data as CSV.
pub fn render_csv(xlabel: &str, xs: &[usize], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{xlabel}");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);
    for (row, &x) in xs.iter().enumerate() {
        let _ = write!(out, "{x}");
        for s in series {
            let v = s.values.get(row).copied().unwrap_or(f64::NAN);
            let _ = write!(out, ",{v:.6}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Speedup summary of `a` over `b`: (max, geometric mean), ignoring
/// non-finite entries.
pub fn speedup_summary(a: &Series, b: &Series) -> (f64, f64) {
    let mut max = 0.0f64;
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for (&x, &y) in a.values.iter().zip(&b.values) {
        if x.is_finite() && y.is_finite() && y > 0.0 {
            let s = x / y;
            max = max.max(s);
            log_sum += s.ln();
            n += 1;
        }
    }
    let geo = if n > 0 {
        (log_sum / n as f64).exp()
    } else {
        f64::NAN
    };
    (max, geo)
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let xs = vec![1, 2, 33];
        let s = vec![
            Series::new("IATF", vec![1.0, 2.0, 3.0]),
            Series::new("baseline", vec![0.5, 0.5, 3.0]),
        ];
        let t = render_table("Fig X", "n", &xs, &s);
        assert!(t.contains("## Fig X"));
        assert!(t.contains("IATF"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn json_renders_with_null_for_nan() {
        let xs = vec![4, 8];
        let s = vec![Series::new("a", vec![1.5, f64::NAN])];
        let j = render_json("Fig X", "n", &xs, &s);
        assert!(j.contains("\"title\": \"Fig X\""));
        assert!(j.contains("\"name\": \"a\""));
        assert!(j.contains("null"));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn csv_renders() {
        let xs = vec![4, 8];
        let s = vec![Series::new("a", vec![1.5, 2.5])];
        let csv = render_csv("n", &xs, &s);
        assert_eq!(csv.lines().next().unwrap(), "n,a");
        assert!(csv.contains("4,1.500000"));
    }

    #[test]
    fn speedups() {
        let a = Series::new("a", vec![2.0, 8.0]);
        let b = Series::new("b", vec![1.0, 2.0]);
        let (max, geo) = speedup_summary(&a, &b);
        assert_eq!(max, 4.0);
        assert!((geo - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn speedup_ignores_nan() {
        let a = Series::new("a", vec![2.0, f64::NAN]);
        let b = Series::new("b", vec![1.0, 1.0]);
        let (max, geo) = speedup_summary(&a, &b);
        assert_eq!(max, 2.0);
        assert_eq!(geo, 2.0);
    }
}
