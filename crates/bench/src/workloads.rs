//! Workload generators for every figure.
//!
//! Inputs follow the paper's protocol: square matrices of order 1–33
//! filled with uniform random values in `[0, 1)` (§6, following Jia et
//! al.'s testing scheme), batch 16384. TRSM coefficient matrices are
//! well-conditioned random triangles (diagonally dominant) so repeated
//! timed solves stay numerically tame.

use iatf_layout::{CompactBatch, GemmMode, Side, StdBatch, TrsmMode};
use iatf_simd::Element;

/// Operands for one GEMM measurement, in both layouts.
pub struct GemmWorkload<E: Element> {
    /// Problem order (square) — M = N = K.
    pub n: usize,
    /// Group size.
    pub batch: usize,
    /// Mode the operands were shaped for.
    pub mode: GemmMode,
    /// A in standard layout.
    pub a_std: StdBatch<E>,
    /// B in standard layout.
    pub b_std: StdBatch<E>,
    /// C in standard layout (baselines accumulate here).
    pub c_std: StdBatch<E>,
    /// A in compact layout.
    pub a_c: CompactBatch<E>,
    /// B in compact layout.
    pub b_c: CompactBatch<E>,
    /// C in compact layout (IATF accumulates here).
    pub c_c: CompactBatch<E>,
}

/// Builds a square GEMM workload.
pub fn gemm_workload<E: Element>(n: usize, mode: GemmMode, batch: usize, seed: u64) -> GemmWorkload<E> {
    // square problems: stored shapes equal regardless of transpose
    let _ = mode;
    let a_std = StdBatch::<E>::random(n, n, batch, seed);
    let b_std = StdBatch::<E>::random(n, n, batch, seed + 1);
    let c_std = StdBatch::<E>::zeroed(n, n, batch);
    let a_c = CompactBatch::from_std(&a_std);
    let b_c = CompactBatch::from_std(&b_std);
    let c_c = CompactBatch::from_std(&c_std);
    GemmWorkload {
        n,
        batch,
        mode,
        a_std,
        b_std,
        c_std,
        a_c,
        b_c,
        c_c,
    }
}

/// FLOPs of the whole GEMM group.
pub fn gemm_flops<E: Element>(n: usize, batch: usize) -> f64 {
    (n * n * n * batch) as f64 * E::DTYPE.flops_per_mac() as f64
}

/// Operands for one TRSM measurement.
pub struct TrsmWorkload<E: Element> {
    /// Problem order (square B).
    pub n: usize,
    /// Group size.
    pub batch: usize,
    /// Mode.
    pub mode: TrsmMode,
    /// Triangular A, standard layout.
    pub a_std: StdBatch<E>,
    /// Pristine B, standard layout (restored between timed reps).
    pub b_std: StdBatch<E>,
    /// A, compact layout.
    pub a_c: CompactBatch<E>,
    /// Pristine B, compact layout.
    pub b_c: CompactBatch<E>,
}

/// Builds a square TRSM workload for a mode.
pub fn trsm_workload<E: Element>(n: usize, mode: TrsmMode, batch: usize, seed: u64) -> TrsmWorkload<E> {
    let t = match mode.side {
        Side::Left => n,
        Side::Right => n,
    };
    let a_std = StdBatch::<E>::random_triangular(t, batch, mode.uplo, mode.diag, seed);
    let b_std = StdBatch::<E>::random(n, n, batch, seed + 1);
    let a_c = CompactBatch::from_std(&a_std);
    let b_c = CompactBatch::from_std(&b_std);
    TrsmWorkload {
        n,
        batch,
        mode,
        a_std,
        b_std,
        a_c,
        b_c,
    }
}

/// FLOPs of the whole TRSM group (standard `n²·n_rhs` MAC count; the
/// divide counted as one op like the paper's GFLOPS convention).
pub fn trsm_flops<E: Element>(n: usize, batch: usize) -> f64 {
    let macs = n * (n + 1) / 2 * n;
    (macs * batch) as f64 * E::DTYPE.flops_per_mac() as f64
}

/// Suggested batch size scaling: keep total work roughly constant across
/// the sweep so quick runs stay quick at n = 33 without starving n = 1.
pub fn scaled_batch(base: usize, n: usize) -> usize {
    let cap = (1usize << 24) / (n * n * n).max(1);
    base.min(cap.max(64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_layout::{Diag, Uplo};

    #[test]
    fn gemm_workload_shapes() {
        let w = gemm_workload::<f32>(5, GemmMode::NN, 10, 3);
        assert_eq!(w.a_std.shape(), (5, 5));
        assert_eq!(w.a_c.count(), 10);
        assert_eq!(w.c_c.rows(), 5);
        assert_eq!(gemm_flops::<f32>(4, 100), (64 * 100 * 2) as f64);
        assert_eq!(gemm_flops::<iatf_simd::c32>(4, 100), (64 * 100 * 8) as f64);
    }

    #[test]
    fn trsm_workload_is_well_conditioned() {
        let w = trsm_workload::<f64>(6, TrsmMode::LNLN, 4, 9);
        for v in 0..4 {
            for i in 0..6 {
                let d = w.a_std.get(v, i, i);
                assert!((1.0..=2.0).contains(&d));
            }
        }
        assert_eq!(trsm_flops::<f64>(4, 10), (4 * 5 / 2 * 4 * 10 * 2) as f64);
        let _ = (Uplo::Lower, Diag::NonUnit);
    }

    #[test]
    fn scaled_batch_caps_large_sizes() {
        assert_eq!(scaled_batch(16384, 1), 16384);
        assert!(scaled_batch(16384, 33) < 16384);
        assert!(scaled_batch(16384, 33) >= 64);
    }
}
