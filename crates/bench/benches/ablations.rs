//! Ablation benches for the design choices DESIGN.md calls out: the pack
//! selecter's no-pack strategy, the batch counter's L1 fitting, and the
//! FMLS rectangular TRSM kernel vs a general GEMM update (Eq. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iatf_bench::workloads::gemm_workload;
use iatf_core::{BatchPolicy, GemmPlan, PackPolicy, TuningConfig};
use iatf_kernels::table::{real_gemm_kernel, real_trsm_rect_kernel};
use iatf_layout::{GemmDims, GemmMode};
use iatf_simd::{F64x2, SimdReal};
use std::time::Duration;

const BATCH: usize = 512;

fn pack_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/pack_policy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    for n in [3usize, 4, 8, 16] {
        for (policy, name) in [
            (PackPolicy::Auto, "auto"),
            (PackPolicy::Always, "always"),
            (PackPolicy::Never, "never"),
        ] {
            let cfg = TuningConfig {
                pack: policy,
                ..TuningConfig::default()
            };
            let mut w = gemm_workload::<f32>(n, GemmMode::NN, BATCH, n as u64);
            let plan =
                GemmPlan::<f32>::new(GemmDims::square(n), GemmMode::NN, false, false, BATCH, &cfg)
                    .unwrap();
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &n,
                |b, _| {
                    b.iter(|| plan.execute(1.0, &w.a_c, &w.b_c, 1.0, &mut w.c_c).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn batch_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/batch_policy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    for n in [4usize, 16, 32] {
        for (policy, name) in [
            (BatchPolicy::Auto, "l1_fitted"),
            (BatchPolicy::Fixed(1), "one_pack"),
            (BatchPolicy::Fixed(1 << 20), "whole_group"),
        ] {
            let cfg = TuningConfig {
                batch: policy,
                ..TuningConfig::default()
            };
            let mut w = gemm_workload::<f64>(n, GemmMode::NN, BATCH, n as u64);
            let plan =
                GemmPlan::<f64>::new(GemmDims::square(n), GemmMode::NN, false, false, BATCH, &cfg)
                    .unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| plan.execute(1.0, &w.a_c, &w.b_c, 1.0, &mut w.c_c).unwrap());
            });
        }
    }
    group.finish();
}

fn fmls_vs_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fmls_vs_gemm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(250));
    let p = <F64x2 as SimdReal>::LANES;
    const MR: usize = 4;
    const NR: usize = 4;
    for kk in [4usize, 8, 16, 32] {
        let pa = vec![0.01f64; kk * MR * p];
        let mut panel = vec![0.5f64; (kk + MR) * NR * p];
        let rect = real_trsm_rect_kernel::<f64>(iatf_simd::VecWidth::W128, MR, NR);
        group.bench_with_input(BenchmarkId::new("fmls_rect", kk), &kk, |b, _| {
            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
            b.iter(|| unsafe {
                rect(
                    kk,
                    pa.as_ptr(),
                    p,
                    MR * p,
                    core::ptr::null(),
                    panel.as_mut_ptr(),
                    kk,
                    NR * p,
                    p,
                );
                std::hint::black_box(&panel);
            });
        });
        let kern = real_gemm_kernel::<f64>(iatf_simd::VecWidth::W128, MR, NR);
        let pb = vec![0.5f64; kk * NR * p];
        let mut cbuf = vec![0.5f64; MR * NR * p];
        group.bench_with_input(BenchmarkId::new("gemm_update", kk), &kk, |b, _| {
            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
            b.iter(|| unsafe {
                kern(
                    kk,
                    -1.0,
                    1.0,
                    pa.as_ptr(),
                    p,
                    MR * p,
                    pb.as_ptr(),
                    p,
                    NR * p,
                    cbuf.as_mut_ptr(),
                    p,
                    MR * p,
                );
                std::hint::black_box(&cbuf);
            });
        });
    }
    group.finish();
}

criterion_group!(ablations, pack_policy, batch_policy, fmls_vs_gemm);
criterion_main!(ablations);
