//! Plan-cache ablation: per-call cost of the one-shot entry points under
//! the `Shared` (cached) vs `Bypass` (fresh plan per call) policies,
//! against the prebuilt-plan floor. At small sizes the run-time stage is
//! comparable to the compute itself, so this isolates exactly the overhead
//! the cache amortizes away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iatf_bench::workloads::gemm_workload;
use iatf_core::plan::cache;
use iatf_core::{compact_gemm, GemmPlan, PlanCachePolicy, TuningConfig};
use iatf_layout::{GemmDims, GemmMode};
use std::time::Duration;

const BATCH: usize = 32;

fn plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/plan_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let shared = TuningConfig::default();
    let bypass = TuningConfig {
        plan_cache: PlanCachePolicy::Bypass,
        ..TuningConfig::default()
    };
    for n in [2usize, 4, 8] {
        let mut w = gemm_workload::<f64>(n, GemmMode::NN, BATCH, n as u64);
        let plan =
            GemmPlan::<f64>::new(GemmDims::square(n), GemmMode::NN, false, false, BATCH, &shared)
                .unwrap();
        group.bench_with_input(BenchmarkId::new("prebuilt_execute", n), &n, |b, _| {
            b.iter(|| plan.execute(1.0, &w.a_c, &w.b_c, 0.0, &mut w.c_c).unwrap());
        });
        cache::clear();
        group.bench_with_input(BenchmarkId::new("oneshot_cached", n), &n, |b, _| {
            b.iter(|| {
                compact_gemm(GemmMode::NN, 1.0, &w.a_c, &w.b_c, 0.0, &mut w.c_c, &shared).unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("oneshot_bypass", n), &n, |b, _| {
            b.iter(|| {
                compact_gemm(GemmMode::NN, 1.0, &w.a_c, &w.b_c, 0.0, &mut w.c_c, &bypass).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, plan_cache);
criterion_main!(benches);
