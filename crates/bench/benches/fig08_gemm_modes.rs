//! Figure 8: compact GEMM across the NN/NT/TN/TT transpose modes (IATF vs
//! the batch-interface baseline; the NN column duplicates Figure 7 and is
//! included for the mode-stability comparison the figure makes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iatf_baselines::batched;
use iatf_bench::workloads::gemm_workload;
use iatf_core::{CompactElement, GemmPlan, TuningConfig};
use iatf_layout::{GemmDims, GemmMode};
use iatf_simd::c64;
use std::time::Duration;

const SIZES: [usize; 3] = [4, 12, 28];
const BATCH: usize = 512;

fn bench_mode<E>(c: &mut Criterion, label: &str, mode: GemmMode)
where
    E: CompactElement + iatf_baselines::blasloop::BaselineElement,
{
    let mut group = c.benchmark_group(format!("fig08/{label}/{mode}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let mut w = gemm_workload::<E>(n, mode, BATCH, n as u64);
        let plan =
            GemmPlan::<E>::new(GemmDims::square(n), mode, false, false, BATCH, &cfg).unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter(|| plan.execute(one, &w.a_c, &w.b_c, one, &mut w.c_c).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("armpl_batch", n), &n, |b, _| {
            b.iter(|| batched::gemm(mode, one, &w.a_std, &w.b_std, one, &mut w.c_std));
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    for mode in GemmMode::ALL {
        bench_mode::<f32>(c, "sgemm", mode);
        bench_mode::<c64>(c, "zgemm", mode);
    }
}

criterion_group!(fig08, benches);
criterion_main!(fig08);
