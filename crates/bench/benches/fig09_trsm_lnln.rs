//! Figure 9: compact TRSM vs loop baselines, LNLN mode, all four dtypes.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use iatf_baselines::{batched, blasloop};
use iatf_bench::workloads::trsm_workload;
use iatf_core::{CompactElement, TrsmPlan, TuningConfig};
use iatf_layout::{TrsmDims, TrsmMode};
use iatf_simd::{c32, c64};
use std::time::Duration;

const SIZES: [usize; 5] = [2, 4, 8, 16, 32];
const BATCH: usize = 512;

fn bench_dtype<E: CompactElement>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group(format!("fig09/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let w = trsm_workload::<E>(n, TrsmMode::LNLN, BATCH, n as u64);
        let plan =
            TrsmPlan::<E>::new(TrsmDims::square(n), TrsmMode::LNLN, false, BATCH, &cfg).unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter_batched(
                || w.b_c.clone(),
                |mut bb| {
                    plan.execute(one, &w.a_c, &mut bb).unwrap();
                    bb
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("armpl_loop", n), &n, |b, _| {
            b.iter_batched(
                || w.b_std.clone(),
                |mut bb| {
                    batched::trsm(TrsmMode::LNLN, one, &w.a_std, &mut bb);
                    bb
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("openblas_loop", n), &n, |b, _| {
            b.iter_batched(
                || w.b_std.clone(),
                |mut bb| {
                    blasloop::trsm(TrsmMode::LNLN, one, &w.a_std, &mut bb);
                    bb
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dtype::<f32>(c, "strsm");
    bench_dtype::<f64>(c, "dtrsm");
    bench_dtype::<c32>(c, "ctrsm");
    bench_dtype::<c64>(c, "ztrsm");
}

criterion_group!(fig09, benches);
criterion_main!(fig09);
