//! Figures 11–12: percent-of-peak comparison. Criterion measures the IATF
//! compact GEMM/TRSM times; the peak itself is printed by the calibration
//! bench so post-processing (or `reproduce fig11`/`fig12`) can normalize.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use iatf_bench::peak::measure_peak;
use iatf_bench::timer::TimeOpts;
use iatf_bench::workloads::{gemm_workload, trsm_workload};
use iatf_core::{CompactElement, GemmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{GemmDims, GemmMode, TrsmDims, TrsmMode};
use iatf_simd::{c32, c64};
use std::time::Duration;

const SIZES: [usize; 4] = [4, 9, 16, 32];
const BATCH: usize = 512;

fn bench_gemm_peak<E: CompactElement>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group(format!("fig11/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let mut w = gemm_workload::<E>(n, GemmMode::NN, BATCH, n as u64);
        let plan =
            GemmPlan::<E>::new(GemmDims::square(n), GemmMode::NN, false, false, BATCH, &cfg)
                .unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter(|| plan.execute(one, &w.a_c, &w.b_c, one, &mut w.c_c).unwrap());
        });
    }
    group.finish();
}

fn bench_trsm_peak<E: CompactElement>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group(format!("fig12/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let w = trsm_workload::<E>(n, TrsmMode::LNLN, BATCH, n as u64);
        let plan =
            TrsmPlan::<E>::new(TrsmDims::square(n), TrsmMode::LNLN, false, BATCH, &cfg).unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter_batched(
                || w.b_c.clone(),
                |mut bb| {
                    plan.execute(one, &w.a_c, &mut bb).unwrap();
                    bb
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    // print the measured machine peak once so results can be normalized
    let p = measure_peak(&TimeOpts::quick());
    eprintln!(
        "[fig11/12] measured single-core peak: fp32 {:.2} GFLOPS, fp64 {:.2} GFLOPS",
        p.fp32_gflops, p.fp64_gflops
    );
    bench_gemm_peak::<f32>(c, "sgemm");
    bench_gemm_peak::<f64>(c, "dgemm");
    bench_gemm_peak::<c32>(c, "cgemm");
    bench_gemm_peak::<c64>(c, "zgemm");
    bench_trsm_peak::<f32>(c, "strsm");
    bench_trsm_peak::<f64>(c, "dtrsm");
    bench_trsm_peak::<c32>(c, "ctrsm");
    bench_trsm_peak::<c64>(c, "ztrsm");
}

criterion_group!(fig11_12, benches);
criterion_main!(fig11_12);
