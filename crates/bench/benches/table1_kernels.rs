//! Table 1 microkernel benches: raw throughput of every generated GEMM
//! kernel size on L1-resident packed panels (the CMAR story of §4.2.1 at
//! the machine level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iatf_kernels::table::{cplx_gemm_kernel, real_gemm_kernel};
use iatf_simd::{F32x4, F64x2, SimdReal, VecWidth};
use std::time::Duration;

const K: usize = 16;
const TILES: usize = 64;

fn bench_real<R: iatf_kernels::KernelScalar, V: SimdReal<Scalar = R>>(
    c: &mut Criterion,
    label: &str,
) {
    let mut group = c.benchmark_group(format!("table1/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(250));
    let p = V::LANES;
    for mr in 1..=4usize {
        for nr in 1..=4usize {
            let pa: Vec<R> = vec![R::from_f64(0.5); K * mr * p];
            let pb: Vec<R> = vec![R::from_f64(0.25); K * nr * p];
            let mut cbuf: Vec<R> = vec![R::ZERO; mr * nr * p];
            let kern = real_gemm_kernel::<R>(VecWidth::W128, mr, nr);
            group.throughput(Throughput::Elements((TILES * mr * nr * K * p * 2) as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{mr}x{nr}")),
                &(mr, nr),
                |b, _| {
                    b.iter(|| {
                        for _ in 0..TILES {
                            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
                            unsafe {
                                kern(
                                    K,
                                    R::ONE,
                                    R::ONE,
                                    pa.as_ptr(),
                                    p,
                                    mr * p,
                                    pb.as_ptr(),
                                    p,
                                    nr * p,
                                    cbuf.as_mut_ptr(),
                                    p,
                                    mr * p,
                                );
                            }
                        }
                        std::hint::black_box(&cbuf);
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_cplx<R: iatf_kernels::KernelScalar, V: SimdReal<Scalar = R>>(
    c: &mut Criterion,
    label: &str,
) {
    let mut group = c.benchmark_group(format!("table1/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(250));
    let g = 2 * V::LANES;
    for mr in 1..=3usize {
        for nr in 1..=2usize {
            let pa: Vec<R> = vec![R::from_f64(0.5); K * mr * g];
            let pb: Vec<R> = vec![R::from_f64(0.25); K * nr * g];
            let mut cbuf: Vec<R> = vec![R::ZERO; mr * nr * g];
            let kern = cplx_gemm_kernel::<R>(VecWidth::W128, mr, nr);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{mr}x{nr}")),
                &(mr, nr),
                |b, _| {
                    b.iter(|| {
                        for _ in 0..TILES {
                            // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing.
                            unsafe {
                                kern(
                                    K,
                                    [R::ONE, R::ZERO],
                                    [R::ONE, R::ZERO],
                                    pa.as_ptr(),
                                    g,
                                    mr * g,
                                    pb.as_ptr(),
                                    g,
                                    nr * g,
                                    cbuf.as_mut_ptr(),
                                    g,
                                    mr * g,
                                );
                            }
                        }
                        std::hint::black_box(&cbuf);
                    });
                },
            );
        }
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_real::<f32, F32x4>(c, "sgemm_ukr");
    bench_real::<f64, F64x2>(c, "dgemm_ukr");
    bench_cplx::<f32, F32x4>(c, "cgemm_ukr");
    bench_cplx::<f64, F64x2>(c, "zgemm_ukr");
}

criterion_group!(table1, benches);
criterion_main!(table1);
