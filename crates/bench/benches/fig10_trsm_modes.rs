//! Figure 10: compact TRSM across the LNLN/LNUN/LTLN/LTUN modes.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use iatf_baselines::batched;
use iatf_bench::workloads::trsm_workload;
use iatf_core::{CompactElement, TrsmPlan, TuningConfig};
use iatf_layout::{TrsmDims, TrsmMode};
use std::time::Duration;

const SIZES: [usize; 3] = [4, 12, 28];
const BATCH: usize = 512;

fn bench_mode<E: CompactElement>(c: &mut Criterion, label: &str, mode: TrsmMode) {
    let mut group = c.benchmark_group(format!("fig10/{label}/{mode}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let w = trsm_workload::<E>(n, mode, BATCH, n as u64);
        let plan = TrsmPlan::<E>::new(TrsmDims::square(n), mode, false, BATCH, &cfg).unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter_batched(
                || w.b_c.clone(),
                |mut bb| {
                    plan.execute(one, &w.a_c, &mut bb).unwrap();
                    bb
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("armpl_loop", n), &n, |b, _| {
            b.iter_batched(
                || w.b_std.clone(),
                |mut bb| {
                    batched::trsm(mode, one, &w.a_std, &mut bb);
                    bb
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    for mode in TrsmMode::FIG10 {
        bench_mode::<f32>(c, "strsm", mode);
        bench_mode::<f64>(c, "dtrsm", mode);
    }
}

criterion_group!(fig10, benches);
criterion_main!(fig10);
