//! Figure 7: compact GEMM vs the three baseline stand-ins, NN mode, all
//! four dtypes. Criterion variant of `reproduce fig7` (statistical, reduced
//! grid so `cargo bench` stays tractable; use the binary for the full
//! 1..=33 sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iatf_baselines::{batched, blasloop, specialized};
use iatf_bench::workloads::{gemm_flops, gemm_workload};
use iatf_core::{CompactElement, GemmPlan, TuningConfig};
use iatf_layout::{GemmDims, GemmMode};
use iatf_simd::{c32, c64, Element};
use std::time::Duration;

const SIZES: [usize; 5] = [2, 4, 8, 16, 32];
const BATCH: usize = 512;

fn bench_dtype<E>(c: &mut Criterion, label: &str)
where
    E: CompactElement + iatf_baselines::blasloop::BaselineElement,
{
    let mut group = c.benchmark_group(format!("fig07/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    let cfg = TuningConfig::default();
    for n in SIZES {
        let mut w = gemm_workload::<E>(n, GemmMode::NN, BATCH, n as u64);
        group.throughput(Throughput::Elements(gemm_flops::<E>(n, BATCH) as u64));
        let plan =
            GemmPlan::<E>::new(GemmDims::square(n), GemmMode::NN, false, false, BATCH, &cfg)
                .unwrap();
        let one = E::one();
        group.bench_with_input(BenchmarkId::new("iatf", n), &n, |b, _| {
            b.iter(|| plan.execute(one, &w.a_c, &w.b_c, one, &mut w.c_c).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("armpl_batch", n), &n, |b, _| {
            b.iter(|| batched::gemm(GemmMode::NN, one, &w.a_std, &w.b_std, one, &mut w.c_std));
        });
        group.bench_with_input(BenchmarkId::new("openblas_loop", n), &n, |b, _| {
            b.iter(|| blasloop::gemm(GemmMode::NN, one, &w.a_std, &w.b_std, one, &mut w.c_std));
        });
    }
    group.finish();
}

fn bench_specialized_real<R>(c: &mut Criterion, label: &str)
where
    R: CompactElement + iatf_simd::Real + iatf_simd::HasSimd + Element,
{
    let mut group = c.benchmark_group(format!("fig07/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    for n in SIZES {
        let mut w = gemm_workload::<R>(n, GemmMode::NN, BATCH, n as u64);
        let plan = specialized::SpecializedGemm::new(n, n, n, GemmMode::NN);
        let one = <R as Element>::one();
        group.bench_with_input(BenchmarkId::new("libxsmm", n), &n, |b, _| {
            b.iter(|| plan.execute(one, &w.a_std, &w.b_std, one, &mut w.c_std));
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dtype::<f32>(c, "sgemm");
    bench_dtype::<f64>(c, "dgemm");
    bench_dtype::<c32>(c, "cgemm");
    bench_dtype::<c64>(c, "zgemm");
    bench_specialized_real::<f32>(c, "sgemm");
    bench_specialized_real::<f64>(c, "dgemm");
}

criterion_group!(fig07, benches);
criterion_main!(fig07);
