//! Inspect the flight recorder end to end: run one batched GEMM and one
//! batched TRSM under the span recorder and a `perf_event` counter group,
//! then dump what was captured — a per-phase span summary with wall-time
//! totals, the PMU group's self-description, and a Chrome `trace_event`
//! file you can open in Perfetto (<https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --release -p iatf-bench --features trace --example trace_inspect
//! ```
//!
//! Without `--features trace` the probes compile to no-ops and the example
//! prints an empty (but still valid) trace, which is itself the point: the
//! recorder costs nothing unless asked for.

use iatf_core::trace::{self, SpanKind, SPAN_KINDS};
use iatf_core::{GemmPlan, TrsmPlan, TuningConfig};
use iatf_layout::{CompactBatch, GemmDims, GemmMode, StdBatch, TrsmDims, TrsmMode};

fn main() {
    trace::reset();
    let cfg = TuningConfig::default();
    let (n, count) = (16usize, 256usize);

    // GEMM: n=16 exceeds every register tile, so A and B both pack and the
    // super-block loop runs.
    let plan = GemmPlan::<f64>::new(GemmDims::square(n), GemmMode::NN, false, false, count, &cfg)
        .unwrap();
    let a = CompactBatch::from_std(&StdBatch::<f64>::random(n, n, count, 1));
    let b = CompactBatch::from_std(&StdBatch::<f64>::random(n, n, count, 2));
    let mut c = CompactBatch::<f64>::zeroed(n, n, count);

    let mut pmu = trace::PmuSource::open();
    let ((), counters) = pmu.measure(|| {
        plan.execute(1.0, &a, &b, 0.0, &mut c).unwrap();
    });

    // TRSM in LNUN mode: panel packing reverses rows, so the scale and
    // unpack phases record too.
    let tplan =
        TrsmPlan::<f64>::new(TrsmDims::square(8), TrsmMode::LNUN, false, count, &cfg).unwrap();
    let ta = {
        let mut std = StdBatch::<f64>::random(8, 8, count, 3);
        for m in 0..count {
            for i in 0..8 {
                let v = std.get(m, i, i);
                std.set(m, i, i, v + 8.0); // dominant diagonal
            }
        }
        CompactBatch::from_std(&std)
    };
    let mut tb = CompactBatch::from_std(&StdBatch::<f64>::random(8, 8, count, 4));
    tplan.execute(1.0, &ta, &mut tb).unwrap();

    let events = trace::drain();
    println!(
        "flight recorder: {} (captured {} spans, {} overwritten)",
        if trace::is_enabled() { "enabled" } else { "disabled — build with --features trace" },
        events.len(),
        trace::dropped(),
    );
    println!("{:>12} {:>8} {:>12} {:>12}", "phase", "spans", "total us", "mean ns");
    for kind in SPAN_KINDS {
        let spans: Vec<_> = events.iter().filter(|e| e.kind == kind).collect();
        if spans.is_empty() {
            continue;
        }
        let total_ns: u64 = spans.iter().map(|e| e.dur_ns).sum();
        println!(
            "{:>12} {:>8} {:>12.1} {:>12.0}",
            kind.name(),
            spans.len(),
            total_ns as f64 / 1e3,
            total_ns as f64 / spans.len() as f64
        );
    }

    // The Execute span bounds its phases: show the deepest nest found.
    if let Some(exec) = events.iter().find(|e| e.kind == SpanKind::Execute) {
        let nested = events
            .iter()
            .filter(|e| {
                e.tid == exec.tid
                    && e.kind != SpanKind::Execute
                    && e.start_ns >= exec.start_ns
                    && e.start_ns + e.dur_ns <= exec.start_ns + exec.dur_ns
            })
            .count();
        println!("first execute span: {} ns, {nested} spans nested inside it", exec.dur_ns);
    }

    println!("pmu: {}", pmu.describe());
    if let Some(c) = counters {
        println!(
            "  gemm execute: {} cycles, ipc {}, l1d refills {}",
            c.cycles,
            c.ipc().map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            c.l1d_refill.map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    let path = "target/trace_inspect.json";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, trace::chrome_trace_json("iatf trace_inspect", &events)).unwrap();
    println!("wrote {path} — open it in https://ui.perfetto.dev or chrome://tracing");
}
