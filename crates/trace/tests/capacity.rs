//! `IATF_TRACE_CAPACITY` hardening: a garbage value must fall back to the
//! default ring capacity with a logged warning — never panic, never
//! produce a broken recorder. Lives in its own integration-test binary so
//! the env var is set before the process's one-shot capacity read.

use iatf_trace::{drain, is_enabled, span, SpanKind};

#[test]
fn garbage_capacity_falls_back_and_recorder_still_works() {
    // Set before the first span on any thread: ring_capacity() is read
    // once per process.
    std::env::set_var("IATF_TRACE_CAPACITY", "not-a-number");
    {
        let _a = span(SpanKind::PlanBuild);
        let _b = span(SpanKind::Execute);
    }
    let events = drain();
    if is_enabled() {
        assert_eq!(events.len(), 2, "recorder broken under invalid capacity");
    } else {
        assert!(events.is_empty());
    }
}
