//! iatf-trace: flight-recorder tracing, PMU profiling, and roofline
//! attribution for the IATF runtime.
//!
//! Three layers, each usable alone:
//!
//! 1. **Flight recorder** ([`recorder`], [`ring`]) — per-thread
//!    fixed-capacity ring buffers of timestamped span events
//!    (plan build, pack, super-block execute, kernel dispatch, tune
//!    sweep). Recording is wait-free and *lossy*: when a ring fills, the
//!    oldest events are overwritten, so tracing never stalls the
//!    execution it observes. Spans compile away entirely unless the
//!    `enabled` cargo feature is on, following the same zero-cost probe
//!    pattern as `iatf-obs`.
//! 2. **Chrome trace export** ([`chrome`]) — drained events render as
//!    Trace Event Format JSON that Perfetto (<https://ui.perfetto.dev>)
//!    and `chrome://tracing` load directly.
//! 3. **PMU sampling and roofline attribution** ([`pmu`], [`roofline`])
//!    — a `perf_event_open(2)` counter group (cycles, instructions,
//!    L1D/LL accesses and refills) read around phase boundaries, joined
//!    with each plan's predicted flops/bytes into an
//!    achieved-vs-predicted CMAR report. On kernels or sandboxes where
//!    perf is unavailable the source degrades to an explicit no-op and
//!    the report renders predictions only.
//!
//! The crate is `no-deps`, std-only, and denies `unsafe_code`
//! everywhere except the audited syscall shim in `pmu::sys`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod pmu;
pub mod recorder;
pub mod ring;
pub mod roofline;
pub(crate) mod sync;

pub use chrome::chrome_trace_json;
pub use pmu::{PmuCounters, PmuSource, PmuUnavailable};
pub use recorder::{drain, dropped, is_enabled, now_ns, reset, span, span_arg, SpanGuard};
pub use ring::{SpanEvent, SpanKind, SPAN_KINDS};
pub use roofline::{RooflineInput, RooflinePoint, RooflineReport};
