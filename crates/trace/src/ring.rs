//! Lock-free single-producer single-consumer span rings.
//!
//! Each instrumented thread owns one [`SpanRing`]: a fixed-capacity ring of
//! completed span events with *lossy overwrite-oldest* semantics — the
//! producer never blocks and never allocates, it just keeps writing; when
//! the ring is full the oldest events are silently replaced. The single
//! consumer (the drain in [`crate::recorder`]) reads concurrently.
//!
//! Slot consistency uses a per-slot seqlock: every word of a slot is a
//! relaxed atomic (so there is no data race in the language sense and the
//! whole ring stays in safe Rust), and a slot sequence number — odd while the producer is
//! mid-write, bumped to the next even value with `Release` ordering when
//! the write completes — lets the consumer detect and discard torn reads.
//! A torn slot is simply dropped: this is a flight recorder, losing one
//! in-flight event under concurrent drain is by design.

use crate::sync::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};

/// What a recorded span covers. Mirrors the executor structure: the six
/// `iatf_obs::timer::Phase` phases plus the coarser span groups (whole
/// executes, super-block tasks, autotuner sweeps).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Run-time stage: building an execution plan.
    PlanBuild = 0,
    /// Packing operand A (GEMM pack-A, TRSM/TRMM triangular pack).
    PackA = 1,
    /// Packing operand B (GEMM pack-B).
    PackB = 2,
    /// A kernel-dispatch batch: all register-tile kernels of one pack
    /// (GEMM) or one column panel (TRSM/TRMM).
    Compute = 3,
    /// α-scaling / B-panel staging in TRSM & TRMM.
    Scale = 4,
    /// Writing solved panels back from packed scratch.
    Unpack = 5,
    /// One super-block work unit (pack-then-compute over `arg` packs).
    Superblock = 6,
    /// One whole `execute()` / `execute_parallel()` call.
    Execute = 7,
    /// One autotuner micro-benchmark sweep.
    TuneSweep = 8,
}

/// All span kinds, in slot order.
pub const SPAN_KINDS: [SpanKind; 9] = [
    SpanKind::PlanBuild,
    SpanKind::PackA,
    SpanKind::PackB,
    SpanKind::Compute,
    SpanKind::Scale,
    SpanKind::Unpack,
    SpanKind::Superblock,
    SpanKind::Execute,
    SpanKind::TuneSweep,
];

impl SpanKind {
    /// Snake-case span name (matches the `timer::Phase` names where the
    /// two overlap, so Perfetto tracks line up with the phase timers).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PlanBuild => "plan_build",
            SpanKind::PackA => "pack_a",
            SpanKind::PackB => "pack_b",
            SpanKind::Compute => "compute",
            SpanKind::Scale => "scale",
            SpanKind::Unpack => "unpack",
            SpanKind::Superblock => "superblock",
            SpanKind::Execute => "execute",
            SpanKind::TuneSweep => "tune_sweep",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        SPAN_KINDS.get(v as usize).copied()
    }
}

/// One completed, timestamped span drained out of a ring.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Recorder-assigned id of the thread that produced the span (dense,
    /// starting at 1, in first-record order).
    pub tid: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (packs in a super-block, batch count of a
    /// plan build, tiles in a dispatch batch; 0 when unused).
    pub arg: u64,
}

/// Words per slot: kind, start, dur, arg.
const SLOT_WORDS: usize = 4;

struct Slot {
    /// Seqlock: odd while being written; even and monotonically increasing
    /// otherwise.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// A fixed-capacity lossy SPSC ring of span events.
pub struct SpanRing {
    tid: u64,
    /// Events ever pushed (head % capacity is the next write slot).
    head: AtomicU64,
    /// Consumer watermark: events below this index were already drained.
    drained: AtomicU64,
    slots: Vec<Slot>,
}

impl SpanRing {
    /// Creates a ring for `tid` holding at most `capacity` events
    /// (`capacity` is clamped to at least 2).
    pub fn with_capacity(tid: u64, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            tid,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Recorder-assigned thread id this ring belongs to.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events pushed over the ring's lifetime (drained or not, including
    /// overwritten ones).
    pub fn pushed(&self) -> u64 {
        // ordering: Relaxed — advisory counter read; callers wanting
        // slot contents go through `drain`, which re-loads with Acquire.
        self.head.load(Relaxed)
    }

    /// Events lost to overwrite-oldest so far (relative to the drain
    /// watermark).
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — advisory statistic over two monotonic
        // counters; a skewed pair only mis-reports the loss count by the
        // events in flight, never touches slot contents.
        let head = self.head.load(Relaxed);
        let drained = self.drained.load(Relaxed);
        let cap = self.slots.len() as u64;
        head.saturating_sub(cap).saturating_sub(drained)
    }

    /// Producer side: records one completed span. Wait-free; overwrites
    /// the oldest undelivered event when full. Must only be called from
    /// the ring's owning thread.
    pub fn push(&self, kind: SpanKind, start_ns: u64, dur_ns: u64, arg: u64) {
        // ordering: Relaxed — single-producer: only this thread ever
        // stores `head` or `seq`, so it reads its own last values back.
        let head = self.head.load(Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Relaxed);
        // ordering: Release — mark the slot in-flight (odd) *before*
        // touching its words: a consumer that Acquire-loads an even seq
        // afterwards is guaranteed the word stores below are not sunk
        // above this mark.
        slot.seq.store(seq | 1, Release);
        // ordering: Relaxed — the words need no ordering of their own;
        // they are fenced by the odd/even seq stores around them and
        // re-validated by the consumer's s1 == s2 check.
        slot.words[0].store(kind as u64, Relaxed);
        slot.words[1].store(start_ns, Relaxed);
        slot.words[2].store(dur_ns, Relaxed);
        slot.words[3].store(arg, Relaxed);
        // ordering: Release — publish with the next even sequence number:
        // pairs with the consumer's s1 Acquire load so the word stores
        // above happen-before any read that observes this even value.
        slot.seq.store((seq | 1).wrapping_add(1), Release);
        // ordering: Release — publish the new head after the slot is
        // complete; pairs with drain's Acquire so a consumer that sees
        // index `head` also sees the finished slot behind it.
        self.head.store(head + 1, Release);
    }

    /// Consumer side: copies out every undrained event, oldest first, and
    /// advances the drain watermark. Events the producer overwrote (or is
    /// overwriting right now) are skipped — the returned events are the
    /// *newest* surviving ones, in push order.
    pub fn drain(&self, out: &mut Vec<SpanEvent>) {
        // ordering: Acquire — pairs with push's Release head store: every
        // slot at an index below the observed head was fully published.
        let head = self.head.load(Acquire);
        let cap = self.slots.len() as u64;
        // ordering: Relaxed — single-consumer watermark: only this
        // (sole) consumer ever stores `drained`, so it reads its own
        // last value back.
        let drained = self.drained.load(Relaxed);
        let start = drained.max(head.saturating_sub(cap));
        for idx in start..head {
            let slot = &self.slots[(idx % cap) as usize];
            // ordering: Acquire — seqlock read prologue: pairs with the
            // producer's even Release store so the word loads below see
            // at least that write's words.
            let s1 = slot.seq.load(Acquire);
            if s1 & 1 == 1 {
                continue; // mid-write
            }
            // ordering: Relaxed — word loads are sandwiched between the
            // s1/s2 seq loads; any concurrent overwrite flips seq and the
            // s1 != s2 check below discards the torn tuple.
            let kind = slot.words[0].load(Relaxed);
            let start_ns = slot.words[1].load(Relaxed);
            let dur_ns = slot.words[2].load(Relaxed);
            let arg = slot.words[3].load(Relaxed);
            // ordering: Acquire — seqlock read epilogue: orders the word
            // loads above before this re-check, so an unchanged seq
            // means the tuple is the one published by that sequence
            // number.
            let s2 = slot.seq.load(Acquire);
            if s1 != s2 {
                continue; // torn: producer lapped us mid-read
            }
            // A slot can also be *silently* lapped a full capacity between
            // the head read and here; its event would then belong to a
            // newer index than `idx`. That event is re-delivered (not
            // duplicated) on the next drain via the watermark, and the
            // stale `idx` copy is identical to the newer one, so ordering
            // by push index stays chronological per thread.
            if let Some(kind) = SpanKind::from_u8(kind as u8) {
                out.push(SpanEvent {
                    tid: self.tid,
                    kind,
                    start_ns,
                    dur_ns,
                    arg,
                });
            }
        }
        // ordering: Release — publish the advanced watermark; `dropped`
        // reads it relaxed (advisory) and the sole consumer reads its own
        // store back, so Release is only needed to keep the watermark
        // from appearing ahead of the event copies above.
        self.drained.store(head, Release);
    }

    /// Consumer side: discards everything recorded so far.
    pub fn clear(&self) {
        // ordering: Acquire/Release — same pairing as `drain`: observe
        // the producer's published head, then publish the watermark.
        self.drained.store(self.head.load(Acquire), Release);
    }
}

/// Bounded model checking of the seqlock protocol (run with
/// `RUSTFLAGS="--cfg loom" cargo test -p iatf-trace --features enabled
/// --lib loom`): a producer wrapping the ring against a concurrent
/// consumer, through every interleaving within the model checker's
/// preemption bound.
#[cfg(all(loom, test))]
mod loom_models {
    use super::*;
    use loom::thread;
    use std::sync::Arc;

    /// Every pushed event satisfies `dur == start * 3` and
    /// `arg == start + 7`; a torn read (words mixed across two pushes)
    /// breaks at least one of the relations.
    fn coherent(e: &SpanEvent) -> bool {
        e.dur_ns == e.start_ns * 3 && e.arg == e.start_ns + 7
    }

    /// Invariant: no drained event is ever torn, even while the producer
    /// wraps the (minimum-size) ring underneath the consumer — a slot
    /// caught mid-overwrite is discarded, never delivered half-old. The
    /// ring is deliberately lossy (skipped slots are dropped, a lapped
    /// slot may deliver its newer payload, and the final `drain` in
    /// `recorder` sorts), so *tear-freedom and payload authenticity* are
    /// exactly the properties the seqlock owes — order and completeness
    /// are not.
    #[test]
    fn seqlock_drain_never_yields_torn_events_under_wraparound() {
        loom::model(|| {
            let ring = Arc::new(SpanRing::with_capacity(1, 2));
            let producer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    // Capacity 2, three pushes: the third overwrites the
                    // first while the consumer may be mid-read.
                    for i in 0..3u64 {
                        ring.push(SpanKind::Compute, i, i * 3, i + 7);
                    }
                })
            };

            // Concurrent drain: may catch any slot mid-write or
            // mid-overwrite.
            let mut out = Vec::new();
            ring.drain(&mut out);

            producer.join().unwrap();

            // Post-join drain picks up whatever the watermark left.
            ring.drain(&mut out);

            for e in &out {
                assert!(
                    coherent(e),
                    "torn event drained under wraparound: {e:?}"
                );
                assert!(
                    e.start_ns < 3 && e.kind == SpanKind::Compute,
                    "drained an event the producer never pushed: {e:?}"
                );
            }
            assert_eq!(ring.pushed(), 3);
        });
    }

    /// Without a racing consumer, wraparound loses only the overwritten
    /// prefix: a quiescent drain delivers exactly the newest `capacity`
    /// events, untorn and in push order.
    #[test]
    fn quiescent_drain_after_wraparound_is_exact() {
        loom::model(|| {
            let ring = Arc::new(SpanRing::with_capacity(1, 2));
            let producer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for i in 0..3u64 {
                        ring.push(SpanKind::Compute, i, i * 3, i + 7);
                    }
                })
            };
            producer.join().unwrap();

            let mut out = Vec::new();
            ring.drain(&mut out);
            assert_eq!(out.len(), 2);
            assert!(out.iter().all(coherent));
            assert_eq!(
                out.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
                vec![1, 2]
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &SpanRing, i: u64) {
        ring.push(SpanKind::Compute, 1_000 + i, 10, i);
    }

    #[test]
    fn wraparound_keeps_newest_in_chronological_order() {
        let ring = SpanRing::with_capacity(7, 8);
        for i in 0..20 {
            ev(&ring, i);
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        // events > capacity: only the newest `capacity` survive …
        assert_eq!(out.len(), 8);
        // … and the drain order is chronological (oldest surviving first).
        let args: Vec<u64> = out.iter().map(|e| e.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
        assert!(out.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(ring.pushed(), 20);
        assert_eq!(out[0].tid, 7);
    }

    #[test]
    fn drain_is_incremental_and_lossless_below_capacity() {
        let ring = SpanRing::with_capacity(1, 16);
        for i in 0..5 {
            ev(&ring, i);
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 5);
        ring.drain(&mut out);
        assert_eq!(out.len(), 5, "second drain re-delivers nothing");
        for i in 5..9 {
            ev(&ring, i);
        }
        out.clear();
        ring.drain(&mut out);
        assert_eq!(out.iter().map(|e| e.arg).collect::<Vec<_>>(), vec![5, 6, 7, 8]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn dropped_counts_overwritten_events() {
        let ring = SpanRing::with_capacity(1, 4);
        for i in 0..10 {
            ev(&ring, i);
        }
        assert_eq!(ring.dropped(), 6);
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn clear_discards_pending_events() {
        let ring = SpanRing::with_capacity(1, 8);
        for i in 0..3 {
            ev(&ring, i);
        }
        ring.clear();
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_is_clamped() {
        let ring = SpanRing::with_capacity(1, 0);
        assert!(ring.capacity() >= 2);
    }
}
