//! Chrome `trace_event` JSON export.
//!
//! Renders drained [`SpanEvent`]s as the Trace Event Format's *complete*
//! events (`"ph": "X"`), one JSON object per span, wrapped in the
//! `{"traceEvents": […]}` envelope Perfetto and `chrome://tracing` load
//! directly. Timestamps are microseconds (the format's unit) with
//! sub-microsecond precision kept as fractions.

use crate::ring::SpanEvent;
use iatf_obs::json::escape_into;

/// Process id used for every event (the trace covers one process).
const PID: u64 = 1;

/// Renders `events` as a Chrome trace JSON document.
///
/// `process_name` labels the process track in the viewer (e.g.
/// `"iatf reproduce trace"`).
pub fn chrome_trace_json(process_name: &str, events: &[SpanEvent]) -> String {
    // ~120 bytes per event plus envelope: preallocate once.
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    out.push_str("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"");
    escape_into(&mut out, process_name);
    out.push_str("\"}}");
    for e in events {
        out.push(',');
        render_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

fn render_event(out: &mut String, e: &SpanEvent) {
    use std::fmt::Write;
    let ts_us = e.start_ns as f64 / 1e3;
    let dur_us = e.dur_ns as f64 / 1e3;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"iatf\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":{PID},\"tid\":{},\"args\":{{\"arg\":{}}}}}",
        e.kind.name(),
        e.tid,
        e.arg,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::SpanKind;

    #[test]
    fn renders_complete_events_in_envelope() {
        let events = vec![
            SpanEvent {
                tid: 1,
                kind: SpanKind::PackA,
                start_ns: 1500,
                dur_ns: 2500,
                arg: 0,
            },
            SpanEvent {
                tid: 2,
                kind: SpanKind::Execute,
                start_ns: 4000,
                dur_ns: 10_000,
                arg: 8,
            },
        ];
        let json = chrome_trace_json("unit \"test\"", &events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"pack_a\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\\\"test\\\""));
        // crude balance check: equal braces and brackets
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_is_still_a_valid_envelope() {
        let json = chrome_trace_json("empty", &[]);
        assert!(json.contains("traceEvents"));
        assert!(json.ends_with("]}"));
    }
}
