//! Roofline attribution: predicted vs measured compute-to-memory ratios.
//!
//! Joins each plan's *analytical* predictions (the explainer's flops and
//! compulsory operand traffic — what the install-time stage's CMAR model
//! believes) with *measured* PMU counters from the same execution, and
//! reports per-plan:
//!
//! * achieved GFLOPS and flops/cycle,
//! * predicted CMAR (paper Eq. 2's objective: flops per byte of memory
//!   traffic) vs achieved CMAR (flops per byte measured entering L1),
//! * arithmetic intensity against the measured traffic,
//! * a **model-error percentage** — how far the measured bytes drifted
//!   from the prediction, the feedback signal the autotuner can check the
//!   analytical model against.
//!
//! Measured traffic is `l1d_refill × cache_line_bytes`: lines *pulled
//! into* L1. The Batch Counter sizes super-blocks so packed panels stay
//! L1-resident, so the model's predicted traffic is the compulsory
//! operand traffic (read A, read B, read+write C) — if the working set
//! actually cycles through L1 the way the model assumes, refills ≈
//! prediction; thrashing shows up as a positive model error.
//!
//! When the PMU source is [unavailable](crate::pmu::PmuSource), the
//! report still renders — prediction columns filled, measurement columns
//! empty, and the header explicitly flagging the degraded source.

use crate::pmu::PmuCounters;

/// Cache-line size assumed for refill-to-bytes conversion. Every ARMv8
/// server core the paper targets (and every x86 dev box) uses 64-byte
/// lines.
pub const DEFAULT_LINE_BYTES: u64 = 64;

/// One measured workload point, before derivation.
#[derive(Clone, Debug)]
pub struct RooflineInput {
    /// Display label (`"gemm f32 n=16"`).
    pub label: String,
    /// Routine name.
    pub op: String,
    /// Element type name.
    pub dtype: String,
    /// Problem order.
    pub n: usize,
    /// Group size.
    pub count: usize,
    /// Executions the counters cover (flops/bytes below are per execute).
    pub reps: u64,
    /// Plan-predicted flops per execute (explainer).
    pub predicted_flops: u64,
    /// Plan-predicted compulsory memory traffic per execute, bytes.
    pub predicted_bytes: u64,
    /// Measured wall time for all `reps`, ns.
    pub elapsed_ns: u64,
    /// PMU counters accumulated over all `reps` (`None`: source degraded).
    pub counters: Option<PmuCounters>,
}

/// One derived roofline row.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    /// The measurement this row derives from.
    pub input: RooflineInput,
    /// Achieved GFLOPS over the measured wall time.
    pub achieved_gflops: f64,
    /// Predicted CMAR: flops per predicted byte.
    pub predicted_cmar: f64,
    /// Measured bytes entering L1 per execute (`l1d_refill × line`).
    pub measured_bytes: Option<f64>,
    /// Achieved CMAR: flops per measured byte.
    pub achieved_cmar: Option<f64>,
    /// Flops per cycle.
    pub flops_per_cycle: Option<f64>,
    /// Instructions per cycle.
    pub ipc: Option<f64>,
    /// Signed model error: `(measured − predicted) / predicted × 100`.
    pub model_error_pct: Option<f64>,
}

fn derive(input: RooflineInput, line_bytes: u64) -> RooflinePoint {
    let reps = input.reps.max(1) as f64;
    let total_flops = input.predicted_flops as f64 * reps;
    let achieved_gflops = if input.elapsed_ns > 0 {
        total_flops / input.elapsed_ns as f64 // flops/ns == GFLOPS
    } else {
        f64::NAN
    };
    let predicted_cmar = if input.predicted_bytes > 0 {
        input.predicted_flops as f64 / input.predicted_bytes as f64
    } else {
        f64::NAN
    };
    let measured_bytes = input
        .counters
        .as_ref()
        .and_then(|c| c.l1d_refill)
        .map(|refills| refills as f64 * line_bytes as f64 / reps);
    let achieved_cmar = measured_bytes
        .filter(|&b| b > 0.0)
        .map(|b| input.predicted_flops as f64 / b);
    let flops_per_cycle = input
        .counters
        .as_ref()
        .filter(|c| c.cycles > 0)
        .map(|c| total_flops / c.cycles as f64);
    let ipc = input.counters.as_ref().and_then(|c| c.ipc());
    let model_error_pct = measured_bytes.and_then(|m| {
        (input.predicted_bytes > 0)
            .then(|| 100.0 * (m - input.predicted_bytes as f64) / input.predicted_bytes as f64)
    });
    RooflinePoint {
        input,
        achieved_gflops,
        predicted_cmar,
        measured_bytes,
        achieved_cmar,
        flops_per_cycle,
        ipc,
        model_error_pct,
    }
}

/// A full attribution report: one row per workload point plus the PMU
/// source's self-description.
#[derive(Clone, Debug)]
pub struct RooflineReport {
    /// Whether measurement columns carry data.
    pub pmu_available: bool,
    /// The source's `describe()` string (reason when degraded).
    pub pmu_source: String,
    /// Line size used for refill→bytes conversion.
    pub line_bytes: u64,
    /// Derived rows.
    pub points: Vec<RooflinePoint>,
}

impl RooflineReport {
    /// Builds a report from measured inputs. `pmu_source` should be the
    /// sampler's [`describe()`](crate::pmu::PmuSource::describe) string.
    pub fn new(pmu_available: bool, pmu_source: String, inputs: Vec<RooflineInput>) -> Self {
        Self {
            pmu_available,
            pmu_source,
            line_bytes: DEFAULT_LINE_BYTES,
            points: inputs
                .into_iter()
                .map(|i| derive(i, DEFAULT_LINE_BYTES))
                .collect(),
        }
    }

    /// Largest absolute model error across rows that measured one.
    pub fn worst_model_error_pct(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.model_error_pct)
            .map(f64::abs)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Fixed-width table for terminal output.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "## Roofline attribution (predicted vs measured CMAR)");
        let _ = writeln!(s, "   pmu source: {}", self.pmu_source);
        if !self.pmu_available {
            let _ = writeln!(
                s,
                "   NOTE: PMU unavailable — measurement columns are empty, predictions only"
            );
        }
        let _ = writeln!(
            s,
            "{:>16} {:>10} {:>10} {:>10} {:>11} {:>11} {:>9} {:>7} {:>9}",
            "point",
            "GFLOPS",
            "pred B",
            "meas B",
            "pred CMAR",
            "real CMAR",
            "flop/cyc",
            "IPC",
            "err%"
        );
        let opt = |v: Option<f64>, prec: usize| -> String {
            v.map_or_else(|| "-".into(), |x| format!("{x:>.prec$}"))
        };
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:>16} {:>10.2} {:>10} {:>10} {:>11.3} {:>11} {:>9} {:>7} {:>9}",
                p.input.label,
                p.achieved_gflops,
                p.input.predicted_bytes,
                p.measured_bytes.map_or_else(|| "-".into(), |b| format!("{b:.0}")),
                p.predicted_cmar,
                opt(p.achieved_cmar, 3),
                opt(p.flops_per_cycle, 2),
                opt(p.ipc, 2),
                opt(p.model_error_pct, 1),
            );
        }
        if let Some(worst) = self.worst_model_error_pct() {
            let _ = writeln!(s, "   worst |model error|: {worst:.1}%");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(counters: Option<PmuCounters>) -> RooflineInput {
        RooflineInput {
            label: "gemm f32 n=16".into(),
            op: "gemm".into(),
            dtype: "f32".into(),
            n: 16,
            count: 256,
            reps: 10,
            predicted_flops: 2_097_152,
            predicted_bytes: 1_048_576,
            elapsed_ns: 10_000_000,
            counters,
        }
    }

    #[test]
    fn derives_measured_columns_from_counters() {
        let counters = PmuCounters {
            cycles: 1_000_000,
            instructions: Some(2_000_000),
            l1d_refill: Some(180_000), // ×64/10 reps = 1_152_000 B/exec
            time_enabled_ns: 1,
            time_running_ns: 1,
            ..Default::default()
        };
        let r = RooflineReport::new(true, "perf_event group: …".into(), vec![input(Some(counters))]);
        let p = &r.points[0];
        assert!((p.achieved_gflops - 2.097152).abs() < 1e-6);
        assert!((p.predicted_cmar - 2.0).abs() < 1e-12);
        let mb = p.measured_bytes.unwrap();
        assert!((mb - 1_152_000.0).abs() < 1.0);
        // +9.86% over the 1 MiB prediction
        let err = p.model_error_pct.unwrap();
        assert!((err - 9.8632).abs() < 0.01, "err {err}");
        assert_eq!(p.ipc, Some(2.0));
        assert!(r.worst_model_error_pct().unwrap() > 9.0);
        assert!(r.render_text().contains("gemm f32 n=16"));
    }

    #[test]
    fn unavailable_source_yields_empty_but_valid_report() {
        let r = RooflineReport::new(
            false,
            "unavailable: perf_event_open(cycles) failed".into(),
            vec![input(None)],
        );
        let p = &r.points[0];
        assert!(p.measured_bytes.is_none());
        assert!(p.achieved_cmar.is_none());
        assert!(p.model_error_pct.is_none());
        assert!(p.ipc.is_none());
        // predictions still derived
        assert!(p.achieved_gflops > 0.0);
        assert!((p.predicted_cmar - 2.0).abs() < 1e-12);
        assert!(r.worst_model_error_pct().is_none());
        let text = r.render_text();
        assert!(text.contains("PMU unavailable"));
        assert!(text.contains("unavailable: perf_event_open"));
    }

    #[test]
    fn empty_report_renders() {
        let r = RooflineReport::new(false, "unavailable: test".into(), Vec::new());
        assert!(r.render_text().contains("Roofline"));
        assert!(r.worst_model_error_pct().is_none());
    }
}
