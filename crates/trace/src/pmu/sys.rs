//! The `perf_event_open(2)` syscall shim — the single `unsafe` island of
//! the workspace's instrumentation crates (allowlisted in
//! `scripts/verify.sh`).
//!
//! Everything here is a thin, audited wrapper over three libc entry points
//! (`syscall`, `ioctl`, `read`) declared directly — the workspace vendors
//! no `libc` crate. Safety rests on three invariants:
//!
//! * the `perf_event_attr` struct below matches the kernel ABI layout for
//!   `PERF_ATTR_SIZE_VER5` (112 bytes) and is passed by valid reference;
//! * every file descriptor returned by the syscall is immediately wrapped
//!   in an [`OwnedFd`], so it is closed exactly once;
//! * `read` is only handed buffers whose length is derived from the
//!   buffer itself.
//!
//! Errors are surfaced as `std::io::Error::last_os_error()`, which reads
//! the thread's `errno` through std (no `__errno_location` declaration
//! needed).

#![allow(unsafe_code)]

use std::ffi::{c_int, c_long, c_ulong, c_void};
use std::io;
use std::os::fd::{AsRawFd, BorrowedFd, FromRawFd, OwnedFd};

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
}

/// `__NR_perf_event_open` for the architectures we run on.
#[cfg(target_arch = "x86_64")]
const SYS_PERF_EVENT_OPEN: c_long = 298;
#[cfg(target_arch = "aarch64")]
const SYS_PERF_EVENT_OPEN: c_long = 241;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const SYS_PERF_EVENT_OPEN: c_long = -1;

/// `perf_event_attr`, `PERF_ATTR_SIZE_VER5` layout (112 bytes). The
/// bitfield word is exposed as a plain `u64` (`flags`); bit positions are
/// the header's declaration order from bit 0.
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct PerfEventAttr {
    pub type_: u32,
    pub size: u32,
    pub config: u64,
    pub sample_period_or_freq: u64,
    pub sample_type: u64,
    pub read_format: u64,
    pub flags: u64,
    pub wakeup: u32,
    pub bp_type: u32,
    pub config1: u64,
    pub config2: u64,
    pub branch_sample_type: u64,
    pub sample_regs_user: u64,
    pub sample_stack_user: u32,
    pub clockid: i32,
    pub sample_regs_intr: u64,
    pub aux_watermark: u32,
    pub sample_max_stack: u16,
    pub reserved_2: u16,
}

pub const ATTR_SIZE: u32 = std::mem::size_of::<PerfEventAttr>() as u32;

// attr.flags bits (header declaration order).
pub const FLAG_DISABLED: u64 = 1 << 0;
pub const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
pub const FLAG_EXCLUDE_HV: u64 = 1 << 6;

// attr.type_
pub const TYPE_HARDWARE: u32 = 0;
pub const TYPE_HW_CACHE: u32 = 3;

// TYPE_HARDWARE configs
pub const HW_CPU_CYCLES: u64 = 0;
pub const HW_INSTRUCTIONS: u64 = 1;

// TYPE_HW_CACHE config = id | (op << 8) | (result << 16)
pub const CACHE_L1D: u64 = 0;
pub const CACHE_LL: u64 = 2;
pub const CACHE_OP_READ: u64 = 0;
pub const CACHE_RESULT_ACCESS: u64 = 0;
pub const CACHE_RESULT_MISS: u64 = 1;

// attr.read_format
pub const FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
pub const FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
pub const FORMAT_GROUP: u64 = 1 << 3;

// perf_event_open flags
const PERF_FLAG_FD_CLOEXEC: c_ulong = 1 << 3;

// ioctls (`_IO('$', n)`), issued with PERF_IOC_FLAG_GROUP so they apply
// to the whole counter group through the leader fd.
const IOC_ENABLE: c_ulong = 0x2400;
const IOC_DISABLE: c_ulong = 0x2401;
const IOC_RESET: c_ulong = 0x2403;
const IOC_FLAG_GROUP: c_ulong = 1;

/// Opens one counter; `group_fd < 0` creates a group leader. Counts this
/// process on any CPU.
pub fn perf_event_open(attr: &PerfEventAttr, group_fd: c_int) -> io::Result<OwnedFd> {
    // SAFETY: `attr` is a valid, initialized PerfEventAttr whose `size`
    // field the callers set to ATTR_SIZE; the kernel reads exactly that
    // many bytes. pid=0/cpu=-1 selects "this process, any CPU".
    let fd = unsafe {
        syscall(
            SYS_PERF_EVENT_OPEN,
            attr as *const PerfEventAttr,
            0 as c_int,  // pid: calling process
            -1 as c_int, // cpu: any
            group_fd,
            PERF_FLAG_FD_CLOEXEC,
        )
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: the kernel just returned this fd to us; nothing else owns it.
    Ok(unsafe { OwnedFd::from_raw_fd(fd as c_int) })
}

fn group_ioctl(fd: BorrowedFd<'_>, request: c_ulong) -> io::Result<()> {
    // SAFETY: plain ioctl on a live perf fd; the GROUP flag is an integer
    // argument, no pointers cross the boundary.
    let rc = unsafe { ioctl(fd.as_raw_fd(), request, IOC_FLAG_GROUP) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Zeroes the whole group's counters.
pub fn group_reset(leader: BorrowedFd<'_>) -> io::Result<()> {
    group_ioctl(leader, IOC_RESET)
}

/// Starts the whole group counting.
pub fn group_enable(leader: BorrowedFd<'_>) -> io::Result<()> {
    group_ioctl(leader, IOC_ENABLE)
}

/// Stops the whole group.
pub fn group_disable(leader: BorrowedFd<'_>) -> io::Result<()> {
    group_ioctl(leader, IOC_DISABLE)
}

/// Reads the group's `u64` record array; returns how many `u64`s the
/// kernel filled.
pub fn read_group(leader: BorrowedFd<'_>, buf: &mut [u64]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes exactly `buf`'s storage.
    let n = unsafe {
        read(
            leader.as_raw_fd(),
            buf.as_mut_ptr() as *mut c_void,
            std::mem::size_of_val(buf),
        )
    };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize / std::mem::size_of::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_matches_ver5_abi_size() {
        assert_eq!(ATTR_SIZE, 112);
    }
}
