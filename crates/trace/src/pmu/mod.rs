//! PMU counter-group sampler.
//!
//! Opens one `perf_event_open` *group* — cycles (leader), instructions,
//! L1D read accesses/refills, last-level read accesses/refills — and
//! reads it around phase boundaries: [`PmuSource::measure`] resets,
//! enables, runs the closure, disables, and reads the whole group in one
//! syscall. On ARMv8 the kernel maps the generic cache events onto the
//! architectural PMU events (`L1D_CACHE`, `L1D_CACHE_REFILL`,
//! `L2D_CACHE`, `L2D_CACHE_REFILL`), which is exactly the traffic the
//! paper's CMAR model predicts.
//!
//! Degradation is graceful and *diagnosed*: when the syscall is
//! unavailable (non-Linux hosts, containers with a locked-down
//! `perf_event_paranoid`, seccomp filters) the source becomes
//! [`PmuSource::Unavailable`] with a reason string, measurements return
//! `None`, and the roofline report renders with its prediction columns
//! only. Individual *sibling* events that fail to open (a PMU without a
//! last-level-cache event, say) are skipped without losing the rest of
//! the group. Multiplexed groups (more events than hardware counters) are
//! scaled by `time_enabled / time_running` and flagged.

#[cfg(target_os = "linux")]
mod sys;

use std::fmt;

/// One slot of the fixed event group, in open (and read) order after the
/// leader.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Slot {
    Instructions,
    L1dAccess,
    L1dRefill,
    LlAccess,
    LlRefill,
}

impl Slot {
    fn name(self) -> &'static str {
        match self {
            Slot::Instructions => "instructions",
            Slot::L1dAccess => "l1d_access",
            Slot::L1dRefill => "l1d_refill",
            Slot::LlAccess => "ll_access",
            Slot::LlRefill => "ll_refill",
        }
    }
}

const SIBLINGS: [Slot; 5] = [
    Slot::Instructions,
    Slot::L1dAccess,
    Slot::L1dRefill,
    Slot::LlAccess,
    Slot::LlRefill,
];

/// One group read, scaled for multiplexing. Siblings the PMU could not
/// schedule (or that failed to open) are `None`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PmuCounters {
    /// CPU cycles (the group leader; always present when a read succeeds).
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: Option<u64>,
    /// L1 data-cache read accesses.
    pub l1d_access: Option<u64>,
    /// L1 data-cache read refills (misses filled from the next level).
    pub l1d_refill: Option<u64>,
    /// Last-level (L2 on the paper's Kunpeng 920 cores) read accesses.
    pub ll_access: Option<u64>,
    /// Last-level read refills/misses.
    pub ll_refill: Option<u64>,
    /// Wall time the group was enabled, ns.
    pub time_enabled_ns: u64,
    /// Time the group was actually scheduled on the PMU, ns.
    pub time_running_ns: u64,
    /// Whether multiplexing forced `time_enabled / time_running` scaling.
    pub scaled: bool,
}

impl PmuCounters {
    /// Instructions per cycle, when both counted.
    pub fn ipc(&self) -> Option<f64> {
        let i = self.instructions?;
        if self.cycles == 0 {
            return None;
        }
        Some(i as f64 / self.cycles as f64)
    }

    /// Merges another sample into this one (sums counters; used to
    /// accumulate over repeated measured regions).
    pub fn accumulate(&mut self, other: &PmuCounters) {
        fn add(a: &mut Option<u64>, b: Option<u64>) {
            *a = match (*a, b) {
                (Some(x), Some(y)) => Some(x + y),
                (v, None) | (None, v) => v,
            };
        }
        self.cycles += other.cycles;
        add(&mut self.instructions, other.instructions);
        add(&mut self.l1d_access, other.l1d_access);
        add(&mut self.l1d_refill, other.l1d_refill);
        add(&mut self.ll_access, other.ll_access);
        add(&mut self.ll_refill, other.ll_refill);
        self.time_enabled_ns += other.time_enabled_ns;
        self.time_running_ns += other.time_running_ns;
        self.scaled |= other.scaled;
    }
}

/// Why a source degraded to no-op, categorised for the obs counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PmuUnavailable {
    /// Not a Linux host (or an architecture without a syscall number).
    Unsupported,
    /// The kernel refused (`EACCES`/`EPERM`, typically
    /// `perf_event_paranoid` ≥ 2 inside containers).
    Permission,
    /// The syscall or the leader event does not exist
    /// (`ENOSYS`/`ENOENT`/`ENODEV`, seccomp, no PMU driver).
    NoPmu,
    /// Anything else (reason string has the errno).
    Other,
}

impl PmuUnavailable {
    /// Stable category name for counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            PmuUnavailable::Unsupported => "unsupported_platform",
            PmuUnavailable::Permission => "permission_denied",
            PmuUnavailable::NoPmu => "no_pmu",
            PmuUnavailable::Other => "open_failed",
        }
    }
}

/// An open `perf_event` counter group (opaque; obtained via
/// [`PmuSource::open`]).
#[cfg(target_os = "linux")]
pub struct Group {
    leader: std::os::fd::OwnedFd,
    /// Sibling fds in read order (kept open for the group's lifetime).
    siblings: Vec<(Slot, std::os::fd::OwnedFd)>,
    /// Events that failed to open, with the errno text.
    missing: Vec<(Slot, String)>,
}

/// A PMU sampling source: an open counter group, or an explained no-op.
pub enum PmuSource {
    /// Live `perf_event_open` group.
    #[cfg(target_os = "linux")]
    Group(Group),
    /// Counters unavailable; every measurement returns `None`.
    Unavailable {
        /// Category (for the obs counter).
        kind: PmuUnavailable,
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl fmt::Debug for PmuSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            #[cfg(target_os = "linux")]
            PmuSource::Group(g) => f
                .debug_struct("PmuSource::Group")
                .field("siblings", &g.siblings.len())
                .field("missing", &g.missing.len())
                .finish(),
            PmuSource::Unavailable { kind, reason } => f
                .debug_struct("PmuSource::Unavailable")
                .field("kind", kind)
                .field("reason", reason)
                .finish(),
        }
    }
}

#[cfg(target_os = "linux")]
fn classify(err: &std::io::Error) -> PmuUnavailable {
    use std::io::ErrorKind;
    match err.kind() {
        ErrorKind::PermissionDenied => PmuUnavailable::Permission,
        ErrorKind::NotFound | ErrorKind::Unsupported => PmuUnavailable::NoPmu,
        _ => match err.raw_os_error() {
            Some(38) /* ENOSYS */ | Some(19) /* ENODEV */ | Some(95) /* EOPNOTSUPP */ => {
                PmuUnavailable::NoPmu
            }
            _ => PmuUnavailable::Other,
        },
    }
}

#[cfg(target_os = "linux")]
fn attr_for(slot: Option<Slot>) -> sys::PerfEventAttr {
    let (type_, config) = match slot {
        None => (sys::TYPE_HARDWARE, sys::HW_CPU_CYCLES),
        Some(Slot::Instructions) => (sys::TYPE_HARDWARE, sys::HW_INSTRUCTIONS),
        Some(Slot::L1dAccess) => (
            sys::TYPE_HW_CACHE,
            sys::CACHE_L1D | (sys::CACHE_OP_READ << 8) | (sys::CACHE_RESULT_ACCESS << 16),
        ),
        Some(Slot::L1dRefill) => (
            sys::TYPE_HW_CACHE,
            sys::CACHE_L1D | (sys::CACHE_OP_READ << 8) | (sys::CACHE_RESULT_MISS << 16),
        ),
        Some(Slot::LlAccess) => (
            sys::TYPE_HW_CACHE,
            sys::CACHE_LL | (sys::CACHE_OP_READ << 8) | (sys::CACHE_RESULT_ACCESS << 16),
        ),
        Some(Slot::LlRefill) => (
            sys::TYPE_HW_CACHE,
            sys::CACHE_LL | (sys::CACHE_OP_READ << 8) | (sys::CACHE_RESULT_MISS << 16),
        ),
    };
    sys::PerfEventAttr {
        type_,
        size: sys::ATTR_SIZE,
        config,
        read_format: sys::FORMAT_GROUP
            | sys::FORMAT_TOTAL_TIME_ENABLED
            | sys::FORMAT_TOTAL_TIME_RUNNING,
        // Only the leader starts disabled; siblings follow the group.
        flags: sys::FLAG_EXCLUDE_KERNEL
            | sys::FLAG_EXCLUDE_HV
            | if slot.is_none() { sys::FLAG_DISABLED } else { 0 },
        ..Default::default()
    }
}

impl PmuSource {
    /// Opens the default event group for the calling process. Never
    /// panics; inspect [`PmuSource::availability`] for the outcome.
    pub fn open() -> PmuSource {
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let leader = match sys::perf_event_open(&attr_for(None), -1) {
                Ok(fd) => fd,
                Err(err) => {
                    return PmuSource::Unavailable {
                        kind: classify(&err),
                        reason: format!("perf_event_open(cycles) failed: {err}"),
                    };
                }
            };
            let mut siblings = Vec::new();
            let mut missing = Vec::new();
            for slot in SIBLINGS {
                match sys::perf_event_open(&attr_for(Some(slot)), leader.as_raw_fd()) {
                    Ok(fd) => siblings.push((slot, fd)),
                    Err(err) => missing.push((slot, err.to_string())),
                }
            }
            PmuSource::Group(Group {
                leader,
                siblings,
                missing,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            PmuSource::Unavailable {
                kind: PmuUnavailable::Unsupported,
                reason: "perf_event_open is Linux-only".into(),
            }
        }
    }

    /// A source that is always unavailable (tests, forced degradation).
    pub fn unavailable(reason: &str) -> PmuSource {
        PmuSource::Unavailable {
            kind: PmuUnavailable::Unsupported,
            reason: reason.to_string(),
        }
    }

    /// `Ok(events counted)` when live, `Err((category, reason))` when not.
    pub fn availability(&self) -> Result<usize, (PmuUnavailable, &str)> {
        match self {
            #[cfg(target_os = "linux")]
            PmuSource::Group(g) => Ok(1 + g.siblings.len()),
            PmuSource::Unavailable { kind, reason } => Err((*kind, reason)),
        }
    }

    /// Human-readable description of the source for reports.
    pub fn describe(&self) -> String {
        match self {
            #[cfg(target_os = "linux")]
            PmuSource::Group(g) => {
                let mut names = vec!["cycles".to_string()];
                names.extend(g.siblings.iter().map(|(s, _)| s.name().to_string()));
                let mut s = format!("perf_event group: {}", names.join(", "));
                if !g.missing.is_empty() {
                    let miss: Vec<&str> = g.missing.iter().map(|(m, _)| m.name()).collect();
                    s.push_str(&format!(" (unavailable: {})", miss.join(", ")));
                }
                s
            }
            PmuSource::Unavailable { reason, .. } => format!("unavailable: {reason}"),
        }
    }

    /// Runs `f` with the group counting around it: reset, enable, `f()`,
    /// disable, read. Returns `f`'s result and the counters (`None` when
    /// the source is unavailable or the read failed).
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> (T, Option<PmuCounters>) {
        match self {
            #[cfg(target_os = "linux")]
            PmuSource::Group(g) => {
                use std::os::fd::AsFd;
                let lead = g.leader.as_fd();
                let armed = sys::group_reset(lead).and_then(|()| sys::group_enable(lead)).is_ok();
                let out = f();
                let counters = if armed {
                    let _ = sys::group_disable(lead);
                    g.read_counters()
                } else {
                    None
                };
                (out, counters)
            }
            PmuSource::Unavailable { .. } => (f(), None),
        }
    }
}

#[cfg(target_os = "linux")]
impl Group {
    fn read_counters(&self) -> Option<PmuCounters> {
        use std::os::fd::AsFd;
        // layout: nr, time_enabled, time_running, value × nr
        let mut buf = [0u64; 3 + 1 + SIBLINGS.len()];
        let words = sys::read_group(self.leader.as_fd(), &mut buf).ok()?;
        if words < 4 {
            return None;
        }
        let nr = buf[0] as usize;
        if nr < 1 || words < 3 + nr {
            return None;
        }
        let (enabled, running) = (buf[1], buf[2]);
        if running == 0 {
            return None; // never scheduled: nothing trustworthy to report
        }
        let scale = if running < enabled {
            enabled as f64 / running as f64
        } else {
            1.0
        };
        let scaled_val = |v: u64| -> u64 { (v as f64 * scale) as u64 };
        let mut c = PmuCounters {
            cycles: scaled_val(buf[3]),
            time_enabled_ns: enabled,
            time_running_ns: running,
            scaled: running < enabled,
            ..Default::default()
        };
        for (i, (slot, _)) in self.siblings.iter().enumerate() {
            // group read order follows open order: leader then siblings
            let Some(&raw) = buf.get(3 + 1 + i) else { break };
            if 1 + i >= nr {
                break;
            }
            let v = Some(scaled_val(raw));
            match slot {
                Slot::Instructions => c.instructions = v,
                Slot::L1dAccess => c.l1d_access = v,
                Slot::L1dRefill => c.l1d_refill = v,
                Slot::LlAccess => c.ll_access = v,
                Slot::LlRefill => c.ll_refill = v,
            }
        }
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_panics_and_diagnoses_itself() {
        let mut src = PmuSource::open();
        let desc = src.describe();
        match src.availability() {
            Ok(n) => assert!(n >= 1, "a live group counts at least cycles"),
            Err((kind, reason)) => {
                assert!(!reason.is_empty());
                assert!(!kind.name().is_empty());
                assert!(desc.starts_with("unavailable:"));
            }
        }
        // measure() must run the closure exactly once either way.
        let (v, counters) = src.measure(|| 41 + 1);
        assert_eq!(v, 42);
        if let Some(c) = counters {
            assert!(c.time_running_ns > 0);
        }
    }

    #[test]
    fn forced_unavailable_measures_to_none() {
        let mut src = PmuSource::unavailable("forced by test");
        assert!(src.availability().is_err());
        let (v, counters) = src.measure(|| vec![1, 2, 3].len());
        assert_eq!(v, 3);
        assert!(counters.is_none());
        assert_eq!(src.describe(), "unavailable: forced by test");
    }

    #[test]
    fn counters_accumulate() {
        let mut a = PmuCounters {
            cycles: 10,
            instructions: Some(5),
            l1d_refill: Some(2),
            time_enabled_ns: 100,
            time_running_ns: 100,
            ..Default::default()
        };
        let b = PmuCounters {
            cycles: 30,
            instructions: Some(15),
            ll_refill: Some(7),
            time_enabled_ns: 50,
            time_running_ns: 25,
            scaled: true,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 40);
        assert_eq!(a.instructions, Some(20));
        assert_eq!(a.l1d_refill, Some(2));
        assert_eq!(a.ll_refill, Some(7));
        assert!(a.scaled);
        assert_eq!(a.ipc(), Some(0.5));
    }
}
