//! Atomic-type shim: real `std` atomics by default, `loom` model-checked
//! atomics under `--cfg loom`.
//!
//! The seqlock span rings ([`crate::ring`]) and the recorder registry
//! ([`crate::recorder`]) route every atomic through this module so the
//! seqlock torn-read protocol can be driven by the bounded model checker
//! (`RUSTFLAGS="--cfg loom" cargo test -p iatf-trace --features enabled
//! --lib loom`). With the cfg off these are plain re-exports — identical
//! codegen to naming `std::sync::atomic`.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
