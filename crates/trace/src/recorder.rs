//! The process-wide flight recorder.
//!
//! Every instrumented thread lazily registers one [`SpanRing`] in a global
//! registry on its first span; [`span`] opens a timing span whose guard
//! pushes a completed event into the *calling thread's* ring on drop
//! (single producer per ring, wait-free, lossy when full). [`drain`]
//! collects the surviving events of every ring, merged chronologically.
//!
//! With the `enabled` cargo feature off, [`span`] returns a zero-sized
//! guard with no `Drop` impl and [`drain`] is a constant empty vector —
//! the whole recorder compiles away, matching the `iatf-obs` probe
//! pattern.
//!
//! Timestamps are nanoseconds since the process *trace epoch*: the first
//! instant anything touched the recorder. All threads share the epoch, so
//! cross-thread event ordering in the exported trace is meaningful.

use crate::ring::SpanKind;
pub use crate::ring::SpanEvent;

#[cfg(feature = "enabled")]
use crate::ring::SpanRing;
#[cfg(feature = "enabled")]
use crate::sync::{AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Default per-thread ring capacity in events, overridable (before the
/// first span on a thread) with `IATF_TRACE_CAPACITY`.
pub const DEFAULT_CAPACITY: usize = 8192;

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (0 with the feature off).
pub fn now_ns() -> u64 {
    #[cfg(feature = "enabled")]
    {
        epoch().elapsed().as_nanos() as u64
    }
    #[cfg(not(feature = "enabled"))]
    0
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "enabled")]
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| iatf_obs::env::env_usize("IATF_TRACE_CAPACITY", DEFAULT_CAPACITY, 2))
}

#[cfg(feature = "enabled")]
thread_local! {
    static THREAD_RING: Arc<SpanRing> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        // ordering: Relaxed — id allocator: fetch_add's atomicity alone
        // guarantees unique tids; nothing else rides on this word.
        let ring = Arc::new(SpanRing::with_capacity(
            NEXT_TID.fetch_add(1, Relaxed),
            ring_capacity(),
        ));
        registry().lock().unwrap().push(Arc::clone(&ring));
        // Pin the epoch no later than the first registration so the first
        // event's timestamp is near zero.
        let _ = epoch();
        ring
    };
}

/// Live timing span; pushes a completed event into the calling thread's
/// ring on drop. Zero-sized (and drop-free) with the feature off.
#[must_use = "a span guard records until it drops; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    kind: SpanKind,
    #[cfg(feature = "enabled")]
    arg: u64,
    #[cfg(feature = "enabled")]
    start_ns: u64,
}

/// Opens a flight-recorder span of `kind`.
#[inline(always)]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_arg(kind, 0)
}

/// Opens a span carrying a kind-specific payload (packs in a super-block,
/// batch count of a plan build, …).
#[inline(always)]
pub fn span_arg(kind: SpanKind, arg: u64) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SpanGuard {
            kind,
            arg,
            start_ns: now_ns(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (kind, arg);
        SpanGuard {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = now_ns().saturating_sub(self.start_ns);
        THREAD_RING.with(|r| r.push(self.kind, self.start_ns, dur, self.arg));
    }
}

/// Whether the `enabled` feature was compiled in.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Drains every thread's ring: all surviving undrained events, merged and
/// sorted chronologically by start time. Always empty with the feature
/// off.
pub fn drain() -> Vec<SpanEvent> {
    #[cfg(feature = "enabled")]
    {
        let rings: Vec<Arc<SpanRing>> = registry().lock().unwrap().clone();
        let mut out = Vec::new();
        for ring in rings {
            ring.drain(&mut out);
        }
        out.sort_by_key(|e| (e.start_ns, e.tid));
        out
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Total events lost to overwrite-oldest across all rings since the last
/// drain (0 with the feature off).
pub fn dropped() -> u64 {
    #[cfg(feature = "enabled")]
    {
        registry().lock().unwrap().iter().map(|r| r.dropped()).sum()
    }
    #[cfg(not(feature = "enabled"))]
    0
}

/// Discards every recorded-but-undrained event (test isolation; a no-op
/// with the feature off).
pub fn reset() {
    #[cfg(feature = "enabled")]
    for ring in registry().lock().unwrap().iter() {
        ring.clear();
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod zero_size_tests {
    use super::*;

    #[test]
    fn guard_is_zero_sized_and_drain_is_empty_when_disabled() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        {
            let _g = span(SpanKind::Execute);
        }
        assert!(drain().is_empty());
        assert!(!is_enabled());
    }
}

#[cfg(all(test, feature = "enabled"))]
mod recording_tests {
    use super::*;

    /// One test owns all recorder-global assertions: rings are global and
    /// the harness runs tests concurrently, so sibling tests must not
    /// depend on drain contents.
    #[test]
    fn spans_record_nest_and_drain_chronologically() {
        reset();
        {
            let _outer = span_arg(SpanKind::Execute, 3);
            let _inner = span(SpanKind::PackA);
            std::hint::black_box(0u64);
        }
        {
            let _later = span(SpanKind::Compute);
            std::hint::black_box(0u64);
        }
        let events = drain();
        // Concurrent tests on other threads may contribute events; filter
        // to this thread's.
        let here: Vec<&SpanEvent> = {
            // our tid: record one more span and find its tid
            {
                let _probe = span_arg(SpanKind::TuneSweep, 0xC0FFEE);
            }
            let all = drain();
            let tid = all
                .iter()
                .find(|e| e.kind == SpanKind::TuneSweep && e.arg == 0xC0FFEE)
                .map(|e| e.tid)
                .expect("probe span must drain");
            events.iter().filter(|e| e.tid == tid).collect()
        };
        assert!(here.iter().any(|e| e.kind == SpanKind::PackA));
        assert!(here.iter().any(|e| e.kind == SpanKind::Execute && e.arg == 3));
        assert!(here.iter().any(|e| e.kind == SpanKind::Compute));
        // nesting: inner span closed no later than the outer
        let outer = here.iter().find(|e| e.kind == SpanKind::Execute).unwrap();
        let inner = here.iter().find(|e| e.kind == SpanKind::PackA).unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert!(here.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
}
