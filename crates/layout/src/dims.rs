//! Problem dimensions and validation.

use crate::props::{GemmMode, Side, TrsmMode};
use core::fmt;

/// Errors produced when batch shapes or problem dimensions are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// An operand's (rows, cols) don't match what the operation requires.
    ShapeMismatch {
        /// Operand name ("A", "B", "C").
        operand: &'static str,
        /// Shape the operation expected.
        expected: (usize, usize),
        /// Shape the operand actually has.
        got: (usize, usize),
    },
    /// Batch counts differ between operands.
    BatchMismatch {
        /// Operand name.
        operand: &'static str,
        /// Expected group size.
        expected: usize,
        /// Actual group size.
        got: usize,
    },
    /// A dimension is zero where the operation requires it positive.
    EmptyDimension(&'static str),
    /// An operand batch was laid out at a different vector width than the
    /// plan was built for. Group geometry (lanes per element group) differs
    /// between widths, so executing would misread every element; re-lay the
    /// batch out at the plan's width, or plan at the batch's width.
    WidthMismatch {
        /// Operand name.
        operand: &'static str,
        /// Width the plan was built for.
        expected: iatf_simd::VecWidth,
        /// Width the operand batch is laid out at.
        got: iatf_simd::VecWidth,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ShapeMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand}: expected shape {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LayoutError::BatchMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand}: expected batch of {expected} matrices, got {got}"
            ),
            LayoutError::EmptyDimension(d) => write!(f, "dimension {d} must be positive"),
            LayoutError::WidthMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand}: laid out at {}-bit vector width, plan built for {}-bit",
                got.name(),
                expected.name()
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// GEMM problem dimensions: `C (M×N) += op(A) (M×K) · op(B) (K×N)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct GemmDims {
    /// Rows of C and of op(A).
    pub m: usize,
    /// Columns of C and of op(B).
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmDims {
    /// Builds a dimension triple.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k }
    }

    /// Square problem of order `n` (the paper's sweep shape).
    pub const fn square(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Stored shape of A given the transpose flag.
    pub fn a_shape(&self, mode: GemmMode) -> (usize, usize) {
        match mode.transa {
            crate::props::Trans::No => (self.m, self.k),
            crate::props::Trans::Yes => (self.k, self.m),
        }
    }

    /// Stored shape of B given the transpose flag.
    pub fn b_shape(&self, mode: GemmMode) -> (usize, usize) {
        match mode.transb {
            crate::props::Trans::No => (self.k, self.n),
            crate::props::Trans::Yes => (self.n, self.k),
        }
    }

    /// Shape of C (independent of mode).
    pub fn c_shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Real multiply-accumulate count per matrix; multiply by
    /// [`iatf_simd::DType::flops_per_mac`] for FLOPs.
    pub fn macs(&self) -> usize {
        self.m * self.n * self.k
    }

    /// Validates positivity of all dimensions.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.m == 0 {
            return Err(LayoutError::EmptyDimension("M"));
        }
        if self.n == 0 {
            return Err(LayoutError::EmptyDimension("N"));
        }
        if self.k == 0 {
            return Err(LayoutError::EmptyDimension("K"));
        }
        Ok(())
    }
}

/// TRSM problem dimensions: B is `M×N`; A is `M×M` (left) or `N×N` (right).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TrsmDims {
    /// Rows of B.
    pub m: usize,
    /// Columns of B.
    pub n: usize,
}

impl TrsmDims {
    /// Builds a dimension pair.
    pub const fn new(m: usize, n: usize) -> Self {
        Self { m, n }
    }

    /// Square problem of order `n` (the paper's sweep shape).
    pub const fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Order of the triangular matrix for the given mode.
    pub fn triangle_order(&self, mode: TrsmMode) -> usize {
        match mode.side {
            Side::Left => self.m,
            Side::Right => self.n,
        }
    }

    /// Real multiply-accumulate count per matrix (the standard `TRSM`
    /// operation count: `N·M²/2` solves + `N·M²/2` updates ≈ `M²·N` MACs for
    /// the left side, symmetric for the right).
    pub fn macs(&self, mode: TrsmMode) -> usize {
        let t = self.triangle_order(mode);
        let other = if mode.side == Side::Left {
            self.n
        } else {
            self.m
        };
        // sum over rows i of (i multiply-subtracts + 1 divide) per column
        // ≈ t·(t+1)/2 per column, counting the divide as one MAC.
        other * t * (t + 1) / 2
    }

    /// Validates positivity of both dimensions.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.m == 0 {
            return Err(LayoutError::EmptyDimension("M"));
        }
        if self.n == 0 {
            return Err(LayoutError::EmptyDimension("N"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{Diag, Trans, Uplo};

    #[test]
    fn gemm_shapes_follow_transpose() {
        let d = GemmDims::new(3, 5, 7);
        assert_eq!(d.a_shape(GemmMode::NN), (3, 7));
        assert_eq!(d.a_shape(GemmMode::TN), (7, 3));
        assert_eq!(d.b_shape(GemmMode::NN), (7, 5));
        assert_eq!(d.b_shape(GemmMode::NT), (5, 7));
        assert_eq!(d.c_shape(), (3, 5));
        assert_eq!(d.macs(), 105);
    }

    #[test]
    fn trsm_triangle_side() {
        let d = TrsmDims::new(4, 9);
        assert_eq!(d.triangle_order(TrsmMode::LNLN), 4);
        let right = TrsmMode::new(Side::Right, Trans::No, Uplo::Upper, Diag::NonUnit);
        assert_eq!(d.triangle_order(right), 9);
        assert_eq!(d.macs(TrsmMode::LNLN), 9 * 4 * 5 / 2);
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(GemmDims::new(0, 1, 1).validate().is_err());
        assert!(GemmDims::new(1, 1, 1).validate().is_ok());
        assert!(TrsmDims::new(1, 0).validate().is_err());
        assert!(TrsmDims::new(2, 3).validate().is_ok());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = LayoutError::ShapeMismatch {
            operand: "A",
            expected: (3, 4),
            got: (4, 3),
        };
        assert!(e.to_string().contains("A"));
        assert!(e.to_string().contains("3x4"));
    }
}
