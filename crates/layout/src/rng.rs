//! A tiny deterministic RNG for matrix initialization.
//!
//! The paper initializes matrices "by filling with random floating-point
//! numbers (0 to 1)" following the testing scheme of Jia et al. [13]. Using a
//! self-contained SplitMix64 keeps the library crates free of the `rand`
//! dependency while making every fill reproducible from a seed.

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (n must be positive). Uses the
    /// multiply-shift trick; bias is negligible for the small `n` used in
    /// tests.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_and_below() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let i = rng.below(17);
            assert!(i < 17);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
