//! Data layouts for compact batched BLAS.
//!
//! Two batch containers, mirroring the paper's setting:
//!
//! * [`StdBatch`] — a group of column-major matrices stored back to back.
//!   This is what conventional BLAS libraries (and our baselines) consume.
//! * [`CompactBatch`] — the *SIMD-friendly data layout* (paper §4.1,
//!   following Kim et al. / Intel MKL compact): the same element `(i, j)` of
//!   `P` consecutive matrices is interleaved into one SIMD-vector-sized
//!   group, with zero padding when the group count is not a multiple of `P`.
//!   One 128-bit FMA then advances `P` matrices at once.
//!
//! Conversion in both directions is provided (the MKL compact interface's
//! `pack`/`unpack` equivalents), along with the BLAS matrix property types
//! the run-time stage keys its decisions on (paper: *Matrix Size,
//! Transposed/Non-Transposed, Left/Right, Lower/Upper, Unit/NonUnit*).

#![warn(missing_docs)]

pub mod compact;
pub mod dims;
pub mod props;
pub mod rng;
pub mod std_batch;

pub use compact::CompactBatch;
pub use dims::{GemmDims, LayoutError, TrsmDims};
pub use props::{Diag, GemmMode, Side, Trans, TrsmMode, Uplo};
pub use rng::SplitMix64;
pub use std_batch::StdBatch;
