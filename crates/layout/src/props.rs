//! BLAS matrix property types.
//!
//! These are the "input matrix properties" the run-time stage inspects
//! (paper §3): transpose flags for GEMM; side, triangle, transpose and
//! diagonal flags for TRSM.

use core::fmt;

/// Transpose flag for a GEMM operand or the TRSM coefficient matrix.
///
/// Conjugate-transpose is folded into `Trans` for complex types at the API
/// layer (the packing kernels conjugate while gathering), so the planner only
/// distinguishes transposed/non-transposed — exactly the property set the
/// paper tunes on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trans {
    /// Use the matrix as stored (`N`).
    No,
    /// Use the transpose (`T`).
    Yes,
}

impl Trans {
    /// Both values, `N` first.
    pub const ALL: [Trans; 2] = [Trans::No, Trans::Yes];

    /// BLAS character code.
    pub fn code(self) -> char {
        match self {
            Trans::No => 'N',
            Trans::Yes => 'T',
        }
    }

    /// The opposite flag.
    pub fn flip(self) -> Self {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }

    /// True if transposed.
    pub fn is_trans(self) -> bool {
        self == Trans::Yes
    }
}

/// Which side the triangular matrix appears on in TRSM.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// Solve `op(A)·X = α·B` (A is M×M).
    Left,
    /// Solve `X·op(A) = α·B` (A is N×N).
    Right,
}

impl Side {
    /// Both values, `L` first.
    pub const ALL: [Side; 2] = [Side::Left, Side::Right];

    /// BLAS character code.
    pub fn code(self) -> char {
        match self {
            Side::Left => 'L',
            Side::Right => 'R',
        }
    }
}

/// Which triangle of the TRSM coefficient matrix is referenced.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

impl Uplo {
    /// Both values, `L` first.
    pub const ALL: [Uplo; 2] = [Uplo::Lower, Uplo::Upper];

    /// BLAS character code.
    pub fn code(self) -> char {
        match self {
            Uplo::Lower => 'L',
            Uplo::Upper => 'U',
        }
    }

    /// The opposite triangle (transposing a triangular matrix flips it).
    pub fn flip(self) -> Self {
        match self {
            Uplo::Lower => Uplo::Upper,
            Uplo::Upper => Uplo::Lower,
        }
    }
}

/// Whether the TRSM diagonal is implicitly ones.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Diag {
    /// Diagonal stored explicitly (`NonUnit`).
    NonUnit,
    /// Diagonal assumed to be all ones (`Unit`), not referenced.
    Unit,
}

impl Diag {
    /// Both values, `NonUnit` first (matching the paper's LNLN default).
    pub const ALL: [Diag; 2] = [Diag::NonUnit, Diag::Unit];

    /// BLAS character code.
    pub fn code(self) -> char {
        match self {
            Diag::NonUnit => 'N',
            Diag::Unit => 'U',
        }
    }
}

/// The transpose mode pair of a GEMM call (`NN`, `NT`, `TN`, `TT`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GemmMode {
    /// Transpose flag of A.
    pub transa: Trans,
    /// Transpose flag of B.
    pub transb: Trans,
}

impl GemmMode {
    /// `C += A·B`.
    pub const NN: GemmMode = GemmMode::new(Trans::No, Trans::No);
    /// `C += A·Bᵀ`.
    pub const NT: GemmMode = GemmMode::new(Trans::No, Trans::Yes);
    /// `C += Aᵀ·B`.
    pub const TN: GemmMode = GemmMode::new(Trans::Yes, Trans::No);
    /// `C += Aᵀ·Bᵀ`.
    pub const TT: GemmMode = GemmMode::new(Trans::Yes, Trans::Yes);
    /// The four modes evaluated in the paper's Figure 8.
    pub const ALL: [GemmMode; 4] = [Self::NN, Self::NT, Self::TN, Self::TT];

    /// Builds a mode from its two flags.
    pub const fn new(transa: Trans, transb: Trans) -> Self {
        Self { transa, transb }
    }
}

impl fmt::Display for GemmMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.transa.code(), self.transb.code())
    }
}

/// The full mode of a TRSM call, e.g. `LNLN` = Left, Non-transpose, Lower,
/// NonUnit — the paper's headline TRSM configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrsmMode {
    /// Side of the triangular matrix.
    pub side: Side,
    /// Transpose flag of the triangular matrix.
    pub trans: Trans,
    /// Referenced triangle.
    pub uplo: Uplo,
    /// Diagonal kind.
    pub diag: Diag,
}

impl TrsmMode {
    /// Left, Non-transpose, Lower, NonUnit (paper Figure 9).
    pub const LNLN: TrsmMode = TrsmMode::new(Side::Left, Trans::No, Uplo::Lower, Diag::NonUnit);
    /// Left, Non-transpose, Upper, NonUnit (paper Figure 10).
    pub const LNUN: TrsmMode = TrsmMode::new(Side::Left, Trans::No, Uplo::Upper, Diag::NonUnit);
    /// Left, Transpose, Lower, NonUnit (paper Figure 10).
    pub const LTLN: TrsmMode = TrsmMode::new(Side::Left, Trans::Yes, Uplo::Lower, Diag::NonUnit);
    /// Left, Transpose, Upper, NonUnit (paper Figure 10).
    pub const LTUN: TrsmMode = TrsmMode::new(Side::Left, Trans::Yes, Uplo::Upper, Diag::NonUnit);

    /// Builds a mode from its four flags.
    pub const fn new(side: Side, trans: Trans, uplo: Uplo, diag: Diag) -> Self {
        Self {
            side,
            trans,
            uplo,
            diag,
        }
    }

    /// All sixteen TRSM modes.
    pub fn all() -> Vec<TrsmMode> {
        let mut out = Vec::with_capacity(16);
        for side in Side::ALL {
            for trans in Trans::ALL {
                for uplo in Uplo::ALL {
                    for diag in Diag::ALL {
                        out.push(TrsmMode::new(side, trans, uplo, diag));
                    }
                }
            }
        }
        out
    }

    /// The four left-side modes of the paper's Figure 10 in paper order.
    pub const FIG10: [TrsmMode; 4] = [Self::LNLN, Self::LNUN, Self::LTLN, Self::LTUN];

    /// The triangle that is *effectively* referenced after applying the
    /// transpose flag: `op(A)` of a lower-stored matrix is upper triangular
    /// when `trans == Yes`.
    pub fn effective_uplo(self) -> Uplo {
        match self.trans {
            Trans::No => self.uplo,
            Trans::Yes => self.uplo.flip(),
        }
    }
}

impl fmt::Display for TrsmMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.side.code(),
            self.trans.code(),
            self.uplo.code(),
            self.diag.code()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_mode_display() {
        let shown: Vec<String> = GemmMode::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(shown, ["NN", "NT", "TN", "TT"]);
    }

    #[test]
    fn trsm_mode_display_matches_paper_names() {
        assert_eq!(TrsmMode::LNLN.to_string(), "LNLN");
        assert_eq!(TrsmMode::LNUN.to_string(), "LNUN");
        assert_eq!(TrsmMode::LTLN.to_string(), "LTLN");
        assert_eq!(TrsmMode::LTUN.to_string(), "LTUN");
    }

    #[test]
    fn sixteen_trsm_modes_unique() {
        let all = TrsmMode::all();
        assert_eq!(all.len(), 16);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn transpose_flips_triangle() {
        assert_eq!(TrsmMode::LTLN.effective_uplo(), Uplo::Upper);
        assert_eq!(TrsmMode::LNLN.effective_uplo(), Uplo::Lower);
        assert_eq!(Trans::No.flip(), Trans::Yes);
        assert_eq!(Uplo::Upper.flip(), Uplo::Lower);
    }
}
