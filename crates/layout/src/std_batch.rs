//! Standard batch container: column-major matrices stored back to back.
//!
//! This is the layout conventional BLAS interfaces consume; the baselines
//! operate on it directly and the compact API converts from/to it.

use crate::dims::LayoutError;
use crate::props::{Diag, Uplo};
use crate::rng::SplitMix64;
use iatf_simd::Element;

/// A group of `count` column-major `rows × cols` matrices, stored
/// contiguously with leading dimension equal to `rows`.
#[derive(Clone, Debug, PartialEq)]
pub struct StdBatch<E> {
    rows: usize,
    cols: usize,
    count: usize,
    data: Vec<E>,
}

impl<E: Element> StdBatch<E> {
    /// Allocates a zero-filled batch.
    pub fn zeroed(rows: usize, cols: usize, count: usize) -> Self {
        Self {
            rows,
            cols,
            count,
            data: vec![E::zero(); rows * cols * count],
        }
    }

    /// Builds a batch by evaluating `f(matrix, row, col)` for every element.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        count: usize,
        mut f: impl FnMut(usize, usize, usize) -> E,
    ) -> Self {
        let mut b = Self::zeroed(rows, cols, count);
        for v in 0..count {
            for j in 0..cols {
                for i in 0..rows {
                    b.set(v, i, j, f(v, i, j));
                }
            }
        }
        b
    }

    /// Fills with uniform random values in `[0, 1)` (paper's initialization;
    /// complex types get independent random real and imaginary parts).
    pub fn fill_random(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        for x in &mut self.data {
            *x = E::from_f64s(rng.next_f64(), rng.next_f64());
        }
    }

    /// Convenience constructor: random batch in `[0, 1)`.
    pub fn random(rows: usize, cols: usize, count: usize, seed: u64) -> Self {
        let mut b = Self::zeroed(rows, cols, count);
        b.fill_random(seed);
        b
    }

    /// Builds a well-conditioned random triangular batch for TRSM testing:
    /// diagonal magnitudes in `[1, 2]`, off-diagonal magnitudes scaled by
    /// `1/order` so forward/back substitution stays stable. Elements outside
    /// the referenced triangle are filled with garbage (they must never be
    /// read). With `Diag::Unit` the stored diagonal is also garbage.
    pub fn random_triangular(order: usize, count: usize, uplo: Uplo, diag: Diag, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let scale = 1.0 / (order.max(1) as f64);
        Self::from_fn(order, order, count, |_, i, j| {
            let in_triangle = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if i == j {
                if diag == Diag::Unit {
                    // Poison: unit-diagonal solves must not read this.
                    E::from_f64s(1e30, -1e30)
                } else {
                    E::from_f64s(1.0 + rng.next_f64(), rng.next_f64() * 0.25)
                }
            } else if in_triangle {
                E::from_f64s(
                    rng.range_f64(-1.0, 1.0) * scale,
                    rng.range_f64(-1.0, 1.0) * scale,
                )
            } else {
                // Poison: outside the referenced triangle.
                E::from_f64s(7e29, 7e29)
            }
        })
    }

    /// Number of rows of each matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of each matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of matrices in the group.
    pub fn count(&self) -> usize {
        self.count
    }

    /// (rows, cols) pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Elements of one matrix (column-major slice of length `rows·cols`).
    pub fn mat(&self, v: usize) -> &[E] {
        let len = self.rows * self.cols;
        &self.data[v * len..(v + 1) * len]
    }

    /// Mutable elements of one matrix.
    pub fn mat_mut(&mut self, v: usize) -> &mut [E] {
        let len = self.rows * self.cols;
        &mut self.data[v * len..(v + 1) * len]
    }

    /// Element `(i, j)` of matrix `v`.
    #[inline]
    pub fn get(&self, v: usize, i: usize, j: usize) -> E {
        debug_assert!(v < self.count && i < self.rows && j < self.cols);
        self.data[v * self.rows * self.cols + j * self.rows + i]
    }

    /// Sets element `(i, j)` of matrix `v`.
    #[inline]
    pub fn set(&mut self, v: usize, i: usize, j: usize, x: E) {
        debug_assert!(v < self.count && i < self.rows && j < self.cols);
        self.data[v * self.rows * self.cols + j * self.rows + i] = x;
    }

    /// Whole backing storage.
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Checks this batch has the given shape and group size.
    pub fn expect_shape(
        &self,
        operand: &'static str,
        rows: usize,
        cols: usize,
        count: usize,
    ) -> Result<(), LayoutError> {
        if (self.rows, self.cols) != (rows, cols) {
            return Err(LayoutError::ShapeMismatch {
                operand,
                expected: (rows, cols),
                got: (self.rows, self.cols),
            });
        }
        if self.count != count {
            return Err(LayoutError::BatchMismatch {
                operand,
                expected: count,
                got: self.count,
            });
        }
        Ok(())
    }

    /// Largest absolute difference to another batch (∞-norm over all
    /// matrices), for test assertions.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape());
        assert_eq!(self.count, other.count);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.sub(*b).abs_f64())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_simd::c32;

    #[test]
    fn column_major_indexing() {
        let b = StdBatch::<f64>::from_fn(2, 3, 2, |v, i, j| (100 * v + 10 * i + j) as f64);
        // matrix 0, column-major: (0,0) (1,0) (0,1) (1,1) (0,2) (1,2)
        assert_eq!(b.mat(0), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(b.get(1, 1, 2), 112.0);
    }

    #[test]
    fn random_fill_in_unit_interval() {
        let b = StdBatch::<f32>::random(4, 4, 3, 11);
        for x in b.as_slice() {
            assert!((0.0..1.0).contains(x));
        }
        // complex fills both components
        let c = StdBatch::<c32>::random(3, 3, 2, 11);
        for z in c.as_slice() {
            assert!((0.0..1.0).contains(&z.re) && (0.0..1.0).contains(&z.im));
        }
    }

    #[test]
    fn triangular_fill_is_well_conditioned() {
        let t = StdBatch::<f64>::random_triangular(8, 2, Uplo::Lower, Diag::NonUnit, 3);
        for v in 0..2 {
            for i in 0..8 {
                let d = t.get(v, i, i);
                assert!((1.0..=2.0).contains(&d), "diag {d}");
                for j in 0..8 {
                    if i > j {
                        assert!(t.get(v, i, j).abs() <= 1.0 / 8.0 + 1e-12);
                    } else if i < j {
                        // poison above the diagonal
                        assert!(t.get(v, i, j).abs() > 1e20);
                    }
                }
            }
        }
    }

    #[test]
    fn unit_diag_is_poisoned() {
        let t = StdBatch::<f64>::random_triangular(4, 1, Uplo::Upper, Diag::Unit, 5);
        for i in 0..4 {
            assert!(t.get(0, i, i).abs() > 1e20);
        }
    }

    #[test]
    fn shape_check() {
        let b = StdBatch::<f32>::zeroed(3, 4, 5);
        assert!(b.expect_shape("A", 3, 4, 5).is_ok());
        assert!(matches!(
            b.expect_shape("A", 4, 3, 5),
            Err(LayoutError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            b.expect_shape("A", 3, 4, 6),
            Err(LayoutError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = StdBatch::<f64>::random(3, 3, 2, 1);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let old = b.get(1, 2, 0);
        b.set(1, 2, 0, old + 0.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
    }
}
