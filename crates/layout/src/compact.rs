//! The SIMD-friendly compact data layout (paper §4.1, Figure 3).
//!
//! A [`CompactBatch`] stores a group of same-sized matrices in *packs* of
//! `P` consecutive matrices, where `P` is the interleaving factor of the
//! batch's **vector width** — a runtime property
//! ([`CompactBatch::width`]), not a compile-time constant. Within a pack
//! the matrix is column-major, but each "element" is an *element group* of
//! `P` scalars — lane `l` belongs to matrix `pack·P + l`. Loading one
//! element group with a single vector load of that width yields the same
//! `(i, j)` element of `P` matrices, so every SIMD arithmetic instruction
//! advances `P` problems. The paper fixes `P` at the NEON lane count
//! (128-bit); this crate scales it with the dispatched backend — 8/16
//! `f32` lanes on AVX2/AVX-512 hosts — via
//! [`iatf_simd::dispatched_width`]. [`CompactBatch::zeroed`] and
//! [`CompactBatch::from_std`] lay out at the dispatched width; the `_at`
//! constructors pin an explicit width (tests, cross-width comparisons).
//!
//! Complex matrices use the split representation: an element group is `2·P`
//! scalars — `P` real parts followed by `P` imaginary parts (two vector
//! registers per element group, matching the paper's complex kernels).
//!
//! When the group size is not a multiple of `P`, the trailing lanes of the
//! last pack are zero-filled ("zero padding for the cases where there are
//! not enough P matrices", §4.1); TRSM additionally needs padded *diagonals*
//! to be one so the padded lanes stay finite — see
//! [`CompactBatch::pad_triangle_identity`].

use crate::std_batch::StdBatch;
use iatf_simd::{dispatched_width, Element, Real, VecWidth};

/// A group of matrices in the SIMD-friendly compact layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactBatch<E: Element> {
    rows: usize,
    cols: usize,
    count: usize,
    width: VecWidth,
    data: Vec<E::Real>,
}

impl<E: Element> CompactBatch<E> {
    /// Allocates a zero-filled compact batch for `count` matrices of shape
    /// `rows × cols`, laid out at the process-wide dispatched width.
    pub fn zeroed(rows: usize, cols: usize, count: usize) -> Self {
        Self::zeroed_at(rows, cols, count, dispatched_width())
    }

    /// Allocates a zero-filled compact batch laid out at an explicit
    /// vector width.
    pub fn zeroed_at(rows: usize, cols: usize, count: usize, width: VecWidth) -> Self {
        let p = E::p_at(width);
        let packs = count.div_ceil(p);
        Self {
            rows,
            cols,
            count,
            width,
            data: vec![E::Real::default(); packs * rows * cols * p * E::SCALARS],
        }
    }

    /// Converts a standard batch into the compact layout (the MKL-compact
    /// "pack into compact format" operation) at the dispatched width.
    /// Padding lanes are zero.
    pub fn from_std(src: &StdBatch<E>) -> Self {
        Self::from_std_at(src, dispatched_width())
    }

    /// Converts a standard batch into the compact layout at an explicit
    /// vector width.
    pub fn from_std_at(src: &StdBatch<E>, width: VecWidth) -> Self {
        let mut dst = Self::zeroed_at(src.rows(), src.cols(), src.count(), width);
        for v in 0..src.count() {
            for j in 0..src.cols() {
                for i in 0..src.rows() {
                    dst.set(v, i, j, src.get(v, i, j));
                }
            }
        }
        dst
    }

    /// Converts back to a standard batch, dropping padding lanes.
    pub fn to_std(&self) -> StdBatch<E> {
        let mut dst = StdBatch::zeroed(self.rows, self.cols, self.count);
        self.unpack_into(&mut dst);
        dst
    }

    /// Writes this batch's matrices into an existing standard batch of the
    /// same shape and group size.
    pub fn unpack_into(&self, dst: &mut StdBatch<E>) {
        assert_eq!(dst.shape(), (self.rows, self.cols));
        assert_eq!(dst.count(), self.count);
        for v in 0..self.count {
            for j in 0..self.cols {
                for i in 0..self.rows {
                    dst.set(v, i, j, self.get(v, i, j));
                }
            }
        }
    }

    /// Number of rows of each matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of each matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of *logical* matrices (excluding padding lanes).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The vector width this batch is laid out for.
    pub fn width(&self) -> VecWidth {
        self.width
    }

    /// Interleaving factor: matrices per pack (lanes per element group).
    #[inline]
    pub fn p(&self) -> usize {
        E::p_at(self.width)
    }

    /// Scalars in one element group (`P` for real, `2·P` for complex).
    #[inline]
    pub fn group(&self) -> usize {
        self.p() * E::SCALARS
    }

    /// Number of packs (`⌈count / P⌉`).
    pub fn packs(&self) -> usize {
        self.count.div_ceil(self.p())
    }

    /// Scalars from one pack to the next.
    pub fn pack_stride(&self) -> usize {
        self.rows * self.cols * self.group()
    }

    /// Scalars from one column to the next within a pack.
    pub fn col_stride(&self) -> usize {
        self.rows * self.group()
    }

    /// Scalar offset of element group `(i, j)` of pack `p`.
    #[inline]
    pub fn group_offset(&self, pack: usize, i: usize, j: usize) -> usize {
        debug_assert!(pack < self.packs() && i < self.rows && j < self.cols);
        pack * self.pack_stride() + (j * self.rows + i) * self.group()
    }

    /// Element `(i, j)` of matrix `v`.
    #[inline]
    pub fn get(&self, v: usize, i: usize, j: usize) -> E {
        debug_assert!(v < self.count);
        let p = self.p();
        let base = self.group_offset(v / p, i, j) + (v % p);
        if E::IS_COMPLEX {
            let re = self.data[base];
            let im = self.data[base + p];
            E::from_f64s(re.to_f64(), im.to_f64())
        } else {
            E::from_f64s(self.data[base].to_f64(), 0.0)
        }
    }

    /// Sets element `(i, j)` of matrix `v`.
    #[inline]
    pub fn set(&mut self, v: usize, i: usize, j: usize, x: E) {
        debug_assert!(v < self.count);
        let p = self.p();
        let base = self.group_offset(v / p, i, j) + (v % p);
        self.data[base] = x.re();
        if E::IS_COMPLEX {
            self.data[base + p] = x.im();
        }
    }

    /// The scalar slice of one pack.
    pub fn pack_slice(&self, pack: usize) -> &[E::Real] {
        let s = self.pack_stride();
        &self.data[pack * s..(pack + 1) * s]
    }

    /// The mutable scalar slice of one pack.
    pub fn pack_slice_mut(&mut self, pack: usize) -> &mut [E::Real] {
        let s = self.pack_stride();
        &mut self.data[pack * s..(pack + 1) * s]
    }

    /// Raw pointer to the first scalar of a pack (kernel entry point).
    pub fn pack_ptr(&self, pack: usize) -> *const E::Real {
        debug_assert!(pack < self.packs());
        // Safety of later dereferences is the caller's responsibility; the
        // offset itself is in bounds.
        unsafe { self.data.as_ptr().add(pack * self.pack_stride()) }
    }

    /// Mutable raw pointer to the first scalar of a pack.
    pub fn pack_ptr_mut(&mut self, pack: usize) -> *mut E::Real {
        debug_assert!(pack < self.packs());
        // SAFETY: `pack < packs()` (debug-asserted and upheld by callers), so the offset itself is in bounds.
        unsafe { self.data.as_mut_ptr().add(pack * self.pack_stride()) }
    }

    /// Whole scalar storage.
    pub fn as_scalars(&self) -> &[E::Real] {
        &self.data
    }

    /// Mutable scalar storage.
    pub fn as_scalars_mut(&mut self) -> &mut [E::Real] {
        &mut self.data
    }

    /// Number of padding lanes in the final pack (0 when `count % P == 0`).
    pub fn padding_lanes(&self) -> usize {
        let p = self.p();
        (p - self.count % p) % p
    }

    /// Sets the diagonal of every *padding lane* to one (identity matrix in
    /// the padded lanes). GEMM is insensitive to padding (0·0 = 0), but TRSM
    /// divides by diagonal entries, and zero diagonals in dead lanes would
    /// produce infinities that can trap or slow down the whole vector on
    /// some cores. The framework's packing kernels neutralize padded
    /// diagonals themselves (`iatf-pack` writes reciprocal 1 for dead
    /// lanes); this helper is for callers driving the raw kernels directly.
    pub fn pad_triangle_identity(&mut self) {
        let pad = self.padding_lanes();
        if pad == 0 {
            return;
        }
        let p = self.p();
        let pack = self.packs() - 1;
        let d = self.rows.min(self.cols);
        for i in 0..d {
            let base = self.group_offset(pack, i, i);
            for lane in (p - pad)..p {
                self.data[base + lane] = <E::Real as iatf_simd::Real>::ONE;
                if E::IS_COMPLEX {
                    self.data[base + p + lane] = E::Real::default();
                }
            }
        }
    }

    /// Largest absolute difference to another compact batch over logical
    /// matrices (padding excluded). The batches may be laid out at
    /// different widths — comparison is by logical element.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols, self.count), (other.rows, other.cols, other.count));
        let mut worst = 0.0f64;
        for v in 0..self.count {
            for j in 0..self.cols {
                for i in 0..self.rows {
                    let d = self.get(v, i, j).sub(other.get(v, i, j)).abs_f64();
                    worst = worst.max(d);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_simd::{c32, c64, Real};

    #[test]
    fn group_offsets_match_figure3() {
        // Figure 3: 3×3 f32 matrices on a 128-bit unit → P = 4. The first
        // element group holds (0,0) of matrices 0..4, the next group is
        // (1,0) — column-major within the pack. Pinned to W128 so the
        // offsets stay the paper's regardless of the host's dispatch.
        let b = CompactBatch::<f32>::zeroed_at(3, 3, 8, VecWidth::W128);
        assert_eq!(b.group(), 4);
        assert_eq!(b.group_offset(0, 0, 0), 0);
        assert_eq!(b.group_offset(0, 1, 0), 4);
        assert_eq!(b.group_offset(0, 0, 1), 12);
        assert_eq!(b.group_offset(1, 0, 0), 3 * 3 * 4);
        assert_eq!(b.packs(), 2);
    }

    #[test]
    fn complex_group_is_split() {
        let mut b = CompactBatch::<c64>::zeroed_at(2, 2, 2, VecWidth::W128);
        assert_eq!(b.group(), 4);
        b.set(0, 1, 1, c64::new(3.0, -4.0));
        b.set(1, 1, 1, c64::new(5.0, 6.0));
        let base = b.group_offset(0, 1, 1);
        // re0 re1 | im0 im1
        assert_eq!(&b.as_scalars()[base..base + 4], &[3.0, 5.0, -4.0, 6.0]);
    }

    #[test]
    fn lanes_interleave_consecutive_matrices() {
        let src = StdBatch::<f32>::from_fn(2, 2, 6, |v, i, j| (v * 100 + i * 10 + j) as f32);
        let c = CompactBatch::from_std_at(&src, VecWidth::W128);
        // element (0,0): lanes are matrices 0..4
        let base = c.group_offset(0, 0, 0);
        assert_eq!(&c.as_scalars()[base..base + 4], &[0.0, 100.0, 200.0, 300.0]);
        // second pack holds matrices 4,5 and zero padding in lanes 2,3
        let base = c.group_offset(1, 1, 1);
        assert_eq!(&c.as_scalars()[base..base + 4], &[411.0, 511.0, 0.0, 0.0]);
        assert_eq!(c.padding_lanes(), 2);
    }

    #[test]
    fn round_trip_all_types_all_widths() {
        fn check<E: Element>(width: VecWidth) {
            let src = StdBatch::<E>::random(5, 3, 7, 99);
            let compact = CompactBatch::from_std_at(&src, width);
            assert_eq!(compact.width(), width);
            let back = compact.to_std();
            assert_eq!(src.max_abs_diff(&back), 0.0, "{:?} {width:?}", E::DTYPE);
        }
        for width in VecWidth::ALL {
            check::<f32>(width);
            check::<f64>(width);
            check::<c32>(width);
            check::<c64>(width);
        }
    }

    #[test]
    fn default_constructors_use_dispatched_width() {
        let b = CompactBatch::<f64>::zeroed(2, 2, 2);
        assert_eq!(b.width(), dispatched_width());
        assert_eq!(b.p(), f64::p_at(dispatched_width()));
    }

    #[test]
    fn wider_layout_scales_group_geometry() {
        let narrow = CompactBatch::<f32>::zeroed_at(3, 3, 20, VecWidth::W128);
        let wide = CompactBatch::<f32>::zeroed_at(3, 3, 20, VecWidth::W512);
        assert_eq!(narrow.p(), 4);
        assert_eq!(wide.p(), 16);
        assert_eq!(narrow.packs(), 5);
        assert_eq!(wide.packs(), 2);
        assert_eq!(wide.pack_stride(), 4 * narrow.pack_stride());
        assert_eq!(wide.padding_lanes(), 12);
    }

    #[test]
    fn cross_width_values_agree() {
        let src = StdBatch::<c32>::random(4, 3, 9, 5);
        let a = CompactBatch::from_std_at(&src, VecWidth::W128);
        let b = CompactBatch::from_std_at(&src, VecWidth::W256);
        // different physical layout, identical logical contents
        assert_ne!(a.pack_stride(), b.pack_stride());
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut b = CompactBatch::<c32>::zeroed(4, 5, 9);
        let z = c32::new(1.5, -2.5);
        b.set(8, 3, 4, z);
        assert_eq!(b.get(8, 3, 4), z);
        assert_eq!(b.get(7, 3, 4), c32::zero());
    }

    #[test]
    fn pad_triangle_identity_sets_dead_lanes() {
        // P=2 → 1 padding lane
        let mut b = CompactBatch::<f64>::zeroed_at(3, 3, 3, VecWidth::W128);
        assert_eq!(b.padding_lanes(), 1);
        b.pad_triangle_identity();
        for i in 0..3 {
            let base = b.group_offset(1, i, i);
            // lane 0 is matrix 2 (logical, untouched zero), lane 1 is padding
            assert_eq!(b.as_scalars()[base], 0.0);
            assert_eq!(b.as_scalars()[base + 1], 1.0);
        }
        // logical values unchanged
        assert_eq!(b.get(2, 1, 1), 0.0);
    }

    #[test]
    fn strides_consistent() {
        let b = CompactBatch::<c64>::zeroed_at(4, 6, 10, VecWidth::W128);
        assert_eq!(b.pack_stride(), 4 * 6 * 4);
        assert_eq!(b.col_stride(), 4 * 4);
        assert_eq!(
            b.group_offset(2, 0, 0) - b.group_offset(1, 0, 0),
            b.pack_stride()
        );
        assert_eq!(
            b.group_offset(0, 0, 3) - b.group_offset(0, 0, 2),
            b.col_stride()
        );
        assert_eq!(b.as_scalars().len(), b.packs() * b.pack_stride());
    }

    #[test]
    fn one_is_real_one() {
        // pad_triangle_identity writes Real::ONE; sanity-check the constant.
        assert_eq!(<f64 as Real>::ONE, 1.0);
    }
}
