//! Property-based codegen tests: for random kernel specifications, the
//! generated IR must (a) respect the register file and port structure,
//! (b) compute exactly what the runtime kernels compute, and (c) survive
//! the scheduling optimizer bit-for-bit.

use iatf_codegen::{
    dependency_edges, generate_cgemm_kernel, generate_gemm_kernel, generate_trsm_tri_kernel,
    interp, optimize, DataType, GemmKernelSpec, PipelineModel,
};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = GemmKernelSpec> {
    (1usize..=4, 1usize..=4, 1usize..=24, -2.0f64..2.0).prop_map(|(mc, nc, k, alpha)| {
        GemmKernelSpec {
            mc,
            nc,
            k,
            dtype: DataType::F64,
            alpha,
            ldc: mc,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_kernels_fit_the_register_file(spec in spec_strategy()) {
        let p = generate_gemm_kernel(&spec);
        for inst in &p.insts {
            for r in inst.vwrites().into_iter().chain(inst.vreads()) {
                prop_assert!(r.idx() < 32, "register {r:?} out of file");
            }
        }
        // instruction budget: k·mc·nc computes + mc·nc SAVE FMAs
        let fp = p.insts.iter().filter(|i| i.is_fp()).count();
        prop_assert_eq!(fp, (spec.k + 1) * spec.mc * spec.nc);
    }

    #[test]
    fn scheduling_is_a_permutation_and_never_regresses(spec in spec_strategy()) {
        let model = PipelineModel::default();
        let p = generate_gemm_kernel(&spec);
        let q = optimize(&p, &model);
        prop_assert_eq!(p.insts.len(), q.insts.len());
        // multiset equality of instructions
        let key = |prog: &iatf_codegen::Program| {
            let mut v: Vec<String> = prog.insts.iter().map(|i| format!("{i:?}")).collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&p), key(&q));
        // the optimizer must never be slower on the model
        let before = model.simulate(&p).cycles;
        let after = model.simulate(&q).cycles;
        prop_assert!(after <= before, "{before} -> {after}");
        // and the schedule must stay dependency-consistent
        for (i, j, _) in dependency_edges(&q) {
            prop_assert!(i < j);
        }
    }

    #[test]
    fn interpreted_random_kernels_match_oracle(spec in spec_strategy(), seed in any::<u32>()) {
        // oracle: plain f64 mul_add in the same per-element order
        let p2 = 2usize;
        let mut state = seed as u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let pa: Vec<f64> = (0..spec.k * spec.mc * p2).map(|_| next()).collect();
        let pb: Vec<f64> = (0..spec.k * spec.nc * p2).map(|_| next()).collect();
        let c0: Vec<f64> = (0..spec.mc * spec.nc * p2).map(|_| next()).collect();

        let prog = optimize(&generate_gemm_kernel(&spec), &PipelineModel::default());
        let got = interp::run_gemm(&prog, pa.clone(), pb.clone(), c0.clone());

        for i in 0..spec.mc {
            for j in 0..spec.nc {
                for l in 0..p2 {
                    let mut acc = 0.0f64;
                    for kk in 0..spec.k {
                        acc = pa[(kk * spec.mc + i) * p2 + l]
                            .mul_add(pb[(kk * spec.nc + j) * p2 + l], acc);
                    }
                    let idx = (j * spec.mc + i) * p2 + l;
                    let want = acc.mul_add(spec.alpha, c0[idx]);
                    let g = got[idx];
                    prop_assert!(
                        (g - want).abs() <= 1e-12 * want.abs().max(1.0),
                        "({i},{j},{l}): {g} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn complex_kernels_fit_and_schedule(
        mc in 1usize..=3,
        nc in 1usize..=2,
        k in 1usize..=12,
    ) {
        let spec = GemmKernelSpec {
            mc,
            nc,
            k,
            dtype: DataType::F64,
            alpha: 1.0,
            ldc: mc,
        };
        let p = generate_cgemm_kernel(&spec);
        for inst in &p.insts {
            for r in inst.vwrites().into_iter().chain(inst.vreads()) {
                prop_assert!(r.idx() < 32);
            }
        }
        // 4 FMA-class ops per complex element per step + 2 per SAVE element
        let fp = p.insts.iter().filter(|i| i.is_fp()).count();
        prop_assert_eq!(fp, 4 * k * mc * nc + 2 * mc * nc);
        let model = PipelineModel::default();
        let q = optimize(&p, &model);
        prop_assert!(model.simulate(&q).cycles <= model.simulate(&p).cycles);
    }

    #[test]
    fn trsm_tri_kernels_fit_and_solve(m in 1usize..=5, n in 1usize..=6, seed in any::<u32>()) {
        let prog = generate_trsm_tri_kernel(m, n, DataType::F64);
        for inst in &prog.insts {
            for r in inst.vwrites().into_iter().chain(inst.vreads()) {
                prop_assert!(r.idx() < 32);
            }
        }
        // build a well-conditioned packed triangle and random panel
        let p2 = 2usize;
        let mut state = seed as u64 + 1;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut tri = vec![0.0f64; m * (m + 1) / 2 * p2];
        let mut dense = vec![0.0f64; m * m * p2]; // lower triangle per lane
        for r in 0..m {
            let base = r * (r + 1) / 2;
            for c in 0..=r {
                for l in 0..p2 {
                    if c == r {
                        let d = 1.0 + next().abs();
                        tri[(base + c) * p2 + l] = 1.0 / d;
                        dense[(r * m + c) * p2 + l] = d;
                    } else {
                        let v = next() / m as f64;
                        tri[(base + c) * p2 + l] = v;
                        dense[(r * m + c) * p2 + l] = v;
                    }
                }
            }
        }
        let panel0: Vec<f64> = (0..m * n * p2).map(|_| next()).collect();
        let solved = interp::run_trsm(&prog, tri, panel0.clone());
        // residual: L·X == B per lane/column
        for l in 0..p2 {
            for col in 0..n {
                for i in 0..m {
                    let mut lhs = 0.0;
                    for j in 0..=i {
                        lhs += dense[(i * m + j) * p2 + l] * solved[(col * m + j) * p2 + l];
                    }
                    let rhs = panel0[(col * m + i) * p2 + l];
                    prop_assert!((lhs - rhs).abs() < 1e-10, "m={m} n={n}: {lhs} vs {rhs}");
                }
            }
        }
    }
}
