//! Install-time-stage validation: generated IR kernels, interpreted, must
//! agree with the `iatf-kernels` Rust kernels on identical packed inputs —
//! before *and* after the scheduling optimizer runs. This is the proof that
//! the codegen path (templates → Algorithm 3 → Figure 5 optimizer) emits
//! semantically correct kernels.

use iatf_codegen::{
    generate_gemm_kernel, generate_trsm_tri_kernel, interp, optimize, schedule_stats, DataType,
    GemmKernelSpec, PipelineModel,
};
use iatf_kernels::{gemm_ukr, trsm_ukr};
use iatf_simd::{F64x2, SimdReal};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5
    }
}

/// Runs one (mc, nc, k) comparison for DGEMM: the interpreted IR kernel and
/// the Rust kernel must agree bit-for-bit (both use fused f64 arithmetic in
/// the same order).
fn check_gemm_equiv(mc: usize, nc: usize, k: usize, alpha: f64, optimized: bool) {
    let p2 = F64x2::LANES;
    let mut rng = Rng((mc * 100 + nc * 10 + k) as u64);
    let pa: Vec<f64> = (0..k * mc * p2).map(|_| rng.next()).collect();
    let pb: Vec<f64> = (0..k * nc * p2).map(|_| rng.next()).collect();
    let c0: Vec<f64> = (0..mc * nc * p2).map(|_| rng.next()).collect();

    // Rust kernel (beta = 1 to match the generated SAVE template)
    let mut c_rust = c0.clone();
    let mut run_rust = |mc: usize, nc: usize| {
        macro_rules! call {
            ($m:literal, $n:literal) => {
                // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing (same layout the generated-assembly side uses).
                unsafe {
                    gemm_ukr::<F64x2, $m, $n>(
                        k,
                        alpha,
                        1.0,
                        pa.as_ptr(),
                        p2,
                        mc * p2,
                        pb.as_ptr(),
                        p2,
                        nc * p2,
                        c_rust.as_mut_ptr(),
                        p2,
                        mc * p2,
                    )
                }
            };
        }
        match (mc, nc) {
            (4, 4) => call!(4, 4),
            (4, 3) => call!(4, 3),
            (3, 4) => call!(3, 4),
            (3, 3) => call!(3, 3),
            (2, 2) => call!(2, 2),
            (1, 1) => call!(1, 1),
            (1, 4) => call!(1, 4),
            (4, 1) => call!(4, 1),
            (2, 3) => call!(2, 3),
            _ => panic!("size not wired in test"),
        }
    };
    run_rust(mc, nc);

    // generated IR kernel
    let spec = GemmKernelSpec {
        mc,
        nc,
        k,
        dtype: DataType::F64,
        alpha,
        ldc: mc, // tile-sized C buffer: column stride = mc groups
    };
    let mut prog = generate_gemm_kernel(&spec);
    if optimized {
        prog = optimize(&prog, &PipelineModel::default());
    }
    let c_ir = interp::run_gemm(&prog, pa.clone(), pb.clone(), c0.clone());

    for (idx, (a, b)) in c_rust.iter().zip(c_ir.iter()).enumerate() {
        assert_eq!(
            a, b,
            "({mc}x{nc}) k={k} alpha={alpha} optimized={optimized} idx={idx}"
        );
    }
}

#[test]
fn generated_dgemm_matches_rust_kernels() {
    for k in 1..=9 {
        check_gemm_equiv(4, 4, k, 1.0, false);
        check_gemm_equiv(3, 3, k, 1.0, false);
        check_gemm_equiv(2, 2, k, 1.0, false);
        check_gemm_equiv(1, 1, k, 1.0, false);
    }
    check_gemm_equiv(4, 4, 33, 1.0, false);
    check_gemm_equiv(4, 3, 7, 1.0, false);
    check_gemm_equiv(3, 4, 6, 1.0, false);
    check_gemm_equiv(1, 4, 5, 1.0, false);
    check_gemm_equiv(4, 1, 5, 1.0, false);
    check_gemm_equiv(2, 3, 4, 1.0, false);
}

#[test]
fn scheduling_preserves_semantics_exactly() {
    // The optimizer may only reorder independent instructions, so results
    // must be bit-identical.
    for k in [1usize, 2, 3, 4, 5, 8, 16, 33] {
        check_gemm_equiv(4, 4, k, 1.0, true);
        check_gemm_equiv(3, 3, k, 1.0, true);
    }
    check_gemm_equiv(4, 4, 8, 2.5, true);
    check_gemm_equiv(2, 2, 9, -0.75, true);
}

#[test]
fn alpha_is_honored() {
    check_gemm_equiv(4, 4, 5, 3.0, false);
    check_gemm_equiv(4, 4, 5, -1.0, true);
    check_gemm_equiv(3, 3, 2, 0.5, false);
}

#[test]
fn generated_trsm_matches_rust_kernel() {
    let p2 = F64x2::LANES;
    for m in 1..=5usize {
        for n in [1usize, 2, 4, 7] {
            let mut rng = Rng((m * 37 + n) as u64);
            // packed triangle with reciprocal diag in (0.4, 1.0]
            let tri_groups = m * (m + 1) / 2;
            let mut tri = vec![0.0f64; tri_groups * p2];
            for r in 0..m {
                let base = r * (r + 1) / 2;
                for c in 0..=r {
                    for l in 0..p2 {
                        tri[(base + c) * p2 + l] = if c == r {
                            1.0 / (1.0 + 0.3 * ((r + l) % 4) as f64)
                        } else {
                            rng.next() / m as f64
                        };
                    }
                }
            }
            // column-major panel m×n (column stride = m groups)
            let panel0: Vec<f64> = (0..m * n * p2).map(|_| rng.next()).collect();

            // Rust fused kernel operates on the same layout: rows are
            // groups (row stride = GROUP), columns m groups apart.
            let mut panel_rust = panel0.clone();
            macro_rules! call {
                ($m:literal, $col:expr) => {
                    // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing (same layout the generated-assembly side uses).
                    unsafe {
                        trsm_ukr::<F64x2, $m, 1>(
                            0,
                            core::ptr::null(),
                            0,
                            0,
                            tri.as_ptr(),
                            panel_rust.as_mut_ptr().add($col * m * p2),
                            0,
                            p2, // row stride: consecutive groups
                            p2, // unused (nr = 1)
                        )
                    }
                };
            }
            for col in 0..n {
                match m {
                    1 => call!(1, col),
                    2 => call!(2, col),
                    3 => call!(3, col),
                    4 => call!(4, col),
                    5 => call!(5, col),
                    _ => unreachable!(),
                }
            }

            let prog = generate_trsm_tri_kernel(m, n, DataType::F64);
            let panel_ir = interp::run_trsm(&prog, tri.clone(), panel0.clone());
            for (idx, (a, b)) in panel_rust.iter().zip(panel_ir.iter()).enumerate() {
                assert_eq!(a, b, "m={m} n={n} idx={idx}");
            }

            // optimized variant too
            let opt = optimize(&prog, &PipelineModel::default());
            let panel_opt = interp::run_trsm(&opt, tri.clone(), panel0.clone());
            assert_eq!(panel_ir, panel_opt, "m={m} n={n} optimized");
        }
    }
}

#[test]
fn figure5_stall_reduction_holds_across_kernels() {
    let model = PipelineModel::default();
    let mut improved = 0;
    let mut total = 0;
    for (mc, nc) in [(4usize, 4usize), (4, 3), (3, 4), (3, 3), (2, 2)] {
        for k in [4usize, 8, 16, 33] {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc,
                nc,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: mc,
            });
            let stats = schedule_stats(&p, &model);
            total += 1;
            if stats.cycles_after < stats.cycles_before {
                improved += 1;
            }
            assert!(
                stats.cycles_after <= stats.cycles_before,
                "optimizer must never regress"
            );
        }
    }
    // the optimizer should win on the vast majority of kernels
    assert!(improved * 10 >= total * 8, "improved {improved}/{total}");
}

#[test]
fn generated_zgemm_matches_rust_kernel() {
    use iatf_codegen::generate_cgemm_kernel;
    use iatf_kernels::cgemm_ukr;
    let p2 = F64x2::LANES;
    let g = 2 * p2; // split-complex element group
    for (mc, nc) in [(3usize, 2usize), (2, 2), (1, 1), (1, 2), (3, 1), (2, 1)] {
        for k in [1usize, 2, 3, 4, 5, 8, 13] {
            let mut rng = Rng((mc * 1000 + nc * 100 + k) as u64);
            let pa: Vec<f64> = (0..k * mc * g).map(|_| rng.next()).collect();
            let pb: Vec<f64> = (0..k * nc * g).map(|_| rng.next()).collect();
            let c0: Vec<f64> = (0..mc * nc * g).map(|_| rng.next()).collect();

            let mut c_rust = c0.clone();
            macro_rules! call {
                ($m:literal, $n:literal) => {
                    // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing (same layout the generated-assembly side uses).
                    unsafe {
                        cgemm_ukr::<F64x2, $m, $n>(
                            k,
                            [1.0, 0.0],
                            [1.0, 0.0],
                            pa.as_ptr(),
                            g,
                            mc * g,
                            pb.as_ptr(),
                            g,
                            nc * g,
                            c_rust.as_mut_ptr(),
                            g,
                            mc * g,
                        )
                    }
                };
            }
            match (mc, nc) {
                (3, 2) => call!(3, 2),
                (2, 2) => call!(2, 2),
                (1, 1) => call!(1, 1),
                (1, 2) => call!(1, 2),
                (3, 1) => call!(3, 1),
                (2, 1) => call!(2, 1),
                _ => unreachable!(),
            }

            let spec = GemmKernelSpec {
                mc,
                nc,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: mc,
            };
            let prog = generate_cgemm_kernel(&spec);
            let c_ir = interp::run_gemm(&prog, pa.clone(), pb.clone(), c0.clone());
            for (idx, (a, b)) in c_rust.iter().zip(c_ir.iter()).enumerate() {
                assert_eq!(a, b, "cplx ({mc}x{nc}) k={k} idx={idx}");
            }

            // scheduling must also preserve complex semantics exactly
            let opt = optimize(&prog, &PipelineModel::default());
            let c_opt = interp::run_gemm(&opt, pa.clone(), pb.clone(), c0.clone());
            assert_eq!(c_ir, c_opt, "cplx ({mc}x{nc}) k={k} optimized");
        }
    }
}

#[test]
fn complex_scheduler_gains() {
    use iatf_codegen::generate_cgemm_kernel;
    let model = PipelineModel::default();
    let p = generate_cgemm_kernel(&GemmKernelSpec {
        mc: 3,
        nc: 2,
        k: 16,
        dtype: DataType::F64,
        alpha: 1.0,
        ldc: 3,
    });
    let stats = schedule_stats(&p, &model);
    assert!(
        stats.cycles_after < stats.cycles_before,
        "{} -> {}",
        stats.cycles_before,
        stats.cycles_after,
    );
}

#[test]
fn generated_blocked_trsm_matches_rust_kernel() {
    use iatf_codegen::generate_trsm_block_kernel;
    let p2 = F64x2::LANES;
    for (mb, nr) in [(4usize, 4usize), (3, 4), (2, 2), (1, 4), (4, 1)] {
        for kk in [0usize, 1, 2, 3, 4, 7, 12] {
            let mut rng = Rng((mb * 71 + nr * 13 + kk) as u64);
            // packed A buffer: rect strip then triangle (reciprocal diag)
            let rect_len = kk * mb * p2;
            let tri_len = mb * (mb + 1) / 2 * p2;
            let mut abuf = vec![0.0f64; rect_len + tri_len];
            for x in &mut abuf[..rect_len] {
                *x = rng.next() / (kk + mb) as f64;
            }
            for r in 0..mb {
                let base = rect_len + r * (r + 1) / 2 * p2;
                for c in 0..=r {
                    for l in 0..p2 {
                        abuf[base + c * p2 + l] = if c == r {
                            1.0 / (1.0 + 0.4 * ((r + l) % 3) as f64)
                        } else {
                            rng.next() / mb as f64
                        };
                    }
                }
            }
            // row-major panel (kk + mb rows × nr groups)
            let panel0: Vec<f64> = (0..(kk + mb) * nr * p2).map(|_| rng.next()).collect();

            // Rust fused kernel
            let mut panel_rust = panel0.clone();
            macro_rules! call {
                ($m:literal, $n:literal) => {
                    // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these dimensions, and the strides passed match that sizing (same layout the generated-assembly side uses).
                    unsafe {
                        trsm_ukr::<F64x2, $m, $n>(
                            kk,
                            abuf.as_ptr(),
                            p2,
                            mb * p2,
                            abuf.as_ptr().add(rect_len),
                            panel_rust.as_mut_ptr(),
                            kk,
                            nr * p2,
                            p2,
                        )
                    }
                };
            }
            match (mb, nr) {
                (4, 4) => call!(4, 4),
                (3, 4) => call!(3, 4),
                (2, 2) => call!(2, 2),
                (1, 4) => call!(1, 4),
                (4, 1) => call!(4, 1),
                _ => unreachable!(),
            }

            let prog = generate_trsm_block_kernel(mb, nr, kk, DataType::F64);
            let panel_ir = interp::run_trsm(&prog, abuf.clone(), panel0.clone());
            for (idx, (a, b)) in panel_rust.iter().zip(panel_ir.iter()).enumerate() {
                assert_eq!(a, b, "blocked mb={mb} nr={nr} kk={kk} idx={idx}");
            }

            // scheduler must preserve semantics here too
            let opt = optimize(&prog, &PipelineModel::default());
            let panel_opt = interp::run_trsm(&opt, abuf.clone(), panel0.clone());
            assert_eq!(panel_ir, panel_opt, "blocked optimized mb={mb} nr={nr} kk={kk}");
        }
    }
}

#[test]
fn figure5_rendering_is_wellformed_aarch64() {
    // Structural golden test on the rendered assembly: every line must be a
    // recognized AArch64 mnemonic in the Figure-5 notation, with the dtype's
    // arrangement suffix on FP ops.
    use iatf_codegen::generate_gemm_kernel;
    let prog = generate_gemm_kernel(&GemmKernelSpec {
        mc: 4,
        nc: 4,
        k: 4,
        dtype: DataType::F64,
        alpha: 1.0,
        ldc: 4,
    });
    let opt = optimize(&prog, &PipelineModel::default());
    for text in [prog.render(), opt.render()] {
        for line in text.lines() {
            let mnemonic = line.split_whitespace().next().unwrap();
            assert!(
                ["ldr", "ldp", "str", "add", "fmul", "fmla", "fmls", "prfm"]
                    .contains(&mnemonic),
                "unexpected mnemonic in {line:?}"
            );
            if mnemonic.starts_with("fm") {
                assert!(line.contains(".2d"), "missing arrangement in {line:?}");
            }
            if mnemonic == "ldp" || mnemonic == "ldr" {
                assert!(line.contains("[p"), "missing base register in {line:?}");
            }
        }
        // instruction count is preserved by rendering
        assert_eq!(text.lines().count(), prog.len());
    }
}
