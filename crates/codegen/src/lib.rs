//! Install-time stage model: kernel code generation as the paper describes
//! it (§4.2–4.3).
//!
//! The paper's install-time stage emits AArch64 assembly kernels from six
//! abstract templates (`I`, `M1`, `M2`, `E`, `SUB`, `SAVE` — Algorithm 2),
//! sequences them by K (Algorithm 3), and then runs a *kernel optimizer*
//! that re-schedules instructions to hide load latency (Figure 5). The host
//! running this reproduction is not necessarily an ARMv8 machine, so this
//! crate models that pipeline end to end instead of emitting machine code:
//!
//! * [`ir`] — an AArch64-flavoured instruction IR (`LDP`/`LDR`/`FMUL`/
//!   `FMLA`/`FMLS`/`STR`/`PRFM`/pointer `ADD`) over the V0–V31 register
//!   file, with an assembly-text renderer that matches Figure 5's notation.
//! * [`templates`] — the six GEMM templates with the paper's register
//!   allocation (`A: V0..2m_c`, `B: V2m_c..2(m_c+n_c)`,
//!   `C: V2(m_c+n_c)..`), plus the TRSM triangular template (Algorithm 4).
//! * [`generator`] — Algorithm 3: sequencing templates into a complete
//!   straight-line kernel for a given K (with the printed algorithm's
//!   odd-K off-by-one corrected, as in `iatf-kernels`).
//! * [`schedule`] — the kernel optimizer: dependency analysis and the
//!   latency-aware list scheduler that reproduces Figure 5's two passes
//!   (separate dependent pairs, then interleave loads between computes).
//! * [`pipeline`] — a dual-issue in-order pipeline model of the Kunpeng 920
//!   (one load/store + one FP op per cycle — §6.3) that scores schedules in
//!   modeled cycles.
//! * [`interp`] — an IR interpreter used to prove that generation and
//!   scheduling preserve semantics: generated kernels are executed on
//!   random inputs and compared against `iatf-kernels` (see the crate's
//!   integration tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Register-file and lane loops are clearer indexed, matching the emitted
// assembly ordering.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]

pub mod ctemplates;
pub mod generator;
pub mod interp;
pub mod ir;
pub mod pipeline;
pub mod schedule;
pub mod templates;

pub use generator::{
    generate_cgemm_kernel, generate_cgemm_kernel_traced, generate_gemm_kernel,
    generate_gemm_kernel_traced, generate_trmm_block_kernel, generate_trmm_block_kernel_traced,
    generate_trsm_block_kernel, generate_trsm_block_kernel_traced, generate_trsm_tri_kernel,
    generate_trsm_tri_kernel_traced, GemmKernelSpec, Span, TemplateId, TracedProgram,
};
pub use interp::{Interpreter, Memory};
pub use ir::{DataType, Inst, Program, VReg, XReg};
pub use pipeline::PipelineModel;
pub use schedule::{dependency_edges, optimize, schedule_stats, ScheduleStats};
