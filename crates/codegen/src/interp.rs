//! IR interpreter: executes a generated kernel on concrete buffers.
//!
//! This is how the install-time stage's output is validated without an
//! ARMv8 machine: a generated (and optionally re-scheduled) kernel is run
//! on random inputs and compared against the corresponding `iatf-kernels`
//! Rust kernel. Arithmetic uses `f64::mul_add` for the FMLA/FMLS class so
//! the contraction semantics match hardware FMA exactly (bit-for-bit for
//! double-precision kernels).

use crate::ir::{Inst, Program, XReg};
use std::collections::HashMap;

/// Named memory buffers and pointer state.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    bufs: HashMap<XReg, Vec<f64>>,
    ptrs: HashMap<XReg, usize>, // byte offsets
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a buffer behind a pointer register (offset reset to 0).
    pub fn set_buffer(&mut self, reg: XReg, data: Vec<f64>) {
        self.bufs.insert(reg, data);
        self.ptrs.insert(reg, 0);
    }

    /// Reads a buffer back.
    pub fn buffer(&self, reg: XReg) -> &[f64] {
        self.bufs.get(&reg).map_or(&[], |v| v.as_slice())
    }

    fn scalar_index(&self, base: XReg, offset: i32, scalar_bytes: usize) -> usize {
        let byte = self.ptrs.get(&base).copied().unwrap_or(0) as i64 + offset as i64;
        assert!(byte >= 0, "negative address on {base:?}");
        assert!(
            byte as usize % scalar_bytes == 0,
            "misaligned access on {base:?}"
        );
        byte as usize / scalar_bytes
    }
}

/// The interpreter: a 32-entry vector register file over a [`Memory`].
#[derive(Clone, Debug)]
pub struct Interpreter {
    /// Vector registers, 4 lanes each (upper lanes unused for `.2d`).
    pub vregs: [[f64; 4]; 32],
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Fresh interpreter with zeroed registers.
    pub fn new() -> Self {
        Self {
            vregs: [[0.0; 4]; 32],
        }
    }

    /// Executes a program against the memory image.
    #[allow(clippy::manual_memcpy)]
    pub fn run(&mut self, p: &Program, mem: &mut Memory) {
        let lanes = p.dtype.lanes();
        let sb = p.dtype.scalar_bytes();
        for inst in &p.insts {
            match *inst {
                Inst::Ldr { dst, base, offset } => {
                    let idx = mem.scalar_index(base, offset, sb);
                    let buf = mem.bufs.get(&base).expect("unmapped buffer");
                    for l in 0..lanes {
                        self.vregs[dst.idx()][l] = buf[idx + l];
                    }
                }
                Inst::Ldp {
                    dst1,
                    dst2,
                    base,
                    offset,
                } => {
                    let idx = mem.scalar_index(base, offset, sb);
                    let buf = mem.bufs.get(&base).expect("unmapped buffer");
                    for l in 0..lanes {
                        self.vregs[dst1.idx()][l] = buf[idx + l];
                        self.vregs[dst2.idx()][l] = buf[idx + lanes + l];
                    }
                }
                Inst::Str { src, base, offset } => {
                    let idx = mem.scalar_index(base, offset, sb);
                    let buf = mem.bufs.get_mut(&base).expect("unmapped buffer");
                    for l in 0..lanes {
                        buf[idx + l] = self.vregs[src.idx()][l];
                    }
                }
                Inst::AddImm { reg, imm } => {
                    let p = mem.ptrs.entry(reg).or_insert(0);
                    let next = *p as i64 + imm as i64;
                    assert!(next >= 0);
                    *p = next as usize;
                }
                Inst::Fmul { vd, vn, vm } => {
                    for l in 0..lanes {
                        self.vregs[vd.idx()][l] =
                            self.vregs[vn.idx()][l] * self.vregs[vm.idx()][l];
                    }
                }
                Inst::Fmla { vd, vn, vm } => {
                    for l in 0..lanes {
                        self.vregs[vd.idx()][l] = self.vregs[vn.idx()][l]
                            .mul_add(self.vregs[vm.idx()][l], self.vregs[vd.idx()][l]);
                    }
                }
                Inst::Fmls { vd, vn, vm } => {
                    for l in 0..lanes {
                        self.vregs[vd.idx()][l] = (-self.vregs[vn.idx()][l])
                            .mul_add(self.vregs[vm.idx()][l], self.vregs[vd.idx()][l]);
                    }
                }
                Inst::FmlaScalar { vd, vn, alpha } => {
                    for l in 0..lanes {
                        self.vregs[vd.idx()][l] =
                            self.vregs[vn.idx()][l].mul_add(alpha, self.vregs[vd.idx()][l]);
                    }
                }
                Inst::FmulScalar { vd, vn, alpha } => {
                    for l in 0..lanes {
                        self.vregs[vd.idx()][l] = self.vregs[vn.idx()][l] * alpha;
                    }
                }
                Inst::Prfm { .. } => {}
            }
        }
    }
}

/// Lanes-aware helper: interprets `p` with the given input buffers and
/// returns the final contents of the `Pc` (GEMM) buffer.
pub fn run_gemm(p: &Program, pa: Vec<f64>, pb: Vec<f64>, c: Vec<f64>) -> Vec<f64> {
    let mut mem = Memory::new();
    mem.set_buffer(XReg::Pa, pa);
    mem.set_buffer(XReg::Pb, pb);
    mem.set_buffer(XReg::Pc, c);
    Interpreter::new().run(p, &mut mem);
    mem.buffer(XReg::Pc).to_vec()
}

/// Interprets a TRSM triangular kernel: returns the solved panel (`Pb`).
pub fn run_trsm(p: &Program, tri: Vec<f64>, panel: Vec<f64>) -> Vec<f64> {
    let mut mem = Memory::new();
    mem.set_buffer(XReg::Ptri, tri);
    mem.set_buffer(XReg::Pb, panel);
    Interpreter::new().run(p, &mut mem);
    mem.buffer(XReg::Pb).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, VReg};

    #[test]
    fn load_compute_store_round_trip() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pa,
            offset: 16,
        });
        p.push(Inst::Fmul {
            vd: VReg(2),
            vn: VReg(0),
            vm: VReg(1),
        });
        p.push(Inst::Str {
            src: VReg(2),
            base: XReg::Pc,
            offset: 0,
        });
        let mut mem = Memory::new();
        mem.set_buffer(XReg::Pa, vec![2.0, 3.0, 5.0, 7.0]);
        mem.set_buffer(XReg::Pc, vec![0.0, 0.0]);
        Interpreter::new().run(&p, &mut mem);
        assert_eq!(mem.buffer(XReg::Pc), &[10.0, 21.0]);
    }

    #[test]
    fn pointer_bump_changes_addressing() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::AddImm {
            reg: XReg::Pa,
            imm: 16,
        });
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pc,
            offset: 0,
        });
        let mut mem = Memory::new();
        mem.set_buffer(XReg::Pa, vec![1.0, 2.0, 3.0, 4.0]);
        mem.set_buffer(XReg::Pc, vec![0.0, 0.0]);
        Interpreter::new().run(&p, &mut mem);
        assert_eq!(mem.buffer(XReg::Pc), &[3.0, 4.0]);
    }

    #[test]
    fn f32_uses_four_lanes() {
        let mut p = Program::new(DataType::F32);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pc,
            offset: 0,
        });
        let mut mem = Memory::new();
        mem.set_buffer(XReg::Pa, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        mem.set_buffer(XReg::Pc, vec![0.0; 4]);
        Interpreter::new().run(&p, &mut mem);
        assert_eq!(mem.buffer(XReg::Pc), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fmla_fmls_are_fused() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Fmla {
            vd: VReg(2),
            vn: VReg(0),
            vm: VReg(1),
        });
        let mut interp = Interpreter::new();
        interp.vregs[0][0] = 1.0 + 1e-16;
        interp.vregs[1][0] = 1.0 - 1e-16;
        interp.vregs[2][0] = -1.0;
        let mut mem = Memory::new();
        interp.run(&p, &mut mem);
        // fused: (1+e)(1−e) − 1 = −e² ≈ −1e-32 ≠ 0; unfused would round to 0
        assert!(interp.vregs[2][0] != 0.0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_access_detected() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 4,
        });
        let mut mem = Memory::new();
        mem.set_buffer(XReg::Pa, vec![0.0; 8]);
        Interpreter::new().run(&p, &mut mem);
    }
}
