//! The kernel instruction IR.
//!
//! A small, typed subset of AArch64: 128-bit vector loads/stores (`LDR q`,
//! `LDP q, q`), FP vector arithmetic (`FMUL`/`FMLA`/`FMLS`), pointer
//! arithmetic (`ADD x, x, #imm`), prefetch (`PRFM`), and a scalar-broadcast
//! FMA used by the SAVE template's `alpha` scaling. Rendering matches the
//! notation of the paper's Figure 5.

use core::fmt;

/// One of the 32 architectural SIMD registers V0–V31.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u8);

impl VReg {
    /// Register index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Symbolic pointer registers (the kernel's X registers).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum XReg {
    /// Packed A panel pointer.
    Pa,
    /// Packed B panel pointer.
    Pb,
    /// C tile pointer.
    Pc,
    /// Packed triangle pointer (TRSM kernels).
    Ptri,
}

impl XReg {
    /// All pointer registers.
    pub const ALL: [XReg; 4] = [XReg::Pa, XReg::Pb, XReg::Pc, XReg::Ptri];

    fn name(self) -> &'static str {
        match self {
            XReg::Pa => "pA",
            XReg::Pb => "pB",
            XReg::Pc => "pC",
            XReg::Ptri => "pT",
        }
    }
}

/// Element type of a kernel (selects the arrangement specifier and lane
/// count).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Single precision: four lanes (`.4s`).
    F32,
    /// Double precision: two lanes (`.2d`).
    F64,
}

impl DataType {
    /// Lanes per 128-bit vector.
    pub fn lanes(self) -> usize {
        match self {
            DataType::F32 => 4,
            DataType::F64 => 2,
        }
    }

    /// Bytes per scalar.
    pub fn scalar_bytes(self) -> usize {
        match self {
            DataType::F32 => 4,
            DataType::F64 => 8,
        }
    }

    /// AArch64 arrangement suffix.
    pub fn arr(self) -> &'static str {
        match self {
            DataType::F32 => ".4s",
            DataType::F64 => ".2d",
        }
    }
}

/// One instruction.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Inst {
    /// `ldr q<dst>, [base, #offset]` — one 128-bit vector load.
    Ldr {
        /// Destination register.
        dst: VReg,
        /// Base pointer.
        base: XReg,
        /// Byte offset from the base.
        offset: i32,
    },
    /// `ldp q<dst1>, q<dst2>, [base, #offset]` — a 256-bit pair load.
    Ldp {
        /// First destination.
        dst1: VReg,
        /// Second destination (offset + 16 bytes).
        dst2: VReg,
        /// Base pointer.
        base: XReg,
        /// Byte offset from the base.
        offset: i32,
    },
    /// `str q<src>, [base, #offset]`.
    Str {
        /// Source register.
        src: VReg,
        /// Base pointer.
        base: XReg,
        /// Byte offset.
        offset: i32,
    },
    /// `add base, base, #imm` — pointer bump.
    AddImm {
        /// Pointer register.
        reg: XReg,
        /// Increment in bytes.
        imm: i32,
    },
    /// `fmul vd, vn, vm`.
    Fmul {
        /// Destination.
        vd: VReg,
        /// First operand.
        vn: VReg,
        /// Second operand.
        vm: VReg,
    },
    /// `fmla vd, vn, vm` — `vd += vn · vm`.
    Fmla {
        /// Accumulator/destination.
        vd: VReg,
        /// First operand.
        vn: VReg,
        /// Second operand.
        vm: VReg,
    },
    /// `fmls vd, vn, vm` — `vd -= vn · vm`.
    Fmls {
        /// Accumulator/destination.
        vd: VReg,
        /// First operand.
        vn: VReg,
        /// Second operand.
        vm: VReg,
    },
    /// Scalar-broadcast FMA: `vd += vn · alpha` (models
    /// `fmla vd, vn, v_alpha[0]`; the SAVE template's alpha scaling).
    FmlaScalar {
        /// Accumulator/destination.
        vd: VReg,
        /// Vector operand.
        vn: VReg,
        /// Broadcast immediate.
        alpha: f64,
    },
    /// Scalar-broadcast multiply: `vd = vn · alpha`.
    FmulScalar {
        /// Destination.
        vd: VReg,
        /// Vector operand.
        vn: VReg,
        /// Broadcast immediate.
        alpha: f64,
    },
    /// `prfm pldl1keep, [base, #offset]` — prefetch for read.
    Prfm {
        /// Base pointer.
        base: XReg,
        /// Byte offset.
        offset: i32,
    },
}

impl Inst {
    /// Vector register read by this instruction (at most three).
    pub fn vreads(&self) -> Vec<VReg> {
        match *self {
            Inst::Fmul { vn, vm, .. } => vec![vn, vm],
            Inst::Fmla { vd, vn, vm } | Inst::Fmls { vd, vn, vm } => vec![vd, vn, vm],
            Inst::FmlaScalar { vd, vn, .. } => vec![vd, vn],
            Inst::FmulScalar { vn, .. } => vec![vn],
            Inst::Str { src, .. } => vec![src],
            _ => vec![],
        }
    }

    /// Vector registers written.
    pub fn vwrites(&self) -> Vec<VReg> {
        match *self {
            Inst::Ldr { dst, .. } => vec![dst],
            Inst::Ldp { dst1, dst2, .. } => vec![dst1, dst2],
            Inst::Fmul { vd, .. }
            | Inst::Fmla { vd, .. }
            | Inst::Fmls { vd, .. }
            | Inst::FmlaScalar { vd, .. }
            | Inst::FmulScalar { vd, .. } => vec![vd],
            _ => vec![],
        }
    }

    /// Pointer register read (all memory ops read their base).
    pub fn xreads(&self) -> Option<XReg> {
        match *self {
            Inst::Ldr { base, .. }
            | Inst::Ldp { base, .. }
            | Inst::Str { base, .. }
            | Inst::Prfm { base, .. } => Some(base),
            Inst::AddImm { reg, .. } => Some(reg),
            _ => None,
        }
    }

    /// Pointer register written.
    pub fn xwrites(&self) -> Option<XReg> {
        match *self {
            Inst::AddImm { reg, .. } => Some(reg),
            _ => None,
        }
    }

    /// True for memory-port instructions (load/store/prefetch).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Ldr { .. } | Inst::Ldp { .. } | Inst::Str { .. } | Inst::Prfm { .. }
        )
    }

    /// True for FP-port instructions.
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Inst::Fmul { .. }
                | Inst::Fmla { .. }
                | Inst::Fmls { .. }
                | Inst::FmlaScalar { .. }
                | Inst::FmulScalar { .. }
        )
    }

    /// True for stores (memory side effects).
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Str { .. })
    }
}

/// A straight-line kernel with its element type.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Element type (arrangement) of every vector op.
    pub dtype: DataType,
    /// The instructions in order.
    pub insts: Vec<Inst>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(dtype: DataType) -> Self {
        Self {
            dtype,
            insts: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Counts (memory ops, fp ops).
    pub fn port_counts(&self) -> (usize, usize) {
        let mem = self.insts.iter().filter(|i| i.is_mem()).count();
        let fp = self.insts.iter().filter(|i| i.is_fp()).count();
        (mem, fp)
    }

    /// Renders assembly text in the Figure-5 notation.
    pub fn render(&self) -> String {
        use fmt::Write;
        let arr = self.dtype.arr();
        let mut out = String::new();
        for inst in &self.insts {
            match *inst {
                Inst::Ldr { dst, base, offset } => {
                    let _ = writeln!(out, "ldr     q{}, [{}, #{}]", dst.0, base.name(), offset);
                }
                Inst::Ldp {
                    dst1,
                    dst2,
                    base,
                    offset,
                } => {
                    let _ = writeln!(
                        out,
                        "ldp     q{}, q{}, [{}, #{}]",
                        dst1.0,
                        dst2.0,
                        base.name(),
                        offset
                    );
                }
                Inst::Str { src, base, offset } => {
                    let _ = writeln!(out, "str     q{}, [{}, #{}]", src.0, base.name(), offset);
                }
                Inst::AddImm { reg, imm } => {
                    let _ = writeln!(out, "add     {r}, {r}, #{imm}", r = reg.name());
                }
                Inst::Fmul { vd, vn, vm } => {
                    let _ = writeln!(
                        out,
                        "fmul    v{}{arr}, v{}{arr}, v{}{arr}",
                        vd.0, vn.0, vm.0
                    );
                }
                Inst::Fmla { vd, vn, vm } => {
                    let _ = writeln!(
                        out,
                        "fmla    v{}{arr}, v{}{arr}, v{}{arr}",
                        vd.0, vn.0, vm.0
                    );
                }
                Inst::Fmls { vd, vn, vm } => {
                    let _ = writeln!(
                        out,
                        "fmls    v{}{arr}, v{}{arr}, v{}{arr}",
                        vd.0, vn.0, vm.0
                    );
                }
                Inst::FmlaScalar { vd, vn, alpha } => {
                    let _ = writeln!(
                        out,
                        "fmla    v{}{arr}, v{}{arr}, #{alpha} // alpha",
                        vd.0, vn.0
                    );
                }
                Inst::FmulScalar { vd, vn, alpha } => {
                    let _ = writeln!(
                        out,
                        "fmul    v{}{arr}, v{}{arr}, #{alpha} // alpha",
                        vd.0, vn.0
                    );
                }
                Inst::Prfm { base, offset } => {
                    let _ = writeln!(out, "prfm    pldl1keep, [{}, #{}]", base.name(), offset);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_sets() {
        let fmla = Inst::Fmla {
            vd: VReg(16),
            vn: VReg(0),
            vm: VReg(8),
        };
        assert_eq!(fmla.vreads(), vec![VReg(16), VReg(0), VReg(8)]);
        assert_eq!(fmla.vwrites(), vec![VReg(16)]);
        assert!(fmla.is_fp() && !fmla.is_mem());

        let ldp = Inst::Ldp {
            dst1: VReg(0),
            dst2: VReg(1),
            base: XReg::Pa,
            offset: 32,
        };
        assert_eq!(ldp.vwrites(), vec![VReg(0), VReg(1)]);
        assert!(ldp.vreads().is_empty());
        assert_eq!(ldp.xreads(), Some(XReg::Pa));
        assert!(ldp.is_mem());

        let add = Inst::AddImm {
            reg: XReg::Pb,
            imm: 32,
        };
        assert_eq!(add.xwrites(), Some(XReg::Pb));
        assert!(!add.is_mem() && !add.is_fp());
    }

    #[test]
    fn render_matches_figure5_notation() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldp {
            dst1: VReg(8),
            dst2: VReg(9),
            base: XReg::Pb,
            offset: 0,
        });
        p.push(Inst::AddImm {
            reg: XReg::Pb,
            imm: 32,
        });
        p.push(Inst::Fmul {
            vd: VReg(16),
            vn: VReg(0),
            vm: VReg(8),
        });
        let text = p.render();
        assert!(text.contains("ldp     q8, q9, [pB, #0]"));
        assert!(text.contains("add     pB, pB, #32"));
        assert!(text.contains("fmul    v16.2d, v0.2d, v8.2d"));
    }

    #[test]
    fn port_counts() {
        let mut p = Program::new(DataType::F32);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Fmla {
            vd: VReg(2),
            vn: VReg(0),
            vm: VReg(1),
        });
        p.push(Inst::Str {
            src: VReg(2),
            base: XReg::Pc,
            offset: 0,
        });
        assert_eq!(p.port_counts(), (2, 1));
    }
}
