//! Complex GEMM templates: the split-representation counterpart of
//! `crate::templates`, with the paper's complex register budget
//! (`4m_c + 4n_c + 2·m_c·n_c ≤ 32`, Eq. 3 — main kernel 3×2).
//!
//! Register allocation:
//!
//! ```text
//! A set 0 : V0            .. V2m_c−1     (re/im interleaved per row)
//! A set 1 : V2m_c         .. V4m_c−1
//! B set 0 : V4m_c         .. V4m_c+2n_c−1
//! B set 1 : V4m_c+2n_c    .. V4(m_c+n_c)−1
//! C accum : V4(m_c+n_c)   .. V4(m_c+n_c)+2m_c·n_c−1
//! ```
//!
//! Every complex FMA lowers to four FMA-class vector instructions, so the
//! generated instruction mix matches `cgemm_ukr` exactly (and the
//! equivalence tests require bit-identical double-precision results).

use crate::ir::{Inst, Program, VReg, XReg};
use crate::templates::Set;

/// Register-allocation helper for a complex `(m_c, n_c)` kernel.
#[derive(Copy, Clone, Debug)]
pub struct CRegMap {
    /// Kernel rows.
    pub mc: usize,
    /// Kernel columns.
    pub nc: usize,
}

impl CRegMap {
    /// Real-plane register of A row `i` in a set.
    pub fn a_re(&self, set: Set, i: usize) -> VReg {
        let base = match set {
            Set::Zero => 0,
            Set::One => 2 * self.mc,
        };
        VReg((base + 2 * i) as u8)
    }

    /// Imaginary-plane register of A row `i` in a set.
    pub fn a_im(&self, set: Set, i: usize) -> VReg {
        VReg(self.a_re(set, i).0 + 1)
    }

    /// Real-plane register of B column `j` in a set.
    pub fn b_re(&self, set: Set, j: usize) -> VReg {
        let base = 4 * self.mc
            + match set {
                Set::Zero => 0,
                Set::One => 2 * self.nc,
            };
        VReg((base + 2 * j) as u8)
    }

    /// Imaginary-plane register of B column `j` in a set.
    pub fn b_im(&self, set: Set, j: usize) -> VReg {
        VReg(self.b_re(set, j).0 + 1)
    }

    /// Real-plane accumulator for `(i, j)`.
    pub fn c_re(&self, i: usize, j: usize) -> VReg {
        VReg((4 * (self.mc + self.nc) + 2 * (j * self.mc + i)) as u8)
    }

    /// Imaginary-plane accumulator for `(i, j)`.
    pub fn c_im(&self, i: usize, j: usize) -> VReg {
        VReg(self.c_re(i, j).0 + 1)
    }

    /// Highest register index used.
    pub fn high_water(&self) -> usize {
        4 * (self.mc + self.nc) + 2 * self.mc * self.nc - 1
    }
}

/// Loads one sliver (a row/column set of complex element groups, `2·count`
/// vectors) from `base` as `ldp` pairs, then bumps the pointer.
fn emit_cloads(p: &mut Program, regs: &[VReg], base: XReg) {
    debug_assert!(regs.len() % 2 == 0);
    let mut i = 0;
    while i + 2 <= regs.len() {
        p.push(Inst::Ldp {
            dst1: regs[i],
            dst2: regs[i + 1],
            base,
            offset: (i * 16) as i32,
        });
        i += 2;
    }
    p.push(Inst::AddImm {
        reg: base,
        imm: (regs.len() * 16) as i32,
    });
}

fn a_regs(r: &CRegMap, set: Set) -> Vec<VReg> {
    (0..r.mc)
        .flat_map(|i| [r.a_re(set, i), r.a_im(set, i)])
        .collect()
}

fn b_regs(r: &CRegMap, set: Set) -> Vec<VReg> {
    (0..r.nc)
        .flat_map(|j| [r.b_re(set, j), r.b_im(set, j)])
        .collect()
}

/// Complex multiply-accumulate of one tile: four FMA-class ops per element,
/// in the exact operation order of `CVec::fma` (re: fmla then fmls; im:
/// fmla then fmla) so interpreted results match the Rust kernel bitwise.
fn emit_ccompute(p: &mut Program, r: &CRegMap, set: Set, first: bool) {
    for j in 0..r.nc {
        for i in 0..r.mc {
            let (are, aim) = (r.a_re(set, i), r.a_im(set, i));
            let (bre, bim) = (r.b_re(set, j), r.b_im(set, j));
            let (cre, cim) = (r.c_re(i, j), r.c_im(i, j));
            if first {
                p.push(Inst::Fmul {
                    vd: cre,
                    vn: are,
                    vm: bre,
                });
            } else {
                p.push(Inst::Fmla {
                    vd: cre,
                    vn: are,
                    vm: bre,
                });
            }
            p.push(Inst::Fmls {
                vd: cre,
                vn: aim,
                vm: bim,
            });
            if first {
                p.push(Inst::Fmul {
                    vd: cim,
                    vn: are,
                    vm: bim,
                });
            } else {
                p.push(Inst::Fmla {
                    vd: cim,
                    vn: are,
                    vm: bim,
                });
            }
            p.push(Inst::Fmla {
                vd: cim,
                vn: aim,
                vm: bre,
            });
        }
    }
}

/// Complex `TEMPLATE_I`.
pub fn ctemplate_i(p: &mut Program, r: &CRegMap) {
    let mut a = a_regs(r, Set::Zero);
    a.extend(a_regs(r, Set::One));
    emit_cloads(p, &a, XReg::Pa);
    let mut b = b_regs(r, Set::Zero);
    b.extend(b_regs(r, Set::One));
    emit_cloads(p, &b, XReg::Pb);
    emit_ccompute(p, r, Set::Zero, true);
}

/// Complex `TEMPLATE_M1`.
pub fn ctemplate_m1(p: &mut Program, r: &CRegMap) {
    emit_cloads(p, &a_regs(r, Set::One), XReg::Pa);
    emit_cloads(p, &b_regs(r, Set::One), XReg::Pb);
    emit_ccompute(p, r, Set::Zero, false);
}

/// Complex `TEMPLATE_M2`.
pub fn ctemplate_m2(p: &mut Program, r: &CRegMap) {
    emit_cloads(p, &a_regs(r, Set::Zero), XReg::Pa);
    emit_cloads(p, &b_regs(r, Set::Zero), XReg::Pb);
    emit_ccompute(p, r, Set::One, false);
}

/// Complex `TEMPLATE_E` (compute-only, set 1).
pub fn ctemplate_e(p: &mut Program, r: &CRegMap) {
    emit_ccompute(p, r, Set::One, false);
}

/// Complex compute-only exit on set 0.
pub fn ctemplate_e0(p: &mut Program, r: &CRegMap) {
    emit_ccompute(p, r, Set::Zero, false);
}

/// Complex `TEMPLATE_SUB`.
pub fn ctemplate_sub(p: &mut Program, r: &CRegMap, first: bool) {
    emit_cloads(p, &a_regs(r, Set::Zero), XReg::Pa);
    emit_cloads(p, &b_regs(r, Set::Zero), XReg::Pb);
    emit_ccompute(p, r, Set::Zero, first);
}

/// Complex `TEMPLATE_SAVE` with real `alpha` (the benchmark convention;
/// full complex alpha needs one more scratch plane and is applied by the
/// run-time stage instead): `C_orig += alpha · C_acc` per plane.
pub fn ctemplate_save(p: &mut Program, r: &CRegMap, alpha: f64, ldc: usize) {
    for j in 0..r.nc {
        for i in 0..r.mc {
            let idx = 2 * (j * r.mc + i);
            let (tre, tim) = (VReg(idx as u8), VReg((idx + 1) as u8));
            let off = ((j * ldc + i) * 32) as i32;
            p.push(Inst::Ldp {
                dst1: tre,
                dst2: tim,
                base: XReg::Pc,
                offset: off,
            });
            p.push(Inst::FmlaScalar {
                vd: tre,
                vn: r.c_re(i, j),
                alpha,
            });
            p.push(Inst::FmlaScalar {
                vd: tim,
                vn: r.c_im(i, j),
                alpha,
            });
            p.push(Inst::Str {
                src: tre,
                base: XReg::Pc,
                offset: off,
            });
            p.push(Inst::Str {
                src: tim,
                base: XReg::Pc,
                offset: off + 16,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::DataType;

    #[test]
    fn complex_allocation_fits_eq3() {
        let r = CRegMap { mc: 3, nc: 2 };
        assert_eq!(r.a_re(Set::Zero, 0), VReg(0));
        assert_eq!(r.a_im(Set::One, 2), VReg(11));
        assert_eq!(r.b_re(Set::Zero, 0), VReg(12));
        assert_eq!(r.b_im(Set::One, 1), VReg(19));
        assert_eq!(r.c_re(0, 0), VReg(20));
        assert_eq!(r.c_im(2, 1), VReg(31));
        assert_eq!(r.high_water(), 31); // exactly the 32-register file
    }

    #[test]
    fn four_fma_class_ops_per_element() {
        let r = CRegMap { mc: 3, nc: 2 };
        let mut p = Program::new(DataType::F64);
        ctemplate_m1(&mut p, &r);
        let fp = p.insts.iter().filter(|i| i.is_fp()).count();
        assert_eq!(fp, 4 * 3 * 2);
        // loads: one sliver of A (6 vregs) + one of B (4 vregs) = 5 ldp
        let ldp = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Ldp { .. }))
            .count();
        assert_eq!(ldp, 5);
    }

    #[test]
    fn save_scratch_fits_dead_registers() {
        // scratch pairs must stay below the A/B region end (4(m+n))
        for (m, n) in [(3usize, 2usize), (2, 2), (1, 2), (3, 1), (1, 1)] {
            assert!(2 * m * n <= 4 * (m + n), "({m},{n})");
        }
        let r = CRegMap { mc: 3, nc: 2 };
        let mut p = Program::new(DataType::F64);
        ctemplate_save(&mut p, &r, 1.0, 3);
        for i in &p.insts {
            if let Inst::Ldp { dst1, dst2, .. } = i {
                assert!(dst1.idx() < 20 && dst2.idx() < 20);
            }
        }
    }
}
