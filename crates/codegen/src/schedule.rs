//! The kernel optimizer (paper §4.3, Figure 5).
//!
//! The paper's optimizer transforms the generator's template-order code in
//! two steps: (1) reorder so dependent instructions are far apart, (2)
//! insert the loads between computation instructions so computation hides
//! load latency. Both are subsumed by a latency-aware list scheduler over
//! the dependency DAG with the dual-issue pipeline model as cost: it pulls
//! independent loads early and interleaves them between FMAs exactly as in
//! Figure 5's right-hand column. Semantic preservation is proven by the IR
//! interpreter (`crate::interp`) in this crate's tests.

use crate::ir::{Inst, Program, VReg, XReg};
use crate::pipeline::PipelineModel;
use std::collections::HashMap;

/// Kinds of dependency edges.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write: consumer waits for the producer's latency.
    Raw,
    /// Write-after-read / write-after-write / memory order: ordering only.
    Order,
}

fn mem_range(inst: &Inst) -> Option<(XReg, i32, i32)> {
    match *inst {
        Inst::Ldr { base, offset, .. } => Some((base, offset, offset + 16)),
        Inst::Ldp { base, offset, .. } => Some((base, offset, offset + 32)),
        Inst::Str { base, offset, .. } => Some((base, offset, offset + 16)),
        _ => None,
    }
}

/// Builds the dependency edges of a program: register RAW/WAR/WAW on both
/// vector and pointer registers, and memory ordering between stores and
/// overlapping (or non-provably-disjoint) accesses to the same base.
pub fn dependency_edges(p: &Program) -> Vec<(usize, usize, DepKind)> {
    let mut edges = Vec::new();
    let n = p.insts.len();
    // pointer version = number of AddImms on that base seen so far; two
    // offsets are only comparable within one version. An instruction with
    // no base register carries no version at all (it can never alias), so
    // bumps of unrelated bases cannot leak into its slot.
    let mut xversion: HashMap<XReg, usize> = HashMap::new();
    let mut versions: Vec<Option<usize>> = Vec::with_capacity(n);
    for inst in &p.insts {
        versions.push(inst.xreads().map(|x| *xversion.get(&x).unwrap_or(&0)));
        if let Some(x) = inst.xwrites() {
            *xversion.entry(x).or_insert(0) += 1;
        }
    }

    let mut last_vwrite: HashMap<VReg, usize> = HashMap::new();
    let mut vreads_since: HashMap<VReg, Vec<usize>> = HashMap::new();
    let mut last_xwrite: HashMap<XReg, usize> = HashMap::new();
    let mut xreads_since: HashMap<XReg, Vec<usize>> = HashMap::new();

    for j in 0..n {
        let inst = &p.insts[j];
        // vector registers
        for r in inst.vreads() {
            if let Some(&i) = last_vwrite.get(&r) {
                edges.push((i, j, DepKind::Raw));
            }
            vreads_since.entry(r).or_default().push(j);
        }
        for r in inst.vwrites() {
            if let Some(&i) = last_vwrite.get(&r) {
                edges.push((i, j, DepKind::Order)); // WAW
            }
            if let Some(readers) = vreads_since.get(&r) {
                for &i in readers {
                    if i != j {
                        edges.push((i, j, DepKind::Order)); // WAR
                    }
                }
            }
            last_vwrite.insert(r, j);
            vreads_since.insert(r, Vec::new());
        }
        // pointer registers
        if let Some(x) = inst.xreads() {
            if let Some(&i) = last_xwrite.get(&x) {
                if i != j {
                    edges.push((i, j, DepKind::Raw));
                }
            }
            xreads_since.entry(x).or_default().push(j);
        }
        if let Some(x) = inst.xwrites() {
            if let Some(readers) = xreads_since.get(&x) {
                for &i in readers {
                    if i != j {
                        edges.push((i, j, DepKind::Order));
                    }
                }
            }
            if let Some(&i) = last_xwrite.get(&x) {
                edges.push((i, j, DepKind::Order));
            }
            last_xwrite.insert(x, j);
            xreads_since.insert(x, Vec::new());
        }
        // memory ordering: a store conflicts with any access to the same
        // base unless both offsets are in the same pointer version and the
        // ranges are provably disjoint.
        if let Some((bj, lj, hj)) = mem_range(inst) {
            let j_store = inst.is_store();
            for i in 0..j {
                let other = &p.insts[i];
                if let Some((bi, li, hi)) = mem_range(other) {
                    if bi != bj || (!j_store && !other.is_store()) {
                        continue;
                    }
                    let disjoint = versions[i].is_some()
                        && versions[i] == versions[j]
                        && (hi <= lj || hj <= li);
                    if !disjoint {
                        edges.push((i, j, DepKind::Order));
                    }
                }
            }
        }
    }
    edges.sort_unstable_by_key(|&(i, j, _)| (i, j));
    edges.dedup();
    edges
}

/// Latency-aware list scheduling: returns the optimized program.
pub fn optimize(p: &Program, model: &PipelineModel) -> Program {
    let n = p.insts.len();
    if n == 0 {
        return p.clone();
    }
    let edges = dependency_edges(p);
    let mut succs: Vec<Vec<(usize, DepKind)>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<(usize, DepKind)>> = vec![Vec::new(); n];
    for &(i, j, k) in &edges {
        succs[i].push((j, k));
        preds[j].push((i, k));
    }

    let lat = |inst: &Inst| -> u64 {
        if inst.is_mem() {
            model.load_latency as u64
        } else if inst.is_fp() {
            model.fp_latency as u64
        } else {
            model.int_latency as u64
        }
    };

    // priority: critical-path height
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        let own = lat(&p.insts[i]);
        let mut h = own;
        for &(j, kind) in &succs[i] {
            let w = if kind == DepKind::Raw { own } else { 1 };
            h = h.max(w + height[j]);
        }
        height[i] = h;
    }

    let mut indeg: Vec<usize> = preds.iter().map(|v| v.len()).collect();
    let mut earliest = vec![0u64; n]; // earliest issue cycle
    let mut issued = vec![false; n];
    let mut out = Program::new(p.dtype);
    let mut cycle: u64 = 0;
    let mut remaining = n;

    while remaining > 0 {
        // ports per cycle: 1 mem, 1 fp, 1 int
        let mut used_mem = false;
        let mut used_fp = false;
        let mut used_int = false;
        let mut progressed = false;
        loop {
            // pick the ready instruction with the greatest height whose port
            // is free this cycle
            let mut best: Option<usize> = None;
            for i in 0..n {
                if issued[i] || indeg[i] != 0 || earliest[i] > cycle {
                    continue;
                }
                let inst = &p.insts[i];
                let port_ok = if inst.is_mem() {
                    !used_mem
                } else if inst.is_fp() {
                    !used_fp
                } else {
                    !used_int
                };
                if !port_ok {
                    continue;
                }
                if best.is_none_or(|b| height[i] > height[b]) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let inst = p.insts[i];
            if inst.is_mem() {
                used_mem = true;
            } else if inst.is_fp() {
                used_fp = true;
            } else {
                used_int = true;
            }
            issued[i] = true;
            remaining -= 1;
            progressed = true;
            out.push(inst);
            for &(j, kind) in &succs[i] {
                indeg[j] -= 1;
                let avail = if kind == DepKind::Raw {
                    cycle + lat(&inst)
                } else {
                    cycle + 1
                };
                earliest[j] = earliest[j].max(avail);
            }
        }
        if !progressed || remaining > 0 {
            cycle += 1;
        }
        let _ = progressed;
    }
    out
}

/// Install-time scheduling stats for one generated kernel: what the
/// optimizer report (paper Fig. 5) is made of.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Instructions in the program (unchanged by scheduling).
    pub insts: u64,
    /// Modeled cycles of the generation-order schedule.
    pub cycles_before: u64,
    /// Modeled cycles after the scheduling optimizer.
    pub cycles_after: u64,
    /// Issue-port lower bound on cycles for this instruction mix.
    pub port_bound: u64,
}

impl ScheduleStats {
    /// Modeled speedup of the optimized schedule (≥ 1 in practice).
    pub fn speedup(&self) -> f64 {
        self.cycles_before as f64 / self.cycles_after.max(1) as f64
    }
}

/// Convenience: simulate a program before and after optimization.
pub fn schedule_stats(p: &Program, model: &PipelineModel) -> ScheduleStats {
    let before = model.simulate(p);
    let after = model.simulate(&optimize(p, model));
    ScheduleStats {
        insts: p.insts.len() as u64,
        cycles_before: before.cycles,
        cycles_after: after.cycles,
        port_bound: before.port_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_gemm_kernel, GemmKernelSpec};
    use crate::ir::DataType;

    #[test]
    fn edges_capture_raw() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Fmla {
            vd: VReg(2),
            vn: VReg(0),
            vm: VReg(1),
        });
        let e = dependency_edges(&p);
        assert!(e.contains(&(0, 1, DepKind::Raw)));
    }

    #[test]
    fn edges_capture_pointer_war() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::AddImm {
            reg: XReg::Pa,
            imm: 16,
        });
        p.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pa,
            offset: 0,
        });
        let e = dependency_edges(&p);
        assert!(e.contains(&(0, 1, DepKind::Order))); // WAR: add after load
        assert!(e.contains(&(1, 2, DepKind::Raw))); // load after add
    }

    #[test]
    fn store_load_disjoint_ranges_do_not_conflict() {
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pb,
            offset: 0,
        });
        p.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pb,
            offset: 32,
        });
        p.push(Inst::Ldr {
            dst: VReg(2),
            base: XReg::Pb,
            offset: 0,
        });
        let e = dependency_edges(&p);
        // disjoint store/load: no edge (0,1); overlapping: edge (0,2)
        assert!(!e.iter().any(|&(i, j, _)| (i, j) == (0, 1)));
        assert!(e.iter().any(|&(i, j, _)| (i, j) == (0, 2)));
    }

    #[test]
    fn bump_on_unrelated_base_keeps_offsets_comparable() {
        // An AddImm on Pa between two Pb accesses must not change Pb's
        // version: disjoint Pb offsets stay provably disjoint (no edge) and
        // overlapping ones still conflict.
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pb,
            offset: 0,
        });
        p.push(Inst::AddImm {
            reg: XReg::Pa,
            imm: 64,
        });
        p.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pb,
            offset: 16,
        });
        p.push(Inst::Ldr {
            dst: VReg(2),
            base: XReg::Pb,
            offset: 0,
        });
        let e = dependency_edges(&p);
        assert!(!e.iter().any(|&(i, j, _)| (i, j) == (0, 2)));
        assert!(e.iter().any(|&(i, j, _)| (i, j) == (0, 3)));
    }

    #[test]
    fn overlap_across_pointer_bump_still_conflicts() {
        // Str [Pb,#0]; add Pb,#16; Ldr [Pb,#-16] — the same 16 bytes, but
        // in different pointer versions: the offsets are not comparable, so
        // a conservative ordering edge is required.
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pb,
            offset: 0,
        });
        p.push(Inst::AddImm {
            reg: XReg::Pb,
            imm: 16,
        });
        p.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pb,
            offset: -16,
        });
        let e = dependency_edges(&p);
        assert!(e.iter().any(|&(i, j, _)| (i, j) == (0, 2)));
    }

    #[test]
    fn non_mem_instructions_do_not_perturb_versioning() {
        // Regression for the old `xreads().unwrap_or(XReg::Pa)` scheme: a
        // baseless FP instruction between two mem ops must leave the memory
        // edges exactly as without it (modulo index shifts).
        let mem = |p: &mut Program| {
            p.push(Inst::Str {
                src: VReg(0),
                base: XReg::Pc,
                offset: 0,
            });
            p.push(Inst::Ldr {
                dst: VReg(1),
                base: XReg::Pc,
                offset: 32,
            });
        };
        let mut plain = Program::new(DataType::F64);
        mem(&mut plain);
        let mut with_fp = Program::new(DataType::F64);
        with_fp.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pc,
            offset: 0,
        });
        with_fp.push(Inst::Fmla {
            vd: VReg(2),
            vn: VReg(3),
            vm: VReg(4),
        });
        with_fp.push(Inst::Ldr {
            dst: VReg(1),
            base: XReg::Pc,
            offset: 32,
        });
        // disjoint store/load: no memory edge in either program
        assert!(!dependency_edges(&plain)
            .iter()
            .any(|&(i, j, _)| (i, j) == (0, 1)));
        assert!(!dependency_edges(&with_fp)
            .iter()
            .any(|&(i, j, _)| (i, j) == (0, 2)));
    }

    #[test]
    fn optimizer_reduces_modeled_cycles_fig5() {
        // The Figure-5 scenario: the generated 4×4 DGEMM kernel.
        let model = PipelineModel::default();
        for k in [4usize, 8, 16] {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc: 4,
                nc: 4,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: 4,
            });
            let stats = schedule_stats(&p, &model);
            assert!(
                stats.cycles_after < stats.cycles_before,
                "k={k}: optimizer should reduce cycles ({} → {})",
                stats.cycles_before,
                stats.cycles_after,
            );
            // and must never be worse than the port bound
            assert!(stats.cycles_after >= stats.port_bound);
            assert_eq!(stats.insts, p.insts.len() as u64);
            assert_eq!(stats.port_bound, model.simulate(&p).port_bound);
            assert!(stats.speedup() > 1.0);
        }
    }

    #[test]
    fn optimizer_preserves_instruction_multiset() {
        let p = generate_gemm_kernel(&GemmKernelSpec {
            mc: 3,
            nc: 2,
            k: 5,
            dtype: DataType::F32,
            alpha: 2.0,
            ldc: 3,
        });
        let model = PipelineModel::default();
        let q = optimize(&p, &model);
        assert_eq!(p.insts.len(), q.insts.len());
        let count = |prog: &Program, pred: fn(&Inst) -> bool| {
            prog.insts.iter().filter(|i| pred(i)).count()
        };
        assert_eq!(count(&p, Inst::is_mem), count(&q, Inst::is_mem));
        assert_eq!(count(&p, Inst::is_fp), count(&q, Inst::is_fp));
    }

    #[test]
    fn optimizer_respects_topological_order() {
        let p = generate_gemm_kernel(&GemmKernelSpec {
            mc: 4,
            nc: 4,
            k: 3,
            dtype: DataType::F64,
            alpha: 1.0,
            ldc: 4,
        });
        let model = PipelineModel::default();
        let q = optimize(&p, &model);
        // every dependency of the optimized program must point forward
        let e = dependency_edges(&q);
        for (i, j, _) in e {
            assert!(i < j);
        }
    }
}
