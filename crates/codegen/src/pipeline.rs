//! Dual-issue in-order pipeline model of the evaluation CPU.
//!
//! The paper (§6.3): "Kunpeng 920 CPU can only issue one memory access
//! instruction and one calculation instruction at the same time". The model
//! issues at most one memory op, one FP op, and one integer op per cycle,
//! strictly in program order, with result latencies on loads and FP
//! arithmetic. Scheduling quality is scored as total modeled cycles — the
//! metric the Figure-5 optimizer reduces.

use crate::ir::{Program, VReg, XReg};
use std::collections::HashMap;

/// Latency/width parameters of the modeled core.
#[derive(Copy, Clone, Debug)]
pub struct PipelineModel {
    /// Cycles from load issue to register availability.
    pub load_latency: u32,
    /// Cycles from FP issue to result availability.
    pub fp_latency: u32,
    /// Cycles for a pointer add.
    pub int_latency: u32,
}

impl Default for PipelineModel {
    fn default() -> Self {
        // L1-hit load and FMA latencies typical of the TaiShan V110 core.
        Self {
            load_latency: 4,
            fp_latency: 4,
            int_latency: 1,
        }
    }
}

/// Result of simulating a program.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles to issue every instruction.
    pub cycles: u64,
    /// Cycles in which nothing could issue (pure stall).
    pub stall_cycles: u64,
    /// Lower bound from port throughput alone.
    pub port_bound: u64,
}

impl PipelineModel {
    /// Simulates in-order dual issue and returns cycle counts.
    pub fn simulate(&self, p: &Program) -> SimResult {
        let mut vready: HashMap<VReg, u64> = HashMap::new();
        let mut xready: HashMap<XReg, u64> = HashMap::new();
        let mut cycle: u64 = 0;
        let mut mem_busy: u64 = 0; // next cycle the mem port is free
        let mut fp_busy: u64 = 0;
        let mut int_busy: u64 = 0;
        let mut issued_total: u64 = 0;
        let mut busy_cycles: u64 = 0;

        for inst in &p.insts {
            // operand readiness
            let mut ready = cycle;
            for r in inst.vreads() {
                ready = ready.max(*vready.get(&r).unwrap_or(&0));
            }
            if let Some(x) = inst.xreads() {
                ready = ready.max(*xready.get(&x).unwrap_or(&0));
            }
            // port availability (in-order: cannot issue before predecessors'
            // issue cycle, tracked implicitly by `cycle`)
            let port_free = if inst.is_mem() {
                mem_busy
            } else if inst.is_fp() {
                fp_busy
            } else {
                int_busy
            };
            let issue = ready.max(port_free).max(cycle);
            // in-order front end: later instructions cannot issue earlier
            cycle = issue;
            // occupy the port for one cycle
            if inst.is_mem() {
                mem_busy = issue + 1;
            } else if inst.is_fp() {
                fp_busy = issue + 1;
            } else {
                int_busy = issue + 1;
            }
            // results
            let lat = if inst.is_mem() {
                self.load_latency as u64
            } else if inst.is_fp() {
                self.fp_latency as u64
            } else {
                self.int_latency as u64
            };
            for w in inst.vwrites() {
                vready.insert(w, issue + lat);
            }
            if let Some(x) = inst.xwrites() {
                xready.insert(x, issue + lat);
            }
            issued_total += 1;
            busy_cycles = busy_cycles.max(issue + 1);
        }

        let (mem, fp) = p.port_counts();
        let others = p.insts.len() - mem - fp;
        let port_bound = mem.max(fp).max(others) as u64;
        let cycles = busy_cycles;
        let stall = cycles.saturating_sub(issued_total.div_ceil(2));
        SimResult {
            cycles,
            stall_cycles: stall,
            port_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Inst, VReg, XReg};

    #[test]
    fn dependent_chain_stalls() {
        // load feeding an FMA immediately: fp must wait for load latency.
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Fmla {
            vd: VReg(2),
            vn: VReg(0),
            vm: VReg(1),
        });
        let r = PipelineModel::default().simulate(&p);
        // load at 0, fma at 4 → 5 cycles total
        assert_eq!(r.cycles, 5);
    }

    #[test]
    fn independent_ops_dual_issue() {
        // a load and an unrelated FMA issue in the same cycle.
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        p.push(Inst::Fmla {
            vd: VReg(4),
            vn: VReg(2),
            vm: VReg(3),
        });
        let r = PipelineModel::default().simulate(&p);
        assert_eq!(r.cycles, 1);
    }

    #[test]
    fn same_port_serializes() {
        let mut p = Program::new(DataType::F64);
        for i in 0..4 {
            p.push(Inst::Fmla {
                vd: VReg(10 + i),
                vn: VReg(0),
                vm: VReg(1),
            });
        }
        let r = PipelineModel::default().simulate(&p);
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn pointer_dependency_respected() {
        // add pA then load from pA: load waits for the add.
        let mut p = Program::new(DataType::F64);
        p.push(Inst::AddImm {
            reg: XReg::Pa,
            imm: 32,
        });
        p.push(Inst::Ldr {
            dst: VReg(0),
            base: XReg::Pa,
            offset: 0,
        });
        let r = PipelineModel::default().simulate(&p);
        // add at 0 (1 cycle), load at 1, retires at 2
        assert_eq!(r.cycles, 2);
    }
}
