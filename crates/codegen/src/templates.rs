//! The six GEMM computing-kernel templates (Algorithm 2) and the TRSM
//! triangular template (Algorithm 4), with the paper's register allocation:
//!
//! ```text
//! A set 0 : V0        .. Vm_c−1          A set 1 : Vm_c      .. V2m_c−1
//! B set 0 : V2m_c     .. V2m_c+n_c−1     B set 1 : V2m_c+n_c .. V2(m_c+n_c)−1
//! C accum : V2(m_c+n_c) .. V2(m_c+n_c)+m_c·n_c−1
//! ```
//!
//! Loads are emitted as `ldp`/`ldr` + pointer `add` pairs exactly like the
//! "original code" column of Figure 5; the scheduling optimizer
//! (`crate::schedule`) then transforms them into the right-hand column.

use crate::ir::{Inst, Program, VReg, XReg};

/// Identifies which register set a template works on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Set {
    /// Set 0 (`A: V0.., B: V2m_c..`).
    Zero,
    /// Set 1 (`A: Vm_c.., B: V2m_c+n_c..`).
    One,
}

/// Register-allocation helper for an `(m_c, n_c)` kernel.
#[derive(Copy, Clone, Debug)]
pub struct RegMap {
    /// Kernel rows.
    pub mc: usize,
    /// Kernel columns.
    pub nc: usize,
}

impl RegMap {
    /// A-register for row `i` of a set.
    pub fn a(&self, set: Set, i: usize) -> VReg {
        debug_assert!(i < self.mc);
        let base = match set {
            Set::Zero => 0,
            Set::One => self.mc,
        };
        VReg((base + i) as u8)
    }

    /// B-register for column `j` of a set.
    pub fn b(&self, set: Set, j: usize) -> VReg {
        debug_assert!(j < self.nc);
        let base = match set {
            Set::Zero => 2 * self.mc,
            Set::One => 2 * self.mc + self.nc,
        };
        VReg((base + j) as u8)
    }

    /// C accumulator register for `(i, j)` (column-major within the tile).
    pub fn c(&self, i: usize, j: usize) -> VReg {
        debug_assert!(i < self.mc && j < self.nc);
        VReg((2 * (self.mc + self.nc) + j * self.mc + i) as u8)
    }

    /// Scratch register for the SAVE template's C loads (reuses the A/B
    /// registers, dead after the last compute).
    pub fn save_tmp(&self, idx: usize) -> VReg {
        debug_assert!(idx < 2 * (self.mc + self.nc));
        VReg(idx as u8)
    }

    /// Highest register index used (must stay < 32).
    pub fn high_water(&self) -> usize {
        2 * (self.mc + self.nc) + self.mc * self.nc - 1
    }
}

/// Emits `count` vector loads from `base` (as `ldp` pairs plus a trailing
/// `ldr`), followed by one pointer bump of `count · 16` bytes — the
/// generator's load idiom from Figure 5.
fn emit_loads(p: &mut Program, regs: &[VReg], base: XReg) {
    let mut i = 0;
    while i + 2 <= regs.len() {
        p.push(Inst::Ldp {
            dst1: regs[i],
            dst2: regs[i + 1],
            base,
            offset: (i * 16) as i32,
        });
        i += 2;
    }
    if i < regs.len() {
        p.push(Inst::Ldr {
            dst: regs[i],
            base,
            offset: (i * 16) as i32,
        });
    }
    p.push(Inst::AddImm {
        reg: base,
        imm: (regs.len() * 16) as i32,
    });
}

fn a_regs(r: &RegMap, set: Set) -> Vec<VReg> {
    (0..r.mc).map(|i| r.a(set, i)).collect()
}

fn b_regs(r: &RegMap, set: Set) -> Vec<VReg> {
    (0..r.nc).map(|j| r.b(set, j)).collect()
}

fn emit_compute(p: &mut Program, r: &RegMap, set: Set, first: bool) {
    for j in 0..r.nc {
        for i in 0..r.mc {
            let (vd, vn, vm) = (r.c(i, j), r.a(set, i), r.b(set, j));
            p.push(if first {
                Inst::Fmul { vd, vn, vm }
            } else {
                Inst::Fmla { vd, vn, vm }
            });
        }
    }
}

/// `TEMPLATE_I`: loads both register sets (K steps 0 and 1) and computes
/// step 0 with `FMUL` so nothing reads a zeroed accumulator.
pub fn template_i(p: &mut Program, r: &RegMap) {
    let mut a = a_regs(r, Set::Zero);
    a.extend(a_regs(r, Set::One));
    emit_loads(p, &a, XReg::Pa);
    let mut b = b_regs(r, Set::Zero);
    b.extend(b_regs(r, Set::One));
    emit_loads(p, &b, XReg::Pb);
    emit_compute(p, r, Set::Zero, true);
}

/// `TEMPLATE_M1`: loads set 1, computes set 0.
pub fn template_m1(p: &mut Program, r: &RegMap) {
    emit_loads(p, &a_regs(r, Set::One), XReg::Pa);
    emit_loads(p, &b_regs(r, Set::One), XReg::Pb);
    emit_compute(p, r, Set::Zero, false);
}

/// `TEMPLATE_M2`: loads set 0, computes set 1.
pub fn template_m2(p: &mut Program, r: &RegMap) {
    emit_loads(p, &a_regs(r, Set::Zero), XReg::Pa);
    emit_loads(p, &b_regs(r, Set::Zero), XReg::Pb);
    emit_compute(p, r, Set::One, false);
}

/// `TEMPLATE_E`: compute-only exit on set 1.
pub fn template_e(p: &mut Program, r: &RegMap) {
    emit_compute(p, r, Set::One, false);
}

/// Compute-only exit on set 0 (the corrected generator's even-K tail; the
/// printed Algorithm 3 reaches the same state through `SUB`).
pub fn template_e0(p: &mut Program, r: &RegMap) {
    emit_compute(p, r, Set::Zero, false);
}

/// `TEMPLATE_SUB`: loads set 0 and computes it (no pipelining; the K = 1
/// arm and odd tails).
pub fn template_sub(p: &mut Program, r: &RegMap) {
    emit_loads(p, &a_regs(r, Set::Zero), XReg::Pa);
    emit_loads(p, &b_regs(r, Set::Zero), XReg::Pb);
    emit_compute(p, r, Set::Zero, false);
}

/// `TEMPLATE_SAVE`: loads the original C tile into the (now dead) A/B
/// registers, accumulates `alpha ·` the computed tile into it, and stores
/// (paper lines 22–25: `C_orig += alpha · C_acc`, i.e. β = 1).
///
/// `ldc` is the C leading dimension in element groups (the compact row
/// count); the group at `(i, j)` lives `((j·ldc) + i) · 16` bytes from `pC`.
pub fn template_save(p: &mut Program, r: &RegMap, alpha: f64, ldc: usize) {
    for j in 0..r.nc {
        for i in 0..r.mc {
            let tmp = r.save_tmp(j * r.mc + i);
            let offset = ((j * ldc + i) * 16) as i32;
            p.push(Inst::Ldr {
                dst: tmp,
                base: XReg::Pc,
                offset,
            });
            p.push(Inst::FmlaScalar {
                vd: tmp,
                vn: r.c(i, j),
                alpha,
            });
            p.push(Inst::Str {
                src: tmp,
                base: XReg::Pc,
                offset,
            });
        }
    }
}

/// Emits the PRFM prefetch of the C tile at kernel entry (§4.3).
pub fn prefetch_c(p: &mut Program, r: &RegMap, ldc: usize) {
    p.push(Inst::Prfm {
        base: XReg::Pc,
        offset: 0,
    });
    p.push(Inst::Prfm {
        base: XReg::Pc,
        offset: (((r.nc - 1) * ldc) * 16) as i32,
    });
}

// ---------------------------------------------------------------------------
// TRSM triangular template (Algorithm 4)
// ---------------------------------------------------------------------------

/// Register map for the register-resident TRSM triangular kernel: the
/// packed triangle occupies `V0 .. M(M+1)/2 − 1`, and two B-column sets of
/// `M` registers follow (ping-pong over columns).
#[derive(Copy, Clone, Debug)]
pub struct TrsmRegMap {
    /// Triangle order (≤ 5).
    pub m: usize,
}

impl TrsmRegMap {
    /// Triangle register for `A(i, j)`, `j ≤ i` (reciprocal diagonal at
    /// `j == i`).
    pub fn a(&self, i: usize, j: usize) -> VReg {
        debug_assert!(j <= i && i < self.m);
        VReg((i * (i + 1) / 2 + j) as u8)
    }

    /// B-column register `i` of a set.
    pub fn b(&self, set: Set, i: usize) -> VReg {
        let tri = self.m * (self.m + 1) / 2;
        let base = match set {
            Set::Zero => tri,
            Set::One => tri + self.m,
        };
        VReg((base + i) as u8)
    }

    /// Highest register index used.
    pub fn high_water(&self) -> usize {
        self.m * (self.m + 1) / 2 + 2 * self.m - 1
    }
}

/// Loads the whole packed triangle into registers (Algorithm 4 lines 1–3).
pub fn trsm_load_triangle(p: &mut Program, r: &TrsmRegMap) {
    let regs: Vec<VReg> = (0..r.m)
        .flat_map(|i| (0..=i).map(move |j| (i, j)))
        .map(|(i, j)| r.a(i, j))
        .collect();
    // static offsets from pT, no pointer bump (straight-line kernel)
    let mut i = 0;
    while i + 2 <= regs.len() {
        p.push(Inst::Ldp {
            dst1: regs[i],
            dst2: regs[i + 1],
            base: XReg::Ptri,
            offset: (i * 16) as i32,
        });
        i += 2;
    }
    if i < regs.len() {
        p.push(Inst::Ldr {
            dst: regs[i],
            base: XReg::Ptri,
            offset: (i * 16) as i32,
        });
    }
}

/// Emits the load of B column `l` into a register set (column-major panel:
/// column `l` starts `l · m · 16` bytes from `pB`).
pub fn trsm_load_column(p: &mut Program, r: &TrsmRegMap, set: Set, l: usize) {
    let regs: Vec<VReg> = (0..r.m).map(|i| r.b(set, i)).collect();
    let base_off = l * r.m * 16;
    let mut i = 0;
    while i + 2 <= regs.len() {
        p.push(Inst::Ldp {
            dst1: regs[i],
            dst2: regs[i + 1],
            base: XReg::Pb,
            offset: (base_off + i * 16) as i32,
        });
        i += 2;
    }
    if i < regs.len() {
        p.push(Inst::Ldr {
            dst: regs[i],
            base: XReg::Pb,
            offset: (base_off + i * 16) as i32,
        });
    }
}

/// Emits the in-register forward solve of one column (Algorithm 4 lines
/// 6–9) and its store back (line 10).
pub fn trsm_solve_column(p: &mut Program, r: &TrsmRegMap, set: Set, l: usize) {
    for i in 0..r.m {
        for j in 0..i {
            p.push(Inst::Fmls {
                vd: r.b(set, i),
                vn: r.a(i, j),
                vm: r.b(set, j),
            });
        }
        // reciprocal diagonal: multiply, never divide (§4.4)
        p.push(Inst::Fmul {
            vd: r.b(set, i),
            vn: r.b(set, i),
            vm: r.a(i, i),
        });
    }
    for i in 0..r.m {
        p.push(Inst::Str {
            src: r.b(set, i),
            base: XReg::Pb,
            offset: ((l * r.m + i) * 16) as i32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::DataType;

    #[test]
    fn register_allocation_matches_paper() {
        let r = RegMap { mc: 4, nc: 4 };
        assert_eq!(r.a(Set::Zero, 0), VReg(0));
        assert_eq!(r.a(Set::One, 0), VReg(4));
        assert_eq!(r.b(Set::Zero, 0), VReg(8));
        assert_eq!(r.b(Set::One, 0), VReg(12));
        assert_eq!(r.c(0, 0), VReg(16));
        assert_eq!(r.c(3, 3), VReg(31));
        assert_eq!(r.high_water(), 31);
    }

    #[test]
    fn template_i_shape_matches_figure5() {
        // Figure 5 "original code": 4 A ldp + 4 adds, 4 B ldp + 4 adds,
        // then 16 fmul — for the DGEMM 4×4 TEMPLATE_I.
        let r = RegMap { mc: 4, nc: 4 };
        let mut p = Program::new(DataType::F64);
        template_i(&mut p, &r);
        let ldp = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Ldp { .. }))
            .count();
        let adds = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::AddImm { .. }))
            .count();
        let fmul = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Fmul { .. }))
            .count();
        assert_eq!(ldp, 8);
        assert_eq!(adds, 2);
        assert_eq!(fmul, 16);
        // first fmul matches "fmul v16.2d, v0.2d, v8.2d"
        let first_fmul = p.insts.iter().find(|i| matches!(i, Inst::Fmul { .. }));
        assert_eq!(
            first_fmul,
            Some(&Inst::Fmul {
                vd: VReg(16),
                vn: VReg(0),
                vm: VReg(8)
            })
        );
    }

    #[test]
    fn m_templates_load_opposite_sets() {
        let r = RegMap { mc: 3, nc: 2 };
        let mut m1 = Program::new(DataType::F32);
        template_m1(&mut m1, &r);
        // M1 loads set 1 (A: v3..v5, B: v8..v9) and computes with set 0.
        for i in &m1.insts {
            for w in i.vwrites() {
                if i.is_mem() {
                    assert!(
                        (3..6).contains(&w.idx()) || (8..10).contains(&w.idx()),
                        "M1 loaded {w:?}"
                    );
                }
            }
            if let Inst::Fmla { vn, vm, .. } = i {
                assert!(vn.idx() < 3);
                assert!((6..8).contains(&vm.idx()));
            }
        }
    }

    #[test]
    fn save_register_reuse_fits() {
        // SAVE reuses the 2(m+n) dead A/B registers for C loads; for every
        // Table-1 size the tile fits.
        for (m, n) in [(4, 4), (4, 3), (3, 4), (2, 2), (1, 4), (3, 3)] {
            assert!(m * n <= 2 * (m + n), "({m},{n})");
            let r = RegMap { mc: m, nc: n };
            let mut p = Program::new(DataType::F64);
            template_save(&mut p, &r, 1.0, 8);
            // every load target is below the accumulator base
            for i in &p.insts {
                if let Inst::Ldr { dst, .. } = i {
                    assert!(dst.idx() < 2 * (m + n));
                }
            }
        }
    }

    #[test]
    fn trsm_regmap_capacity() {
        let r = TrsmRegMap { m: 5 };
        assert_eq!(r.a(0, 0), VReg(0));
        assert_eq!(r.a(4, 4), VReg(14));
        assert_eq!(r.b(Set::Zero, 0), VReg(15));
        assert_eq!(r.b(Set::One, 4), VReg(24));
        assert_eq!(r.high_water(), 24); // 15 + 10 ≤ 32 (paper §4.2.2)
    }

    #[test]
    fn trsm_column_solve_structure() {
        let r = TrsmRegMap { m: 3 };
        let mut p = Program::new(DataType::F64);
        trsm_solve_column(&mut p, &r, Set::Zero, 0);
        let fmls = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Fmls { .. }))
            .count();
        let fmul = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Fmul { .. }))
            .count();
        let str_ = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Str { .. }))
            .count();
        assert_eq!(fmls, 3); // 0 + 1 + 2 eliminations
        assert_eq!(fmul, 3); // one reciprocal multiply per row
        assert_eq!(str_, 3);
    }
}
