//! The computing-kernel generators: Algorithm 3 (GEMM) and Algorithm 4
//! (TRSM triangular), emitting complete straight-line kernels.

use crate::ir::{DataType, Program};
use crate::templates::{
    prefetch_c, template_e, template_e0, template_i, template_m1, template_m2, template_save,
    template_sub, trsm_load_column, trsm_load_triangle, trsm_solve_column, RegMap, Set,
    TrsmRegMap,
};

/// Specification of a GEMM kernel to generate.
#[derive(Copy, Clone, Debug)]
pub struct GemmKernelSpec {
    /// Tile rows `m_c` (1..=4).
    pub mc: usize,
    /// Tile columns `n_c` (1..=4).
    pub nc: usize,
    /// Depth K (the group's inner dimension; small-matrix regime, so the
    /// kernel is fully unrolled).
    pub k: usize,
    /// Element type.
    pub dtype: DataType,
    /// `alpha` folded into the SAVE template (`C += alpha · A·B`).
    pub alpha: f64,
    /// C leading dimension in element groups.
    pub ldc: usize,
}

/// Generates a complete GEMM microkernel per Algorithm 3.
///
/// Template sequence (with the printed algorithm's odd-K tail corrected so
/// no load runs past the panel):
///
/// * `K = 1` → `SUB` on an implicitly-zero accumulator — here the
///   accumulator is produced by the first `FMUL`, so `SUB`'s compute uses
///   `FMUL` semantics via `TEMPLATE_I`'s single-sliver variant;
/// * `K = 2` → `I; E`;
/// * `K = 3` → `I; M2; E0`;
/// * even `K ≥ 4` → `I; M2; (M1; M2)×; M1; E`;
/// * odd `K ≥ 5` → `I; M2; (M1; M2)×; E0`.
pub fn generate_gemm_kernel(spec: &GemmKernelSpec) -> Program {
    assert!(spec.mc >= 1 && spec.nc >= 1 && spec.k >= 1);
    let r = RegMap {
        mc: spec.mc,
        nc: spec.nc,
    };
    assert!(r.high_water() < 32, "kernel does not fit the register file");
    let mut p = Program::new(spec.dtype);
    prefetch_c(&mut p, &r, spec.ldc);

    if spec.k == 1 {
        // single sliver: load set 0 and FMUL (SUB with empty accumulator)
        sub_first(&mut p, &r);
    } else {
        template_i(&mut p, &r);
        // steps remaining after I computed step 0; set 1 holds step 1
        let mut remaining = spec.k - 1;
        // M2 computes set 1 / loads set 0; M1 the reverse.
        let mut next_is_m2 = true;
        while remaining >= 2 {
            if next_is_m2 {
                template_m2(&mut p, &r);
            } else {
                template_m1(&mut p, &r);
            }
            next_is_m2 = !next_is_m2;
            remaining -= 1;
        }
        // one compute left, operands already in registers
        if next_is_m2 {
            template_e(&mut p, &r);
        } else {
            template_e0(&mut p, &r);
        }
    }

    template_save(&mut p, &r, spec.alpha, spec.ldc);
    p
}

/// Generates a complete *complex* GEMM microkernel (split representation)
/// with the same Algorithm-3 template sequencing as
/// [`generate_gemm_kernel`]. `alpha` is restricted to a real scalar (the
/// benchmark convention); `ldc` is in complex element groups.
pub fn generate_cgemm_kernel(spec: &GemmKernelSpec) -> Program {
    use crate::ctemplates::*;
    assert!(spec.mc >= 1 && spec.nc >= 1 && spec.k >= 1);
    let r = CRegMap {
        mc: spec.mc,
        nc: spec.nc,
    };
    assert!(r.high_water() < 32, "kernel does not fit the register file");
    let mut p = Program::new(spec.dtype);
    p.push(crate::ir::Inst::Prfm {
        base: crate::ir::XReg::Pc,
        offset: 0,
    });

    if spec.k == 1 {
        ctemplate_sub(&mut p, &r, true);
    } else {
        ctemplate_i(&mut p, &r);
        let mut remaining = spec.k - 1;
        let mut next_is_m2 = true;
        while remaining >= 2 {
            if next_is_m2 {
                ctemplate_m2(&mut p, &r);
            } else {
                ctemplate_m1(&mut p, &r);
            }
            next_is_m2 = !next_is_m2;
            remaining -= 1;
        }
        if next_is_m2 {
            ctemplate_e(&mut p, &r);
        } else {
            ctemplate_e0(&mut p, &r);
        }
    }
    ctemplate_save(&mut p, &r, spec.alpha, spec.ldc);
    p
}

/// `TEMPLATE_SUB` variant whose compute is the accumulator-initializing
/// `FMUL` (the K = 1 arm of Algorithm 3, lines 7–8).
fn sub_first(p: &mut Program, r: &RegMap) {
    // identical loads to template_sub, FMUL compute
    let before = p.len();
    template_sub(p, r);
    // rewrite the FMLAs into FMULs (SUB emitted FMLA; on the zeroed
    // accumulator the paper's "empty" accumulator is an FMUL)
    for inst in &mut p.insts[before..] {
        if let crate::ir::Inst::Fmla { vd, vn, vm } = *inst {
            *inst = crate::ir::Inst::Fmul { vd, vn, vm };
        }
    }
}

/// Generates the register-resident TRSM triangular kernel per Algorithm 4:
/// the whole packed triangle (reciprocal diagonal) is loaded once, then each
/// of the `n` B columns is loaded, solved in registers, and stored back,
/// ping-ponging between the two column register sets.
pub fn generate_trsm_tri_kernel(m: usize, n: usize, dtype: DataType) -> Program {
    assert!((1..=5).contains(&m), "register capacity is M ≤ 5 (§4.2.2)");
    assert!(n >= 1);
    let r = TrsmRegMap { m };
    assert!(r.high_water() < 32);
    let mut p = Program::new(dtype);
    trsm_load_triangle(&mut p, &r);
    // ping-pong: load column l+1 into the idle set before solving column l
    let set_of = |l: usize| if l % 2 == 0 { Set::Zero } else { Set::One };
    trsm_load_column(&mut p, &r, set_of(0), 0);
    for l in 0..n {
        if l + 1 < n {
            trsm_load_column(&mut p, &r, set_of(l + 1), l + 1);
        }
        trsm_solve_column(&mut p, &r, set_of(l), l);
    }
    p
}

/// Generates a fused blocked-TRSM kernel: the rectangular FMLS elimination
/// of `kk` already-solved rows (paper Eq. 4 / Table 1's rectangular
/// kernels) followed by the register triangular solve of an `mb`-row
/// diagonal block, over an `nr`-wide B panel.
///
/// Memory layout matches `iatf_kernels::trsm_ukr`'s packed operands, with
/// both packed-A strips behind `Ptri` (rectangular strip at offset 0, the
/// triangle at `kk·mb·16` bytes) and the row-major panel behind `Pb`
/// (`row_stride = nr` groups); the block solves rows `kk .. kk+mb`.
///
/// Register budget: `mb·nr` accumulators + `2·mb` A-sliver + `2·nr` X
/// ping-pong registers — for the main 4×4 block exactly the 32-register
/// file, like the GEMM kernel.
pub fn generate_trsm_block_kernel(mb: usize, nr: usize, kk: usize, dtype: DataType) -> Program {
    use crate::ir::{Inst, VReg, XReg};
    assert!((1..=4).contains(&mb) && (1..=4).contains(&nr));
    let acc = |i: usize, j: usize| VReg((i * nr + j) as u8);
    let a_reg = |set: usize, i: usize| VReg((mb * nr + set * mb + i) as u8);
    let x_reg = |set: usize, j: usize| VReg((mb * nr + 2 * mb + set * nr + j) as u8);
    assert!(mb * nr + 2 * mb + 2 * nr <= 32);

    let row_bytes = (nr * 16) as i32; // panel row stride
    let mut p = Program::new(dtype);
    p.push(Inst::Prfm {
        base: XReg::Pb,
        offset: (kk as i32) * row_bytes,
    });

    // load the target block into the accumulators
    for i in 0..mb {
        for j in 0..nr {
            p.push(Inst::Ldr {
                dst: acc(i, j),
                base: XReg::Pb,
                offset: ((kk + i) as i32) * row_bytes + (j * 16) as i32,
            });
        }
    }

    // rectangular elimination, ping-pong over the solved rows
    let rect_off = |k: usize, i: usize| ((k * mb + i) * 16) as i32;
    let load_sliver = |p: &mut Program, set: usize, k: usize| {
        for i in 0..mb {
            p.push(Inst::Ldr {
                dst: a_reg(set, i),
                base: XReg::Ptri,
                offset: rect_off(k, i),
            });
        }
        for j in 0..nr {
            p.push(Inst::Ldr {
                dst: x_reg(set, j),
                base: XReg::Pb,
                offset: (k as i32) * row_bytes + (j * 16) as i32,
            });
        }
    };
    let compute = |p: &mut Program, set: usize| {
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::Fmls {
                    vd: acc(i, j),
                    vn: a_reg(set, i),
                    vm: x_reg(set, j),
                });
            }
        }
    };
    if kk > 0 {
        load_sliver(&mut p, 0, 0);
        if kk > 1 {
            load_sliver(&mut p, 1, 1);
        }
        for k in 0..kk {
            // double-buffering: compute with set k%2, then refill that set
            // with the sliver after next
            let set = k % 2;
            compute(&mut p, set);
            if k + 2 < kk {
                load_sliver(&mut p, set, k + 2);
            }
        }
    }

    // triangular solve with reciprocal diagonal; lij loaded into a dead
    // A-sliver register
    let tri_base = (kk * mb * 16) as i32;
    let scratch = a_reg(0, 0);
    for i in 0..mb {
        let row = i * (i + 1) / 2;
        for j in 0..i {
            p.push(Inst::Ldr {
                dst: scratch,
                base: XReg::Ptri,
                offset: tri_base + ((row + j) * 16) as i32,
            });
            for col in 0..nr {
                p.push(Inst::Fmls {
                    vd: acc(i, col),
                    vn: scratch,
                    vm: acc(j, col),
                });
            }
        }
        p.push(Inst::Ldr {
            dst: scratch,
            base: XReg::Ptri,
            offset: tri_base + ((row + i) * 16) as i32,
        });
        for col in 0..nr {
            p.push(Inst::Fmul {
                vd: acc(i, col),
                vn: acc(i, col),
                vm: scratch,
            });
        }
    }

    // store the solved block
    for i in 0..mb {
        for j in 0..nr {
            p.push(Inst::Str {
                src: acc(i, j),
                base: XReg::Pb,
                offset: ((kk + i) as i32) * row_bytes + (j * 16) as i32,
            });
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Inst;

    fn count_fp(p: &Program) -> usize {
        p.insts.iter().filter(|i| i.is_fp()).count()
    }

    fn count_loads(p: &Program) -> usize {
        p.insts
            .iter()
            .map(|i| match i {
                Inst::Ldr { .. } => 1,
                Inst::Ldp { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn gemm_kernel_instruction_budget() {
        // For a 4×4 kernel at depth K: K·16 compute FMLAs + 16 SAVE FMAs,
        // K·8 panel loads + 16 C loads.
        for k in 1..=9 {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc: 4,
                nc: 4,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: 4,
            });
            assert_eq!(count_fp(&p), k * 16 + 16, "k={k}");
            assert_eq!(count_loads(&p), k * 8 + 16, "k={k}");
            let stores = p.insts.iter().filter(|i| i.is_store()).count();
            assert_eq!(stores, 16);
        }
    }

    #[test]
    fn gemm_kernel_small_sizes() {
        for (mc, nc) in [(1, 1), (2, 3), (4, 1), (3, 4)] {
            for k in [1usize, 2, 3, 4, 5, 8, 11] {
                let p = generate_gemm_kernel(&GemmKernelSpec {
                    mc,
                    nc,
                    k,
                    dtype: DataType::F32,
                    alpha: 2.0,
                    ldc: mc,
                });
                assert_eq!(count_fp(&p), k * mc * nc + mc * nc, "({mc},{nc}) k={k}");
                assert_eq!(count_loads(&p), k * (mc + nc) + mc * nc);
            }
        }
    }

    #[test]
    fn generated_code_renders() {
        let p = generate_gemm_kernel(&GemmKernelSpec {
            mc: 4,
            nc: 4,
            k: 2,
            dtype: DataType::F64,
            alpha: 1.0,
            ldc: 4,
        });
        let text = p.render();
        assert!(text.contains("fmul    v16.2d, v0.2d, v8.2d"));
        assert!(text.contains("prfm"));
        assert!(text.contains("fmla"));
    }

    #[test]
    fn trsm_kernel_budget() {
        // triangle loads: M(M+1)/2; per column: M loads, M(M−1)/2 FMLS +
        // M FMUL, M stores.
        for m in 1..=5 {
            for n in [1usize, 2, 5] {
                let p = generate_trsm_tri_kernel(m, n, DataType::F64);
                let tri = m * (m + 1) / 2;
                assert_eq!(count_loads(&p), tri + n * m, "m={m} n={n}");
                assert_eq!(count_fp(&p), n * (m * (m - 1) / 2 + m));
                let stores = p.insts.iter().filter(|i| i.is_store()).count();
                assert_eq!(stores, n * m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "register capacity")]
    fn trsm_kernel_rejects_m6() {
        let _ = generate_trsm_tri_kernel(6, 1, DataType::F64);
    }

    #[test]
    fn register_file_never_exceeded() {
        for (mc, nc) in [(4usize, 4usize), (3, 4), (4, 3), (2, 2), (1, 1)] {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc,
                nc,
                k: 6,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: mc,
            });
            for inst in &p.insts {
                for r in inst.vwrites().into_iter().chain(inst.vreads()) {
                    assert!(r.idx() < 32);
                }
            }
        }
    }
}
