//! The computing-kernel generators: Algorithm 3 (GEMM), Algorithm 4
//! (TRSM triangular), and the fused blocked TRSM/TRMM kernels, emitting
//! complete straight-line kernels.
//!
//! Every generator has a `*_traced` variant returning a [`TracedProgram`]:
//! the same instruction stream plus a [`Span`] per emitted template. The
//! trace is the hook `iatf-verify` uses to check Algorithm-3 sequencing and
//! the ping-pong invariant (each template issues the loads its successor
//! consumes) without re-deriving template boundaries from the raw IR.

use crate::ir::{DataType, Program};
use crate::templates::{
    prefetch_c, template_e, template_e0, template_i, template_m1, template_m2, template_save,
    template_sub, trsm_load_column, trsm_load_triangle, trsm_solve_column, RegMap, Set,
    TrsmRegMap,
};

/// Specification of a GEMM kernel to generate.
#[derive(Copy, Clone, Debug)]
pub struct GemmKernelSpec {
    /// Tile rows `m_c` (1..=4).
    pub mc: usize,
    /// Tile columns `n_c` (1..=4).
    pub nc: usize,
    /// Depth K (the group's inner dimension; small-matrix regime, so the
    /// kernel is fully unrolled).
    pub k: usize,
    /// Element type.
    pub dtype: DataType,
    /// `alpha` folded into the SAVE template (`C += alpha · A·B`).
    pub alpha: f64,
    /// C leading dimension in element groups.
    pub ldc: usize,
}

/// Which template (or kernel phase) emitted a span of instructions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TemplateId {
    /// C-tile prefetch prologue (§4.3).
    PrefetchC,
    /// `TEMPLATE_I`: loads both sets, computes step 0.
    I,
    /// `TEMPLATE_M1`: loads set 1, computes set 0.
    M1,
    /// `TEMPLATE_M2`: loads set 0, computes set 1.
    M2,
    /// `TEMPLATE_E`: compute-only exit on set 1.
    E,
    /// Compute-only exit on set 0 (corrected odd-K tail).
    E0,
    /// `TEMPLATE_SUB`: the K = 1 single-sliver arm.
    Sub,
    /// `TEMPLATE_SAVE`.
    Save,
    /// Algorithm 4: whole-triangle load.
    TrsmLoadTriangle,
    /// Algorithm 4: load of B column `l` into the idle set.
    TrsmLoadColumn(usize),
    /// Algorithm 4: in-register solve + store of column `l`.
    TrsmSolveColumn(usize),
    /// Blocked kernels: prologue (prefetch + accumulator loads).
    BlockProlog,
    /// Blocked kernels: rect-sliver load for elimination step `k`.
    BlockRectLoad(usize),
    /// Blocked kernels: rect elimination compute for step `k`.
    BlockRectCompute(usize),
    /// Blocked TRSM: the in-register triangular solve phase.
    BlockTri,
    /// Blocked kernels: scale (TRMM) and store of the finished block.
    BlockStore,
    /// TRMM: load of L column `j`'s slivers and the B block row `j`.
    TrmmTriLoad(usize),
    /// TRMM: triangular multiply step `j` (consumes `TrmmTriLoad(j)`).
    TrmmTriCompute(usize),
}

/// One traced span: instructions `start..end` were emitted by `id`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The emitting template.
    pub id: TemplateId,
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

/// A generated program plus its template trace (spans cover
/// `0..program.len()` contiguously, in order).
#[derive(Clone, Debug)]
pub struct TracedProgram {
    /// The generated kernel.
    pub program: Program,
    /// Template spans in emission order.
    pub spans: Vec<Span>,
}

fn span<F: FnOnce(&mut Program)>(
    p: &mut Program,
    spans: &mut Vec<Span>,
    id: TemplateId,
    f: F,
) {
    let start = p.len();
    f(p);
    spans.push(Span {
        id,
        start,
        end: p.len(),
    });
}

/// Generates a complete GEMM microkernel per Algorithm 3.
///
/// Template sequence (with the printed algorithm's odd-K tail corrected so
/// no load runs past the panel):
///
/// * `K = 1` → `SUB` on an implicitly-zero accumulator — here the
///   accumulator is produced by the first `FMUL`, so `SUB`'s compute uses
///   `FMUL` semantics via `TEMPLATE_I`'s single-sliver variant;
/// * `K = 2` → `I; E`;
/// * `K = 3` → `I; M2; E0`;
/// * even `K ≥ 4` → `I; M2; (M1; M2)×; M1; E`;
/// * odd `K ≥ 5` → `I; M2; (M1; M2)×; E0`.
pub fn generate_gemm_kernel(spec: &GemmKernelSpec) -> Program {
    generate_gemm_kernel_traced(spec).program
}

/// [`generate_gemm_kernel`] with the template trace attached.
pub fn generate_gemm_kernel_traced(spec: &GemmKernelSpec) -> TracedProgram {
    assert!(spec.mc >= 1 && spec.nc >= 1 && spec.k >= 1);
    let r = RegMap {
        mc: spec.mc,
        nc: spec.nc,
    };
    assert!(r.high_water() < 32, "kernel does not fit the register file");
    let mut p = Program::new(spec.dtype);
    let mut spans = Vec::new();
    span(&mut p, &mut spans, TemplateId::PrefetchC, |p| {
        prefetch_c(p, &r, spec.ldc);
    });

    if spec.k == 1 {
        // single sliver: load set 0 and FMUL (SUB with empty accumulator)
        span(&mut p, &mut spans, TemplateId::Sub, |p| sub_first(p, &r));
    } else {
        span(&mut p, &mut spans, TemplateId::I, |p| template_i(p, &r));
        // steps remaining after I computed step 0; set 1 holds step 1
        let mut remaining = spec.k - 1;
        // M2 computes set 1 / loads set 0; M1 the reverse.
        let mut next_is_m2 = true;
        while remaining >= 2 {
            if next_is_m2 {
                span(&mut p, &mut spans, TemplateId::M2, |p| template_m2(p, &r));
            } else {
                span(&mut p, &mut spans, TemplateId::M1, |p| template_m1(p, &r));
            }
            next_is_m2 = !next_is_m2;
            remaining -= 1;
        }
        // one compute left, operands already in registers
        if next_is_m2 {
            span(&mut p, &mut spans, TemplateId::E, |p| template_e(p, &r));
        } else {
            span(&mut p, &mut spans, TemplateId::E0, |p| template_e0(p, &r));
        }
    }

    span(&mut p, &mut spans, TemplateId::Save, |p| {
        template_save(p, &r, spec.alpha, spec.ldc);
    });
    TracedProgram { program: p, spans }
}

/// Generates a complete *complex* GEMM microkernel (split representation)
/// with the same Algorithm-3 template sequencing as
/// [`generate_gemm_kernel`]. `alpha` is restricted to a real scalar (the
/// benchmark convention); `ldc` is in complex element groups.
pub fn generate_cgemm_kernel(spec: &GemmKernelSpec) -> Program {
    generate_cgemm_kernel_traced(spec).program
}

/// [`generate_cgemm_kernel`] with the template trace attached.
pub fn generate_cgemm_kernel_traced(spec: &GemmKernelSpec) -> TracedProgram {
    use crate::ctemplates::*;
    assert!(spec.mc >= 1 && spec.nc >= 1 && spec.k >= 1);
    let r = CRegMap {
        mc: spec.mc,
        nc: spec.nc,
    };
    assert!(r.high_water() < 32, "kernel does not fit the register file");
    let mut p = Program::new(spec.dtype);
    let mut spans = Vec::new();
    span(&mut p, &mut spans, TemplateId::PrefetchC, |p| {
        p.push(crate::ir::Inst::Prfm {
            base: crate::ir::XReg::Pc,
            offset: 0,
        });
    });

    if spec.k == 1 {
        span(&mut p, &mut spans, TemplateId::Sub, |p| {
            ctemplate_sub(p, &r, true);
        });
    } else {
        span(&mut p, &mut spans, TemplateId::I, |p| ctemplate_i(p, &r));
        let mut remaining = spec.k - 1;
        let mut next_is_m2 = true;
        while remaining >= 2 {
            if next_is_m2 {
                span(&mut p, &mut spans, TemplateId::M2, |p| ctemplate_m2(p, &r));
            } else {
                span(&mut p, &mut spans, TemplateId::M1, |p| ctemplate_m1(p, &r));
            }
            next_is_m2 = !next_is_m2;
            remaining -= 1;
        }
        if next_is_m2 {
            span(&mut p, &mut spans, TemplateId::E, |p| ctemplate_e(p, &r));
        } else {
            span(&mut p, &mut spans, TemplateId::E0, |p| ctemplate_e0(p, &r));
        }
    }
    span(&mut p, &mut spans, TemplateId::Save, |p| {
        ctemplate_save(p, &r, spec.alpha, spec.ldc);
    });
    TracedProgram { program: p, spans }
}

/// `TEMPLATE_SUB` variant whose compute is the accumulator-initializing
/// `FMUL` (the K = 1 arm of Algorithm 3, lines 7–8).
fn sub_first(p: &mut Program, r: &RegMap) {
    // identical loads to template_sub, FMUL compute
    let before = p.len();
    template_sub(p, r);
    // rewrite the FMLAs into FMULs (SUB emitted FMLA; on the zeroed
    // accumulator the paper's "empty" accumulator is an FMUL)
    for inst in &mut p.insts[before..] {
        if let crate::ir::Inst::Fmla { vd, vn, vm } = *inst {
            *inst = crate::ir::Inst::Fmul { vd, vn, vm };
        }
    }
}

/// Generates the register-resident TRSM triangular kernel per Algorithm 4:
/// the whole packed triangle (reciprocal diagonal) is loaded once, then each
/// of the `n` B columns is loaded, solved in registers, and stored back,
/// ping-ponging between the two column register sets.
pub fn generate_trsm_tri_kernel(m: usize, n: usize, dtype: DataType) -> Program {
    generate_trsm_tri_kernel_traced(m, n, dtype).program
}

/// [`generate_trsm_tri_kernel`] with the template trace attached.
pub fn generate_trsm_tri_kernel_traced(m: usize, n: usize, dtype: DataType) -> TracedProgram {
    assert!((1..=5).contains(&m), "register capacity is M ≤ 5 (§4.2.2)");
    assert!(n >= 1);
    let r = TrsmRegMap { m };
    assert!(r.high_water() < 32);
    let mut p = Program::new(dtype);
    let mut spans = Vec::new();
    span(&mut p, &mut spans, TemplateId::TrsmLoadTriangle, |p| {
        trsm_load_triangle(p, &r);
    });
    // ping-pong: load column l+1 into the idle set before solving column l
    let set_of = |l: usize| if l % 2 == 0 { Set::Zero } else { Set::One };
    span(&mut p, &mut spans, TemplateId::TrsmLoadColumn(0), |p| {
        trsm_load_column(p, &r, set_of(0), 0);
    });
    for l in 0..n {
        if l + 1 < n {
            span(&mut p, &mut spans, TemplateId::TrsmLoadColumn(l + 1), |p| {
                trsm_load_column(p, &r, set_of(l + 1), l + 1);
            });
        }
        span(&mut p, &mut spans, TemplateId::TrsmSolveColumn(l), |p| {
            trsm_solve_column(p, &r, set_of(l), l);
        });
    }
    TracedProgram { program: p, spans }
}

/// Generates a fused blocked-TRSM kernel: the rectangular FMLS elimination
/// of `kk` already-solved rows (paper Eq. 4 / Table 1's rectangular
/// kernels) followed by the register triangular solve of an `mb`-row
/// diagonal block, over an `nr`-wide B panel.
///
/// Memory layout matches `iatf_kernels::trsm_ukr`'s packed operands, with
/// both packed-A strips behind `Ptri` (rectangular strip at offset 0, the
/// triangle at `kk·mb·16` bytes) and the row-major panel behind `Pb`
/// (`row_stride = nr` groups); the block solves rows `kk .. kk+mb`.
///
/// Register budget: `mb·nr` accumulators + `2·mb` A-sliver + `2·nr` X
/// ping-pong registers — for the main 4×4 block exactly the 32-register
/// file, like the GEMM kernel.
pub fn generate_trsm_block_kernel(mb: usize, nr: usize, kk: usize, dtype: DataType) -> Program {
    generate_trsm_block_kernel_traced(mb, nr, kk, dtype).program
}

/// [`generate_trsm_block_kernel`] with the template trace attached.
pub fn generate_trsm_block_kernel_traced(
    mb: usize,
    nr: usize,
    kk: usize,
    dtype: DataType,
) -> TracedProgram {
    use crate::ir::{Inst, VReg, XReg};
    assert!((1..=4).contains(&mb) && (1..=4).contains(&nr));
    let acc = |i: usize, j: usize| VReg((i * nr + j) as u8);
    let a_reg = |set: usize, i: usize| VReg((mb * nr + set * mb + i) as u8);
    let x_reg = |set: usize, j: usize| VReg((mb * nr + 2 * mb + set * nr + j) as u8);
    assert!(mb * nr + 2 * mb + 2 * nr <= 32);

    let row_bytes = (nr * 16) as i32; // panel row stride
    let mut p = Program::new(dtype);
    let mut spans = Vec::new();

    span(&mut p, &mut spans, TemplateId::BlockProlog, |p| {
        p.push(Inst::Prfm {
            base: XReg::Pb,
            offset: (kk as i32) * row_bytes,
        });
        // load the target block into the accumulators
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::Ldr {
                    dst: acc(i, j),
                    base: XReg::Pb,
                    offset: ((kk + i) as i32) * row_bytes + (j * 16) as i32,
                });
            }
        }
    });

    // rectangular elimination, ping-pong over the solved rows
    let rect_off = |k: usize, i: usize| ((k * mb + i) * 16) as i32;
    let load_sliver = |p: &mut Program, set: usize, k: usize| {
        for i in 0..mb {
            p.push(Inst::Ldr {
                dst: a_reg(set, i),
                base: XReg::Ptri,
                offset: rect_off(k, i),
            });
        }
        for j in 0..nr {
            p.push(Inst::Ldr {
                dst: x_reg(set, j),
                base: XReg::Pb,
                offset: (k as i32) * row_bytes + (j * 16) as i32,
            });
        }
    };
    let compute = |p: &mut Program, set: usize| {
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::Fmls {
                    vd: acc(i, j),
                    vn: a_reg(set, i),
                    vm: x_reg(set, j),
                });
            }
        }
    };
    if kk > 0 {
        span(&mut p, &mut spans, TemplateId::BlockRectLoad(0), |p| {
            load_sliver(p, 0, 0);
        });
        if kk > 1 {
            span(&mut p, &mut spans, TemplateId::BlockRectLoad(1), |p| {
                load_sliver(p, 1, 1);
            });
        }
        for k in 0..kk {
            // double-buffering: compute with set k%2, then refill that set
            // with the sliver after next
            let set = k % 2;
            span(&mut p, &mut spans, TemplateId::BlockRectCompute(k), |p| {
                compute(p, set);
            });
            if k + 2 < kk {
                span(&mut p, &mut spans, TemplateId::BlockRectLoad(k + 2), |p| {
                    load_sliver(p, set, k + 2);
                });
            }
        }
    }

    // triangular solve with reciprocal diagonal; lij loaded into a dead
    // A-sliver register
    let tri_base = (kk * mb * 16) as i32;
    let scratch = a_reg(0, 0);
    span(&mut p, &mut spans, TemplateId::BlockTri, |p| {
        for i in 0..mb {
            let row = i * (i + 1) / 2;
            for j in 0..i {
                p.push(Inst::Ldr {
                    dst: scratch,
                    base: XReg::Ptri,
                    offset: tri_base + ((row + j) * 16) as i32,
                });
                for col in 0..nr {
                    p.push(Inst::Fmls {
                        vd: acc(i, col),
                        vn: scratch,
                        vm: acc(j, col),
                    });
                }
            }
            p.push(Inst::Ldr {
                dst: scratch,
                base: XReg::Ptri,
                offset: tri_base + ((row + i) * 16) as i32,
            });
            for col in 0..nr {
                p.push(Inst::Fmul {
                    vd: acc(i, col),
                    vn: acc(i, col),
                    vm: scratch,
                });
            }
        }
    });

    // store the solved block
    span(&mut p, &mut spans, TemplateId::BlockStore, |p| {
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::Str {
                    src: acc(i, j),
                    base: XReg::Pb,
                    offset: ((kk + i) as i32) * row_bytes + (j * 16) as i32,
                });
            }
        }
    });
    TracedProgram { program: p, spans }
}

/// Generates a fused blocked-TRMM kernel mirroring
/// `iatf_kernels::trmm_ukr`: the triangular multiply of the diagonal block
/// (direct diagonal — multiplied, never divided), then the rectangular FMLA
/// accumulation of the `kk` rows above, then an `alpha` scale and store.
///
/// Memory layout matches the TRSM block kernel: both packed-A strips behind
/// `Ptri` (rect strip at offset 0, the triangle at `kk·mb·16` bytes, with a
/// *direct* diagonal) and the row-major panel behind `Pb` (`row_stride =
/// nr` groups); the block computes rows `kk .. kk+mb` from the *original*
/// panel values (the bottom-up driver guarantees rows ≤ kk+mb are still
/// original).
///
/// Register budget: identical to the TRSM block kernel, `mb·nr + 2·mb +
/// 2·nr ≤ 32`.
pub fn generate_trmm_block_kernel(
    mb: usize,
    nr: usize,
    kk: usize,
    alpha: f64,
    dtype: DataType,
) -> Program {
    generate_trmm_block_kernel_traced(mb, nr, kk, alpha, dtype).program
}

/// [`generate_trmm_block_kernel`] with the template trace attached.
pub fn generate_trmm_block_kernel_traced(
    mb: usize,
    nr: usize,
    kk: usize,
    alpha: f64,
    dtype: DataType,
) -> TracedProgram {
    use crate::ir::{Inst, VReg, XReg};
    assert!((1..=4).contains(&mb) && (1..=4).contains(&nr));
    let acc = |i: usize, j: usize| VReg((i * nr + j) as u8);
    let a_reg = |set: usize, i: usize| VReg((mb * nr + set * mb + i) as u8);
    let x_reg = |set: usize, j: usize| VReg((mb * nr + 2 * mb + set * nr + j) as u8);
    assert!(mb * nr + 2 * mb + 2 * nr <= 32);

    let row_bytes = (nr * 16) as i32; // panel row stride
    let tri_base = (kk * mb * 16) as i32;
    let mut p = Program::new(dtype);
    let mut spans = Vec::new();

    span(&mut p, &mut spans, TemplateId::BlockProlog, |p| {
        p.push(Inst::Prfm {
            base: XReg::Pb,
            offset: (kk as i32) * row_bytes,
        });
    });

    // triangular part, ping-ponging over L columns j: load L(j..mb, j) and
    // the original B block row j, multiply into the accumulators (FMUL at
    // j = 0 initializes them — acc(i,·) is first touched by its L(i,0)
    // term, which exists for every i).
    let tri_load = |p: &mut Program, j: usize| {
        let set = j % 2;
        for i in j..mb {
            p.push(Inst::Ldr {
                dst: a_reg(set, i),
                base: XReg::Ptri,
                offset: tri_base + ((i * (i + 1) / 2 + j) * 16) as i32,
            });
        }
        for col in 0..nr {
            p.push(Inst::Ldr {
                dst: x_reg(set, col),
                base: XReg::Pb,
                offset: ((kk + j) as i32) * row_bytes + (col * 16) as i32,
            });
        }
    };
    let tri_compute = |p: &mut Program, j: usize| {
        let set = j % 2;
        for i in j..mb {
            for col in 0..nr {
                let (vd, vn, vm) = (acc(i, col), a_reg(set, i), x_reg(set, col));
                p.push(if j == 0 {
                    Inst::Fmul { vd, vn, vm }
                } else {
                    Inst::Fmla { vd, vn, vm }
                });
            }
        }
    };
    span(&mut p, &mut spans, TemplateId::TrmmTriLoad(0), |p| {
        tri_load(p, 0);
    });
    for j in 0..mb {
        if j + 1 < mb {
            span(&mut p, &mut spans, TemplateId::TrmmTriLoad(j + 1), |p| {
                tri_load(p, j + 1);
            });
        }
        span(&mut p, &mut spans, TemplateId::TrmmTriCompute(j), |p| {
            tri_compute(p, j);
        });
    }

    // rectangular accumulation over the rows above the block,
    // double-buffered exactly like the TRSM elimination but with FMLA
    let rect_off = |k: usize, i: usize| ((k * mb + i) * 16) as i32;
    let load_sliver = |p: &mut Program, set: usize, k: usize| {
        for i in 0..mb {
            p.push(Inst::Ldr {
                dst: a_reg(set, i),
                base: XReg::Ptri,
                offset: rect_off(k, i),
            });
        }
        for j in 0..nr {
            p.push(Inst::Ldr {
                dst: x_reg(set, j),
                base: XReg::Pb,
                offset: (k as i32) * row_bytes + (j * 16) as i32,
            });
        }
    };
    let compute = |p: &mut Program, set: usize| {
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::Fmla {
                    vd: acc(i, j),
                    vn: a_reg(set, i),
                    vm: x_reg(set, j),
                });
            }
        }
    };
    if kk > 0 {
        span(&mut p, &mut spans, TemplateId::BlockRectLoad(0), |p| {
            load_sliver(p, 0, 0);
        });
        if kk > 1 {
            span(&mut p, &mut spans, TemplateId::BlockRectLoad(1), |p| {
                load_sliver(p, 1, 1);
            });
        }
        for k in 0..kk {
            let set = k % 2;
            span(&mut p, &mut spans, TemplateId::BlockRectCompute(k), |p| {
                compute(p, set);
            });
            if k + 2 < kk {
                span(&mut p, &mut spans, TemplateId::BlockRectLoad(k + 2), |p| {
                    load_sliver(p, set, k + 2);
                });
            }
        }
    }

    // alpha scale and store
    span(&mut p, &mut spans, TemplateId::BlockStore, |p| {
        for i in 0..mb {
            for j in 0..nr {
                p.push(Inst::FmulScalar {
                    vd: acc(i, j),
                    vn: acc(i, j),
                    alpha,
                });
                p.push(Inst::Str {
                    src: acc(i, j),
                    base: XReg::Pb,
                    offset: ((kk + i) as i32) * row_bytes + (j * 16) as i32,
                });
            }
        }
    });
    TracedProgram { program: p, spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Inst;

    fn count_fp(p: &Program) -> usize {
        p.insts.iter().filter(|i| i.is_fp()).count()
    }

    fn count_loads(p: &Program) -> usize {
        p.insts
            .iter()
            .map(|i| match i {
                Inst::Ldr { .. } => 1,
                Inst::Ldp { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn gemm_kernel_instruction_budget() {
        // For a 4×4 kernel at depth K: K·16 compute FMLAs + 16 SAVE FMAs,
        // K·8 panel loads + 16 C loads.
        for k in 1..=9 {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc: 4,
                nc: 4,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: 4,
            });
            assert_eq!(count_fp(&p), k * 16 + 16, "k={k}");
            assert_eq!(count_loads(&p), k * 8 + 16, "k={k}");
            let stores = p.insts.iter().filter(|i| i.is_store()).count();
            assert_eq!(stores, 16);
        }
    }

    #[test]
    fn gemm_kernel_small_sizes() {
        for (mc, nc) in [(1, 1), (2, 3), (4, 1), (3, 4)] {
            for k in [1usize, 2, 3, 4, 5, 8, 11] {
                let p = generate_gemm_kernel(&GemmKernelSpec {
                    mc,
                    nc,
                    k,
                    dtype: DataType::F32,
                    alpha: 2.0,
                    ldc: mc,
                });
                assert_eq!(count_fp(&p), k * mc * nc + mc * nc, "({mc},{nc}) k={k}");
                assert_eq!(count_loads(&p), k * (mc + nc) + mc * nc);
            }
        }
    }

    #[test]
    fn generated_code_renders() {
        let p = generate_gemm_kernel(&GemmKernelSpec {
            mc: 4,
            nc: 4,
            k: 2,
            dtype: DataType::F64,
            alpha: 1.0,
            ldc: 4,
        });
        let text = p.render();
        assert!(text.contains("fmul    v16.2d, v0.2d, v8.2d"));
        assert!(text.contains("prfm"));
        assert!(text.contains("fmla"));
    }

    #[test]
    fn traced_spans_cover_program() {
        for k in [1usize, 2, 3, 4, 5, 8, 9] {
            let t = generate_gemm_kernel_traced(&GemmKernelSpec {
                mc: 3,
                nc: 2,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: 3,
            });
            let mut pos = 0;
            for s in &t.spans {
                assert_eq!(s.start, pos, "k={k}: spans must be contiguous");
                assert!(s.end >= s.start);
                pos = s.end;
            }
            assert_eq!(pos, t.program.len(), "k={k}: spans must cover program");
            assert_eq!(t.spans.first().map(|s| s.id), Some(TemplateId::PrefetchC));
            assert_eq!(t.spans.last().map(|s| s.id), Some(TemplateId::Save));
        }
    }

    #[test]
    fn traced_sequence_matches_algorithm3() {
        let ids = |k: usize| -> Vec<TemplateId> {
            generate_gemm_kernel_traced(&GemmKernelSpec {
                mc: 4,
                nc: 4,
                k,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: 4,
            })
            .spans
            .iter()
            .map(|s| s.id)
            .collect()
        };
        use TemplateId::*;
        assert_eq!(ids(1), vec![PrefetchC, Sub, Save]);
        assert_eq!(ids(2), vec![PrefetchC, I, E, Save]);
        assert_eq!(ids(3), vec![PrefetchC, I, M2, E0, Save]);
        assert_eq!(ids(4), vec![PrefetchC, I, M2, M1, E, Save]);
        assert_eq!(ids(5), vec![PrefetchC, I, M2, M1, M2, E0, Save]);
    }

    #[test]
    fn trsm_kernel_budget() {
        // triangle loads: M(M+1)/2; per column: M loads, M(M−1)/2 FMLS +
        // M FMUL, M stores.
        for m in 1..=5 {
            for n in [1usize, 2, 5] {
                let p = generate_trsm_tri_kernel(m, n, DataType::F64);
                let tri = m * (m + 1) / 2;
                assert_eq!(count_loads(&p), tri + n * m, "m={m} n={n}");
                assert_eq!(count_fp(&p), n * (m * (m - 1) / 2 + m));
                let stores = p.insts.iter().filter(|i| i.is_store()).count();
                assert_eq!(stores, n * m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "register capacity")]
    fn trsm_kernel_rejects_m6() {
        let _ = generate_trsm_tri_kernel(6, 1, DataType::F64);
    }

    #[test]
    fn trmm_kernel_instruction_budget() {
        // tri: mb(mb+1)/2 L loads + mb·nr x loads + Σ_i (i+1)·nr FMAs;
        // rect: kk·(mb+nr) loads + kk·mb·nr FMLAs; store: mb·nr FMUL-scalar
        // + mb·nr stores.
        for kk in [0usize, 1, 2, 3, 5] {
            for (mb, nr) in [(4usize, 4usize), (2, 3), (1, 1), (3, 4)] {
                let p = generate_trmm_block_kernel(mb, nr, kk, 1.5, DataType::F64);
                let tri = mb * (mb + 1) / 2;
                let tri_fma: usize = (0..mb).map(|i| (i + 1) * nr).sum();
                assert_eq!(
                    count_loads(&p),
                    tri + mb * nr + kk * (mb + nr),
                    "mb={mb} nr={nr} kk={kk}"
                );
                assert_eq!(count_fp(&p), tri_fma + kk * mb * nr + mb * nr);
                let stores = p.insts.iter().filter(|i| i.is_store()).count();
                assert_eq!(stores, mb * nr);
            }
        }
    }

    #[test]
    fn register_file_never_exceeded() {
        for (mc, nc) in [(4usize, 4usize), (3, 4), (4, 3), (2, 2), (1, 1)] {
            let p = generate_gemm_kernel(&GemmKernelSpec {
                mc,
                nc,
                k: 6,
                dtype: DataType::F64,
                alpha: 1.0,
                ldc: mc,
            });
            for inst in &p.insts {
                for r in inst.vwrites().into_iter().chain(inst.vreads()) {
                    assert!(r.idx() < 32);
                }
            }
        }
    }
}
