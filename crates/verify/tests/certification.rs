//! The acceptance gate: 100% of the enumerated kernel set certifies with
//! zero diagnostics, and deliberately corrupted kernels are rejected with
//! the right pinpointed rule.

use iatf_codegen::{DataType, Inst, PipelineModel, VReg, XReg};
use iatf_verify::{all_contracts, certify, certify_all, verify_traced, Contract, RuleId};

#[test]
fn every_enumerated_kernel_certifies() {
    let report = certify_all();
    assert_eq!(report.total(), all_contracts().len());
    if let Some((k, d)) = report.diagnostics().next() {
        panic!("{} failed certification: {}\n{}", k.label, d.headline(), d.context);
    }
    assert!(report.is_certified());
    // every family is present in the sweep
    let classes = report.class_census();
    for class in ["gemm", "cgemm", "trsm_tri", "trsm_block", "trmm_block"] {
        assert!(classes.contains_key(class), "missing family {class}");
    }
    // scheduling never regressed any kernel
    for k in &report.kernels {
        assert!(
            k.cycles_after <= k.cycles_before,
            "{}: {} → {}",
            k.label,
            k.cycles_before,
            k.cycles_after
        );
    }
}

fn base_contract() -> Contract {
    Contract::Gemm {
        mc: 4,
        nc: 4,
        k: 4,
        alpha: 1.5,
        ldc: 5,
        dtype: DataType::F64,
    }
}

/// Corrupts the generated kernel with `f` and asserts the verifier rejects
/// it, pinpointing `rule`.
fn assert_rejected(rule: RuleId, f: impl FnOnce(&mut Vec<Inst>)) {
    let c = base_contract();
    let mut t = c.build_traced();
    f(&mut t.program.insts);
    let diags = verify_traced(&c, &t);
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "expected {:?}, got {:?}",
        rule.id(),
        diags.iter().map(|d| d.headline()).collect::<Vec<_>>()
    );
}

#[test]
fn swapped_fmla_operands_rejected() {
    assert_rejected(RuleId::Semantics, |insts| {
        let idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Fmla { .. }))
            .unwrap();
        if let Inst::Fmla { vd, vn, vm } = insts[idx] {
            insts[idx] = Inst::Fmla { vd: vn, vn: vd, vm };
        }
    });
}

#[test]
fn clobbered_accumulator_rejected() {
    assert_rejected(RuleId::Semantics, |insts| {
        // zero out an accumulator right before the SAVE phase reads it:
        // v16 = c(0,0); v16 ← v0·v0 destroys the accumulated dot product
        let save = insts
            .iter()
            .position(|i| matches!(i, Inst::FmlaScalar { .. }))
            .unwrap();
        insts.insert(
            save - 1,
            Inst::Fmul {
                vd: VReg(16),
                vn: VReg(0),
                vm: VReg(0),
            },
        );
    });
}

#[test]
fn out_of_bounds_access_rejected() {
    assert_rejected(RuleId::MemBounds, |insts| {
        insts.insert(
            1,
            Inst::Ldr {
                dst: VReg(0),
                base: XReg::Pa,
                offset: 1 << 20,
            },
        );
    });
}

#[test]
fn register_file_overflow_rejected() {
    assert_rejected(RuleId::RegFile, |insts| {
        insts.push(Inst::Fmla {
            vd: VReg(32),
            vn: VReg(16),
            vm: VReg(17),
        });
    });
}

#[test]
fn corruption_is_pinpointed_to_the_instruction() {
    let c = base_contract();
    let mut t = c.build_traced();
    let idx = t
        .program
        .insts
        .iter()
        .position(|i| matches!(i, Inst::Ldr { base: XReg::Pa, .. } | Inst::Ldp { base: XReg::Pa, .. }))
        .unwrap();
    // send the first A load out of bounds
    if let Inst::Ldp { offset, .. } | Inst::Ldr { offset, .. } = &mut t.program.insts[idx] {
        *offset += 1 << 16;
    }
    let diags = verify_traced(&c, &t);
    let bounds: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == RuleId::MemBounds)
        .collect();
    assert!(!bounds.is_empty());
    assert_eq!(bounds[0].index, Some(idx), "diagnostic must name the load");
    assert!(bounds[0].context.contains("->"), "context must mark the line");
}

#[test]
fn certified_kernel_roundtrips_through_schedule() {
    let v = certify(&base_contract(), &PipelineModel::default());
    assert!(v.certified());
    assert!(v.cycles_after < v.cycles_before, "Fig. 5 speedup expected");
}
