//! Property tests: randomly drawn kernel shapes must certify — every pass,
//! pre- and post-schedule — and scheduling must preserve the instruction
//! multiset (satellite of the verifier PR; complements the exhaustive
//! enumeration in `certification.rs` with off-grid K and kk values).

use iatf_codegen::{optimize, DataType, PipelineModel};
use iatf_verify::{pipe, verify_program, verify_traced, Contract};
use proptest::prelude::*;

fn dtype_of(bit: bool) -> DataType {
    if bit {
        DataType::F64
    } else {
        DataType::F32
    }
}

fn assert_certifies(c: Contract) -> Result<(), TestCaseError> {
    let model = PipelineModel::default();
    let traced = c.build_traced();
    let pre = verify_traced(&c, &traced);
    prop_assert!(
        pre.is_empty(),
        "{} pre-schedule: {}",
        c.label(),
        pre[0].headline()
    );
    let post_prog = optimize(&traced.program, &model);
    let post = verify_program(&c, &post_prog);
    prop_assert!(
        post.is_empty(),
        "{} post-schedule: {}",
        c.label(),
        post[0].headline()
    );
    let mut sched = Vec::new();
    pipe::check_schedule(&c, &traced.program, &post_prog, &model, &mut sched);
    prop_assert!(
        sched.is_empty(),
        "{} schedule: {}",
        c.label(),
        sched[0].headline()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_gemm_kernels_certify(
        mc in 1usize..=4,
        nc in 1usize..=4,
        k in 1usize..=24,
        pad in 0usize..=3,
        wide in any::<bool>(),
    ) {
        assert_certifies(Contract::Gemm {
            mc,
            nc,
            k,
            alpha: 1.5,
            ldc: mc + pad,
            dtype: dtype_of(wide),
        })?;
    }

    #[test]
    fn random_cgemm_kernels_certify(
        mc in 1usize..=3,
        nc in 1usize..=2,
        k in 1usize..=16,
        pad in 0usize..=2,
        wide in any::<bool>(),
    ) {
        assert_certifies(Contract::CplxGemm {
            mc,
            nc,
            k,
            alpha: 1.5,
            ldc: mc + pad,
            dtype: dtype_of(wide),
        })?;
    }

    #[test]
    fn random_trsm_and_trmm_kernels_certify(
        m in 1usize..=5,
        n in 1usize..=6,
        mb in 1usize..=4,
        nr in 1usize..=4,
        kk in 0usize..=9,
        wide in any::<bool>(),
    ) {
        let dtype = dtype_of(wide);
        assert_certifies(Contract::TrsmTri { m, n, dtype })?;
        assert_certifies(Contract::TrsmBlock { mb, nr, kk, dtype })?;
        assert_certifies(Contract::TrmmBlock { mb, nr, kk, alpha: 1.5, dtype })?;
    }
}
