//! Structured diagnostics: every rule violation carries a stable rule id,
//! the offending instruction index (when one exists), and a few lines of
//! rendered IR context around it.

use iatf_codegen::Program;

/// Stable identifiers of the verifier's rules.
///
/// The string form ([`RuleId::id`]) is the machine-readable id surfaced in
/// `verify_report.json`; [`RuleId::paper`] names the paper invariant each
/// rule certifies (the full mapping lives in `DESIGN.md`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Every vector register index is within the V0–V31 file.
    RegFile,
    /// The kernel's distinct register count fits the paper's budget
    /// formula for its class (and the formula itself admits ≤ 32).
    RegBudget,
    /// No instruction reads a vector register before it is written.
    UninitRead,
    /// No load's value is overwritten before being read.
    DeadLoad,
    /// Every vector write is eventually read (results reach a store).
    WriteNeverRead,
    /// All memory accesses stay within the packed-panel extents implied by
    /// the kernel contract.
    MemBounds,
    /// All memory accesses are 16-byte (element-group) aligned.
    MemAlign,
    /// Stores land only in the contract's writable output region.
    StoreRegion,
    /// Every truly-overlapping access pair involving a store is covered by
    /// a `dependency_edges` ordering edge.
    AliasEdge,
    /// Final pointer positions equal the packed-panel sizes (the load
    /// streams consume their panels exactly).
    PanelConsumed,
    /// The traced template sequence matches Algorithm 3 / Algorithm 4.
    TemplateSeq,
    /// Each template's loads are first consumed by its own or its
    /// successor's compute (the ping-pong invariant).
    PingPong,
    /// Scheduling preserved the instruction multiset.
    SchedMultiset,
    /// Scheduling did not regress modeled cycles (and stayed at or above
    /// the issue-port bound).
    SchedRegression,
    /// Symbolic execution matches the reference GEMM/TRSM/TRMM formula
    /// exactly.
    Semantics,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 15] = [
        RuleId::RegFile,
        RuleId::RegBudget,
        RuleId::UninitRead,
        RuleId::DeadLoad,
        RuleId::WriteNeverRead,
        RuleId::MemBounds,
        RuleId::MemAlign,
        RuleId::StoreRegion,
        RuleId::AliasEdge,
        RuleId::PanelConsumed,
        RuleId::TemplateSeq,
        RuleId::PingPong,
        RuleId::SchedMultiset,
        RuleId::SchedRegression,
        RuleId::Semantics,
    ];

    /// Machine-readable rule id.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::RegFile => "REG_FILE",
            RuleId::RegBudget => "REG_BUDGET",
            RuleId::UninitRead => "UNINIT_READ",
            RuleId::DeadLoad => "DEAD_LOAD",
            RuleId::WriteNeverRead => "WRITE_NEVER_READ",
            RuleId::MemBounds => "MEM_BOUNDS",
            RuleId::MemAlign => "MEM_ALIGN",
            RuleId::StoreRegion => "STORE_REGION",
            RuleId::AliasEdge => "ALIAS_EDGE",
            RuleId::PanelConsumed => "PANEL_CONSUMED",
            RuleId::TemplateSeq => "TEMPLATE_SEQ",
            RuleId::PingPong => "PING_PONG",
            RuleId::SchedMultiset => "SCHED_MULTISET",
            RuleId::SchedRegression => "SCHED_REGRESSION",
            RuleId::Semantics => "SEMANTICS",
        }
    }

    /// The paper invariant this rule certifies.
    pub fn paper(self) -> &'static str {
        match self {
            RuleId::RegFile => "§4.2 register file (V0–V31)",
            RuleId::RegBudget => "Table 1 size constraints (Eq. 2–3, §4.2.2)",
            RuleId::UninitRead => "Algorithm 2 (FMUL-initialized accumulators)",
            RuleId::DeadLoad => "Algorithm 3 ping-pong liveness",
            RuleId::WriteNeverRead => "Algorithm 2 (every result reaches a store)",
            RuleId::MemBounds => "packed-panel extents (§4.1)",
            RuleId::MemAlign => "16-byte element groups (§4.1)",
            RuleId::StoreRegion => "output regions (Alg. 2 SAVE, Alg. 4 line 10)",
            RuleId::AliasEdge => "Fig. 5 dependency analysis",
            RuleId::PanelConsumed => "Algorithm 3 load streams",
            RuleId::TemplateSeq => "Algorithm 3 / Algorithm 4 sequencing",
            RuleId::PingPong => "Algorithm 2–3 double buffering",
            RuleId::SchedMultiset => "Fig. 5 (scheduling reorders only)",
            RuleId::SchedRegression => "Fig. 5 objective under the §6.3 pipeline model",
            RuleId::Semantics => "reference GEMM/TRSM/TRMM semantics (Eq. 1, Eq. 4)",
        }
    }
}

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Offending instruction index, when the violation is localized.
    pub index: Option<usize>,
    /// Human-readable description of the violation.
    pub message: String,
    /// Rendered IR lines around the offending instruction (empty for
    /// program-level diagnostics).
    pub context: String,
}

impl Diagnostic {
    /// A program-level diagnostic (no single offending instruction).
    pub fn new(rule: RuleId, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            index: None,
            message: message.into(),
            context: String::new(),
        }
    }

    /// A diagnostic pinned to instruction `index` of `p`, with ±2 rendered
    /// IR lines of context.
    pub fn at(rule: RuleId, p: &Program, index: usize, message: impl Into<String>) -> Self {
        let rendered: Vec<String> = p.render().lines().map(str::to_string).collect();
        let lo = index.saturating_sub(2);
        let hi = (index + 3).min(rendered.len());
        let mut context = String::new();
        for (i, line) in rendered.iter().enumerate().take(hi).skip(lo) {
            let marker = if i == index { "->" } else { "  " };
            context.push_str(&format!("{marker} {i:4}  {line}\n"));
        }
        Diagnostic {
            rule,
            index: Some(index),
            message: message.into(),
            context,
        }
    }

    /// `RULE_ID[@index]: message` — the one-line rendering used in test
    /// assertions and the text report.
    pub fn headline(&self) -> String {
        match self.index {
            Some(i) => format!("{}@{}: {}", self.rule.id(), i, self.message),
            None => format!("{}: {}", self.rule.id(), self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::{DataType, Inst, VReg, XReg};

    #[test]
    fn rule_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in RuleId::ALL {
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert!(!r.paper().is_empty());
        }
        assert_eq!(seen.len(), RuleId::ALL.len());
    }

    #[test]
    fn context_marks_offending_instruction() {
        let mut p = Program::new(DataType::F64);
        for i in 0..5 {
            p.push(Inst::Ldr {
                dst: VReg(i),
                base: XReg::Pa,
                offset: (i as i32) * 16,
            });
        }
        let d = Diagnostic::at(RuleId::MemBounds, &p, 3, "out of bounds");
        assert_eq!(d.index, Some(3));
        assert!(d.context.contains("->    3"));
        assert!(d.headline().starts_with("MEM_BOUNDS@3:"));
    }
}
