//! Pipeline-structure checks: Algorithm-3/-4 template sequencing, the
//! ping-pong double-buffering invariant, and scheduling sanity.
//!
//! The generator hands over a template trace ([`iatf_codegen::Span`]);
//! this pass independently re-derives the expected template sequence from
//! the contract and requires the trace to match, then proves the ping-pong
//! invariant on the actual dataflow: every load a template issues is first
//! consumed by its own or the correct successor template's compute — the
//! property that lets the scheduler hide load latency behind FMAs.

use crate::contract::Contract;
use crate::diag::{Diagnostic, RuleId};
use iatf_codegen::{
    Inst, PipelineModel, Program, Span, TemplateId, TracedProgram,
};

/// The template sequence Algorithm 3 / Algorithm 4 prescribes for this
/// contract.
pub fn expected_sequence(c: &Contract) -> Vec<TemplateId> {
    use TemplateId::*;
    match *c {
        Contract::Gemm { k, .. } | Contract::CplxGemm { k, .. } => {
            let mut seq = vec![PrefetchC];
            if k == 1 {
                seq.push(Sub);
            } else {
                seq.push(I);
                let mut remaining = k - 1;
                let mut next_is_m2 = true;
                while remaining >= 2 {
                    seq.push(if next_is_m2 { M2 } else { M1 });
                    next_is_m2 = !next_is_m2;
                    remaining -= 1;
                }
                seq.push(if next_is_m2 { E } else { E0 });
            }
            seq.push(Save);
            seq
        }
        Contract::TrsmTri { n, .. } => {
            let mut seq = vec![TrsmLoadTriangle, TrsmLoadColumn(0)];
            for l in 0..n {
                if l + 1 < n {
                    seq.push(TrsmLoadColumn(l + 1));
                }
                seq.push(TrsmSolveColumn(l));
            }
            seq
        }
        Contract::TrsmBlock { kk, .. } => {
            let mut seq = vec![BlockProlog];
            seq.extend(rect_sequence(kk));
            seq.push(BlockTri);
            seq.push(BlockStore);
            seq
        }
        Contract::TrmmBlock { mb, kk, .. } => {
            let mut seq = vec![BlockProlog, TrmmTriLoad(0)];
            for j in 0..mb {
                if j + 1 < mb {
                    seq.push(TrmmTriLoad(j + 1));
                }
                seq.push(TrmmTriCompute(j));
            }
            seq.extend(rect_sequence(kk));
            seq.push(BlockStore);
            seq
        }
    }
}

/// The double-buffered rectangular-elimination sub-sequence shared by the
/// blocked TRSM and TRMM kernels.
fn rect_sequence(kk: usize) -> Vec<TemplateId> {
    use TemplateId::*;
    let mut seq = Vec::new();
    if kk > 0 {
        seq.push(BlockRectLoad(0));
        if kk > 1 {
            seq.push(BlockRectLoad(1));
        }
        for k in 0..kk {
            seq.push(BlockRectCompute(k));
            if k + 2 < kk {
                seq.push(BlockRectLoad(k + 2));
            }
        }
    }
    seq
}

/// Where a load's value must first be consumed, per issuing template.
enum ConsumerRule {
    /// Same span or the immediately following span (the GEMM ping-pong).
    SelfOrNext,
    /// The span with exactly this template id.
    InTemplate(TemplateId),
    /// Same span only.
    SameSpan,
    /// Anywhere later (loads that prime a whole phase).
    Anywhere,
}

fn consumer_rule(id: TemplateId) -> Option<ConsumerRule> {
    use TemplateId::*;
    match id {
        I | M1 | M2 | Sub => Some(ConsumerRule::SelfOrNext),
        Save | TrsmSolveColumn(_) | BlockTri | BlockStore => Some(ConsumerRule::SameSpan),
        TrsmLoadColumn(l) => Some(ConsumerRule::InTemplate(TrsmSolveColumn(l))),
        BlockRectLoad(k) => Some(ConsumerRule::InTemplate(BlockRectCompute(k))),
        TrmmTriLoad(j) => Some(ConsumerRule::InTemplate(TrmmTriCompute(j))),
        TrsmLoadTriangle | BlockProlog => Some(ConsumerRule::Anywhere),
        PrefetchC | E | E0 | BlockRectCompute(_) | TrmmTriCompute(_) => None,
    }
}

/// Index of the first instruction after `idx` that reads `reg`, stopping at
/// an intervening overwrite (a dead load — the liveness pass reports it).
fn first_consumer(p: &Program, idx: usize, reg: iatf_codegen::VReg) -> Option<usize> {
    for (j, inst) in p.insts.iter().enumerate().skip(idx + 1) {
        if inst.vreads().contains(&reg) {
            return Some(j);
        }
        if inst.vwrites().contains(&reg) {
            return None;
        }
    }
    None
}

fn span_of(spans: &[Span], idx: usize) -> Option<usize> {
    spans.iter().position(|s| s.start <= idx && idx < s.end)
}

/// Runs the pipeline-structure passes on a traced (pre-schedule) kernel.
pub fn check(c: &Contract, t: &TracedProgram, diags: &mut Vec<Diagnostic>) {
    let got: Vec<TemplateId> = t.spans.iter().map(|s| s.id).collect();
    let want = expected_sequence(c);
    if got != want {
        diags.push(Diagnostic::new(
            RuleId::TemplateSeq,
            format!(
                "{}: template sequence {:?} does not match Algorithm 3/4 \
                 sequence {:?}",
                c.label(),
                got,
                want
            ),
        ));
        return; // ping-pong rules assume the canonical sequence
    }

    let p = &t.program;
    for (s, sp) in t.spans.iter().enumerate() {
        let Some(rule) = consumer_rule(sp.id) else {
            continue;
        };
        for idx in sp.start..sp.end {
            let inst = &p.insts[idx];
            if !matches!(inst, Inst::Ldr { .. } | Inst::Ldp { .. }) {
                continue;
            }
            for reg in inst.vwrites() {
                let Some(consumer) = first_consumer(p, idx, reg) else {
                    continue; // dead load — the liveness pass reports it
                };
                let cs = span_of(&t.spans, consumer).unwrap();
                let ok = match rule {
                    ConsumerRule::SelfOrNext => cs == s || cs == s + 1,
                    ConsumerRule::SameSpan => cs == s,
                    ConsumerRule::InTemplate(id) => t.spans[cs].id == id,
                    ConsumerRule::Anywhere => true,
                };
                if !ok {
                    diags.push(Diagnostic::at(
                        RuleId::PingPong,
                        p,
                        idx,
                        format!(
                            "load into {reg:?} issued by {:?} is first consumed \
                             by {:?} (#{consumer}) — breaks the ping-pong \
                             hand-off",
                            sp.id, t.spans[cs].id
                        ),
                    ));
                }
            }
        }
    }
}

/// Scheduling sanity: the optimized kernel must be a permutation of the
/// original and must not be slower under the pipeline model (nor beat the
/// issue-port bound, which would mean the model is broken).
pub fn check_schedule(
    c: &Contract,
    pre: &Program,
    post: &Program,
    model: &PipelineModel,
    diags: &mut Vec<Diagnostic>,
) {
    let key = |p: &Program| -> Vec<String> {
        let mut v: Vec<String> = p.insts.iter().map(|i| format!("{i:?}")).collect();
        v.sort_unstable();
        v
    };
    if key(pre) != key(post) {
        diags.push(Diagnostic::new(
            RuleId::SchedMultiset,
            format!(
                "{}: scheduling changed the instruction multiset \
                 ({} → {} instructions)",
                c.label(),
                pre.len(),
                post.len()
            ),
        ));
    }
    let before = model.simulate(pre);
    let after = model.simulate(post);
    if after.cycles > before.cycles {
        diags.push(Diagnostic::new(
            RuleId::SchedRegression,
            format!(
                "{}: scheduling regressed modeled cycles {} → {}",
                c.label(),
                before.cycles,
                after.cycles
            ),
        ));
    }
    if after.cycles < after.port_bound {
        diags.push(Diagnostic::new(
            RuleId::SchedRegression,
            format!(
                "{}: modeled {} cycles beat the issue-port bound {} — the \
                 pipeline model is inconsistent",
                c.label(),
                after.cycles,
                after.port_bound
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::DataType;

    #[test]
    fn generated_sequences_match() {
        let cs = [
            Contract::Gemm {
                mc: 4,
                nc: 4,
                k: 5,
                alpha: 1.0,
                ldc: 4,
                dtype: DataType::F64,
            },
            Contract::CplxGemm {
                mc: 3,
                nc: 2,
                k: 4,
                alpha: 1.0,
                ldc: 3,
                dtype: DataType::F32,
            },
            Contract::TrsmTri {
                m: 4,
                n: 3,
                dtype: DataType::F64,
            },
            Contract::TrsmBlock {
                mb: 3,
                nr: 2,
                kk: 4,
                dtype: DataType::F32,
            },
            Contract::TrmmBlock {
                mb: 3,
                nr: 3,
                kk: 3,
                alpha: 2.0,
                dtype: DataType::F64,
            },
        ];
        for c in cs {
            let t = c.build_traced();
            let mut diags = Vec::new();
            check(&c, &t, &mut diags);
            assert!(diags.is_empty(), "{}: {}", c.label(), diags[0].headline());
        }
    }

    #[test]
    fn wrong_sequence_detected() {
        let c = Contract::Gemm {
            mc: 2,
            nc: 2,
            k: 3,
            alpha: 1.0,
            ldc: 2,
            dtype: DataType::F64,
        };
        let mut t = c.build_traced();
        // claim the kernel was built for k=4 (one more middle template)
        let wrong = Contract::Gemm {
            mc: 2,
            nc: 2,
            k: 4,
            alpha: 1.0,
            ldc: 2,
            dtype: DataType::F64,
        };
        let mut diags = Vec::new();
        check(&wrong, &t, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::TemplateSeq));
        // and a trace whose spans were shuffled is also rejected
        t.spans.swap(1, 2);
        let mut diags = Vec::new();
        check(&c, &t, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::TemplateSeq));
    }

    #[test]
    fn schedule_checks_accept_the_optimizer() {
        let c = Contract::Gemm {
            mc: 4,
            nc: 4,
            k: 8,
            alpha: 1.5,
            ldc: 4,
            dtype: DataType::F64,
        };
        let pre = c.build_traced().program;
        let model = PipelineModel::default();
        let post = iatf_codegen::optimize(&pre, &model);
        let mut diags = Vec::new();
        check_schedule(&c, &pre, &post, &model, &mut diags);
        assert!(diags.is_empty(), "{}", diags[0].headline());
    }

    #[test]
    fn dropped_instruction_fails_multiset() {
        let c = Contract::Gemm {
            mc: 2,
            nc: 2,
            k: 2,
            alpha: 1.0,
            ldc: 2,
            dtype: DataType::F32,
        };
        let pre = c.build_traced().program;
        let mut post = pre.clone();
        post.insts.pop();
        let mut diags = Vec::new();
        check_schedule(&c, &pre, &post, &PipelineModel::default(), &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::SchedMultiset));
    }
}
