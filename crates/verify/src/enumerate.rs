//! The certification surface: every kernel the install-time stage can
//! generate, enumerated exhaustively.
//!
//! Sizes come from the paper's Table 1 (via `iatf_kernels::table1_sizes`),
//! K from one representative of every Algorithm-3 sequencing class (the
//! `SUB`, `I;E`, `I;M2;E0`, even-steady-state, and odd-steady-state arms,
//! plus deeper members of the even/odd classes), and both precisions are
//! covered. `alpha` is a non-trivial scalar so the SAVE scaling is
//! semantically visible, and GEMM uses a strided C (`ldc = m_c + 1`) so the
//! verifier also proves the gap groups stay untouched.

use crate::contract::Contract;
use iatf_codegen::DataType;
use iatf_kernels::{table1_sizes, KernelClass, FUSED_BLOCK_MAX, TRSM_TRI_MAX_M};

/// One K per Algorithm-3 sequencing class: the four explicit arms plus
/// deeper even/odd steady states.
pub const GEMM_K_CLASSES: [usize; 8] = [1, 2, 3, 4, 5, 8, 9, 17];

/// Eliminated-row counts covering the blocked kernels' double-buffer
/// states: none, single (no refill), the preload boundary, and deeper
/// steady states of both parities.
pub const BLOCK_KK_CLASSES: [usize; 6] = [0, 1, 2, 3, 4, 7];

/// Panel widths for the register-resident triangular kernel (both
/// ping-pong parities and deeper columns).
pub const TRI_N_CLASSES: [usize; 4] = [1, 2, 3, 4];

/// A non-trivial `alpha`, exactly representable so symbolic coefficients
/// stay exact.
pub const ALPHA: f64 = 1.5;

/// Every kernel the verifier certifies: all Table-1 sizes × all sequencing
/// classes × both precisions, for every kernel family.
pub fn all_contracts() -> Vec<Contract> {
    let mut out = Vec::new();
    for dtype in [DataType::F32, DataType::F64] {
        for (mc, nc) in table1_sizes(KernelClass::RealGemm) {
            for k in GEMM_K_CLASSES {
                out.push(Contract::Gemm {
                    mc,
                    nc,
                    k,
                    alpha: ALPHA,
                    ldc: mc + 1,
                    dtype,
                });
            }
        }
        for (mc, nc) in table1_sizes(KernelClass::CplxGemm) {
            for k in GEMM_K_CLASSES {
                out.push(Contract::CplxGemm {
                    mc,
                    nc,
                    k,
                    alpha: ALPHA,
                    ldc: mc + 1,
                    dtype,
                });
            }
        }
        for m in 1..=TRSM_TRI_MAX_M {
            for n in TRI_N_CLASSES {
                out.push(Contract::TrsmTri { m, n, dtype });
            }
        }
        let (mb_max, nr_max) = FUSED_BLOCK_MAX;
        for mb in 1..=mb_max {
            for nr in 1..=nr_max {
                for kk in BLOCK_KK_CLASSES {
                    out.push(Contract::TrsmBlock { mb, nr, kk, dtype });
                    out.push(Contract::TrmmBlock {
                        mb,
                        nr,
                        kk,
                        alpha: ALPHA,
                        dtype,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_exhaustive_and_unique() {
        let all = all_contracts();
        // 2 dtypes × (16 GEMM sizes × 8 K + 6 CGEMM sizes × 8 K +
        //             5×4 tri + 4×4×6 blocked × 2 families)
        let expect = 2 * (16 * 8 + 6 * 8 + 5 * 4 + 4 * 4 * 6 * 2);
        assert_eq!(all.len(), expect);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "duplicate contract {}", a.label());
            }
        }
    }
}
