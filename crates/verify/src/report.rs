//! Certification report: per-kernel verdicts, rule/class censuses, and
//! machine-readable JSON (`verify_report.json`).

use crate::diag::{Diagnostic, RuleId};
use iatf_obs::Json;
use std::collections::BTreeMap;

/// The verdict for one enumerated kernel.
#[derive(Clone, Debug)]
pub struct KernelVerdict {
    /// Human-readable kernel label (`gemm f64 4x4 k=8`).
    pub label: String,
    /// Kernel family (`gemm`, `cgemm`, `trsm_tri`, `trsm_block`,
    /// `trmm_block`).
    pub class: &'static str,
    /// Precision (`f32` / `f64`).
    pub dtype: &'static str,
    /// Instruction count of the generated kernel.
    pub insts: u64,
    /// Modeled cycles before scheduling.
    pub cycles_before: u64,
    /// Modeled cycles after scheduling.
    pub cycles_after: u64,
    /// Every rule violation found (empty = certified).
    pub diagnostics: Vec<Diagnostic>,
}

impl KernelVerdict {
    /// True when every pass was clean.
    pub fn certified(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// The full certification run.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// One verdict per enumerated kernel.
    pub kernels: Vec<KernelVerdict>,
}

impl VerifyReport {
    /// Kernels verified.
    pub fn total(&self) -> usize {
        self.kernels.len()
    }

    /// Kernels with zero diagnostics.
    pub fn certified(&self) -> usize {
        self.kernels.iter().filter(|k| k.certified()).count()
    }

    /// All diagnostics across all kernels.
    pub fn diagnostics(&self) -> impl Iterator<Item = (&KernelVerdict, &Diagnostic)> {
        self.kernels
            .iter()
            .flat_map(|k| k.diagnostics.iter().map(move |d| (k, d)))
    }

    /// True when 100% of kernels certified.
    pub fn is_certified(&self) -> bool {
        self.certified() == self.total() && self.total() > 0
    }

    /// Diagnostics per rule id (only violated rules appear).
    pub fn rule_census(&self) -> BTreeMap<&'static str, usize> {
        let mut census = BTreeMap::new();
        for (_, d) in self.diagnostics() {
            *census.entry(d.rule.id()).or_insert(0) += 1;
        }
        census
    }

    /// (total, certified) per kernel family.
    pub fn class_census(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut census: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for k in &self.kernels {
            let e = census.entry(k.class).or_insert((0, 0));
            e.0 += 1;
            if k.certified() {
                e.1 += 1;
            }
        }
        census
    }

    /// The machine-readable report (`verify_report.json` schema).
    pub fn to_json(&self) -> Json {
        let classes = self
            .class_census()
            .into_iter()
            .fold(Json::object(), |acc, (class, (total, certified))| {
                acc.set(
                    class,
                    Json::object().set("total", total).set("certified", certified),
                )
            });
        let rules = self
            .rule_census()
            .into_iter()
            .fold(Json::object(), |acc, (rule, n)| acc.set(rule, n));
        let failures: Vec<Json> = self
            .diagnostics()
            .map(|(k, d)| {
                Json::object()
                    .set("kernel", k.label.as_str())
                    .set("rule", d.rule.id())
                    .set("paper", d.rule.paper())
                    .set(
                        "instruction",
                        d.index.map_or(Json::Null, |i| Json::UInt(i as u64)),
                    )
                    .set("message", d.message.as_str())
            })
            .collect();
        Json::object()
            .set("schema", "iatf.verify_report.v1")
            .set("total_kernels", self.total())
            .set("certified_kernels", self.certified())
            .set("certified", self.is_certified())
            .set("rules_checked", RuleId::ALL.len())
            .set("classes", classes)
            .set("violated_rules", rules)
            .set("failures", failures)
    }

    /// Human-readable summary (the `reproduce verify` console output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "iatf-verify: {}/{} kernels certified against {} rules",
            self.certified(),
            self.total(),
            RuleId::ALL.len()
        );
        for (class, (total, certified)) in self.class_census() {
            let _ = writeln!(out, "  {class:<11} {certified}/{total}");
        }
        for (shown, (k, d)) in self.diagnostics().enumerate() {
            if shown == 10 {
                let _ = writeln!(out, "  ... more diagnostics elided");
                break;
            }
            let _ = writeln!(out, "  FAIL {}: {}", k.label, d.headline());
            if !d.context.is_empty() {
                for line in d.context.lines() {
                    let _ = writeln!(out, "       {line}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(label: &str, class: &'static str, diags: Vec<Diagnostic>) -> KernelVerdict {
        KernelVerdict {
            label: label.to_string(),
            class,
            dtype: "f64",
            insts: 10,
            cycles_before: 20,
            cycles_after: 12,
            diagnostics: diags,
        }
    }

    #[test]
    fn censuses_and_json() {
        let report = VerifyReport {
            kernels: vec![
                verdict("gemm f64 4x4 k=2", "gemm", vec![]),
                verdict(
                    "gemm f64 4x4 k=3",
                    "gemm",
                    vec![Diagnostic::new(RuleId::Semantics, "wrong polynomial")],
                ),
                verdict("trsm_tri f64 m=4 n=1", "trsm_tri", vec![]),
            ],
        };
        assert_eq!(report.total(), 3);
        assert_eq!(report.certified(), 2);
        assert!(!report.is_certified());
        assert_eq!(report.rule_census().get("SEMANTICS"), Some(&1));
        assert_eq!(report.class_census().get("gemm"), Some(&(2, 1)));
        let json = report.to_json().to_compact();
        assert!(json.contains("\"certified\":false"));
        assert!(json.contains("\"SEMANTICS\":1"));
        assert!(json.contains("iatf.verify_report.v1"));
        let text = report.render_text();
        assert!(text.contains("2/3 kernels certified"));
        assert!(text.contains("FAIL gemm f64 4x4 k=3: SEMANTICS"));
    }

    #[test]
    fn empty_report_is_not_certified() {
        assert!(!VerifyReport::default().is_certified());
    }
}
