//! Kernel contracts: the input-shape facts a generated kernel is verified
//! against — register budget, packed-operand extents, writable output
//! region, and expected pointer-stream consumption.

use iatf_codegen::{
    generate_cgemm_kernel_traced, generate_gemm_kernel_traced, generate_trmm_block_kernel_traced,
    generate_trsm_block_kernel_traced, generate_trsm_tri_kernel_traced, DataType, GemmKernelSpec,
    TracedProgram, XReg,
};

/// Dense index of an [`XReg`] (buffer-table slot).
pub(crate) fn xreg_index(x: XReg) -> usize {
    match x {
        XReg::Pa => 0,
        XReg::Pb => 1,
        XReg::Pc => 2,
        XReg::Ptri => 3,
    }
}

/// What one generated kernel is contracted to do, and over which packed
/// operands. One contract = one `(class, sizes, K, dtype)` point of the
/// enumeration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Contract {
    /// Real GEMM microkernel: `C += alpha · A·B` over an `(mc × nc)` tile
    /// at depth `k`, C leading dimension `ldc` groups.
    Gemm {
        /// Tile rows (1..=4).
        mc: usize,
        /// Tile columns (1..=4).
        nc: usize,
        /// Unrolled depth.
        k: usize,
        /// SAVE-template scale.
        alpha: f64,
        /// C leading dimension in element groups.
        ldc: usize,
        /// Scalar precision.
        dtype: DataType,
    },
    /// Complex (split-representation) GEMM microkernel, real `alpha`.
    CplxGemm {
        /// Tile rows (1..=3).
        mc: usize,
        /// Tile columns (1..=2).
        nc: usize,
        /// Unrolled depth.
        k: usize,
        /// SAVE-template scale (real).
        alpha: f64,
        /// C leading dimension in complex element groups.
        ldc: usize,
        /// Scalar precision of the split planes.
        dtype: DataType,
    },
    /// Register-resident TRSM triangular kernel (Algorithm 4): solve
    /// `L·X = B` for an `m×m` packed lower triangle (reciprocal diagonal)
    /// over `n` columns, column-major panel.
    TrsmTri {
        /// Triangle order (1..=5).
        m: usize,
        /// Panel columns.
        n: usize,
        /// Scalar precision.
        dtype: DataType,
    },
    /// Fused blocked TRSM kernel: FMLS elimination of `kk` solved rows,
    /// then the in-register solve of an `mb`-row diagonal block over an
    /// `nr`-wide row-major panel.
    TrsmBlock {
        /// Block rows (1..=4).
        mb: usize,
        /// Panel width (1..=4).
        nr: usize,
        /// Already-solved rows above the block.
        kk: usize,
        /// Scalar precision.
        dtype: DataType,
    },
    /// Fused blocked TRMM kernel: triangular multiply (direct diagonal) of
    /// the block plus FMLA accumulation of the `kk` rows above, scaled by
    /// `alpha`.
    TrmmBlock {
        /// Block rows (1..=4).
        mb: usize,
        /// Panel width (1..=4).
        nr: usize,
        /// Original rows above the block.
        kk: usize,
        /// Result scale.
        alpha: f64,
        /// Scalar precision.
        dtype: DataType,
    },
}

impl Contract {
    /// Scalar precision of the kernel.
    pub fn dtype(&self) -> DataType {
        match *self {
            Contract::Gemm { dtype, .. }
            | Contract::CplxGemm { dtype, .. }
            | Contract::TrsmTri { dtype, .. }
            | Contract::TrsmBlock { dtype, .. }
            | Contract::TrmmBlock { dtype, .. } => dtype,
        }
    }

    /// Kernel-family name used in reports.
    pub fn class_name(&self) -> &'static str {
        match self {
            Contract::Gemm { .. } => "gemm",
            Contract::CplxGemm { .. } => "cgemm",
            Contract::TrsmTri { .. } => "trsm_tri",
            Contract::TrsmBlock { .. } => "trsm_block",
            Contract::TrmmBlock { .. } => "trmm_block",
        }
    }

    /// Human-readable kernel label, e.g. `gemm f64 4x4 k=8`.
    pub fn label(&self) -> String {
        let dt = match self.dtype() {
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        };
        match *self {
            Contract::Gemm { mc, nc, k, .. } => format!("gemm {dt} {mc}x{nc} k={k}"),
            Contract::CplxGemm { mc, nc, k, .. } => format!("cgemm {dt} {mc}x{nc} k={k}"),
            Contract::TrsmTri { m, n, .. } => format!("trsm_tri {dt} m={m} n={n}"),
            Contract::TrsmBlock { mb, nr, kk, .. } => {
                format!("trsm_block {dt} {mb}x{nr} kk={kk}")
            }
            Contract::TrmmBlock { mb, nr, kk, .. } => {
                format!("trmm_block {dt} {mb}x{nr} kk={kk}")
            }
        }
    }

    /// Generates the kernel this contract describes, with its template
    /// trace.
    pub fn build_traced(&self) -> TracedProgram {
        match *self {
            Contract::Gemm {
                mc,
                nc,
                k,
                alpha,
                ldc,
                dtype,
            } => generate_gemm_kernel_traced(&GemmKernelSpec {
                mc,
                nc,
                k,
                dtype,
                alpha,
                ldc,
            }),
            Contract::CplxGemm {
                mc,
                nc,
                k,
                alpha,
                ldc,
                dtype,
            } => generate_cgemm_kernel_traced(&GemmKernelSpec {
                mc,
                nc,
                k,
                dtype,
                alpha,
                ldc,
            }),
            Contract::TrsmTri { m, n, dtype } => generate_trsm_tri_kernel_traced(m, n, dtype),
            Contract::TrsmBlock { mb, nr, kk, dtype } => {
                generate_trsm_block_kernel_traced(mb, nr, kk, dtype)
            }
            Contract::TrmmBlock {
                mb,
                nr,
                kk,
                alpha,
                dtype,
            } => generate_trmm_block_kernel_traced(mb, nr, kk, alpha, dtype),
        }
    }

    /// The paper's register-budget bound for this kernel class (must admit
    /// the kernel *and* stay ≤ 32):
    ///
    /// * real GEMM: `2(m_c + n_c) + m_c·n_c` (Eq. 2),
    /// * complex GEMM: `4(m_c + n_c) + 2·m_c·n_c` (Eq. 3),
    /// * TRSM triangular: `M(M+1)/2 + 2M` (§4.2.2),
    /// * TRSM/TRMM block: `m_b·n_r + 2·m_b + 2·n_r`.
    pub fn register_budget(&self) -> usize {
        match *self {
            Contract::Gemm { mc, nc, .. } => 2 * (mc + nc) + mc * nc,
            Contract::CplxGemm { mc, nc, .. } => 4 * (mc + nc) + 2 * mc * nc,
            Contract::TrsmTri { m, .. } => m * (m + 1) / 2 + 2 * m,
            Contract::TrsmBlock { mb, nr, .. } | Contract::TrmmBlock { mb, nr, .. } => {
                mb * nr + 2 * mb + 2 * nr
            }
        }
    }

    /// Byte length of the packed operand behind each pointer register
    /// (0 = the kernel must not touch that pointer).
    pub fn buffer_bytes(&self, x: XReg) -> i64 {
        let groups: usize = match *self {
            Contract::Gemm {
                mc, nc, k, ldc, ..
            } => match x {
                XReg::Pa => k * mc,
                XReg::Pb => k * nc,
                XReg::Pc => (nc - 1) * ldc + mc,
                XReg::Ptri => 0,
            },
            Contract::CplxGemm {
                mc, nc, k, ldc, ..
            } => match x {
                XReg::Pa => 2 * k * mc,
                XReg::Pb => 2 * k * nc,
                XReg::Pc => 2 * ((nc - 1) * ldc + mc),
                XReg::Ptri => 0,
            },
            Contract::TrsmTri { m, n, .. } => match x {
                XReg::Ptri => m * (m + 1) / 2,
                XReg::Pb => m * n,
                _ => 0,
            },
            Contract::TrsmBlock { mb, nr, kk, .. }
            | Contract::TrmmBlock { mb, nr, kk, .. } => match x {
                XReg::Ptri => kk * mb + mb * (mb + 1) / 2,
                XReg::Pb => (kk + mb) * nr,
                _ => 0,
            },
        };
        (groups * 16) as i64
    }

    /// Byte range stores may legally target behind each pointer (empty =
    /// read-only operand).
    pub fn writable_bytes(&self, x: XReg) -> std::ops::Range<i64> {
        match *self {
            Contract::Gemm { .. } | Contract::CplxGemm { .. } => {
                if x == XReg::Pc {
                    0..self.buffer_bytes(XReg::Pc)
                } else {
                    0..0
                }
            }
            Contract::TrsmTri { .. } => {
                if x == XReg::Pb {
                    0..self.buffer_bytes(XReg::Pb)
                } else {
                    0..0
                }
            }
            Contract::TrsmBlock { nr, kk, .. } | Contract::TrmmBlock { nr, kk, .. } => {
                if x == XReg::Pb {
                    (kk * nr * 16) as i64..self.buffer_bytes(XReg::Pb)
                } else {
                    0..0
                }
            }
        }
    }

    /// Expected final position of each pointer register, in bytes from its
    /// start: the GEMM generators stream A and B with post-bumps and must
    /// consume each panel exactly; every other pointer stays put.
    pub fn final_offsets(&self) -> [(XReg, i64); 4] {
        let (pa, pb) = match *self {
            Contract::Gemm { mc, nc, k, .. } => ((k * mc * 16) as i64, (k * nc * 16) as i64),
            Contract::CplxGemm { mc, nc, k, .. } => {
                ((k * mc * 32) as i64, (k * nc * 32) as i64)
            }
            _ => (0, 0),
        };
        [
            (XReg::Pa, pa),
            (XReg::Pb, pb),
            (XReg::Pc, 0),
            (XReg::Ptri, 0),
        ]
    }
}
