//! Register-file, register-budget, and liveness checks.
//!
//! Proves the paper's Table-1 size constraints hold for the generated
//! kernel: every vector register index is architectural (V0–V31), the set
//! of distinct registers fits the class budget formula (which itself must
//! admit ≤ 32), and the dataflow is clean — nothing reads an uninitialized
//! register, no load is overwritten before being consumed, and every
//! computed value reaches a reader (ultimately a store).

use crate::contract::Contract;
use crate::diag::{Diagnostic, RuleId};
use iatf_codegen::{Inst, Program};

/// Runs the register passes; appends any violations to `diags`.
pub fn check(c: &Contract, p: &Program, diags: &mut Vec<Diagnostic>) {
    let budget = c.register_budget();
    if budget > 32 {
        diags.push(Diagnostic::new(
            RuleId::RegBudget,
            format!(
                "{}: budget formula gives {budget} registers > 32 — the size \
                 is outside Table 1",
                c.label()
            ),
        ));
    }

    let mut used = [false; 256];
    for (idx, inst) in p.insts.iter().enumerate() {
        for r in inst.vwrites().into_iter().chain(inst.vreads()) {
            if r.idx() >= 32 {
                diags.push(Diagnostic::at(
                    RuleId::RegFile,
                    p,
                    idx,
                    format!("v{} is outside the V0–V31 register file", r.idx()),
                ));
            }
            used[r.idx().min(255)] = true;
        }
    }
    let distinct = used.iter().filter(|&&u| u).count();
    if distinct > budget {
        diags.push(Diagnostic::new(
            RuleId::RegBudget,
            format!(
                "{}: kernel touches {distinct} distinct vector registers, \
                 budget formula allows {budget}",
                c.label()
            ),
        ));
    }

    liveness(p, diags);
}

/// True when `inst` is a load (the producer class whose wasted results are
/// [`RuleId::DeadLoad`] rather than [`RuleId::WriteNeverRead`]).
fn is_load(inst: &Inst) -> bool {
    matches!(inst, Inst::Ldr { .. } | Inst::Ldp { .. })
}

fn liveness(p: &Program, diags: &mut Vec<Diagnostic>) {
    // per register: Some(producer index) while a write is pending a read
    let mut pending: [Option<usize>; 32] = [None; 32];
    let mut written: [bool; 32] = [false; 32];

    for (idx, inst) in p.insts.iter().enumerate() {
        // reads happen before the same instruction's write (FMLA reads its
        // accumulator before redefining it)
        for r in inst.vreads() {
            if r.idx() >= 32 {
                continue; // RegFile already reported
            }
            if !written[r.idx()] {
                diags.push(Diagnostic::at(
                    RuleId::UninitRead,
                    p,
                    idx,
                    format!("v{} read before any write", r.idx()),
                ));
                written[r.idx()] = true; // report once per register
            }
            pending[r.idx()] = None;
        }
        for r in inst.vwrites() {
            if r.idx() >= 32 {
                continue;
            }
            if let Some(producer) = pending[r.idx()] {
                let (rule, what) = if is_load(&p.insts[producer]) {
                    (RuleId::DeadLoad, "load")
                } else {
                    (RuleId::WriteNeverRead, "result")
                };
                diags.push(Diagnostic::at(
                    rule,
                    p,
                    producer,
                    format!(
                        "{what} into v{} is overwritten at #{idx} without \
                         ever being read",
                        r.idx()
                    ),
                ));
            }
            pending[r.idx()] = Some(idx);
            written[r.idx()] = true;
        }
    }

    for (reg, slot) in pending.iter().enumerate() {
        if let Some(producer) = *slot {
            let (rule, what) = if is_load(&p.insts[producer]) {
                (RuleId::DeadLoad, "load")
            } else {
                (RuleId::WriteNeverRead, "result")
            };
            diags.push(Diagnostic::at(
                rule,
                p,
                producer,
                format!("{what} into v{reg} is never read before kernel exit"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::{DataType, Inst, VReg, XReg};

    fn gemm_4x4(k: usize) -> (Contract, Program) {
        let c = Contract::Gemm {
            mc: 4,
            nc: 4,
            k,
            alpha: 1.0,
            ldc: 4,
            dtype: DataType::F64,
        };
        let p = c.build_traced().program;
        (c, p)
    }

    #[test]
    fn generated_kernels_are_clean() {
        for k in [1usize, 2, 3, 4, 5, 8] {
            let (c, p) = gemm_4x4(k);
            let mut diags = Vec::new();
            check(&c, &p, &mut diags);
            assert!(diags.is_empty(), "k={k}: {:?}", diags[0].headline());
        }
    }

    #[test]
    fn dead_load_detected() {
        let (c, mut p) = gemm_4x4(2);
        // a load whose value is clobbered by the next instruction
        p.insts.insert(
            1,
            Inst::Ldr {
                dst: VReg(0),
                base: XReg::Pa,
                offset: 0,
            },
        );
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(
            diags.iter().any(|d| d.rule == RuleId::DeadLoad),
            "{diags:?}"
        );
    }

    #[test]
    fn uninit_read_detected() {
        let c = Contract::Gemm {
            mc: 1,
            nc: 1,
            k: 1,
            alpha: 1.0,
            ldc: 1,
            dtype: DataType::F64,
        };
        let mut p = Program::new(DataType::F64);
        p.push(Inst::Str {
            src: VReg(7),
            base: XReg::Pc,
            offset: 0,
        });
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::UninitRead));
    }

    #[test]
    fn out_of_file_register_detected() {
        let (c, mut p) = gemm_4x4(2);
        p.push(Inst::Fmla {
            vd: VReg(33),
            vn: VReg(0),
            vm: VReg(8),
        });
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::RegFile));
    }
}
