//! `iatf-verify`: a static kernel-IR verifier.
//!
//! The install-time stage (`iatf-codegen`) generates every compact-BLAS
//! microkernel as straight-line IR. This crate *certifies* those kernels
//! against the paper's constraints without executing them numerically,
//! in four pass groups:
//!
//! 1. **Registers** ([`regs`]) — every register is architectural (V0–V31),
//!    the kernel fits its class's Table-1 budget formula, and liveness is
//!    clean (no uninitialized reads, dead loads, or values that never reach
//!    a reader).
//! 2. **Memory** ([`mem`]) — every `LDR`/`LDP`/`STR`/`PRFM` stays inside
//!    the packed-panel extents the contract implies, on element-group
//!    boundaries; stores stay in the output region; every overlapping
//!    store pair is covered by a dependency edge; and the load streams
//!    consume their panels exactly.
//! 3. **Pipeline structure** ([`pipe`]) — the template trace matches the
//!    Algorithm-3/-4 sequence, each template's loads are first consumed by
//!    the right successor (the ping-pong invariant), and scheduling is a
//!    cycle-non-regressing permutation.
//! 4. **Semantics** ([`sym`]) — the kernel is run on symbolic polynomials
//!    and every final buffer slot must *exactly* equal the reference
//!    GEMM/TRSM/TRMM formula.
//!
//! [`certify`] runs all passes on one [`Contract`], pre- and post-schedule;
//! [`certify_all`] sweeps the full Table-1 × K-class × precision
//! enumeration (the `reproduce verify` target).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod diag;
pub mod enumerate;
pub mod mem;
pub mod pipe;
pub mod poly;
pub mod regs;
pub mod report;
pub mod sym;

pub use contract::Contract;
pub use diag::{Diagnostic, RuleId};
pub use enumerate::{all_contracts, ALPHA, BLOCK_KK_CLASSES, GEMM_K_CLASSES, TRI_N_CLASSES};
pub use poly::Poly;
pub use report::{KernelVerdict, VerifyReport};

use iatf_codegen::{optimize, schedule_stats, PipelineModel, Program, TracedProgram};

/// Runs the program-level passes (registers, memory, semantics) on one
/// kernel body. Works on both the generation-order and the scheduled form.
///
/// The symbolic interpreter assumes well-formed register indices and
/// in-bounds accesses, so it only runs when those passes are clean.
pub fn verify_program(c: &Contract, p: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    regs::check(c, p, &mut diags);
    mem::check(c, p, &mut diags);
    let machine_safe = !diags.iter().any(|d| {
        matches!(
            d.rule,
            RuleId::RegFile | RuleId::MemBounds | RuleId::MemAlign
        )
    });
    if machine_safe {
        sym::check(c, p, &mut diags);
    }
    diags
}

/// [`verify_program`] plus the trace-based pipeline-structure passes
/// (template sequencing and the ping-pong invariant). Pre-schedule only:
/// spans are emission-ordered and scheduling dissolves them.
pub fn verify_traced(c: &Contract, t: &TracedProgram) -> Vec<Diagnostic> {
    let mut diags = verify_program(c, &t.program);
    pipe::check(c, t, &mut diags);
    diags
}

/// Full certification of one contract: generate, verify pre-schedule,
/// schedule, verify post-schedule, and check the schedule itself.
pub fn certify(c: &Contract, model: &PipelineModel) -> KernelVerdict {
    let traced = c.build_traced();
    let mut diags = verify_traced(c, &traced);
    let post = optimize(&traced.program, model);
    diags.extend(verify_program(c, &post));
    pipe::check_schedule(c, &traced.program, &post, model, &mut diags);
    let stats = schedule_stats(&traced.program, model);
    KernelVerdict {
        label: c.label(),
        class: c.class_name(),
        dtype: match c.dtype() {
            iatf_codegen::DataType::F32 => "f32",
            iatf_codegen::DataType::F64 => "f64",
        },
        insts: traced.program.len() as u64,
        cycles_before: stats.cycles_before,
        cycles_after: stats.cycles_after,
        diagnostics: diags,
    }
}

/// Certifies the exhaustive kernel enumeration
/// ([`enumerate::all_contracts`]) — the `reproduce verify` target.
pub fn certify_all() -> VerifyReport {
    let model = PipelineModel::default();
    VerifyReport {
        kernels: all_contracts().iter().map(|c| certify(c, &model)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::DataType;

    #[test]
    fn representative_kernels_certify() {
        let model = PipelineModel::default();
        let cs = [
            Contract::Gemm {
                mc: 4,
                nc: 4,
                k: 8,
                alpha: 1.5,
                ldc: 5,
                dtype: DataType::F64,
            },
            Contract::CplxGemm {
                mc: 3,
                nc: 2,
                k: 5,
                alpha: 1.5,
                ldc: 4,
                dtype: DataType::F32,
            },
            Contract::TrsmTri {
                m: 5,
                n: 4,
                dtype: DataType::F64,
            },
            Contract::TrsmBlock {
                mb: 4,
                nr: 4,
                kk: 3,
                dtype: DataType::F64,
            },
            Contract::TrmmBlock {
                mb: 4,
                nr: 4,
                kk: 4,
                alpha: 1.5,
                dtype: DataType::F32,
            },
        ];
        for c in cs {
            let v = certify(&c, &model);
            assert!(
                v.certified(),
                "{}: {}",
                v.label,
                v.diagnostics[0].headline()
            );
            assert!(v.cycles_after <= v.cycles_before);
        }
    }

    #[test]
    fn corrupted_kernel_is_rejected_with_pinpointed_rule() {
        use iatf_codegen::Inst;
        let c = Contract::Gemm {
            mc: 3,
            nc: 3,
            k: 4,
            alpha: 1.5,
            ldc: 3,
            dtype: DataType::F64,
        };
        let mut t = c.build_traced();
        // swap an FMLA's accumulator and factor operands
        let idx = t
            .program
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Fmla { .. }))
            .unwrap();
        if let Inst::Fmla { vd, vn, vm } = t.program.insts[idx] {
            t.program.insts[idx] = Inst::Fmla { vd: vn, vn: vd, vm };
        }
        let diags = verify_traced(&c, &t);
        assert!(
            diags.iter().any(|d| d.rule == RuleId::Semantics),
            "{diags:?}"
        );
    }
}
