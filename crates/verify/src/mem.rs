//! Memory-safety checks: bounds, alignment, store regions, aliasing
//! coverage, and panel consumption.
//!
//! Walks the straight-line kernel tracking each pointer register's exact
//! byte offset (pointer math is all `AddImm`), and proves every `LDR`/
//! `LDP`/`STR`/`PRFM` lands inside the packed-panel extent the contract
//! implies, on a 16-byte element-group boundary, with stores confined to
//! the contract's writable output region. Every truly-overlapping access
//! pair involving a store must be covered by a `dependency_edges` ordering
//! edge (otherwise the scheduler could legally reorder it), and the load
//! streams must consume their panels exactly.

use crate::contract::{xreg_index, Contract};
use crate::diag::{Diagnostic, RuleId};
use iatf_codegen::{dependency_edges, Inst, Program, XReg};
use std::collections::HashSet;

/// One resolved memory access: absolute byte extent behind a base pointer.
struct Access {
    idx: usize,
    base: XReg,
    lo: i64,
    len: i64,
    store: bool,
}

/// Runs the memory passes; appends any violations to `diags`.
pub fn check(c: &Contract, p: &Program, diags: &mut Vec<Diagnostic>) {
    let mut ptr = [0i64; 4]; // running offset of each XReg
    let mut accesses: Vec<Access> = Vec::new();

    for (idx, inst) in p.insts.iter().enumerate() {
        let resolved: Option<(XReg, i64, i64, bool)> = match *inst {
            Inst::Ldr { base, offset, .. } => Some((base, offset as i64, 16, false)),
            Inst::Ldp { base, offset, .. } => Some((base, offset as i64, 32, false)),
            Inst::Str { base, offset, .. } => Some((base, offset as i64, 16, true)),
            Inst::Prfm { base, offset } => Some((base, offset as i64, 16, false)),
            Inst::AddImm { reg, imm } => {
                ptr[xreg_index(reg)] += imm as i64;
                None
            }
            _ => None,
        };
        let Some((base, offset, len, store)) = resolved else {
            continue;
        };
        let lo = ptr[xreg_index(base)] + offset;
        let extent = c.buffer_bytes(base);
        if lo % 16 != 0 {
            diags.push(Diagnostic::at(
                RuleId::MemAlign,
                p,
                idx,
                format!("access at byte {lo} is not element-group (16-byte) aligned"),
            ));
        }
        if lo < 0 || lo + len > extent {
            diags.push(Diagnostic::at(
                RuleId::MemBounds,
                p,
                idx,
                format!(
                    "access covers bytes {lo}..{} of a {extent}-byte packed panel",
                    lo + len
                ),
            ));
        }
        if store {
            let w = c.writable_bytes(base);
            if lo < w.start || lo + len > w.end {
                diags.push(Diagnostic::at(
                    RuleId::StoreRegion,
                    p,
                    idx,
                    format!(
                        "store at bytes {lo}..{} is outside the writable region \
                         {}..{}",
                        lo + len,
                        w.start,
                        w.end
                    ),
                ));
            }
        }
        // prefetches are hints — they never alias architecturally
        if !matches!(inst, Inst::Prfm { .. }) {
            accesses.push(Access {
                idx,
                base,
                lo,
                len,
                store,
            });
        }
    }

    // aliasing: every store-involved overlap must carry an ordering edge
    let edges: HashSet<(usize, usize)> = dependency_edges(p)
        .into_iter()
        .map(|(i, j, _)| (i, j))
        .collect();
    for (a, acc_a) in accesses.iter().enumerate() {
        for acc_b in accesses.iter().skip(a + 1) {
            if acc_a.base != acc_b.base || !(acc_a.store || acc_b.store) {
                continue;
            }
            let overlap = acc_a.lo < acc_b.lo + acc_b.len && acc_b.lo < acc_a.lo + acc_a.len;
            if overlap && !edges.contains(&(acc_a.idx, acc_b.idx)) {
                diags.push(Diagnostic::at(
                    RuleId::AliasEdge,
                    p,
                    acc_b.idx,
                    format!(
                        "overlapping access pair (#{}, #{}) at bytes {}.. has no \
                         dependency edge — the scheduler may reorder it",
                        acc_a.idx, acc_b.idx, acc_b.lo
                    ),
                ));
            }
        }
    }

    for (x, expect) in c.final_offsets() {
        let got = ptr[xreg_index(x)];
        if got != expect {
            diags.push(Diagnostic::new(
                RuleId::PanelConsumed,
                format!(
                    "{x:?} ends {got} bytes in, expected {expect} — the load \
                     stream does not consume its panel exactly"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::{DataType, VReg};

    fn gemm(k: usize) -> (Contract, Program) {
        let c = Contract::Gemm {
            mc: 4,
            nc: 4,
            k,
            alpha: 1.0,
            ldc: 5,
            dtype: DataType::F64,
        };
        let p = c.build_traced().program;
        (c, p)
    }

    #[test]
    fn generated_kernels_are_clean() {
        for k in [1usize, 2, 3, 4, 5, 9] {
            let (c, p) = gemm(k);
            let mut diags = Vec::new();
            check(&c, &p, &mut diags);
            assert!(diags.is_empty(), "k={k}: {}", diags[0].headline());
        }
    }

    #[test]
    fn out_of_bounds_load_detected() {
        let (c, mut p) = gemm(2);
        p.insts.insert(
            1,
            Inst::Ldr {
                dst: VReg(0),
                base: XReg::Pa,
                offset: 4096,
            },
        );
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::MemBounds));
    }

    #[test]
    fn misaligned_access_detected() {
        let (c, mut p) = gemm(2);
        p.insts.insert(
            1,
            Inst::Ldr {
                dst: VReg(0),
                base: XReg::Pa,
                offset: 8,
            },
        );
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::MemAlign));
    }

    #[test]
    fn store_outside_output_region_detected() {
        let (c, mut p) = gemm(2);
        // a stray store into the read-only A panel
        p.push(Inst::Str {
            src: VReg(16),
            base: XReg::Pa,
            offset: -16, // Pa has been fully advanced; step back inside
        });
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::StoreRegion));
    }

    #[test]
    fn unconsumed_panel_detected() {
        let (c, mut p) = gemm(2);
        // drop the final pointer bump on Pa
        let last_bump = p
            .insts
            .iter()
            .rposition(|i| matches!(i, Inst::AddImm { reg: XReg::Pa, .. }))
            .unwrap();
        p.insts.remove(last_bump);
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::PanelConsumed));
    }

    #[test]
    fn trsm_block_write_region_is_only_the_block_rows() {
        let c = Contract::TrsmBlock {
            mb: 2,
            nr: 2,
            kk: 3,
            dtype: DataType::F32,
        };
        let p = c.build_traced().program;
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.is_empty(), "{}", diags[0].headline());
        // a store into an already-solved row must be rejected
        let mut bad = p.clone();
        bad.push(Inst::Str {
            src: VReg(0),
            base: XReg::Pb,
            offset: 0,
        });
        let mut diags = Vec::new();
        check(&c, &bad, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::StoreRegion));
    }
}
