//! Exact multivariate polynomials over symbolic inputs.
//!
//! The semantics pass runs each kernel on *symbols* instead of numbers, so a
//! value is a polynomial in the initial buffer contents. Kernel dataflow
//! only multiplies and adds (never divides — the paper's reciprocal
//! diagonal turns division into multiplication), so polynomials are closed
//! under everything the IR can do, and the comparison against the reference
//! formula is exact: coefficients are products of the small rational
//! constants `±1` and `alpha`, every monomial is distinct, and no floating
//! rounding can occur on the coefficient arithmetic performed here.

use std::collections::BTreeMap;

/// A polynomial: monomial → coefficient. A monomial is the sorted list of
/// its symbol ids (with multiplicity); the empty monomial is the constant
/// term. Zero coefficients are never stored, so `==` is semantic equality.
#[derive(Clone, Debug, PartialEq)]
pub struct Poly {
    terms: BTreeMap<Vec<u32>, f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    /// The symbol `x_id` as a polynomial.
    pub fn sym(id: u32) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(vec![id], 1.0);
        Poly { terms }
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0.0 {
            terms.insert(Vec::new(), c);
        }
        Poly { terms }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Set of symbol ids appearing in any monomial.
    pub fn symbols(&self) -> Vec<u32> {
        let mut syms: Vec<u32> = self.terms.keys().flatten().copied().collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    fn add_term(&mut self, mono: Vec<u32>, coeff: f64) {
        use std::collections::btree_map::Entry;
        match self.terms.entry(mono) {
            Entry::Vacant(v) => {
                if coeff != 0.0 {
                    v.insert(coeff);
                }
            }
            Entry::Occupied(mut o) => {
                let c = *o.get() + coeff;
                if c == 0.0 {
                    o.remove();
                } else {
                    *o.get_mut() = c;
                }
            }
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// `self − other`.
    pub fn sub(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.add_term(m.clone(), -c);
        }
        out
    }

    /// `self · other` (exact monomial merge).
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut mono = Vec::with_capacity(ma.len() + mb.len());
                mono.extend_from_slice(ma);
                mono.extend_from_slice(mb);
                mono.sort_unstable();
                out.add_term(mono, ca * cb);
            }
        }
        out
    }

    /// `self · c`.
    pub fn scale(&self, c: f64) -> Poly {
        if c == 0.0 {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, &v)| (m.clone(), v * c)).collect(),
        }
    }

    /// `self + a·b` — the FMA the kernels are made of.
    pub fn mul_add(&self, a: &Poly, b: &Poly) -> Poly {
        self.add(&a.mul(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_identities() {
        let x = Poly::sym(1);
        let y = Poly::sym(2);
        // (x + y)·(x − y) = x² − y²
        let lhs = x.add(&y).mul(&x.sub(&y));
        let rhs = x.mul(&x).sub(&y.mul(&y));
        assert_eq!(lhs, rhs);
        // x − x = 0 with no residual zero terms
        assert!(x.sub(&x).is_zero());
    }

    #[test]
    fn fma_matches_mul_then_add() {
        let acc = Poly::sym(10);
        let a = Poly::sym(11);
        let b = Poly::sym(12);
        assert_eq!(acc.mul_add(&a, &b), acc.add(&a.mul(&b)));
        // and is sensitive to operand swaps into the accumulator slot
        assert_ne!(acc.mul_add(&a, &b), a.mul_add(&acc, &b));
    }

    #[test]
    fn scale_and_symbols() {
        let p = Poly::sym(3).mul(&Poly::sym(5)).scale(1.5).add(&Poly::sym(3));
        assert_eq!(p.symbols(), vec![3, 5]);
        assert!(p.scale(0.0).is_zero());
    }
}
