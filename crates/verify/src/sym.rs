//! Symbolic semantics: abstract interpretation of the kernel over exact
//! polynomials, compared slot-for-slot against the reference GEMM/TRSM/
//! TRMM formulas.
//!
//! Every scalar of every packed operand starts as a fresh symbol; each
//! vector register starts as a *junk* symbol (so a read of anything
//! uninitialized poisons the result and fails the comparison). The kernel
//! is then executed lane-exactly — loads, stores, pointer bumps, and the
//! FMA family all operate on [`Poly`] values — and the final contents of
//! *every* buffer slot must equal the reference polynomial: output slots
//! must carry exactly the contracted formula, untouched slots (read-only
//! panels, `ldc` gaps, already-solved rows) must still be their original
//! symbols. Equality is exact, so a swapped FMLA operand, a wrong offset,
//! a missing term, or a clobbered accumulator all surface here.

use crate::contract::{xreg_index, Contract};
use crate::diag::{Diagnostic, RuleId};
use crate::poly::Poly;
use iatf_codegen::{Inst, Program, XReg};

/// Scalars per 16-byte element group.
fn lanes(c: &Contract) -> usize {
    c.dtype().lanes()
}

/// Number of scalar slots behind a pointer.
fn buf_scalars(c: &Contract, x: XReg) -> usize {
    (c.buffer_bytes(x) / 16) as usize * lanes(c)
}

/// The symbolic machine state.
struct SymMachine {
    lanes: usize,
    /// Per-register lane polynomials.
    vregs: Vec<Vec<Poly>>,
    /// Per-buffer flat scalar polynomials.
    bufs: [Vec<Poly>; 4],
    /// Running byte offset of each pointer.
    ptr: [i64; 4],
}

impl SymMachine {
    /// Fresh machine: buffer slot `i` of buffer `b` holds its own symbol,
    /// registers hold junk symbols.
    fn new(c: &Contract) -> Self {
        let lanes = lanes(c);
        let mut next = 0u32;
        let bufs = XReg::ALL.map(|x| {
            (0..buf_scalars(c, x))
                .map(|_| {
                    next += 1;
                    Poly::sym(next - 1)
                })
                .collect::<Vec<_>>()
        });
        let vregs = (0..32)
            .map(|_| {
                (0..lanes)
                    .map(|_| {
                        next += 1;
                        Poly::sym(next - 1)
                    })
                    .collect()
            })
            .collect();
        SymMachine {
            lanes,
            vregs,
            bufs,
            ptr: [0; 4],
        }
    }

    /// Flat scalar index of lane `l` of the group at absolute byte `b`.
    fn slot(&self, b: i64, l: usize) -> usize {
        (b / 16) as usize * self.lanes + l
    }

    fn load_group(&mut self, dst: usize, base: XReg, abs: i64) {
        for l in 0..self.lanes {
            self.vregs[dst][l] = self.bufs[xreg_index(base)][self.slot(abs, l)].clone();
        }
    }

    /// Executes the whole program (assumes the memory pass already proved
    /// accesses in-bounds and aligned).
    fn run(&mut self, p: &Program) {
        for inst in &p.insts {
            match *inst {
                Inst::Ldr { dst, base, offset } => {
                    let abs = self.ptr[xreg_index(base)] + offset as i64;
                    self.load_group(dst.idx(), base, abs);
                }
                Inst::Ldp {
                    dst1,
                    dst2,
                    base,
                    offset,
                } => {
                    let abs = self.ptr[xreg_index(base)] + offset as i64;
                    self.load_group(dst1.idx(), base, abs);
                    self.load_group(dst2.idx(), base, abs + 16);
                }
                Inst::Str { src, base, offset } => {
                    let abs = self.ptr[xreg_index(base)] + offset as i64;
                    for l in 0..self.lanes {
                        let s = self.slot(abs, l);
                        self.bufs[xreg_index(base)][s] = self.vregs[src.idx()][l].clone();
                    }
                }
                Inst::AddImm { reg, imm } => {
                    self.ptr[xreg_index(reg)] += imm as i64;
                }
                Inst::Fmul { vd, vn, vm } => {
                    for l in 0..self.lanes {
                        self.vregs[vd.idx()][l] =
                            self.vregs[vn.idx()][l].mul(&self.vregs[vm.idx()][l]);
                    }
                }
                Inst::Fmla { vd, vn, vm } => {
                    for l in 0..self.lanes {
                        self.vregs[vd.idx()][l] = self.vregs[vd.idx()][l]
                            .mul_add(&self.vregs[vn.idx()][l], &self.vregs[vm.idx()][l]);
                    }
                }
                Inst::Fmls { vd, vn, vm } => {
                    for l in 0..self.lanes {
                        let prod = self.vregs[vn.idx()][l].mul(&self.vregs[vm.idx()][l]);
                        self.vregs[vd.idx()][l] = self.vregs[vd.idx()][l].sub(&prod);
                    }
                }
                Inst::FmlaScalar { vd, vn, alpha } => {
                    for l in 0..self.lanes {
                        let scaled = self.vregs[vn.idx()][l].scale(alpha);
                        self.vregs[vd.idx()][l] = self.vregs[vd.idx()][l].add(&scaled);
                    }
                }
                Inst::FmulScalar { vd, vn, alpha } => {
                    for l in 0..self.lanes {
                        self.vregs[vd.idx()][l] = self.vregs[vn.idx()][l].scale(alpha);
                    }
                }
                Inst::Prfm { .. } => {}
            }
        }
    }
}

/// The contracted final contents of every buffer, as polynomials over the
/// same initial symbols [`SymMachine::new`] assigns (buffer-major, in
/// `XReg::ALL` order, lane-major within each 16-byte group).
fn reference_buffers(c: &Contract) -> [Vec<Poly>; 4] {
    let lanes = lanes(c);
    let mut next = 0u32;
    let mut bufs = XReg::ALL.map(|x| {
        (0..buf_scalars(c, x))
            .map(|_| {
                next += 1;
                Poly::sym(next - 1)
            })
            .collect::<Vec<_>>()
    });
    let [pa, pb, pc, ptri] = &mut bufs;
    let at = |v: &Vec<Poly>, group: usize, l: usize| v[group * lanes + l].clone();

    match *c {
        Contract::Gemm {
            mc,
            nc,
            k,
            alpha,
            ldc,
            ..
        } => {
            // C(i,j) += alpha · Σ_k A(i,k)·B(k,j), per lane
            for j in 0..nc {
                for i in 0..mc {
                    for l in 0..lanes {
                        let mut acc = Poly::zero();
                        for s in 0..k {
                            acc = acc.mul_add(&at(pa, s * mc + i, l), &at(pb, s * nc + j, l));
                        }
                        let slot = (j * ldc + i) * lanes + l;
                        pc[slot] = pc[slot].add(&acc.scale(alpha));
                    }
                }
            }
        }
        Contract::CplxGemm {
            mc,
            nc,
            k,
            alpha,
            ldc,
            ..
        } => {
            // split representation: group 2g = re plane, 2g+1 = im plane
            for j in 0..nc {
                for i in 0..mc {
                    for l in 0..lanes {
                        let mut re = Poly::zero();
                        let mut im = Poly::zero();
                        for s in 0..k {
                            let are = at(pa, 2 * (s * mc + i), l);
                            let aim = at(pa, 2 * (s * mc + i) + 1, l);
                            let bre = at(pb, 2 * (s * nc + j), l);
                            let bim = at(pb, 2 * (s * nc + j) + 1, l);
                            re = re.add(&are.mul(&bre)).sub(&aim.mul(&bim));
                            im = im.add(&are.mul(&bim)).add(&aim.mul(&bre));
                        }
                        let g = 2 * (j * ldc + i);
                        let (rs, is) = (g * lanes + l, (g + 1) * lanes + l);
                        pc[rs] = pc[rs].add(&re.scale(alpha));
                        pc[is] = pc[is].add(&im.scale(alpha));
                    }
                }
            }
        }
        Contract::TrsmTri { m, n, .. } => {
            // forward solve per column: x_i = (b_i − Σ_{j<i} L(i,j)·x_j)·d_i
            // with d_i the packed reciprocal diagonal
            let t = |i: usize, j: usize| i * (i + 1) / 2 + j;
            for col in 0..n {
                for l in 0..lanes {
                    let mut x: Vec<Poly> = Vec::with_capacity(m);
                    for i in 0..m {
                        let mut v = at(pb, col * m + i, l);
                        for (j, xj) in x.iter().enumerate() {
                            v = v.sub(&at(ptri, t(i, j), l).mul(xj));
                        }
                        x.push(v.mul(&at(ptri, t(i, i), l)));
                    }
                    for (i, xi) in x.into_iter().enumerate() {
                        pb[(col * m + i) * lanes + l] = xi;
                    }
                }
            }
        }
        Contract::TrsmBlock { mb, nr, kk, .. } => {
            // eliminate the kk solved rows, then solve the diagonal block
            // (rect strip at Ptri group k·mb+i, triangle at kk·mb + t(i,j))
            let t = |i: usize, j: usize| kk * mb + i * (i + 1) / 2 + j;
            for col in 0..nr {
                for l in 0..lanes {
                    let mut acc: Vec<Poly> = (0..mb)
                        .map(|i| {
                            let mut v = at(pb, (kk + i) * nr + col, l);
                            for s in 0..kk {
                                v = v.sub(&at(ptri, s * mb + i, l).mul(&at(pb, s * nr + col, l)));
                            }
                            v
                        })
                        .collect();
                    for i in 0..mb {
                        for j in 0..i {
                            let sub = at(ptri, t(i, j), l).mul(&acc[j]);
                            acc[i] = acc[i].sub(&sub);
                        }
                        acc[i] = acc[i].mul(&at(ptri, t(i, i), l));
                    }
                    for (i, v) in acc.into_iter().enumerate() {
                        pb[((kk + i) * nr + col) * lanes + l] = v;
                    }
                }
            }
        }
        Contract::TrmmBlock {
            mb,
            nr,
            kk,
            alpha,
            ..
        } => {
            // out_i = alpha · (Σ_{j≤i} T(i,j)·b_{kk+j} + Σ_{s<kk} R(s,i)·b_s)
            // with a direct (non-reciprocal) diagonal
            let t = |i: usize, j: usize| kk * mb + i * (i + 1) / 2 + j;
            for col in 0..nr {
                for l in 0..lanes {
                    let out: Vec<Poly> = (0..mb)
                        .map(|i| {
                            let mut v = Poly::zero();
                            for j in 0..=i {
                                v = v.mul_add(
                                    &at(ptri, t(i, j), l),
                                    &at(pb, (kk + j) * nr + col, l),
                                );
                            }
                            for s in 0..kk {
                                v = v.mul_add(&at(ptri, s * mb + i, l), &at(pb, s * nr + col, l));
                            }
                            v.scale(alpha)
                        })
                        .collect();
                    for (i, v) in out.into_iter().enumerate() {
                        pb[((kk + i) * nr + col) * lanes + l] = v;
                    }
                }
            }
        }
    }
    bufs
}

/// Runs the kernel symbolically and compares every buffer slot against the
/// reference formula; appends a [`RuleId::Semantics`] diagnostic for the
/// first mismatching slot of each buffer.
pub fn check(c: &Contract, p: &Program, diags: &mut Vec<Diagnostic>) {
    let mut m = SymMachine::new(c);
    m.run(p);
    let want = reference_buffers(c);
    for (bi, x) in XReg::ALL.into_iter().enumerate() {
        for (slot, (got, expect)) in m.bufs[bi].iter().zip(&want[bi]).enumerate() {
            if got != expect {
                let group = slot / m.lanes;
                let lane = slot % m.lanes;
                diags.push(Diagnostic::new(
                    RuleId::Semantics,
                    format!(
                        "{}: {x:?} group {group} lane {lane} computes the wrong \
                         polynomial (first mismatching slot)",
                        c.label()
                    ),
                ));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_codegen::{optimize, DataType, PipelineModel, VReg};

    fn clean(c: &Contract) {
        let p = c.build_traced().program;
        let mut diags = Vec::new();
        check(c, &p, &mut diags);
        assert!(diags.is_empty(), "{}: {}", c.label(), diags[0].headline());
        // and the schedule preserves the polynomials
        let post = optimize(&p, &PipelineModel::default());
        let mut diags = Vec::new();
        check(c, &post, &mut diags);
        assert!(
            diags.is_empty(),
            "{} (scheduled): {}",
            c.label(),
            diags[0].headline()
        );
    }

    #[test]
    fn gemm_semantics_hold() {
        for k in [1usize, 2, 3, 4, 5] {
            clean(&Contract::Gemm {
                mc: 3,
                nc: 2,
                k,
                alpha: 1.5,
                ldc: 4,
                dtype: DataType::F64,
            });
        }
    }

    #[test]
    fn cgemm_semantics_hold() {
        for k in [1usize, 2, 3, 4] {
            clean(&Contract::CplxGemm {
                mc: 2,
                nc: 2,
                k,
                alpha: 1.5,
                ldc: 3,
                dtype: DataType::F32,
            });
        }
    }

    #[test]
    fn trsm_and_trmm_semantics_hold() {
        clean(&Contract::TrsmTri {
            m: 4,
            n: 2,
            dtype: DataType::F64,
        });
        clean(&Contract::TrsmBlock {
            mb: 3,
            nr: 2,
            kk: 3,
            dtype: DataType::F32,
        });
        clean(&Contract::TrmmBlock {
            mb: 3,
            nr: 2,
            kk: 2,
            alpha: 2.0,
            dtype: DataType::F64,
        });
    }

    #[test]
    fn swapped_fmla_operands_detected() {
        let c = Contract::Gemm {
            mc: 2,
            nc: 2,
            k: 3,
            alpha: 1.5,
            ldc: 2,
            dtype: DataType::F64,
        };
        let mut p = c.build_traced().program;
        // swap an FMLA's accumulator with one of its factors
        let idx = p
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Fmla { .. }))
            .unwrap();
        if let Inst::Fmla { vd, vn, vm } = p.insts[idx] {
            p.insts[idx] = Inst::Fmla {
                vd: vn,
                vn: vd,
                vm,
            };
        }
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::Semantics));
    }

    #[test]
    fn clobbered_accumulator_detected() {
        let c = Contract::Gemm {
            mc: 2,
            nc: 2,
            k: 2,
            alpha: 1.0,
            ldc: 2,
            dtype: DataType::F64,
        };
        let mut p = c.build_traced().program;
        // overwrite an accumulator mid-kernel with junk dataflow
        let save_start = p
            .insts
            .iter()
            .position(|i| matches!(i, Inst::FmlaScalar { .. }))
            .unwrap();
        p.insts.insert(
            save_start - 1,
            Inst::Fmul {
                vd: VReg(8),
                vn: VReg(0),
                vm: VReg(0),
            },
        );
        let mut diags = Vec::new();
        check(&c, &p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == RuleId::Semantics));
    }
}
