//! Minimal complex number type.
//!
//! The workspace deliberately avoids an external complex crate: the compact
//! layout stores complex matrices in *split* form (separate real/imaginary
//! planes), so the only places a packed `re, im` pair appears are the standard
//! column-major batches used at the API boundary and in the baselines.

use crate::real::Real;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number stored as `re + i·im`, laid out like the C `_Complex`
/// types (real part first), which is also the layout BLAS interfaces use.
#[derive(Copy, Clone, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real component.
    pub re: T,
    /// Imaginary component.
    pub im: T,
}

/// Single-precision complex, the `cgemm`/`ctrsm` element type.
#[allow(non_camel_case_types)]
pub type c32 = Complex<f32>;
/// Double-precision complex, the `zgemm`/`ztrsm` element type.
#[allow(non_camel_case_types)]
pub type c64 = Complex<f64>;

impl<T: Real> Complex<T> {
    /// Builds a complex number from its components.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// Embeds a real value.
    #[inline(always)]
    pub fn from_real(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiplicative inverse `1/z` via the conjugate formula. This mirrors
    /// the reciprocal stored by the TRSM packing kernels for diagonal
    /// elements, so the packed-reciprocal path and the reference path use
    /// the same rounding.
    #[inline(always)]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |acc, x| acc + x)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = c64::new(3.0, -4.0);
        assert_eq!(z + Complex::zero(), z);
        assert_eq!(z * Complex::one(), z);
        assert_eq!(z - z, Complex::zero());
        assert_eq!(-z + z, Complex::zero());
    }

    #[test]
    fn multiplication_rule() {
        let a = c32::new(1.0, 2.0);
        let b = c32::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, c32::new(5.0, 5.0));
    }

    #[test]
    fn reciprocal_and_division() {
        let z = c64::new(2.0, 1.0);
        let inv = z.recip();
        let prod = z * inv;
        assert!((prod.re - 1.0).abs() < 1e-14);
        assert!(prod.im.abs() < 1e-14);
        let q = c64::new(4.0, 2.0) / z;
        assert!((q.re - 2.0).abs() < 1e-14);
        assert!(q.im.abs() < 1e-14);
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = c32::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), c32::new(3.0, -4.0));
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn layout_is_c_compatible() {
        assert_eq!(core::mem::size_of::<c32>(), 8);
        assert_eq!(core::mem::size_of::<c64>(), 16);
        let z = c64::new(1.0, 2.0);
        // SAFETY: `c64` is `#[repr(C)]` with exactly two `f64` fields, so it transmutes to `[f64; 2]` losslessly.
        let raw: [f64; 2] = unsafe { core::mem::transmute(z) };
        assert_eq!(raw, [1.0, 2.0]);
    }
}
