//! The width-generic SIMD vector trait and its instantiations.

use crate::real::Real;

pub use crate::backend::{S32x4, S64x2, F32x4, F64x2};
#[cfg(target_arch = "x86_64")]
pub use crate::backend::{F32x16, F32x8, F64x4, F64x8};

/// Width of the paper's SIMD unit in bytes. The Kunpeng 920 has 128-bit
/// NEON; this is the *baseline* width whose lane counts define the paper's
/// interleaving factor `P`. Wider backends (256/512-bit) scale `P` by
/// [`VecWidth::lanes_for`](crate::VecWidth::lanes_for).
pub const SIMD_BYTES: usize = 16;

/// A vector of real lanes.
///
/// The lane count is the compact layout's interleaving factor `P` *at this
/// vector's width*: one vector holds the same matrix element of `P`
/// consecutive matrices, so one `fma` advances `P` independent problems —
/// the core of the SIMD-friendly layout. The paper fixes `P` by 128-bit
/// NEON; implementations of this trait exist at 128, 256 and 512 bits plus
/// a scalar-array reference, and the microkernels are generic over all of
/// them.
///
/// # Safety contract
/// `load`/`store` are unsafe raw-pointer operations; callers must guarantee
/// `LANES` valid scalars at the pointer. No alignment beyond the scalar's is
/// required (unaligned loads are used, as the compact layout only guarantees
/// scalar alignment for arbitrary batch offsets). Backends above the
/// architecture baseline (AVX2/AVX-512) must only be *executed* after
/// runtime feature detection confirms the ISA — the width registry in
/// `iatf-kernels` and [`crate::dispatched_width`] enforce this.
pub trait SimdReal: Copy + Clone + Send + Sync + core::fmt::Debug + 'static {
    /// Lane scalar type.
    type Scalar: Real;
    /// `[Self::Scalar; LANES]` — the array type [`to_array`](Self::to_array)
    /// returns.
    type Lanes: Copy
        + Clone
        + core::fmt::Debug
        + PartialEq
        + core::ops::Index<usize, Output = Self::Scalar>
        + AsRef<[Self::Scalar]>
        + IntoIterator<Item = Self::Scalar>;
    /// Number of lanes (= interleaving factor `P` at this width).
    const LANES: usize;

    /// Vector of zeros.
    fn zero() -> Self;
    /// Broadcast a scalar to all lanes.
    fn splat(x: Self::Scalar) -> Self;
    /// Loads `LANES` scalars from `ptr`.
    ///
    /// # Safety
    /// `ptr` must point to at least `LANES` readable scalars.
    unsafe fn load(ptr: *const Self::Scalar) -> Self;
    /// Stores `LANES` scalars to `ptr`.
    ///
    /// # Safety
    /// `ptr` must point to at least `LANES` writable scalars.
    unsafe fn store(self, ptr: *mut Self::Scalar);

    /// Lane-wise addition.
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Lane-wise multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise division.
    fn div(self, rhs: Self) -> Self;
    /// Lane-wise negation.
    fn neg(self) -> Self;
    /// Fused multiply-add: `self + a * b` (NEON `FMLA`).
    fn fma(self, a: Self, b: Self) -> Self;
    /// Fused multiply-subtract: `self - a * b` (NEON `FMLS`).
    fn fms(self, a: Self, b: Self) -> Self;

    /// Copies the lanes into an array (diagnostics and tests).
    fn to_array(self) -> Self::Lanes;
    /// Builds a vector from the first `LANES` entries of an array.
    fn from_slice(xs: &[Self::Scalar]) -> Self {
        assert!(xs.len() >= Self::LANES);
        // Safety: length checked above.
        unsafe { Self::load(xs.as_ptr()) }
    }
}

/// Maps a real scalar type to its 128-bit vector type.
///
/// This is the associated-type direction the paper-baseline kernels use:
/// generic code writes `<T as HasSimd>::Vector` (via the [`simd_for`]
/// alias) and gets `F32x4` or `F64x2`. Wider backends are reached through
/// the per-width kernel tables in `iatf-kernels`, not through this trait.
pub trait HasSimd: Real {
    /// The 128-bit vector whose lanes are `Self`.
    type Vector: SimdReal<Scalar = Self>;
}

impl HasSimd for f32 {
    type Vector = F32x4;
}

impl HasSimd for f64 {
    type Vector = F64x2;
}

/// Shorthand for "the 128-bit vector of scalar `T`".
#[allow(non_camel_case_types)]
pub type simd_for<T> = <T as HasSimd>::Vector;

/// Hints the hardware to prefetch the cache line at `ptr` for reading.
///
/// This is the paper's `PRFM PLDL1KEEP` used at computing-kernel entry to
/// cover the C tile (§4.3: "matrix C is still in the memory, thus we use the
/// PRFM instruction ... to prefetch it at the beginning of the computing
/// kernel"). A no-op on architectures without a mapping.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure hint — `_mm_prefetch` never faults, regardless of the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a pure prefetch hint — it never faults, regardless of the address; the asm clobbers nothing (nostack, readonly, flags preserved).
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) ptr, options(nostack, readonly, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Upper bound on any backend's lane count (512-bit f32), used to size
    /// test buffers width-generically.
    const MAX_LANES: usize = 16;

    fn roundtrip<V: SimdReal>() {
        let mut src = [V::Scalar::ZERO; MAX_LANES];
        for (i, s) in src.iter_mut().enumerate().take(V::LANES) {
            *s = V::Scalar::from_f64(1.5 + i as f64);
        }
        let v = V::from_slice(&src[..V::LANES]);
        let arr = v.to_array();
        assert_eq!(arr.as_ref().len(), V::LANES);
        for i in 0..V::LANES {
            assert_eq!(arr[i], src[i]);
        }
    }

    fn arithmetic<V: SimdReal>() {
        let two = V::splat(V::Scalar::from_f64(2.0));
        let three = V::splat(V::Scalar::from_f64(3.0));
        assert_eq!(two.add(three).to_array()[0].to_f64(), 5.0);
        assert_eq!(three.sub(two).to_array()[0].to_f64(), 1.0);
        assert_eq!(two.mul(three).to_array()[0].to_f64(), 6.0);
        assert_eq!(three.div(two).to_array()[0].to_f64(), 1.5);
        assert_eq!(three.neg().to_array()[0].to_f64(), -3.0);
        // fma: 1 + 2*3 = 7, fms: 1 - 2*3 = -5
        let one = V::splat(V::Scalar::ONE);
        assert_eq!(one.fma(two, three).to_array()[0].to_f64(), 7.0);
        assert_eq!(one.fms(two, three).to_array()[0].to_f64(), -5.0);
        // zero behaves as identity for add
        assert_eq!(V::zero().add(two).to_array()[0].to_f64(), 2.0);
        // ... in the last lane too, not just lane 0
        let last = V::LANES - 1;
        assert_eq!(one.fma(two, three).to_array()[last].to_f64(), 7.0);
    }

    fn lanes_independent<V: SimdReal>() {
        let mut a = [V::Scalar::ZERO; MAX_LANES];
        let mut b = [V::Scalar::ZERO; MAX_LANES];
        for i in 0..V::LANES {
            a[i] = V::Scalar::from_f64(i as f64 + 1.0);
            b[i] = V::Scalar::from_f64(10.0 * (i as f64 + 1.0));
        }
        let va = V::from_slice(&a[..V::LANES]);
        let vb = V::from_slice(&b[..V::LANES]);
        let prod = va.mul(vb).to_array();
        for i in 0..V::LANES {
            assert_eq!(prod[i].to_f64(), a[i].to_f64() * b[i].to_f64());
        }
    }

    fn semantics<V: SimdReal>() {
        roundtrip::<V>();
        arithmetic::<V>();
        lanes_independent::<V>();
    }

    #[test]
    fn f32x4_semantics() {
        assert_eq!(F32x4::LANES, 4);
        semantics::<F32x4>();
    }

    #[test]
    fn f64x2_semantics() {
        assert_eq!(F64x2::LANES, 2);
        semantics::<F64x2>();
    }

    #[test]
    fn scalar_backend_semantics() {
        assert_eq!(S32x4::LANES, 4);
        assert_eq!(S64x2::LANES, 2);
        semantics::<S32x4>();
        semantics::<S64x2>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_backend_semantics() {
        // The wide types execute AVX2/AVX-512 instructions; only exercise
        // them when the host's runtime probe admits the width.
        use crate::width::{width_available, VecWidth};
        if width_available(VecWidth::W256) {
            assert_eq!(F32x8::LANES, 8);
            assert_eq!(F64x4::LANES, 4);
            semantics::<F32x8>();
            semantics::<F64x4>();
        }
        if width_available(VecWidth::W512) {
            assert_eq!(F32x16::LANES, 16);
            assert_eq!(F64x8::LANES, 8);
            semantics::<F32x16>();
            semantics::<F64x8>();
        }
    }

    #[test]
    fn unaligned_access() {
        // The compact layout only guarantees scalar alignment; loads/stores
        // must accept any scalar-aligned pointer.
        let data: [f32; 9] = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        // SAFETY: `data` has 9 elements, so `data + 1` is valid for a 4-lane read.
        let v = unsafe { F32x4::load(data.as_ptr().add(1)) };
        assert_eq!(&v.to_array()[..], &[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0f32; 6];
        // SAFETY: `out` has 6 elements, so `out + 1` is valid for the 4-lane store.
        unsafe { v.store(out.as_mut_ptr().add(1)) };
        assert_eq!(out, [0.0, 1.0, 2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn nan_propagates() {
        let v = F64x2::splat(f64::NAN);
        let r = v.fma(F64x2::splat(1.0), F64x2::splat(1.0)).to_array();
        assert!(r[0].is_nan() && r[1].is_nan());
    }
}
