//! Width-generic SIMD abstraction and scalar element types for IATF.
//!
//! The paper targets the Kunpeng 920's 128-bit NEON unit, whose lane counts
//! define the interleaving factor `P` (4 for single precision, 2 for double).
//! This crate keeps those 128-bit types — [`F32x4`]/[`F64x2`], NEON on
//! `aarch64`, SSE2 on `x86_64` — but makes the width a *runtime* parameter:
//! the [`width`] module probes the host once and exposes
//! [`dispatched_width`]; on `x86_64`, 256-bit AVX2+FMA ([`F32x8`]/[`F64x4`])
//! and 512-bit AVX-512F ([`F32x16`]/[`F64x8`]) backends implement the same
//! [`SimdReal`] trait, scaling `P` to 8/16; and the portable scalar backend
//! ([`S32x4`]/[`S64x2`]) is always available as the reference. All kernels
//! in `iatf-kernels` are generic over [`SimdReal`], so one kernel source
//! serves every width.
//!
//! Complex data uses the *split* representation of the SIMD-friendly compact
//! layout: the real parts of `P` matrices form one vector and the imaginary
//! parts another. [`CVec`] packages that pair with complex multiply-accumulate
//! rules built from `fma`/`fms` so that complex kernels follow the paper's
//! `4·m_c·n_c` instruction count.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop, clippy::should_implement_trait, clippy::suspicious_arithmetic_impl)]

pub mod complex;
pub mod cvector;
pub mod element;
pub mod real;
pub mod vector;
pub mod width;

mod backend;

pub use complex::{c32, c64, Complex};
pub use cvector::CVec;
pub use element::{DType, Element};
pub use real::Real;
pub use vector::{prefetch_read, simd_for, F32x4, F64x2, HasSimd, S32x4, S64x2, SimdReal, SIMD_BYTES};
#[cfg(target_arch = "x86_64")]
pub use vector::{F32x16, F32x8, F64x4, F64x8};
pub use width::{
    available_widths, dispatched_width, forced_width_fallback, width_available,
    ForcedWidthFallback, VecWidth,
};
