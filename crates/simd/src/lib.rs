//! 128-bit SIMD abstraction and scalar element types for IATF.
//!
//! The paper targets the Kunpeng 920's 128-bit NEON unit. This crate exposes a
//! pair of 128-bit vector types, [`F32x4`] and [`F64x2`], whose lane counts are
//! exactly the paper's interleaving factor `P` (4 for single precision, 2 for
//! double precision). On `aarch64` they lower to NEON intrinsics, on `x86_64`
//! to SSE2 (and FMA where the target enables it), and elsewhere to a scalar
//! fallback with identical semantics.
//!
//! Complex data uses the *split* representation of the SIMD-friendly compact
//! layout: the real parts of `P` matrices form one vector and the imaginary
//! parts another. [`CVec`] packages that pair with complex multiply-accumulate
//! rules built from `fma`/`fms` so that complex kernels follow the paper's
//! `4·m_c·n_c` instruction count.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop, clippy::should_implement_trait, clippy::suspicious_arithmetic_impl)]

pub mod complex;
pub mod cvector;
pub mod element;
pub mod real;
pub mod vector;

mod backend;

pub use complex::{c32, c64, Complex};
pub use cvector::CVec;
pub use element::{DType, Element};
pub use real::Real;
pub use vector::{prefetch_read, simd_for, F32x4, F64x2, HasSimd, SimdReal, SIMD_BYTES};
