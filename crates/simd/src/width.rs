//! Runtime vector-width selection.
//!
//! The paper fixes the interleaving factor `P` by the Kunpeng 920's 128-bit
//! NEON unit. This module makes the width a *runtime* parameter instead: the
//! host's SIMD capabilities are probed once (`is_x86_feature_detected!` on
//! x86_64), the widest safe backend becomes the process-wide default, and
//! every width the host supports stays individually addressable so plans,
//! tuning keys, and tests can pin one explicitly.
//!
//! `IATF_FORCE_WIDTH` overrides the default for testing (`scalar`, `128`,
//! `256`, `512`). Per the workspace env policy an *unset* variable is
//! silent, while a set-but-invalid or set-but-unavailable value logs a
//! single-line warning to stderr and falls back to the detected default;
//! the fallback is also recorded so tests can assert on it without
//! scraping stderr.

use std::sync::OnceLock;

/// A SIMD backend width.
///
/// `Scalar` is the portable no-SIMD backend; it keeps the 128-bit lane
/// counts (4×f32 / 2×f64) so the compact layout is identical to `W128` and
/// results can be compared lane for lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VecWidth {
    /// Portable scalar backend (128-bit lane counts, no SIMD instructions).
    Scalar,
    /// 128-bit vectors: NEON on aarch64, SSE2 on x86_64 (the paper's `P`).
    W128,
    /// 256-bit vectors: AVX2 + FMA on x86_64.
    W256,
    /// 512-bit vectors: AVX-512F on x86_64.
    W512,
}

impl VecWidth {
    /// All widths, narrowest first.
    pub const ALL: [VecWidth; 4] = [
        VecWidth::Scalar,
        VecWidth::W128,
        VecWidth::W256,
        VecWidth::W512,
    ];

    /// Vector register bytes backing one element group. `Scalar` reports
    /// 16 because it mirrors the 128-bit lane counts.
    pub fn bytes(self) -> usize {
        match self {
            VecWidth::Scalar | VecWidth::W128 => 16,
            VecWidth::W256 => 32,
            VecWidth::W512 => 64,
        }
    }

    /// Register width in bits (0 for the scalar backend).
    pub fn bits(self) -> usize {
        match self {
            VecWidth::Scalar => 0,
            VecWidth::W128 => 128,
            VecWidth::W256 => 256,
            VecWidth::W512 => 512,
        }
    }

    /// Lane count (interleaving factor `P`) for a scalar of `scalar_bytes`.
    pub fn lanes_for(self, scalar_bytes: usize) -> usize {
        self.bytes() / scalar_bytes
    }

    /// Stable name, accepted back by [`VecWidth::parse`].
    pub fn name(self) -> &'static str {
        match self {
            VecWidth::Scalar => "scalar",
            VecWidth::W128 => "128",
            VecWidth::W256 => "256",
            VecWidth::W512 => "512",
        }
    }

    /// Parses a width name (`scalar` / `128` / `256` / `512`,
    /// case-insensitive, surrounding whitespace ignored).
    pub fn parse(s: &str) -> Option<VecWidth> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(VecWidth::Scalar),
            "128" => Some(VecWidth::W128),
            "256" => Some(VecWidth::W256),
            "512" => Some(VecWidth::W512),
            _ => None,
        }
    }

    /// Stable numeric code for fingerprints and tuning keys.
    pub fn code(self) -> u8 {
        match self {
            VecWidth::Scalar => 0,
            VecWidth::W128 => 1,
            VecWidth::W256 => 2,
            VecWidth::W512 => 3,
        }
    }

    /// Inverse of [`VecWidth::code`].
    pub fn from_code(code: u8) -> Option<VecWidth> {
        VecWidth::ALL.into_iter().find(|w| w.code() == code)
    }

    /// The widest *available* width not exceeding a register size in bits
    /// (used to map machine profiles onto backends).
    pub fn for_simd_bits(bits: usize) -> VecWidth {
        let want = match bits {
            0..=127 => VecWidth::Scalar,
            128..=255 => VecWidth::W128,
            256..=511 => VecWidth::W256,
            _ => VecWidth::W512,
        };
        available_widths()
            .iter()
            .copied()
            .filter(|w| *w <= want)
            .max()
            .unwrap_or(VecWidth::W128)
    }
}

impl core::fmt::Display for VecWidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Widths the host can execute, narrowest first. `Scalar` and `W128` are
/// always present (the 128-bit backend is baseline SSE2/NEON); `W256`/`W512`
/// appear only when the runtime probe confirms AVX2+FMA / AVX-512F.
pub fn available_widths() -> &'static [VecWidth] {
    static WIDTHS: OnceLock<Vec<VecWidth>> = OnceLock::new();
    WIDTHS.get_or_init(|| {
        let mut v = vec![VecWidth::Scalar, VecWidth::W128];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                v.push(VecWidth::W256);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                v.push(VecWidth::W512);
            }
        }
        v
    })
}

/// True when `width`'s backend can run on this host.
pub fn width_available(width: VecWidth) -> bool {
    available_widths().contains(&width)
}

/// What happened to an `IATF_FORCE_WIDTH` request that could not be
/// honored (recorded once, at first dispatch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForcedWidthFallback {
    /// The raw requested value.
    pub requested: String,
    /// The width actually dispatched instead.
    pub fallback: VecWidth,
    /// Why the request was rejected.
    pub reason: &'static str,
}

struct Dispatch {
    width: VecWidth,
    fallback: Option<ForcedWidthFallback>,
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let widest = *available_widths().last().expect("W128 is always available");
        let Ok(raw) = std::env::var("IATF_FORCE_WIDTH") else {
            return Dispatch {
                width: widest,
                fallback: None,
            };
        };
        match VecWidth::parse(&raw) {
            Some(w) if width_available(w) => Dispatch {
                width: w,
                fallback: None,
            },
            Some(_) => {
                let reason = "width not available on this host";
                eprintln!(
                    "iatf: ignoring IATF_FORCE_WIDTH={raw:?} ({reason}); using default {widest}"
                );
                Dispatch {
                    width: widest,
                    fallback: Some(ForcedWidthFallback {
                        requested: raw,
                        fallback: widest,
                        reason,
                    }),
                }
            }
            None => {
                let reason = "not one of scalar/128/256/512";
                eprintln!(
                    "iatf: ignoring IATF_FORCE_WIDTH={raw:?} ({reason}); using default {widest}"
                );
                Dispatch {
                    width: widest,
                    fallback: Some(ForcedWidthFallback {
                        requested: raw,
                        fallback: widest,
                        reason,
                    }),
                }
            }
        }
    })
}

/// The process-wide default width, chosen once at first use: the
/// `IATF_FORCE_WIDTH` override when set and runnable, otherwise the widest
/// available backend.
pub fn dispatched_width() -> VecWidth {
    dispatch().width
}

/// The recorded `IATF_FORCE_WIDTH` rejection, if the first dispatch had to
/// fall back (None when the variable was unset or honored).
pub fn forced_width_fallback() -> Option<&'static ForcedWidthFallback> {
    dispatch().fallback.as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in VecWidth::ALL {
            assert_eq!(VecWidth::parse(w.name()), Some(w));
            assert_eq!(VecWidth::from_code(w.code()), Some(w));
        }
        assert_eq!(VecWidth::parse(" 256 "), Some(VecWidth::W256));
        assert_eq!(VecWidth::parse("SCALAR"), Some(VecWidth::Scalar));
        assert_eq!(VecWidth::parse("1024"), None);
        assert_eq!(VecWidth::parse(""), None);
        assert_eq!(VecWidth::from_code(9), None);
    }

    #[test]
    fn lane_counts_match_register_bytes() {
        assert_eq!(VecWidth::W128.lanes_for(4), 4);
        assert_eq!(VecWidth::W128.lanes_for(8), 2);
        assert_eq!(VecWidth::W256.lanes_for(4), 8);
        assert_eq!(VecWidth::W256.lanes_for(8), 4);
        assert_eq!(VecWidth::W512.lanes_for(4), 16);
        assert_eq!(VecWidth::W512.lanes_for(8), 8);
        // Scalar mirrors the 128-bit layout.
        assert_eq!(VecWidth::Scalar.lanes_for(4), 4);
        assert_eq!(VecWidth::Scalar.lanes_for(8), 2);
    }

    #[test]
    fn scalar_and_128_always_available() {
        let widths = available_widths();
        assert!(widths.contains(&VecWidth::Scalar));
        assert!(widths.contains(&VecWidth::W128));
        // Sorted narrowest-first, so the dispatch default is the last entry.
        let mut sorted = widths.to_vec();
        sorted.sort();
        assert_eq!(sorted, widths);
    }

    #[test]
    fn dispatched_width_is_available() {
        assert!(width_available(dispatched_width()));
        // Unless forced narrower via the env override, the default is the
        // widest available backend.
        if std::env::var("IATF_FORCE_WIDTH").is_err() {
            assert_eq!(
                dispatched_width(),
                *available_widths().last().unwrap()
            );
            assert!(forced_width_fallback().is_none());
        }
    }

    #[test]
    fn machine_bits_map_to_clamped_widths() {
        // Results are clamped to availability, so only invariants that hold
        // on every host are asserted.
        assert_eq!(VecWidth::for_simd_bits(128), VecWidth::W128);
        assert_eq!(VecWidth::for_simd_bits(64), VecWidth::Scalar);
        assert!(VecWidth::for_simd_bits(512) <= *available_widths().last().unwrap());
        assert!(width_available(VecWidth::for_simd_bits(256)));
    }
}
